//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace patches `rand` to this crate (see the root `Cargo.toml`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for simulation and bootstrap resampling.
//! It is *not* the same stream as the real `StdRng`, which is fine: every
//! consumer in this workspace only relies on determinism for a fixed seed
//! and on reasonable uniformity, never on a specific stream.

use std::ops::Range;

/// Low-level uniform-bits source (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`] (subset of `SampleRange`).
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, span)` by rejection on the widening
/// multiply (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng` (different stream, same contract: seeded, uniform, fast).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        /// Fisher–Yates.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.gen_range(0..10usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
