//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace patches `criterion` to this crate (see the root
//! `Cargo.toml`).
//!
//! Measurement model: per benchmark, a short warm-up sizes the
//! iterations-per-sample so one sample lasts roughly
//! `measurement_time / sample_size`; then `sample_size` samples are timed
//! and the per-iteration mean/median/min are reported on stdout. If the
//! `CRITERION_JSON_LINES` environment variable names a file, one JSON
//! object per benchmark is appended to it (used to check BENCH_*.json
//! trajectory entries into the repo).

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
            warm_up_time: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    pub fn finish(self) {}
}

/// Times one routine (subset of `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-iteration nanoseconds, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample to fill measurement_time / sample_size.
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples_ns.push(dt / iters_per_sample as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{group}/{id}: no samples (b.iter never called)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{group}/{id:<40} time: [min {} median {} mean {}]  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON_LINES") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}",
                    group.escape_default(),
                    id.escape_default(),
                    min,
                    median,
                    mean,
                    sorted.len()
                );
                if let Ok(mut file) =
                    std::fs::OpenOptions::new().create(true).append(true).open(&path)
                {
                    let _ = writeln!(file, "{line}");
                }
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a benchmark group function (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark `main` (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_group_runs_routines() {
        let mut c = quick();
        let mut group = c.benchmark_group("t");
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0, "routine never executed");
    }

    #[test]
    fn builder_methods_chain() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(4).measurement_time(Duration::from_millis(4));
        group.bench_function(format!("{}-{}", "a", 1), |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(smoke, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2).measurement_time(Duration::from_millis(2));
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn criterion_group_macro_produces_fn() {
        // `smoke` must be callable; its Criterion comes from Default, so
        // keep it tiny by overriding inside the target.
        smoke();
    }
}
