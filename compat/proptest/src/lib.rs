//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace patches `proptest` to this crate (see the root
//! `Cargo.toml`).
//!
//! Semantics: each `proptest!` test runs `PROPTEST_CASES` (default 48)
//! random cases drawn from the argument strategies with a generator seeded
//! deterministically from the test's name — reproducible across runs, no
//! shrinking. `prop_assert!`/`prop_assert_eq!` return a
//! [`test_runner::TestCaseError`] from the case body; the harness panics
//! with the failing case index and message.

use std::ops::Range;

/// Default number of random cases per property (override with the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test name so every property gets a distinct but
    /// reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let lo = m as u64;
            if lo >= span || lo >= (u64::MAX - span + 1) % span {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A source of random values of one type (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    /// Draw one value. (Real proptest builds a shrinkable value tree; this
    /// stand-in samples directly and never shrinks.)
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform drawn values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// A `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths acceptable to [`vec`]: a fixed size or a range of sizes.
    pub trait IntoSizeRange {
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            Strategy::pick(self, rng)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a length spec
    /// (subset of `proptest::collection::vec`).
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// A failed property case (carries the assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case unless `cond` holds (counted as a pass here; real
/// proptest redraws).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for i in 0..$crate::cases() {
                    $(let $pat = $crate::Strategy::pick(&($strat), &mut rng);)+
                    let result: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!("proptest '{}' failed at case {}: {}", stringify!($name), i, e);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn int_ranges_respect_bounds(a in 3usize..17, b in -5i32..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
        }

        /// Doc comments and multiple attributes parse.
        #[test]
        fn float_and_vec_strategies(x in 0.25f64..0.75, v in collection::vec(0u64..10, 2..6)) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn prop_map_transforms(arr in collection::vec(0.1f64..1.0, 4).prop_map(|v| [v[0], v[1], v[2], v[3]])) {
            prop_assert_eq!(arr.len(), 4);
            prop_assert_ne!(arr[0], 0.0);
        }

        #[test]
        fn early_return_ok_works(n in 0usize..10) {
            if n < 100 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
