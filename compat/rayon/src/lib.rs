//! Offline stand-in for the subset of the `rayon` 1.x API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace patches `rayon` to this crate (see the root `Cargo.toml`).
//!
//! Unlike real rayon there is no global work-stealing pool: a parallel
//! iterator chain stays a cheap `Vec` of pending items until a sink
//! (`reduce`/`sum`) is called, at which point the items are striped across
//! scoped OS threads and the per-item work (the `map` closure) runs in
//! parallel. Reduction order is deterministic: each stripe folds
//! left-to-right and stripe results combine left-to-right, so results are
//! reproducible run-to-run (real rayon's reduction tree is not).

/// Number of worker threads a parallel sink will use (analogue of
/// `rayon::current_num_threads`). Like real rayon's global pool, the
/// `RAYON_NUM_THREADS` environment variable overrides the hardware
/// parallelism — read per call so tests can vary it within one process.
pub fn current_num_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// A materialized "parallel" iterator: items are held eagerly, the
/// expensive per-item work is deferred to [`ParMap`].
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A pending parallel map: items plus the closure to run on each, striped
/// across threads when a sink executes.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// `slice.par_chunks(n)` (subset of `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

/// `slice.par_chunks_mut(n)` (subset of `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

impl<T: Send> ParIter<T> {
    /// Pair items positionally with another parallel iterator's items.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    /// Attach each item's index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Defer `f` over every item; `f` runs on worker threads at the sink.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// Split `n` items into at most `current_num_threads()` contiguous stripes
/// and run `fold_stripe` on each stripe in parallel; stripe results are
/// combined left-to-right by the caller.
fn striped<T, R, G>(items: Vec<T>, fold_stripe: G) -> Vec<R>
where
    T: Send,
    R: Send,
    G: Fn(Vec<T>) -> R + Sync,
{
    let n = items.len();
    let n_threads = current_num_threads().min(n).max(1);
    if n_threads <= 1 {
        return vec![fold_stripe(items)];
    }
    // Stripe sizes differ by at most one, preserving item order.
    let base = n / n_threads;
    let extra = n % n_threads;
    let mut stripes: Vec<Vec<T>> = Vec::with_capacity(n_threads);
    let mut it = items.into_iter();
    for i in 0..n_threads {
        let len = base + usize::from(i < extra);
        stripes.push(it.by_ref().take(len).collect());
    }
    let fold_stripe = &fold_stripe;
    std::thread::scope(|s| {
        let handles: Vec<_> =
            stripes.into_iter().map(|stripe| s.spawn(move || fold_stripe(stripe))).collect();
        handles.into_iter().map(|h| h.join().expect("rayon-compat worker panicked")).collect()
    })
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// `reduce(identity, op)` with rayon semantics: `identity()` seeds each
    /// stripe and `op` combines mapped values and stripe results.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = &self.f;
        let op_ref = &op;
        let identity_ref = &identity;
        let partials =
            striped(self.items, |stripe| stripe.into_iter().map(f).fold(identity_ref(), op_ref));
        partials.into_iter().fold(identity(), &op)
    }

    /// Sum the mapped values.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<R> + std::iter::Sum<S>,
    {
        let f = &self.f;
        let partials = striped(self.items, |stripe| stripe.into_iter().map(f).sum::<S>());
        partials.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_sum_matches_sequential() {
        let v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let par: f64 = v.par_chunks(97).enumerate().map(|(_, c)| c.iter().sum::<f64>()).sum();
        let seq: f64 = v.iter().sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_mut_zip_writes_every_chunk() {
        let mut a = vec![0u64; 1000];
        let mut b = vec![0u64; 250];
        let total = a
            .par_chunks_mut(40)
            .zip(b.par_chunks_mut(10))
            .enumerate()
            .map(|(ci, (ca, cb))| {
                for x in ca.iter_mut() {
                    *x = ci as u64 + 1;
                }
                for x in cb.iter_mut() {
                    *x = ci as u64 + 1;
                }
                ca.len() as u64
            })
            .reduce(|| 0, |x, y| x + y);
        assert_eq!(total, 1000);
        assert!(a.iter().all(|&x| x > 0));
        assert!(b.iter().all(|&x| x > 0));
    }

    #[test]
    fn reduce_is_deterministic() {
        let v: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let r1: f64 = v.par_chunks(64).map(|c| c.iter().sum::<f64>()).reduce(|| 0.0, |a, b| a + b);
        let r2: f64 = v.par_chunks(64).map(|c| c.iter().sum::<f64>()).reduce(|| 0.0, |a, b| a + b);
        assert_eq!(r1.to_bits(), r2.to_bits());
    }

    #[test]
    fn single_item_runs_inline() {
        let v = [1.0f64, 2.0, 3.0];
        let s: f64 = v.par_chunks(10).map(|c| c.iter().sum::<f64>()).sum();
        assert_eq!(s, 6.0);
    }
}
