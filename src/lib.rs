//! Umbrella crate for the RAxML-Cell reproduction suite.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). All functionality lives in
//! the member crates, re-exported here for convenience:
//!
//! * [`phylo`] — the maximum-likelihood phylogenetic inference engine
//!   (the RAxML-class application the paper ports).
//! * [`cellsim`] — the Cell Broadband Engine performance simulator
//!   (the hardware substrate; see `DESIGN.md` for the substitution rationale).
//! * [`raxml_cell`] — the port itself: function offloading, the seven
//!   Cell-specific optimizations, and the EDTLP/LLP/MGPS schedulers.

pub use cellsim;
pub use phylo;
pub use raxml_cell;
