//! Umbrella crate for the RAxML-Cell reproduction suite.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). All functionality lives in
//! the member crates, re-exported here for convenience:
//!
//! * [`phylo`] — the maximum-likelihood phylogenetic inference engine
//!   (the RAxML-class application the paper ports).
//! * [`cellsim`] — the Cell Broadband Engine performance simulator
//!   (the hardware substrate; see `DESIGN.md` for the substitution rationale).
//! * [`raxml_cell`] — the port itself: function offloading, the seven
//!   Cell-specific optimizations, and the EDTLP/LLP/MGPS schedulers.
//! * [`obs`] — the process-wide wall-clock metrics registry (counters,
//!   gauges, latency histograms, Prometheus/JSONL export).

pub use cellsim;
pub use obs;
pub use phylo;
pub use raxml_cell;

/// One-stop imports for analyses that span all three crates: everything in
/// [`phylo::prelude`] plus the simulator's cost model and the experiment
/// drivers (with their [`ExperimentError`](raxml_cell::ExperimentError)
/// Result API). The `examples/` binaries are written against this module.
pub mod prelude {
    pub use cellsim::cost::CostModel;
    pub use cellsim::localstore::paper_offload_plan;
    pub use phylo::prelude::*;
    pub use raxml_cell::error::ExperimentError;
    pub use raxml_cell::experiment::{
        capture_workload, run_figure3, run_ladder, run_table8, Workload, WorkloadSpec,
    };
    pub use raxml_cell::sched::DesParams;
}
