//! The paper's §5 optimization study, end to end: capture a real inference
//! workload, then walk the Cell-specific optimization ladder on the
//! simulated Cell Broadband Engine and report the stepwise speedups.
//!
//! ```sh
//! cargo run --release --example cell_port_study            # 42_SC-equivalent
//! cargo run --release --example cell_port_study -- --quick # reduced workload
//! ```

use raxml_cell_repro::prelude::*;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), ExperimentError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick { WorkloadSpec::test_mid() } else { WorkloadSpec::aln42() };
    println!(
        "capturing workload: {} taxa × {} sites (running a real traced inference)…",
        spec.n_taxa, spec.n_sites
    );
    let workload = capture_workload(&spec)?;
    println!(
        "trace: {} kernel invocations, final lnL {:.2}\n",
        workload.events.len(),
        workload.log_likelihood
    );

    // The local-store feasibility check the paper's design hinges on
    // (§5.2: 117 KB of code must fit in 256 KB alongside the buffers).
    let plan = paper_offload_plan(true).expect("the paper's memory plan fits");
    println!(
        "SPE local store plan: {} KB used, {} KB free (code + double buffers + stack)\n",
        plan.used() / 1024,
        plan.free() / 1024
    );

    let model = CostModel::paper_calibrated();
    let ladder = run_ladder(&workload, &model)?;

    println!("optimization ladder — 1 worker × 1 bootstrap on the simulated Cell:");
    println!("  {:<42} {:>9} {:>11} {:>11}", "configuration", "sim [s]", "vs PPE", "step gain");
    let ppe = ladder[0].rows[0].simulated_seconds;
    let mut prev = f64::NAN;
    for level in &ladder {
        let s = level.rows[0].simulated_seconds;
        let step = if prev.is_nan() {
            String::from("—")
        } else {
            format!("{:+.1}%", (1.0 - s / prev) * 100.0)
        };
        println!("  {:<42} {:>9.2} {:>10.2}× {:>11}", level.label, s, ppe / s, step);
        prev = s;
    }

    let naive = ladder[1].rows[0].simulated_seconds;
    let final_t = ladder[7].rows[0].simulated_seconds;
    println!(
        "\nnaive offload → fully optimized: {:.2}× (the paper reports >5× from its\nown baseline); final config beats the PPE by {:.0}% (paper: 25%).",
        naive / final_t,
        (1.0 - final_t / ppe) * 100.0
    );
    Ok(())
}
