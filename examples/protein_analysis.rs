//! Amino-acid analysis: the "DNA or AA" half of the paper's §3 claim.
//!
//! ```sh
//! cargo run --release --example protein_analysis
//! ```
//!
//! Simulates protein sequences on a known tree under the Poisson model,
//! then recovers the topology with the general-20-state NNI search and
//! compares likelihoods against the truth.

use phylo::protein::{
    optimize_branch_lengths, protein_log_likelihood, protein_nni_search, simulate_protein,
    MultiStateModel, ProteinAlignment,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use raxml_cell_repro::prelude::*;

fn main() {
    // A 7-taxon true tree with solid branches.
    let mut rng = StdRng::seed_from_u64(20260706);
    let true_tree = Tree::random(7, 0.15, &mut rng).unwrap();
    let model = MultiStateModel::poisson(&[0.05; 20]).unwrap();

    let pairs = simulate_protein(&true_tree, &model, 300, 11);
    println!("simulated {} protein sequences × 300 sites:", pairs.len());
    for (name, seq) in &pairs {
        println!("  >{name}  {}…", &seq[..40]);
    }
    let aln = ProteinAlignment::from_named_sequences(&pairs).unwrap();
    println!(
        "\n{} distinct site patterns; empirical frequencies ≈ uniform (Poisson model)",
        aln.n_patterns()
    );

    let t0 = std::time::Instant::now();
    let (found, lnl) = protein_nni_search(&aln, &model, 1, 6, 3);
    println!("\nNNI search (4 restarts) finished in {:.2?}", t0.elapsed());
    println!("best lnL   : {lnl:.4}");

    let mut truth = true_tree.clone();
    let true_lnl = optimize_branch_lengths(&mut truth, &aln, &model, 2);
    println!("true tree  : {true_lnl:.4} (branch-optimized)");
    println!("RF distance to the generating topology: {}", robinson_foulds(&found, &true_tree));

    // Score the same data under a badly mis-scaled tree for contrast.
    let mut stretched = true_tree.clone();
    for (a, b) in true_tree.edges() {
        stretched.set_branch_length(a, b, 3.0);
    }
    println!(
        "same topology, saturated branches: {:.4} (information destroyed)",
        protein_log_likelihood(&stretched, &aln, &model)
    );

    println!("\nfound tree (Newick):\n{}", found.to_newick(aln.taxon_names()));
}
