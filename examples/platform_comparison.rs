//! The paper's §6 cross-platform comparison (Figure 3): the Cell under the
//! MGPS dynamic scheduler vs an IBM Power5 and two Intel Xeons, execution
//! time against the number of bootstraps.
//!
//! ```sh
//! cargo run --release --example platform_comparison            # 42_SC-equivalent
//! cargo run --release --example platform_comparison -- --quick # reduced workload
//! ```

use raxml_cell_repro::prelude::*;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), ExperimentError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick { WorkloadSpec::test_mid() } else { WorkloadSpec::aln42() };
    println!(
        "capturing workload: {} taxa × {} sites (running a real traced inference)…\n",
        spec.n_taxa, spec.n_sites
    );
    let workload = capture_workload(&spec)?;

    let model = CostModel::paper_calibrated();
    let fig = run_figure3(&workload, &model, &DesParams::default())?;

    println!("execution time [s] vs number of bootstraps (Figure 3):\n");
    println!(
        "  {:>10} {:>14} {:>14} {:>14}",
        "bootstraps", "Cell (MGPS)", "IBM Power5", "Intel Xeon ×2"
    );
    for (i, &n) in fig.bootstraps.iter().enumerate() {
        println!("  {:>10} {:>14.2} {:>14.2} {:>14.2}", n, fig.cell[i], fig.power5[i], fig.xeon[i]);
    }

    // A crude terminal rendition of the figure.
    println!("\n  (each ▇ ≈ 4% of the slowest series at that size)");
    for (i, &n) in fig.bootstraps.iter().enumerate() {
        let max = fig.xeon[i].max(fig.power5[i]).max(fig.cell[i]);
        let bar = |v: f64| "▇".repeat(((v / max) * 25.0).round() as usize);
        println!("  n={n:<4} Cell   {}", bar(fig.cell[i]));
        println!("         Power5 {}", bar(fig.power5[i]));
        println!("         Xeon   {}", bar(fig.xeon[i]));
    }

    let last = fig.bootstraps.len() - 1;
    println!(
        "\nat {} bootstraps: Power5/Cell = {:.2} (paper: Cell ~9–10% faster), Xeon/Cell = {:.2} (paper: >2×)",
        fig.bootstraps[last],
        fig.power5[last] / fig.cell[last],
        fig.xeon[last] / fig.cell[last]
    );
    Ok(())
}
