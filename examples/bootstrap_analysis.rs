//! A complete "publishable" phylogenetic analysis (paper §3.1): multiple
//! inferences on the original alignment to find the best-known ML tree,
//! plus non-parametric bootstrap replicates to attach confidence values to
//! its branches — all distributed over a thread master–worker, the
//! in-process analogue of RAxML's MPI scheme.
//!
//! ```sh
//! cargo run --release --example bootstrap_analysis
//! ```

use raxml_cell_repro::prelude::*;
use std::time::Instant;

fn main() {
    let workload =
        SimulationConfig { mean_branch: 0.1, ..SimulationConfig::new(10, 600, 7) }.generate();
    let alignment = &workload.alignment;
    println!(
        "dataset: {} taxa × {} sites ({} patterns)",
        alignment.n_taxa(),
        alignment.n_sites(),
        alignment.n_patterns()
    );

    let analysis = BootstrapAnalysis {
        n_inferences: 4,
        n_bootstraps: 24,
        n_workers: 4,
        seed: 42,
        search: SearchConfig::fast(),
    };
    println!(
        "running {} inferences + {} bootstraps on {} workers…",
        analysis.n_inferences, analysis.n_bootstraps, analysis.n_workers
    );
    let t0 = Instant::now();
    let result = analysis.try_run(alignment).expect("analysis on finite data succeeds");
    let elapsed = t0.elapsed();

    println!("\ncompleted in {elapsed:.2?}");
    println!("inference log-likelihoods:");
    for (i, lnl) in result.inference_log_likelihoods.iter().enumerate() {
        let marker = if *lnl == result.best_log_likelihood { "  ← best" } else { "" };
        println!("  run {i}: {lnl:.4}{marker}");
    }

    println!("\nbootstrap support on the best tree's internal branches:");
    for &((a, b), support) in &result.best.support {
        println!("  branch ({a:>2}, {b:>2}): {:>5.1}%", support * 100.0);
    }

    let names = alignment.taxon_names().to_vec();
    println!("\nbest tree with support values:\n{}", result.best.to_newick_with_support(&names));

    println!(
        "\nmajority-rule consensus of the bootstrap replicates:\n{}",
        result.consensus(0.5).to_newick(&names)
    );

    println!(
        "\ntotal kernel invocations across all jobs: {} newview / {} makenewz / {} evaluate",
        result.trace.counters().newview_calls,
        result.trace.counters().makenewz_calls,
        result.trace.counters().evaluate_calls,
    );
}
