//! Quickstart: infer a maximum-likelihood tree for a DNA alignment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the core `phylo` pipeline: load (or here, simulate) an
//! alignment, compress it into site patterns, run a full RAxML-style
//! inference (randomized stepwise-addition parsimony start + SPR hill
//! climbing + model optimization), and print the tree as Newick.

use raxml_cell_repro::prelude::*;

fn main() {
    // A small synthetic dataset: 12 taxa × 800 sites evolved under GTR+Γ.
    // (With real data you would read a PHYLIP or FASTA file instead.)
    let workload = SimulationConfig::new(12, 800, 2026).generate();
    let phylip_text = write_phylip(&workload.raw);
    println!("input alignment (PHYLIP, first 3 lines):");
    for line in phylip_text.lines().take(3) {
        println!("  {line}");
    }

    // Round-trip through the interchange format, as a real pipeline would.
    let alignment = parse_phylip(&phylip_text).expect("our own writer is parseable");
    let patterns = alignment.compress();
    println!(
        "\n{} taxa × {} sites → {} distinct site patterns",
        patterns.n_taxa(),
        patterns.n_sites(),
        patterns.n_patterns()
    );

    // Run one full ML inference.
    let config = SearchConfig::standard();
    let request = InferenceRequest::new(config, 1);
    let result = run_inference(&patterns, &request, InferenceOptions::new())
        .expect("inference on finite data succeeds")
        .result;

    println!("\nstarting parsimony score : {:.0}", result.starting_parsimony);
    println!("final log-likelihood     : {:.4}", result.log_likelihood);
    println!("fitted Γ shape (alpha)   : {:.4}", result.alpha);
    println!("GTR exchangeabilities    : {:?}", result.model.exchange());
    println!("SPR rounds / moves       : {} / {}", result.rounds, result.moves_applied);
    println!(
        "kernel calls             : {} newview, {} makenewz, {} evaluate",
        result.trace.counters().newview_calls,
        result.trace.counters().makenewz_calls,
        result.trace.counters().evaluate_calls,
    );

    let newick = result.tree.to_newick(patterns.taxon_names());
    println!("\nbest tree (Newick):\n{newick}");

    // How close did we get to the generating topology?
    let rf = robinson_foulds(&result.tree, &workload.true_tree);
    println!("\nRobinson–Foulds distance to the true tree: {rf}");
}
