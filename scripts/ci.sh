#!/usr/bin/env bash
# Full local CI gate. Run from anywhere inside the repo.
#
#   scripts/ci.sh          # tier-1 + lints
#   scripts/ci.sh --quick  # skip the release build (debug test run only)
#
# Tier-1 (the driver's acceptance gate) is the release build plus the full
# test suite; formatting and clippy are held to zero warnings on top.

set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings

if [[ "$quick" -eq 0 ]]; then
    run cargo build --release
fi
run cargo test --workspace -q

# Determinism gate: the parallel-path tests must pass both pinned to one
# thread and at the default thread count — the fixed-chunk reductions make
# parallel log-likelihoods bit-identical regardless of RAYON_NUM_THREADS.
run env RAYON_NUM_THREADS=1 cargo test -q -p phylo parallel::
run cargo test -q -p phylo parallel::

# Inference-farm smoke: work-stealing mechanics under injected faults
# (panics, job failures, worker deaths), bootstrap worker-count bit
# invariance, and JSONL metrics validity.
run cargo run -p bench --bin throughput_study -- --smoke

# Fault-injection smoke: inert-plan bit-equality, deterministic fault
# replay, and checkpoint kill-and-resume bit-identity, end to end.
run cargo run -p bench --bin fault_study -- --smoke

# Observability smoke: per-scheduler traces of one SPR round, trace-derived
# utilization vs SimStats cross-check, and export well-formedness — then an
# independent check that the emitted Chrome trace parses as JSON.
run cargo run -p bench --bin profile_study -- --smoke
trace_dir="$(mktemp -d)"
# --no-artifact: CI must not overwrite the committed BENCH_profile.json
# baseline with quick-workload numbers.
run cargo run -p bench --bin profile_study -- --quick --out "$trace_dir" --no-artifact
for f in "$trace_dir"/*.trace.json; do
    echo "==> python3 json.load $f"
    python3 -c "import json,sys; json.load(open(sys.argv[1])); print('valid JSON:', sys.argv[1])" "$f"
done
rm -rf "$trace_dir"

# Wall-clock metrics smoke: instrumented farm batch, registry/FarmStats
# coherence, Prometheus + JSONL export validity after a filesystem round
# trip. Then validate the committed benchmark baselines and run the
# regression gate in advisory mode (wall-clock numbers on shared CI
# machines inform, they don't block).
metrics_dir="$(mktemp -d)"
run cargo run -p bench --bin metrics_study -- --smoke --out "$metrics_dir"
rm -rf "$metrics_dir"
# (BENCH_dispatch.json is Criterion JSONL, not an envelope — not listed.)
for f in BENCH_metrics.json BENCH_throughput.json BENCH_profile.json; do
    [[ -f "$f" ]] || continue
    echo "==> python3 json.load $f"
    python3 -c "import json,sys; json.load(open(sys.argv[1])); print('valid JSON:', sys.argv[1])" "$f"
done
if [[ -f BENCH_metrics.json ]]; then
    run scripts/bench_gate --advisory
fi

# Service-tier smoke: multi-tenant open-loop load over the real wire
# protocol with exactly-once verification and a validated /metrics scrape,
# then an independent Python parse of the committed BENCH_serve.json
# baseline and an advisory regression gate over a fresh measurement
# (serve_jobs_per_sec throughput, serve_e2e_ns_p99 latency).
run cargo run -p bench --bin serve_study -- --smoke
if [[ -f BENCH_serve.json ]]; then
    echo "==> python3 json.load BENCH_serve.json"
    python3 -c "import json,sys; json.load(open(sys.argv[1])); print('valid JSON:', sys.argv[1])" BENCH_serve.json
    serve_dir="$(mktemp -d)"
    # --no-artifact: never overwrite the committed baseline from CI.
    echo "==> cargo run --release -q -p bench --bin serve_study -- --no-artifact --format json > current.json"
    cargo run --release -q -p bench --bin serve_study -- --no-artifact --format json \
        > "$serve_dir/current.json"
    run scripts/bench_gate --advisory --baseline BENCH_serve.json --current "$serve_dir/current.json"
    rm -rf "$serve_dir"
fi

# Chaos smoke: deterministic wire fault injection (drops, truncation,
# stalls), a mid-stream graceful drain + restart on a fresh port, and the
# triple exactly-once cross-check (client view vs journal-replayed service
# view vs per-life farm accounting), plus cancellation and per-job
# deadlines. Then validate the committed BENCH_chaos.json baseline and run
# an advisory regression gate over a fresh measurement.
run cargo run -p bench --bin chaos_study -- --smoke
if [[ -f BENCH_chaos.json ]]; then
    echo "==> python3 json.load BENCH_chaos.json"
    python3 -c "import json,sys; json.load(open(sys.argv[1])); print('valid JSON:', sys.argv[1])" BENCH_chaos.json
    chaos_dir="$(mktemp -d)"
    # --no-artifact: never overwrite the committed baseline from CI.
    echo "==> cargo run --release -q -p bench --bin chaos_study -- --no-artifact --format json > current.json"
    cargo run --release -q -p bench --bin chaos_study -- --no-artifact --format json \
        > "$chaos_dir/current.json"
    run scripts/bench_gate --advisory --baseline BENCH_chaos.json --current "$chaos_dir/current.json"
    rm -rf "$chaos_dir"
fi

# Kernel smoke: bit-identity of every kernel width against the scalar
# reference (including a fixture that fires the underflow rescale), the
# reuse-vs-full-recompute SPR cross-check, and an envelope round trip.
# Then a schema check of the committed BENCH_kernels.json baseline — it
# must carry a patterns-per-sec headline for every kernel width plus the
# SPR-round p99 — and an advisory regression gate over a fresh quick
# measurement (wall-clock numbers on shared CI machines inform, not block).
run cargo run -p bench --bin kernel_study -- --smoke
if [[ -f BENCH_kernels.json ]]; then
    echo "==> python3 schema check BENCH_kernels.json"
    python3 - BENCH_kernels.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, f"unexpected schema_version: {doc['schema_version']}"
metrics = doc["metrics"]
required = ["newview_%s_patterns_per_sec" % k for k in ("scalar", "vector", "wide4", "wide8")]
required.append("spr_round_p99")
missing = [name for name in required if name not in metrics]
assert not missing, f"BENCH_kernels.json is missing metrics: {missing}"
assert all(metrics[name] > 0 for name in required), "kernel metrics must be positive"
print("schema OK:", sys.argv[1])
EOF
    kernel_dir="$(mktemp -d)"
    # --no-artifact: never overwrite the committed baseline from CI.
    echo "==> cargo run --release -q -p bench --bin kernel_study -- --quick --no-artifact --format json > current.json"
    cargo run --release -q -p bench --bin kernel_study -- --quick --no-artifact --format json \
        > "$kernel_dir/current.json"
    run scripts/bench_gate --advisory --baseline BENCH_kernels.json --current "$kernel_dir/current.json"
    rm -rf "$kernel_dir"
fi

# Migration gate: the deprecated infer_ml_tree_* shims and bench::arg_value
# must not be used anywhere in shipping code (bins, examples, libs).
# Equivalence tests opt in explicitly with #[allow(deprecated)].
run cargo clippy -q --workspace --bins --examples -- -D deprecated

echo
echo "ci: all checks passed"
