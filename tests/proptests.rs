//! Property-based tests (proptest) over the core invariants of all three
//! crates. These complement the unit tests with randomized coverage of the
//! data-structure and numerical invariants DESIGN.md calls out.

use proptest::prelude::*;

use cellsim::dma::{
    build_dma_list, stream_stall_blocking, stream_stall_double_buffered, validate_transfer,
    DmaCosts, MAX_TRANSFER,
};
use cellsim::engine::EventQueue;
use phylo::alphabet::{decode_base, encode_base};
use phylo::bipartitions::{robinson_foulds, tree_bipartitions};
use phylo::io::newick::{parse_newick, write_newick};
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::reference::log_likelihood_naive;
use phylo::likelihood::{
    KernelKind, LikelihoodConfig, LikelihoodWorkspace, ScalingCheck, WorkspaceOptions,
};
use phylo::math::{brent_minimize, discrete_gamma_rates, jacobi_eigen};
use phylo::model::{ExpImpl, GammaRates, SubstModel};
use phylo::search::parsimony_score;
use phylo::simulate::SimulationConfig;
use phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// alphabet / alignment
// ---------------------------------------------------------------------

proptest! {
    /// Every 4-bit code decodes to a character that re-encodes to itself.
    #[test]
    fn alphabet_round_trip(code in 1u8..16) {
        prop_assert_eq!(encode_base(decode_base(code)), Some(code));
    }

    /// Pattern compression never changes the likelihood: an alignment and
    /// its column-shuffled copy compress to the same likelihood.
    #[test]
    fn compression_is_likelihood_invariant(seed in 0u64..50) {
        let w = SimulationConfig::new(5, 60, seed).generate();
        let aln = &w.alignment;
        // Compare the compressed-likelihood against the naive per-pattern
        // reference, which applies weights explicitly.
        let model = SubstModel::jc69();
        let rates = GammaRates::standard(1.0).unwrap();
        let mut engine = LikelihoodEngine::new(aln, model.clone(), rates.clone(), LikelihoodConfig::optimized());
        let fast = engine.log_likelihood(&w.true_tree);
        let naive = log_likelihood_naive(&w.true_tree, aln, &model, &rates);
        prop_assert!((fast - naive).abs() < 1e-6 * naive.abs().max(1.0),
            "fast {} vs naive {}", fast, naive);
    }

    /// Total pattern weight always equals the raw site count.
    #[test]
    fn compression_conserves_weight(seed in 0u64..50, n_taxa in 4usize..9, n_sites in 10usize..200) {
        let w = SimulationConfig::new(n_taxa, n_sites, seed).generate();
        prop_assert_eq!(w.alignment.total_weight(), n_sites as f64);
        prop_assert!(w.alignment.n_patterns() <= n_sites);
    }

    /// Bootstrap weights are a multinomial redistribution: non-negative,
    /// summing to the site count, supported on existing patterns.
    #[test]
    fn bootstrap_weights_are_a_redistribution(seed in 0u64..100) {
        let w = SimulationConfig::new(6, 80, 11).generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = w.alignment.bootstrap_weights(&mut rng);
        prop_assert_eq!(weights.iter().sum::<f64>(), 80.0);
        prop_assert!(weights.iter().all(|&x| x >= 0.0));
    }
}

// ---------------------------------------------------------------------
// math
// ---------------------------------------------------------------------

proptest! {
    /// Discrete Γ rates always have mean 1 and are strictly increasing.
    #[test]
    fn gamma_rates_mean_one(alpha in 0.05f64..50.0, k in 2usize..9) {
        let rates = discrete_gamma_rates(alpha, k);
        let mean = rates.iter().sum::<f64>() / k as f64;
        prop_assert!((mean - 1.0).abs() < 1e-9);
        for w in rates.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Jacobi eigendecomposition reconstructs random symmetric matrices.
    #[test]
    fn eigen_reconstructs(vals in proptest::collection::vec(-5.0f64..5.0, 10)) {
        let mut m = [0.0f64; 16];
        let mut idx = 0;
        for i in 0..4 {
            for j in i..4 {
                m[i * 4 + j] = vals[idx];
                m[j * 4 + i] = vals[idx];
                idx += 1;
            }
        }
        let e = jacobi_eigen(&m, 4);
        let back = e.reconstruct();
        for (a, b) in m.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    /// Brent finds the minimum of shifted quadratics anywhere in a bracket.
    #[test]
    fn brent_finds_quadratic_minima(center in 0.1f64..9.9, scale in 0.1f64..10.0) {
        let (x, _) = brent_minimize(|x| scale * (x - center) * (x - center), 0.0, 10.0, 1e-9, 200);
        prop_assert!((x - center).abs() < 1e-4, "found {} expected {}", x, center);
    }
}

// ---------------------------------------------------------------------
// model
// ---------------------------------------------------------------------

fn arb_freqs() -> impl Strategy<Value = [f64; 4]> {
    proptest::collection::vec(0.05f64..1.0, 4).prop_map(|v| {
        let total: f64 = v.iter().sum();
        [v[0] / total, v[1] / total, v[2] / total, v[3] / total]
    })
}

fn arb_exchange() -> impl Strategy<Value = [f64; 6]> {
    proptest::collection::vec(0.1f64..8.0, 6).prop_map(|v| [v[0], v[1], v[2], v[3], v[4], v[5]])
}

proptest! {
    /// P(t) of a random GTR model is a proper stochastic matrix satisfying
    /// detailed balance for any (t, rate).
    #[test]
    fn transition_matrices_are_stochastic_and_reversible(
        freqs in arb_freqs(),
        ex in arb_exchange(),
        t in 1e-6f64..10.0,
        rate in 0.05f64..4.0,
    ) {
        let m = SubstModel::gtr(freqs, ex).unwrap();
        let p = m.transition_matrix(t, rate, ExpImpl::Sdk);
        for i in 0..4 {
            let row: f64 = p[i].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-8, "row {} sums to {}", i, row);
            for j in 0..4 {
                prop_assert!(p[i][j] >= 0.0);
                let balance = freqs[i] * p[i][j] - freqs[j] * p[j][i];
                prop_assert!(balance.abs() < 1e-9);
            }
        }
    }

    /// The SDK exp and libm produce matching matrices for any model.
    #[test]
    fn exp_implementations_agree(freqs in arb_freqs(), ex in arb_exchange(), t in 1e-6f64..5.0) {
        let m = SubstModel::gtr(freqs, ex).unwrap();
        let a = m.transition_matrix(t, 1.0, ExpImpl::Libm);
        let b = m.transition_matrix(t, 1.0, ExpImpl::Sdk);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((a[i][j] - b[i][j]).abs() < 1e-12);
            }
        }
    }
}

// ---------------------------------------------------------------------
// tree / bipartitions / newick
// ---------------------------------------------------------------------

proptest! {
    /// Random trees validate, have the right edge count, and RF(t, t) = 0.
    #[test]
    fn random_trees_are_wellformed(n in 4usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tree::random(n, 0.1, &mut rng).unwrap();
        t.validate().unwrap();
        prop_assert_eq!(t.edges().len(), 2 * n - 3);
        prop_assert_eq!(tree_bipartitions(&t).len(), n - 3);
        prop_assert_eq!(robinson_foulds(&t, &t), 0);
    }

    /// Newick round-trips preserve topology for arbitrary random trees.
    #[test]
    fn newick_round_trip(n in 4usize..30, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tree::random(n, 0.1, &mut rng).unwrap();
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let text = write_newick(&t, &names);
        let back = parse_newick(&text, &names).unwrap();
        prop_assert_eq!(robinson_foulds(&t, &back), 0, "{}", text);
    }

    /// SPR prune + undo is the identity on topology and branch lengths.
    #[test]
    fn spr_prune_undo_identity(n in 5usize..20, seed in 0u64..500, pick in 0usize..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let original = Tree::random(n, 0.1, &mut rng).unwrap();
        let mut t = original.clone();
        let edges = t.edges();
        let (s, v0) = edges[pick % edges.len()];
        // Prune whichever side has an inner junction.
        let (root, junction) = if !t.is_tip(v0) { (s, v0) } else { (v0, s) };
        if t.is_tip(junction) {
            return Ok(()); // both tips: cannot prune (n = 3 style edge)
        }
        if t.n_taxa() - t.subtree_tips(root, junction).len() < 3 {
            return Ok(());
        }
        let pruned = t.prune(root, junction).unwrap();
        t.undo_prune(&pruned).unwrap();
        t.validate().unwrap();
        prop_assert_eq!(&t, &original);
    }

    /// Parsimony scores are non-negative, bounded by weighted sites × max
    /// changes, and zero only for constant alignments.
    #[test]
    fn parsimony_bounds(seed in 0u64..100) {
        let w = SimulationConfig::new(7, 120, seed).generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tree::random(7, 0.1, &mut rng).unwrap();
        let score = parsimony_score(&t, &w.alignment);
        prop_assert!(score >= 0.0);
        // At most (taxa − 1) changes per site.
        prop_assert!(score <= (7.0 - 1.0) * 120.0);
    }
}

proptest! {
    /// Majority-rule consensus invariants over random replicate sets.
    #[test]
    fn consensus_invariants(n in 5usize..12, seeds in proptest::collection::vec(0u64..10_000, 2..8)) {
        use phylo::bipartitions::majority_rule_consensus;
        let trees: Vec<Tree> = seeds
            .iter()
            .map(|&s| Tree::random(n, 0.1, &mut StdRng::seed_from_u64(s)).unwrap())
            .collect();
        let c50 = majority_rule_consensus(&trees, 0.5);
        let c90 = majority_rule_consensus(&trees, 0.9);
        // Resolution bounds.
        prop_assert!(c50.n_clades() <= n - 3);
        // Higher thresholds never accept more clades.
        prop_assert!(c90.n_clades() <= c50.n_clades());
        // Every accepted clade really is a majority split (recount).
        for (taxa, f) in c50.clades() {
            prop_assert!(*f > 0.5);
            let bp = phylo::bipartitions::Bipartition::from_side(taxa, n);
            let count = trees.iter().filter(|t| tree_bipartitions(t).contains(&bp)).count();
            prop_assert_eq!(count as f64 / trees.len() as f64, *f);
        }
        // The consensus of one tree is that tree, fully resolved.
        let solo = majority_rule_consensus(&trees[..1], 0.5);
        prop_assert!(solo.is_fully_resolved());
        // And it renders to parseable Newick.
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let nwk = c50.to_newick(&names);
        prop_assert!(nwk.ends_with(';'));
        for name in &names {
            prop_assert!(nwk.contains(name.as_str()));
        }
    }
}

// ---------------------------------------------------------------------
// likelihood kernels
// ---------------------------------------------------------------------

proptest! {
    /// All four kernel widths agree to the bit on random instances, under
    /// both scaling-check variants, through the full engine. Lanes map to
    /// patterns, so widening the kernel never changes any per-pattern
    /// operation order.
    #[test]
    fn kernel_variants_agree_on_random_instances(seed in 0u64..40) {
        let w = SimulationConfig::new(6, 100, seed).generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = Tree::random(6, 0.2, &mut rng).unwrap();
        let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        let rates = GammaRates::standard(0.6).unwrap();
        let mut reference: Option<f64> = None;
        let kinds = [KernelKind::Scalar, KernelKind::Vector, KernelKind::Wide4, KernelKind::Wide8];
        for kernel in kinds {
            for scaling in [ScalingCheck::FloatCompare, ScalingCheck::IntegerCast] {
                let cfg = LikelihoodConfig { kernel, scaling, ..LikelihoodConfig::optimized() };
                let mut engine = LikelihoodEngine::new(&w.alignment, model.clone(), rates.clone(), cfg);
                let lnl = engine.log_likelihood(&tree);
                let r = *reference.get_or_insert(lnl);
                prop_assert_eq!(lnl.to_bits(), r.to_bits(),
                    "{:?}/{:?}: {} vs {}", kernel, scaling, lnl, r);
            }
        }
    }

    /// Direct kernel-level bit-equality over random partials, P matrices
    /// and tip codes — including patterns driven below the underflow
    /// threshold so the §5.2.3 rescaling conditional fires on a random
    /// subset of lanes. Outputs, per-pattern scale counts and the
    /// `ScaleStats` instrumentation must all be identical across kernel
    /// widths, for all three child-case pairings.
    #[test]
    fn wide_kernels_bit_equal_on_random_partials(
        seed in 0u64..150,
        n_patterns in 1usize..40,
        n_rates in 1usize..5,
        tiny_mask in 0u64..256,
    ) {
        use phylo::likelihood::kernels::{
            build_tip_tables, evaluate_lnl, newview, tile_partials, tiled_len, Child, EvalOperand,
            Mat4,
        };
        use phylo::likelihood::SCALE_THRESHOLD;
        use rand::Rng;

        let mut rng = StdRng::seed_from_u64(seed);
        let stride = n_rates * 4;
        let mut arb_pmats = |n: usize| -> Vec<Mat4> {
            (0..n)
                .map(|_| {
                    let mut m = [[0.0f64; 4]; 4];
                    for row in &mut m {
                        for v in row.iter_mut() {
                            *v = rng.gen_range(0.05..1.0);
                        }
                    }
                    m
                })
                .collect()
        };
        let pmats_l = arb_pmats(n_rates);
        let pmats_r = arb_pmats(n_rates);
        let tables_l = build_tip_tables(&pmats_l);
        let tables_r = build_tip_tables(&pmats_r);
        let codes_l: Vec<u8> = (0..n_patterns).map(|_| rng.gen_range(1u8..16)).collect();
        let codes_r: Vec<u8> = (0..n_patterns).map(|_| rng.gen_range(1u8..16)).collect();
        // Patterns whose bit is set in `tiny_mask` (cycled over blocks of 8)
        // get partials near the scaling threshold in BOTH children, so their
        // newview products underflow and the rescale fires mid-block.
        let mut arb_partials = || -> Vec<f64> {
            (0..n_patterns * stride)
                .map(|j| {
                    let pattern = j / stride;
                    let v: f64 = rng.gen_range(0.05..1.0);
                    if (tiny_mask >> (pattern % 8)) & 1 == 1 { v * SCALE_THRESHOLD } else { v }
                })
                .collect()
        };
        let xl = tile_partials(&arb_partials(), n_patterns, n_rates);
        let xr = tile_partials(&arb_partials(), n_patterns, n_rates);
        let sl: Vec<u32> = (0..n_patterns).map(|_| rng.gen_range(0u32..3)).collect();
        let sr: Vec<u32> = (0..n_patterns).map(|_| rng.gen_range(0u32..3)).collect();
        let weights: Vec<f64> = (0..n_patterns).map(|_| rng.gen_range(1.0..4.0)).collect();
        let freqs = [0.3, 0.2, 0.25, 0.25];

        let cases = [
            (
                Child::Tip { codes: &codes_l, tables: &tables_l },
                Child::Tip { codes: &codes_r, tables: &tables_r },
            ),
            (
                Child::Tip { codes: &codes_l, tables: &tables_l },
                Child::Inner { x: &xr, scale: &sr, pmats: &pmats_r },
            ),
            (
                Child::Inner { x: &xl, scale: &sl, pmats: &pmats_l },
                Child::Inner { x: &xr, scale: &sr, pmats: &pmats_r },
            ),
        ];
        let wide = [KernelKind::Vector, KernelKind::Wide4, KernelKind::Wide8];
        for (l, r) in &cases {
            for scaling in [ScalingCheck::FloatCompare, ScalingCheck::IntegerCast] {
                let mut ref_x = vec![0.0; tiled_len(n_patterns, n_rates)];
                let mut ref_s = vec![0u32; n_patterns];
                let ref_stats =
                    newview(l, r, &mut ref_x, &mut ref_s, n_rates, KernelKind::Scalar, scaling);
                for kind in wide {
                    let mut x = vec![0.0; tiled_len(n_patterns, n_rates)];
                    let mut s = vec![0u32; n_patterns];
                    let stats = newview(l, r, &mut x, &mut s, n_rates, kind, scaling);
                    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                    prop_assert_eq!(bits(&x), bits(&ref_x), "{:?}/{:?} partials", kind, scaling);
                    prop_assert_eq!(&s, &ref_s, "{:?}/{:?} scale counts", kind, scaling);
                    prop_assert_eq!(stats, ref_stats, "{:?}/{:?} ScaleStats", kind, scaling);
                }
            }
        }

        // Every pattern flagged tiny in both children must actually have
        // fired the rescale in the inner/inner case — the proptest would be
        // vacuous if the threshold never triggered.
        let mut ref_x = vec![0.0; tiled_len(n_patterns, n_rates)];
        let mut ref_s = vec![0u32; n_patterns];
        let (l, r) = &cases[2];
        newview(l, r, &mut ref_x, &mut ref_s, n_rates, KernelKind::Scalar, ScalingCheck::IntegerCast);
        for (i, &s) in ref_s.iter().enumerate() {
            if (tiny_mask >> (i % 8)) & 1 == 1 {
                prop_assert!(s > sl[i] + sr[i], "pattern {} should have rescaled", i);
            }
        }

        // `evaluate` is also bit-identical across kinds (the association is
        // shared by construction; this pins it).
        let u = EvalOperand::Inner { x: &xl, scale: &sl };
        let v = EvalOperand::Inner { x: &xr, scale: &sr };
        let lnl_ref =
            evaluate_lnl(&u, &v, &pmats_l, &freqs, &weights, n_rates, KernelKind::Scalar);
        for kind in wide {
            let lnl = evaluate_lnl(&u, &v, &pmats_l, &freqs, &weights, n_rates, kind);
            prop_assert_eq!(lnl.to_bits(), lnl_ref.to_bits(), "{:?} evaluate", kind);
        }
    }
}

// ---------------------------------------------------------------------
// likelihood workspace arenas + fused traversal dispatch
// ---------------------------------------------------------------------

/// Compare every cached inner-node partial of two engines bit-for-bit.
fn assert_partials_identical(
    a: &LikelihoodEngine<'_>,
    b: &LikelihoodEngine<'_>,
    n_taxa: usize,
) -> Result<(), TestCaseError> {
    for node in n_taxa..(2 * n_taxa - 2) {
        match (a.node_partial(node), b.node_partial(node)) {
            (None, None) => {}
            (Some((xa, sa, ta)), Some((xb, sb, tb))) => {
                prop_assert_eq!(ta, tb, "orientation of node {}", node);
                prop_assert_eq!(sa, sb, "scale counts of node {}", node);
                prop_assert_eq!(xa, xb, "partials of node {}", node);
            }
            (a_state, b_state) => {
                return Err(TestCaseError::fail(format!(
                    "node {node}: validity differs ({} vs {})",
                    a_state.is_some(),
                    b_state.is_some()
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    /// A workspace recycled through arbitrarily many prior engines produces
    /// bit-identical likelihoods, partials and scale counts to a freshly
    /// allocated one, on random trees and random warm-up history.
    #[test]
    fn recycled_workspace_matches_fresh_allocation(seed in 0u64..40, warm_seed in 100u64..140) {
        let w = SimulationConfig::new(6, 150, seed).generate();
        let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        let rates = GammaRates::standard(0.8).unwrap();
        let cfg = LikelihoodConfig::optimized();

        // Dirty a workspace on an unrelated tree (different shape history).
        let warm_w = SimulationConfig::new(7, 90, warm_seed).generate();
        let mut warm = LikelihoodEngine::new(&warm_w.alignment, model.clone(), rates.clone(), cfg);
        let mut warm_rng = StdRng::seed_from_u64(warm_seed);
        let warm_tree = Tree::random(7, 0.15, &mut warm_rng).unwrap();
        warm.log_likelihood(&warm_tree);
        let recycled: LikelihoodWorkspace = warm.into_workspace();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree_fresh = Tree::random(6, 0.2, &mut rng).unwrap();
        let mut tree_pooled = tree_fresh.clone();

        let mut fresh = LikelihoodEngine::new(&w.alignment, model.clone(), rates.clone(), cfg);
        let mut pooled = LikelihoodEngine::with_workspace(
            &w.alignment, model, rates, cfg, WorkspaceOptions::default(), recycled,
        );

        let la = fresh.log_likelihood(&tree_fresh);
        let lb = pooled.log_likelihood(&tree_pooled);
        prop_assert_eq!(la.to_bits(), lb.to_bits(), "lnl {} vs {}", la, lb);
        assert_partials_identical(&fresh, &pooled, 6)?;

        let oa = fresh.optimize_all_branches(&mut tree_fresh, 2);
        let ob = pooled.optimize_all_branches(&mut tree_pooled, 2);
        prop_assert_eq!(oa.to_bits(), ob.to_bits(), "optimized lnl {} vs {}", oa, ob);
        prop_assert_eq!(&tree_fresh, &tree_pooled);
        assert_partials_identical(&fresh, &pooled, 6)?;
    }

    /// Fused `TraversalOps` execution is indistinguishable from per-node
    /// dispatch: same likelihood bits, same cached partials and scale
    /// counts, same optimized trees — over random trees and rootings.
    #[test]
    fn fused_dispatch_matches_per_node(seed in 0u64..40, edge_pick in 0usize..64) {
        let w = SimulationConfig::new(7, 120, seed).generate();
        let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        let rates = GammaRates::standard(0.7).unwrap();
        let cfg = LikelihoodConfig::optimized();

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(5));
        let mut tree_fused = Tree::random(7, 0.2, &mut rng).unwrap();
        let mut tree_node = tree_fused.clone();

        let mut fused = LikelihoodEngine::with_options(
            &w.alignment, model.clone(), rates.clone(), cfg, WorkspaceOptions::default(),
        );
        let mut node = LikelihoodEngine::with_options(
            &w.alignment, model, rates, cfg, WorkspaceOptions::per_node(),
        );

        // Evaluate at a random branch so the compiled segments vary.
        let edges = tree_fused.edges();
        let at = edges[edge_pick % edges.len()];
        let la = fused.log_likelihood_at(&tree_fused, at);
        let lb = node.log_likelihood_at(&tree_node, at);
        prop_assert_eq!(la.to_bits(), lb.to_bits(), "lnl {} vs {}", la, lb);
        assert_partials_identical(&fused, &node, 7)?;

        // The fused engine actually compiled a descriptor list; the
        // per-node engine never does.
        prop_assert!(!fused.last_traversal().is_empty());
        prop_assert!(node.last_traversal().is_empty());
        // Descriptor lists execute children before parents within segments.
        for op in fused.last_traversal() {
            prop_assert!(op.node >= 7, "ops target inner nodes only");
        }

        let oa = fused.optimize_all_branches(&mut tree_fused, 2);
        let ob = node.optimize_all_branches(&mut tree_node, 2);
        prop_assert_eq!(oa.to_bits(), ob.to_bits(), "optimized lnl {} vs {}", oa, ob);
        prop_assert_eq!(&tree_fused, &tree_node);
        assert_partials_identical(&fused, &node, 7)?;
    }
}

// ---------------------------------------------------------------------
// cellsim
// ---------------------------------------------------------------------

proptest! {
    /// DMA legality: multiples of 16 up to 16 KB are legal; everything the
    /// validator accepts can be packed into a legal DMA list.
    #[test]
    fn dma_rules(bytes in 1usize..100_000) {
        let legal = matches!(bytes, 1 | 2 | 4 | 8) || bytes % 16 == 0;
        let fits = bytes <= MAX_TRANSFER;
        prop_assert_eq!(validate_transfer(bytes, 0).is_ok(), legal && fits);
        // Any size can be packed into a list of legal entries.
        let list = build_dma_list(bytes).unwrap();
        let total: usize = list.iter().sum();
        prop_assert!(total >= bytes);
        for &e in &list {
            prop_assert!(validate_transfer(e, 0).is_ok());
        }
    }

    /// Double buffering never loses to blocking transfers, and more compute
    /// never increases the double-buffered stall.
    #[test]
    fn double_buffering_dominates(total in 1u64..1_000_000, compute in 0u64..10_000_000) {
        let costs = DmaCosts::default();
        let blocking = stream_stall_blocking(total, 2048, &costs);
        let dbuf = stream_stall_double_buffered(total, 2048, compute, &costs);
        prop_assert!(dbuf <= blocking);
        let dbuf_more = stream_stall_double_buffered(total, 2048, compute * 2, &costs);
        prop_assert!(dbuf_more <= dbuf);
    }

    /// The event queue pops in exactly sorted order with FIFO ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break");
            }
        }
    }
}

// ---------------------------------------------------------------------
// schedulers
// ---------------------------------------------------------------------

proptest! {
    /// The task-parallel DES conserves work: every job's SPE cycles end up
    /// attributed to some SPE, and the makespan is bounded below by both
    /// the SPE and PPE critical paths.
    #[test]
    fn des_conserves_work(
        n_jobs in 1usize..20,
        n_workers in 1usize..9,
        ppe in 1u64..5_000,
        spe in 1u64..50_000,
        dma in 0u64..10_000,
        phases in 1usize..30,
    ) {
        use raxml_cell::sched::{simulate_task_parallel, DesParams, Phase};
        let params = DesParams { n_ppe_threads: 2, smt_penalty: 1.0, n_spes: 8 };
        let n_workers = n_workers.min(8);
        let job: Vec<Phase> = (0..phases).map(|_| Phase { ppe, spe, dma }).collect();
        let out = simulate_task_parallel(&job, n_jobs, n_workers, 1, &params);
        let total_spe: u64 = out.stats.spes.iter().map(|s| s.busy()).sum();
        let total_stall: u64 = out.stats.spes.iter().map(|s| s.stalled()).sum();
        prop_assert_eq!(total_spe, n_jobs as u64 * phases as u64 * spe, "SPE work conserved");
        prop_assert_eq!(total_stall, n_jobs as u64 * phases as u64 * dma, "DMA stalls conserved");
        prop_assert_eq!(out.stats.ppe_busy, n_jobs as u64 * phases as u64 * ppe, "PPE work conserved");
        // Lower bounds.
        let per_job = phases as u64 * (ppe + spe + dma);
        let spe_bound = (n_jobs as u64).div_ceil(n_workers as u64) * phases as u64 * (spe + dma);
        prop_assert!(out.makespan >= spe_bound);
        prop_assert!(out.makespan >= out.stats.ppe_busy / 2);
        // Upper bound: fully serial execution.
        prop_assert!(out.makespan <= per_job * n_jobs as u64);
    }
}

// ---------------------------------------------------------------------
// serve wire protocol
// ---------------------------------------------------------------------

/// Printable-ASCII payload strategy (the compat proptest has no regex
/// string strategies).
fn arb_ascii(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0x20u8..0x7f, 0..max_len)
        .prop_map(|v| String::from_utf8(v).expect("printable ASCII"))
}

proptest! {
    /// `read_frame` never fabricates a frame from a truncated byte
    /// stream: cutting a valid frame short yields a clean EOF only when
    /// no bytes arrived at all, a typed error otherwise — never
    /// `Ok(Some)`.
    #[test]
    fn truncated_frames_never_parse(payload in arb_ascii(200), cut_frac in 0.0f64..1.0) {
        use serve::wire::{read_frame, write_frame};
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < buf.len()); // a full buffer is not a truncation
        let mut cursor = std::io::Cursor::new(&buf[..cut]);
        match read_frame(&mut cursor) {
            Ok(Some(_)) => prop_assert!(false, "truncated frame parsed as complete"),
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only before any byte arrives"),
            Err(_) => {} // typed error: mid-prefix or mid-payload EOF
        }
    }

    /// An oversized length prefix is rejected with a typed error before
    /// any payload allocation, regardless of what bytes follow.
    #[test]
    fn oversized_length_prefix_is_rejected(
        extra in 1u32..1 << 30,
        tail in proptest::collection::vec(0u16..256, 0..64),
    ) {
        use serve::wire::{read_frame, MAX_FRAME};
        let len = MAX_FRAME as u32 + extra;
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend(tail.into_iter().map(|b| b as u8));
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("oversized frame must be rejected");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// Non-UTF-8 payloads surface as a typed `InvalidData` error, not a
    /// panic or a mangled string.
    #[test]
    fn corrupt_utf8_payload_is_rejected(
        prefix in arb_ascii(32),
        bad in proptest::collection::vec(0x80u8..0xC0, 1..16),
    ) {
        use serve::wire::read_frame;
        let mut payload = prefix.into_bytes();
        payload.extend_from_slice(&bad); // lone continuation bytes: invalid UTF-8
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&payload);
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("invalid UTF-8 must be rejected");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// Single-bit corruption of an encoded request — the exact fault
    /// `ServeFaultPlan::corrupt_site` injects — never panics anywhere in
    /// the frame + parse path: it either round-trips to some request or
    /// fails with a typed error at one of the two layers.
    #[test]
    fn bit_flipped_requests_never_panic(
        job in 0u64..1_000_000,
        bit in 0u32..8,
        flip_byte in 0usize..1_000,
    ) {
        use serve::wire::{read_frame, write_frame, Request};
        let request = Request::Status { job };
        let mut buf = Vec::new();
        write_frame(&mut buf, &request.encode()).unwrap();
        let pos = flip_byte % buf.len();
        buf[pos] ^= 1 << bit;
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor) {
            Err(_) => {}   // frame layer caught it (length, EOF, or UTF-8)
            Ok(None) => {} // flipped length made the stream look empty
            Ok(Some(text)) => {
                let _ = Request::parse(&text); // parse may fail, must not panic
            }
        }
    }

    /// Requests that survive encode → frame → read → parse round-trip to
    /// the same value, idempotency keys and deadlines included.
    #[test]
    fn request_roundtrip_is_lossless(
        job in 0u64..1 << 62,
        key_n in 0u64..1 << 32,
        deadline_raw in 0u64..1 << 41,
    ) {
        use serve::wire::{read_frame, write_frame, JobKind, JobSpec, Preset, Request};
        let mut spec = JobSpec::new("d", JobKind::Search, job, Preset::Fast);
        spec.deadline_ms = if deadline_raw & 1 == 1 { Some(deadline_raw >> 1) } else { None };
        let idem = if key_n == 0 { None } else { Some(format!("key-{key_n}")) };
        let request = Request::Submit { tenant: "t".into(), spec, idem };
        let mut buf = Vec::new();
        write_frame(&mut buf, &request.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let text = read_frame(&mut cursor).unwrap().unwrap();
        let parsed = Request::parse(&text).unwrap();
        prop_assert_eq!(parsed, request);
    }
}
