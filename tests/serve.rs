//! End-to-end tests of the service tier over the real wire protocol:
//! submit → poll → result must be bit-identical to an in-process
//! `run_inference`, admission control must surface typed rejections across
//! the wire, `/metrics` must serve validator-clean Prometheus text on the
//! same port, and a killed-and-restarted service must resume checkpointed
//! jobs bit-identically from the journal + checkpoint tier.

use phylo::prelude::*;
use serve::client::{scrape_metrics, Client};
use serve::server::Server;
use serve::service::{InferenceService, ServiceConfig};
use serve::wire::{JobKind, JobSpec, Preset, RejectReason, WireState};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(600);

fn small_alignment(seed: u64) -> PatternAlignment {
    SimulationConfig::new(7, 240, seed).generate().alignment
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("raxml-cell-serve-integration").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tentpole round trip: a search job submitted over TCP returns the
/// exact bits (lnL, alpha, tree) of the same request run in process.
#[test]
fn wire_round_trip_is_bit_identical_to_run_inference() {
    let aln = small_alignment(31);
    let service = Arc::new(InferenceService::start(ServiceConfig::new(2)).unwrap());
    service.register_dataset("demo", aln.clone());
    let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    let spec = JobSpec::new("demo", JobKind::Search, 5, Preset::Fast);
    let job = client.submit("tenant-a", &spec).unwrap().expect("admitted");
    let status = client.wait_done(job, WAIT).unwrap();
    assert_eq!(status.state, WireState::Done);
    assert_eq!(status.tenant, "tenant-a");
    let served = status.result.expect("done carries the result");

    let direct = run_inference(&aln, &spec.to_request(), InferenceOptions::new()).unwrap().result;
    assert_eq!(
        served.log_likelihood.to_bits(),
        direct.log_likelihood.to_bits(),
        "served lnL bits differ from in-process run_inference"
    );
    assert_eq!(served.alpha.to_bits(), direct.alpha.to_bits());
    assert_eq!(served.tree_exact, direct.tree.to_exact_string());
    assert_eq!(served.rounds, direct.rounds);

    let stats = client.stats().unwrap();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

/// Admission control is visible across the wire as typed rejections, and
/// rejected submissions never execute.
#[test]
fn wire_rejections_are_typed() {
    let config = ServiceConfig::new(1).paused().with_tenant_quota(1).with_max_queue(2);
    let service = Arc::new(InferenceService::start(config).unwrap());
    service.register_dataset("demo", small_alignment(32));
    let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let spec = JobSpec::new("demo", JobKind::Search, 1, Preset::Fast);
    let mut unknown = spec.clone();
    unknown.dataset = "missing".to_string();
    assert_eq!(client.submit("a", &unknown).unwrap(), Err(RejectReason::UnknownDataset));

    assert!(client.submit("a", &spec).unwrap().is_ok());
    assert_eq!(client.submit("a", &spec).unwrap(), Err(RejectReason::QuotaExceeded));
    assert!(client.submit("b", &spec).unwrap().is_ok());
    assert_eq!(client.submit("c", &spec).unwrap(), Err(RejectReason::QueueFull));

    service.resume();
    let report = service.shutdown().unwrap();
    assert_eq!(report.stats.accepted, 2);
    assert_eq!(report.stats.rejected, 3);
    assert_eq!(report.stats.completed, 2);
    assert_eq!(report.dispatched, 2, "rejected submissions never reach the farm");
    assert_eq!(report.farm.n_jobs, 2);
}

/// `/metrics` on the service port serves Prometheus text that passes the
/// repo's own validator and carries the service-tier counters.
#[test]
fn metrics_endpoint_serves_valid_prometheus_text() {
    let service = Arc::new(InferenceService::start(ServiceConfig::new(2)).unwrap());
    service.register_dataset("demo", small_alignment(33));
    let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    let job = client
        .submit("a", &JobSpec::new("demo", JobKind::Search, 2, Preset::Fast))
        .unwrap()
        .expect("admitted");
    client.wait_done(job, WAIT).unwrap();

    let text = scrape_metrics(server.addr()).unwrap();
    obs::validate_prometheus_text(&text).expect("scrape must pass the Prometheus validator");
    for name in ["serve_submitted_total", "serve_completed_total", "serve_sojourn_ns"] {
        assert!(text.contains(name), "scrape missing {name}:\n{text}");
    }
    // Unknown paths 404 without killing the listener.
    let err = scrape_metrics_path(server.addr(), "/nope").unwrap_err();
    assert!(err.to_string().contains("404"), "unexpected error: {err}");
    assert!(scrape_metrics(server.addr()).is_ok(), "listener survives a 404");
}

fn scrape_metrics_path(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: serve\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    if !raw.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::other(raw.lines().next().unwrap_or("").to_string()));
    }
    Ok(raw)
}

/// Kill-and-restart: a checkpointing job interrupted mid-search (via the
/// abort-after-saves hook modelling a crash between SPR rounds) resumes on
/// the restarted service and lands on exactly the bits of an uninterrupted
/// run.
#[test]
fn restarted_service_resumes_checkpointed_jobs_bit_identically() {
    let dir = unique_dir("kill-restart");
    let aln = small_alignment(34);
    let spec = JobSpec::new("demo", JobKind::Search, 6, Preset::Standard).checkpointed();

    // The reference: the same request, uninterrupted, in process.
    let reference =
        run_inference(&aln, &spec.to_request(), InferenceOptions::new()).unwrap().result;

    // First life: the checkpointer aborts after its first snapshot, i.e.
    // the process "dies" with the search half done but journaled.
    let config = ServiceConfig::new(1).with_state_dir(&dir).with_abort_after_saves(1);
    let service = InferenceService::start(config).unwrap();
    service.register_dataset("demo", aln.clone());
    let job = service.submit("tenant-a", &spec).unwrap();
    let status = service.wait_done(job, WAIT).expect("interrupted job settles");
    assert_eq!(status.state, WireState::Failed, "abort hook must interrupt the search");
    assert!(
        status.error.unwrap().contains("interrupted"),
        "failure must be the checkpoint interruption"
    );
    service.shutdown().unwrap();
    assert!(dir.join(format!("job-{job}.ckpt")).exists(), "snapshot survives the crash");

    // Second life: replay the journal, re-register the dataset, resume. The
    // job keeps its id and completes from the snapshot.
    let service =
        InferenceService::start(ServiceConfig::new(1).paused().with_state_dir(&dir)).unwrap();
    let recovered = service.status(job).expect("job recovered from the journal");
    assert_eq!(recovered.state, WireState::Queued, "unsettled job re-enqueues");
    service.register_dataset("demo", aln);
    service.resume();
    let status = service.wait_done(job, WAIT).expect("resumed job finishes");
    assert_eq!(status.state, WireState::Done, "err: {:?}", status.error);
    let resumed = status.result.unwrap();
    assert_eq!(
        resumed.log_likelihood.to_bits(),
        reference.log_likelihood.to_bits(),
        "resumed lnL bits differ from the uninterrupted run"
    );
    assert_eq!(resumed.alpha.to_bits(), reference.alpha.to_bits());
    assert_eq!(resumed.tree_exact, reference.tree.to_exact_string());
    let report = service.shutdown().unwrap();
    assert_eq!(report.stats.completed, 1);
    assert!(!dir.join(format!("job-{job}.ckpt")).exists(), "completed checkpoint is cleaned up");
}

/// Concurrent tenants over one server: all jobs complete exactly once and
/// the farm's accounting agrees with the client-observed set.
#[test]
fn concurrent_tenants_complete_exactly_once() {
    let service = Arc::new(InferenceService::start(ServiceConfig::new(3)).unwrap());
    service.register_dataset("demo", small_alignment(35));
    let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
    let addr = server.addr();

    const TENANTS: usize = 3;
    const JOBS: usize = 3;
    let ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                scope.spawn(move || {
                    let tenant = format!("tenant-{t}");
                    let mut client = Client::connect(addr).unwrap();
                    let mut ids = Vec::new();
                    for j in 0..JOBS {
                        let mut spec = JobSpec::new(
                            "demo",
                            JobKind::Search,
                            (t * 100 + j) as u64 + 1,
                            Preset::Fast,
                        );
                        spec.max_spr_rounds = Some(1);
                        ids.push(client.submit(&tenant, &spec).unwrap().expect("admitted"));
                    }
                    for &id in &ids {
                        let s = client.wait_done(id, WAIT).unwrap();
                        assert_eq!(s.state, WireState::Done, "job {id}: {:?}", s.error);
                    }
                    ids
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut all: Vec<u64> = ids.into_iter().flatten().collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), TENANTS * JOBS, "every job id distinct");

    drop(server);
    let report = service.shutdown().unwrap();
    assert_eq!(report.stats.completed, (TENANTS * JOBS) as u64);
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.dispatched, TENANTS * JOBS);
    assert_eq!(report.farm.n_jobs, TENANTS * JOBS);
    assert_eq!(report.sealed_ok, (TENANTS * JOBS) as u64);
}
