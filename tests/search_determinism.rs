//! Full-search trajectory determinism: an entire SPR + NNI hill climb —
//! every candidate scored, every move applied, every branch optimized —
//! must be bit-identical across kernel widths (lanes map to patterns, so
//! widening the kernel never changes any per-pattern operation order) and
//! across `RAYON_NUM_THREADS` (fixed chunk boundaries plus an indexed
//! sequential reduction make scheduling invisible to the arithmetic).

use phylo::alignment::PatternAlignment;
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::{KernelKind, LikelihoodConfig};
use phylo::model::{GammaRates, SubstModel};
use phylo::search::nni::nni_round;
use phylo::search::spr::spr_round;
use phylo::simulate::SimulationConfig;
use phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, PartialEq)]
struct Trajectory {
    lnl_bits: u64,
    edges: Vec<(usize, usize)>,
    branch_bits: Vec<u64>,
    applied: usize,
    evaluated: usize,
}

/// A short but complete search: random start, branch smoothing, then SPR
/// and NNI rounds to convergence (capped), with every statistic recorded.
fn run_search(
    aln: &PatternAlignment,
    n_taxa: usize,
    kernel: KernelKind,
    parallel: bool,
) -> Trajectory {
    let model = SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).unwrap();
    let rates = GammaRates::standard(0.8).unwrap();
    let cfg = LikelihoodConfig { kernel, parallel, ..LikelihoodConfig::optimized() };
    let mut engine = LikelihoodEngine::new(aln, model, rates, cfg);
    let mut rng = StdRng::seed_from_u64(17);
    let mut tree = Tree::random(n_taxa, 0.1, &mut rng).unwrap();
    engine.optimize_all_branches(&mut tree, 2);

    let mut applied = 0;
    let mut evaluated = 0;
    for _ in 0..3 {
        let s = spr_round(&mut engine, &mut tree, 4, 1e-4);
        let n = nni_round(&mut engine, &mut tree, 1e-4);
        applied += s.applied + n.applied;
        evaluated += s.evaluated + n.evaluated;
        if s.applied + n.applied == 0 {
            break;
        }
        engine.optimize_all_branches(&mut tree, 1);
    }
    let lnl = engine.optimize_all_branches(&mut tree, 1);

    let edges = tree.edges();
    let branch_bits = edges.iter().map(|&(a, b)| tree.branch_length(a, b).to_bits()).collect();
    Trajectory { lnl_bits: lnl.to_bits(), edges, branch_bits, applied, evaluated }
}

#[test]
fn search_is_bit_identical_across_kernel_kinds() {
    let w = SimulationConfig::new(9, 700, 23).generate();
    let reference = run_search(&w.alignment, 9, KernelKind::Scalar, false);
    assert!(reference.evaluated > 0, "the search must actually evaluate candidates");
    for kind in [KernelKind::Vector, KernelKind::Wide4, KernelKind::Wide8] {
        let t = run_search(&w.alignment, 9, kind, false);
        assert_eq!(t, reference, "{kind:?} search trajectory diverged from the scalar kernel's");
    }
}

#[test]
fn search_is_bit_identical_across_thread_counts() {
    // Enough distinct patterns to engage the chunked parallel dispatchers.
    let w = SimulationConfig { mean_branch: 0.4, ..SimulationConfig::new(8, 2400, 37) }.generate();
    assert!(w.alignment.n_patterns() > 128, "patterns: {}", w.alignment.n_patterns());

    let run = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let t = run_search(&w.alignment, 8, KernelKind::Vector, true);
        std::env::remove_var("RAYON_NUM_THREADS");
        t
    };
    let one = run("1");
    assert!(one.evaluated > 0);
    let two = run("2");
    let eight = run("8");
    assert_eq!(one, two, "1 vs 2 threads");
    assert_eq!(one, eight, "1 vs 8 threads");
}
