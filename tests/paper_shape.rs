//! The acceptance suite: every headline claim of the paper, asserted
//! end-to-end against a freshly captured (mid-size) workload. The full-size
//! ALN42 numbers live in EXPERIMENTS.md and the `tables` bench; this suite
//! guards the *shape* in CI time.

use cellsim::cost::CostModel;
use raxml_cell::config::OptConfig;
use raxml_cell::experiment::{
    capture_workload, run_figure3, run_ladder, run_multilevel_study, run_table8, Workload,
    WorkloadSpec,
};
use raxml_cell::offload::price_trace;
use raxml_cell::sched::DesParams;
use std::sync::OnceLock;

fn workload() -> &'static Workload {
    static CACHE: OnceLock<Workload> = OnceLock::new();
    CACHE.get_or_init(|| capture_workload(&WorkloadSpec::test_mid()).expect("capture"))
}

fn model() -> CostModel {
    CostModel::paper_calibrated()
}

/// Single-bootstrap seconds at every ladder level.
fn ladder_column() -> Vec<f64> {
    run_ladder(workload(), &model())
        .expect("ladder")
        .iter()
        .map(|l| l.rows[0].simulated_seconds)
        .collect()
}

/// Paper: "merely offloading a function causes performance degradation"
/// (Table 1b ≈ 2.9× the PPE time).
#[test]
fn claim_naive_offload_hurts() {
    let col = ladder_column();
    let slowdown = col[1] / col[0];
    assert!((1.8..4.5).contains(&slowdown), "naive offload slowdown {slowdown:.2} (paper: 2.88×)");
}

/// Paper §5.2.2: the exp replacement is the single largest optimization
/// (37–41% of execution time).
#[test]
fn claim_exp_replacement_dominates() {
    let col = ladder_column();
    let exp_gain = 1.0 - col[2] / col[1];
    assert!((0.25..0.55).contains(&exp_gain), "exp gain {exp_gain:.2} (paper: 0.37–0.41)");
    // And it is the biggest single step of the ladder.
    for i in 3..7 {
        let step = 1.0 - col[i] / col[i - 1];
        assert!(step < exp_gain, "step {i} ({step:.3}) must not beat exp");
    }
}

/// Paper (II): "vectorization of control statements [beats] vectorization
/// of floating point code" — the surprising finding.
#[test]
fn claim_control_flow_beats_fp_vectorization() {
    let col = ladder_column();
    let cond_gain = 1.0 - col[3] / col[2];
    let vec_gain = 1.0 - col[5] / col[4];
    assert!(
        cond_gain > vec_gain,
        "conditional cast ({cond_gain:.3}) must beat FP vectorization ({vec_gain:.3})"
    );
}

/// Paper §5.2.7: the fully offloaded code beats the PPE-only run (25%).
#[test]
fn claim_final_config_beats_ppe() {
    let col = ladder_column();
    assert!(col[7] < col[0], "fully offloaded {:.2}s must beat PPE {:.2}s", col[7], col[0]);
}

/// Paper (conclusion): >5× from the naive port to MGPS.
#[test]
fn claim_overall_speedup_exceeds_four() {
    let col = ladder_column();
    let t8 = run_table8(workload(), &model(), &DesParams::default()).expect("table8");
    let mgps_1 = t8[0].simulated_seconds;
    let speedup = col[1] / mgps_1;
    assert!(speedup > 4.0, "naive → MGPS speedup {speedup:.2} (paper: 106.37/17.6 ≈ 6.0)");
}

/// Paper Table 8: MGPS throughput is batch-linear in full batches of 8.
#[test]
fn claim_mgps_scales_in_batches() {
    let t8 = run_table8(workload(), &model(), &DesParams::default()).expect("table8");
    let r8 = t8[1].simulated_seconds;
    let r16 = t8[2].simulated_seconds;
    let r32 = t8[3].simulated_seconds;
    assert!((r16 / r8 - 2.0).abs() < 0.15, "16 vs 8: {}", r16 / r8);
    assert!((r32 / r8 - 4.0).abs() < 0.25, "32 vs 8: {}", r32 / r8);
}

/// Paper §6 / Figure 3: Cell < Power5 < Xeon, Xeon > 2× Cell.
#[test]
fn claim_platform_ranking() {
    let fig = run_figure3(workload(), &model(), &DesParams::default()).expect("figure3");
    let last = fig.bootstraps.len() - 1;
    assert!(fig.cell[last] < fig.power5[last]);
    assert!(fig.power5[last] < fig.xeon[last]);
    assert!(fig.xeon[last] / fig.cell[last] > 2.0);
}

/// Paper (III): multi-level parallelization is "both feasible and
/// necessary" — neither pure model wins everywhere.
#[test]
fn claim_no_single_model_wins_everywhere() {
    let rows = run_multilevel_study(workload(), &model(), &DesParams::default()).expect("study");
    let llp_wins = rows.iter().filter(|r| r.llp_seconds < r.edtlp_seconds).count();
    let edtlp_wins = rows.iter().filter(|r| r.edtlp_seconds < r.llp_seconds).count();
    assert!(llp_wins > 0, "LLP must win somewhere (small bootstrap counts)");
    assert!(edtlp_wins > 0, "EDTLP must win somewhere (large bootstrap counts)");
}

/// The §5.2.6 scaling claim: direct memory communication matters *more*
/// with more parallelism ("its performance impact grows as the code uses
/// more SPEs" — here: more workers ⇒ more total comm eliminated per second).
#[test]
fn claim_comm_optimization_scales_with_parallelism() {
    let m = model();
    let before = price_trace(&workload().events, &m, &{
        let mut c = OptConfig::fully_optimized();
        c.stage = raxml_cell::config::OffloadStage::NewviewOnly;
        c.direct_comm = false;
        c
    });
    let after = price_trace(&workload().events, &m, &{
        let mut c = OptConfig::fully_optimized();
        c.stage = raxml_cell::config::OffloadStage::NewviewOnly;
        c
    });
    // Absolute seconds saved per wall-clock second of execution grows with
    // the number of concurrently executing workers (the same per-bootstrap
    // saving compresses into a shorter makespan).
    let saved = m.seconds(before.sequential_cycles() - after.sequential_cycles());
    assert!(saved > 0.0, "direct comm must save time");
}
