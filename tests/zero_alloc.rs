//! Steady-state zero-allocation guarantee for the likelihood hot path.
//!
//! The workspace-arena redesign promises that after warm-up, the complete
//! `newview` → `evaluate` → `makenewz` cycle — traversal compilation, fused
//! kernel execution, sum-table construction, Newton iteration and partial
//! invalidation — touches the heap zero times. This test wraps the system
//! allocator in a counting shim and asserts exactly that.
//!
//! It is the only test in this file on purpose: a `#[global_allocator]`
//! counts every allocation in the process, and a concurrently running test
//! would perturb the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn heap_counters() -> (u64, u64, u64) {
    (
        ALLOCATIONS.load(Ordering::SeqCst),
        DEALLOCATIONS.load(Ordering::SeqCst),
        REALLOCATIONS.load(Ordering::SeqCst),
    )
}

#[test]
fn steady_state_hot_path_does_not_touch_the_heap() {
    use phylo::likelihood::engine::LikelihoodEngine;
    use phylo::likelihood::{LikelihoodConfig, WorkspaceOptions};
    use phylo::model::{GammaRates, SubstModel};
    use phylo::simulate::SimulationConfig;
    use phylo::tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let w = SimulationConfig::new(12, 600, 41).generate();
    let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
    let rates = GammaRates::standard(0.8).unwrap();
    // Sequential dispatch: the rayon path hands chunks to worker threads,
    // whose bookkeeping is outside the zero-allocation contract.
    let config = LikelihoodConfig { parallel: false, ..LikelihoodConfig::optimized() };
    let mut engine = LikelihoodEngine::with_options(
        &w.alignment,
        model,
        rates,
        config,
        WorkspaceOptions::default(),
    );

    let mut rng = StdRng::seed_from_u64(9);
    let mut tree = Tree::random(12, 0.15, &mut rng).unwrap();
    // `tree.edges()` allocates; collect outside the measured region (and
    // refresh after warm-up — its NNI round can rearrange the topology).
    // The NNI round reuses a caller-owned edge buffer the same way.
    let mut edges = tree.edges();
    let mut nni_scratch: Vec<phylo::tree::Edge> = Vec::new();

    // One full cycle of everything the search's inner loop does, including
    // a whole in-place NNI round (apply, score, revert, targeted cache
    // invalidation — no tree clones, no cache rebuild).
    let cycle = |engine: &mut LikelihoodEngine<'_>,
                 tree: &mut Tree,
                 edges: &[(usize, usize)],
                 scratch: &mut Vec<_>|
     -> f64 {
        engine.invalidate_all();
        let mut acc = 0.0;
        for &edge in edges {
            acc += engine.log_likelihood_at(tree, edge);
        }
        for &edge in edges {
            let (_, lnl) = engine.optimize_branch_with_iters(tree, edge, 4);
            acc += lnl;
        }
        acc +=
            phylo::search::nni::nni_round_with_scratch(engine, tree, 1e-4, scratch).log_likelihood;
        acc
    };

    // Warm-up: every arena reaches its steady-state capacity here.
    let warm = cycle(&mut engine, &mut tree, &edges.clone(), &mut nni_scratch);
    assert!(warm.is_finite());
    tree.edges_into(&mut edges);

    let before = heap_counters();
    let measured = cycle(&mut engine, &mut tree, &edges, &mut nni_scratch);
    let after = heap_counters();
    black_box(measured);

    assert!(measured.is_finite());
    assert_eq!(
        (after.0 - before.0, after.1 - before.1, after.2 - before.2),
        (0, 0, 0),
        "steady-state newview/evaluate/makenewz cycle must not allocate: \
         +{} allocs, +{} deallocs, +{} reallocs over {} branches",
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
        edges.len(),
    );

    // Sanity: the counting allocator is actually live.
    let probe_before = heap_counters();
    black_box(vec![0u8; 1024]);
    let probe_after = heap_counters();
    assert!(probe_after.0 > probe_before.0, "counting allocator must observe allocations");
}
