//! Robustness tests for the chaos-hardened service tier: connection
//! lifecycle deadlines (slow-loris eviction), graceful drain, the bounded
//! connection cap, exactly-once submit via idempotency keys (including
//! across a restart and a torn journal tail), job cancellation and per-job
//! deadlines, journal fsync policy, and deterministic wire fault injection
//! end to end.

use phylo::prelude::*;
use serve::client::Client;
use serve::fault::ServeFaultPlan;
use serve::server::{Server, ServerConfig};
use serve::service::{InferenceService, ServiceConfig, SyncPolicy};
use serve::wire::{JobKind, JobSpec, Preset, WireState};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(600);

fn small_alignment(seed: u64) -> PatternAlignment {
    SimulationConfig::new(6, 120, seed).generate().alignment
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new("d", JobKind::Search, seed, Preset::Fast);
    spec.max_spr_rounds = Some(1);
    spec
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("raxml-cell-serve-chaos").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_service() -> Arc<InferenceService> {
    let service = Arc::new(InferenceService::start(ServiceConfig::new(2)).unwrap());
    service.register_dataset("d", small_alignment(3));
    service
}

/// A slow-loris client (two bytes, then silence) is evicted by the
/// handshake deadline — the socket closes and `serve_conn_deadline_total`
/// ticks — instead of parking a handler thread forever.
#[test]
fn slow_loris_is_evicted_by_the_handshake_deadline() {
    let service = start_service();
    let config = ServerConfig::default().with_handshake_timeout(Duration::from_millis(100));
    let mut server = Server::bind_with("127.0.0.1:0", service.clone(), config).unwrap();

    let evicted_before = obs::global().counter("serve_conn_deadline_total").get();
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    loris.write_all(&[0x00, 0x00]).unwrap(); // two bytes of a frame header, then nothing
    loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 16];
    let n = loris.read(&mut buf).expect("server should close, not time us out");
    assert_eq!(n, 0, "expected EOF from an eviction, got {n} bytes");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "eviction took {:?}, deadline was 100ms",
        start.elapsed()
    );
    assert!(
        obs::global().counter("serve_conn_deadline_total").get() > evicted_before,
        "eviction must tick serve_conn_deadline_total"
    );

    // The server is still healthy for well-behaved clients.
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    drop(client);
    server.stop();
}

/// `stop()` is a graceful drain: every live handler thread is joined under
/// the drain deadline and none is leaked.
#[test]
fn stop_drains_and_joins_every_connection_thread() {
    let service = start_service();
    let mut server = Server::bind(("127.0.0.1", 0), service.clone()).unwrap();

    // Three live framed connections, proven up by a ping each (so their
    // handler threads exist and are parked reading the next frame).
    let mut clients: Vec<Client> = (0..3)
        .map(|_| {
            let mut c = Client::connect(server.addr()).unwrap();
            c.ping().unwrap();
            c
        })
        .collect();

    let report = server.stop();
    assert_eq!(report.joined, 3, "all three handler threads joined");
    assert_eq!(report.leaked, 0, "no handler thread leaked past the drain deadline");

    // Stop is idempotent and the clients see clean EOFs.
    assert_eq!(server.stop(), Default::default());
    for c in &mut clients {
        assert!(c.ping().is_err(), "connection should be dead after drain");
    }
}

/// Beyond `max_connections`, a fresh connection gets one typed `Busy`
/// frame (surfaced client-side as a retryable error) instead of a thread.
#[test]
fn connection_cap_rejects_with_busy() {
    let service = start_service();
    let config = ServerConfig::default().with_max_connections(1);
    let mut server = Server::bind_with("127.0.0.1:0", service.clone(), config).unwrap();

    let mut first = Client::connect(server.addr()).unwrap();
    first.ping().unwrap(); // handler live and registered

    let mut second = Client::connect(server.addr()).unwrap();
    let err = second.ping().expect_err("over-cap connection must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused, "busy maps to retryable: {err}");

    // Capacity frees once the first connection closes and is reaped.
    drop(first);
    std::thread::sleep(Duration::from_millis(50));
    let mut third = Client::connect(server.addr()).unwrap();
    third.ping().unwrap();
    drop(third);
    server.stop();
}

/// The same idempotency key returns the same job id without re-admitting,
/// both within a service lifetime and across a journal-replayed restart.
#[test]
fn idempotency_keys_dedup_within_and_across_restarts() {
    let dir = unique_dir("idem-restart");
    let aln = small_alignment(5);

    let config = ServiceConfig::new(1).with_state_dir(&dir);
    let service = InferenceService::start(config).unwrap();
    service.register_dataset("d", aln.clone());

    let first = service.submit_idem("a", &quick_spec(1), Some("key-1")).unwrap();
    let retry = service.submit_idem("a", &quick_spec(1), Some("key-1")).unwrap();
    assert_eq!(first, retry, "same key, same job");
    // Keys are tenant-scoped: another tenant's identical key is a new job.
    let other = service.submit_idem("b", &quick_spec(1), Some("key-1")).unwrap();
    assert_ne!(first, other);
    assert_eq!(service.stats().accepted, 2, "the retry was not re-admitted");

    service.wait_done(first, WAIT).unwrap();
    service.wait_done(other, WAIT).unwrap();
    service.shutdown().unwrap();

    // Restart: the key still resolves to the original (finished) job, so a
    // client retrying a pre-crash submit cannot duplicate work.
    let revived =
        InferenceService::start(ServiceConfig::new(1).paused().with_state_dir(&dir)).unwrap();
    revived.register_dataset("d", aln);
    revived.resume();
    let replayed = revived.submit_idem("a", &quick_spec(1), Some("key-1")).unwrap();
    assert_eq!(replayed, first, "idempotency survives the restart");
    let report = revived.shutdown().unwrap();
    assert_eq!(report.stats.accepted, 2, "replayed, not re-admitted");
    assert_eq!(report.dispatched, 0, "nothing re-ran");
}

/// A torn journal tail (crash mid-append) is skipped by replay while every
/// complete line — including its idempotency key — is recovered.
#[test]
fn torn_journal_tail_is_tolerated_and_keys_survive() {
    let dir = unique_dir("torn-tail");
    let aln = small_alignment(6);

    let service = InferenceService::start(ServiceConfig::new(1).with_state_dir(&dir)).unwrap();
    service.register_dataset("d", aln.clone());
    let job = service.submit_idem("a", &quick_spec(2), Some("k-torn")).unwrap();
    let done = service.wait_done(job, WAIT).unwrap().result.unwrap();
    service.shutdown().unwrap();

    // Simulate a crash mid-append: a torn, unterminated submit line.
    let journal = dir.join("journal.jsonl");
    let mut file = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
    file.write_all(br#"{"ev":"submit","job":99,"tenant":"a","idem":"k-torn-2","datas"#).unwrap();
    drop(file);

    let revived =
        InferenceService::start(ServiceConfig::new(1).paused().with_state_dir(&dir)).unwrap();
    revived.register_dataset("d", aln);
    revived.resume();
    assert!(revived.status(99).is_none(), "the torn line must not materialise a job");
    let restored = revived.status(job).unwrap().result.unwrap();
    assert_eq!(restored.log_likelihood.to_bits(), done.log_likelihood.to_bits());
    let replayed = revived.submit_idem("a", &quick_spec(2), Some("k-torn")).unwrap();
    assert_eq!(replayed, job, "key from before the torn tail still dedups");
    revived.shutdown().unwrap();
}

/// Cancelling a queued job settles it as `Cancelled` without dispatching
/// it, and the books balance: completed + failed + cancelled == accepted.
#[test]
fn cancel_settles_queued_jobs_and_balances_the_books() {
    let service = Arc::new(InferenceService::start(ServiceConfig::new(1).paused()).unwrap());
    service.register_dataset("d", small_alignment(7));
    let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let keep = client.submit("a", &quick_spec(1)).unwrap().unwrap();
    let drop_me = client.submit("a", &quick_spec(2)).unwrap().unwrap();

    let status = client.cancel(drop_me).unwrap();
    assert_eq!(status.state, WireState::Cancelled);
    assert!(status.error.as_deref().unwrap_or("").contains("cancelled"));
    // Cancel is idempotent-ish: cancelling again just reports the state.
    assert_eq!(client.cancel(drop_me).unwrap().state, WireState::Cancelled);

    service.resume();
    let done = client.wait_done(keep, WAIT).unwrap();
    assert_eq!(done.state, WireState::Done);
    let stats = client.stats().unwrap();
    assert_eq!(stats.cancelled, 1);
    drop(client);
    drop(server);

    let report = service.shutdown().unwrap();
    let s = report.stats;
    assert_eq!(s.completed + s.failed + s.cancelled, s.accepted, "the books must balance");
    assert_eq!(report.dispatched, 1, "the cancelled job was never dispatched");
    // A running/finished job cannot be cancelled.
    assert_eq!(service.cancel(keep).unwrap().state, WireState::Done);
    assert!(service.cancel(12345).is_none(), "unknown id is None");
}

/// A job whose `deadline_ms` budget has expired by dispatch time settles
/// as a deadline cancellation and never runs.
#[test]
fn expired_deadline_cancels_instead_of_running() {
    let service = start_service();
    let expired_before = obs::global().counter("serve_deadline_expired_total").get();

    let spec = quick_spec(9).with_deadline_ms(0);
    let job = service.submit("a", &spec).unwrap();
    let status = service.wait_done(job, WAIT).unwrap();
    assert_eq!(status.state, WireState::Cancelled);
    assert!(status.error.as_deref().unwrap_or("").contains("deadline"));
    assert!(obs::global().counter("serve_deadline_expired_total").get() > expired_before);

    // A generous deadline changes nothing.
    let roomy = service.submit("a", &quick_spec(10).with_deadline_ms(600_000)).unwrap();
    assert_eq!(service.wait_done(roomy, WAIT).unwrap().state, WireState::Done);

    let report = service.shutdown().unwrap();
    assert_eq!(report.stats.cancelled, 1);
    assert_eq!(report.stats.completed, 1);
}

/// The default sync policy issues one `sync_data` per journal append;
/// `OsManaged` issues none.
#[test]
fn sync_policy_controls_journal_durability() {
    let dir = unique_dir("sync-policy");
    let aln = small_alignment(8);

    let durable =
        InferenceService::start(ServiceConfig::new(1).with_state_dir(dir.join("durable"))).unwrap();
    durable.register_dataset("d", aln.clone());
    let job = durable.submit("a", &quick_spec(1)).unwrap();
    durable.wait_done(job, WAIT).unwrap();
    assert!(
        durable.journal_sync_count() >= 2,
        "submit + done should each have synced, saw {}",
        durable.journal_sync_count()
    );
    durable.shutdown().unwrap();

    let lazy = InferenceService::start(
        ServiceConfig::new(1)
            .with_state_dir(dir.join("lazy"))
            .with_sync_policy(SyncPolicy::OsManaged),
    )
    .unwrap();
    lazy.register_dataset("d", aln);
    let job = lazy.submit("a", &quick_spec(1)).unwrap();
    lazy.wait_done(job, WAIT).unwrap();
    assert_eq!(lazy.journal_sync_count(), 0, "OsManaged must not fsync");
    lazy.shutdown().unwrap();
}

/// End-to-end fault injection: under an aggressive deterministic plan a
/// bare client sees transport errors, but a fresh retried submit with a
/// stable idempotency key lands exactly one job.
#[test]
fn injected_faults_are_survivable_with_idempotent_retry() {
    let service = start_service();
    let config = ServerConfig::default().with_fault_plan(ServeFaultPlan::uniform(77, 0.15));
    let server = Server::bind_with("127.0.0.1:0", service.clone(), config).unwrap();

    let spec = quick_spec(4);
    let mut job = None;
    for _ in 0..50 {
        let mut c = match Client::connect(server.addr()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match c.submit_idem("a", &spec, Some("stable-key")) {
            Ok(Ok(id)) => {
                job = Some(id);
                break;
            }
            Ok(Err(reason)) => panic!("rejected: {reason:?}"),
            Err(_) => continue, // injected fault; retry with the same key
        }
    }
    let job = job.expect("a submit should eventually get through");
    assert!(server.fault_tally().total() > 0, "the plan should have injected something");
    drop(server);

    let status = service.wait_done(job, WAIT).unwrap();
    assert_eq!(status.state, WireState::Done);
    let report = service.shutdown().unwrap();
    assert_eq!(report.stats.accepted, 1, "every retry deduped to one job");
    assert_eq!(report.stats.completed, 1);
}
