//! Integration of the I/O formats with the analysis pipeline: everything a
//! user round-trips through files must survive and interoperate.

use phylo::bipartitions::robinson_foulds;
use phylo::bootstrap::BootstrapAnalysis;
use phylo::io::{parse_fasta, parse_newick, parse_phylip, write_fasta, write_newick, write_phylip};
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::LikelihoodConfig;
use phylo::model::{GammaRates, SubstModel};
use phylo::search::SearchConfig;
use phylo::simulate::SimulationConfig;

#[test]
fn phylip_and_fasta_carry_identical_information() {
    let w = SimulationConfig::new(9, 400, 77).generate();
    let via_phylip = parse_phylip(&write_phylip(&w.raw)).unwrap();
    let via_fasta = parse_fasta(&write_fasta(&w.raw)).unwrap();
    assert_eq!(via_phylip, via_fasta);
    assert_eq!(via_phylip, w.raw);
    // And they compress identically.
    assert_eq!(via_phylip.compress(), via_fasta.compress());
}

#[test]
fn likelihood_is_invariant_under_io_round_trips() {
    let w = SimulationConfig::new(7, 300, 5).generate();
    let names = w.raw.taxon_names().to_vec();

    // Tree → Newick → tree; alignment → PHYLIP → alignment.
    let newick = write_newick(&w.true_tree, &names);
    let tree_back = parse_newick(&newick, &names).unwrap();
    let aln_back = parse_phylip(&write_phylip(&w.raw)).unwrap().compress();

    let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
    let rates = GammaRates::standard(0.8).unwrap();
    let mut e1 = LikelihoodEngine::new(
        &w.alignment,
        model.clone(),
        rates.clone(),
        LikelihoodConfig::optimized(),
    );
    let mut e2 = LikelihoodEngine::new(&aln_back, model, rates, LikelihoodConfig::optimized());
    let original = e1.log_likelihood(&w.true_tree);
    let round_tripped = e2.log_likelihood(&tree_back);
    // Branch lengths go through 9-decimal text; likelihood agrees tightly.
    assert!((original - round_tripped).abs() < 1e-4, "{original} vs {round_tripped}");
}

#[test]
fn support_annotated_newick_is_parseable() {
    // The analysis writes support values as internal labels; our parser (and
    // every standard tool) must read the topology back.
    let w = SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(7, 500, 21) }.generate();
    let analysis = BootstrapAnalysis {
        n_inferences: 1,
        n_bootstraps: 5,
        n_workers: 2,
        seed: 3,
        search: SearchConfig::fast(),
    };
    let result = analysis.try_run(&w.alignment).unwrap();
    let names = w.alignment.taxon_names().to_vec();
    let annotated = result.best.to_newick_with_support(&names);
    let parsed = parse_newick(&annotated, &names).unwrap();
    assert_eq!(
        robinson_foulds(&parsed, &result.best.tree),
        0,
        "support labels must not disturb the topology: {annotated}"
    );
}

/// Every file in the corrupt-input corpus must come back as a *typed* error
/// through the experiment-layer loader — never a panic, never a silent
/// best-effort parse.
#[test]
fn corrupt_corpus_yields_typed_errors() {
    use raxml_cell::experiment::load_alignment;
    use raxml_cell::ExperimentError;
    use std::path::Path;

    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");

    // The good files load, agree, and carry the declared shape.
    let fasta = load_alignment(&data.join("good.fasta")).unwrap();
    let phylip = load_alignment(&data.join("good.phy")).unwrap();
    assert_eq!(fasta, phylip);
    assert_eq!(fasta.n_taxa(), 4);
    assert_eq!(fasta.n_sites(), 16);

    // Each corrupt file maps to the expected PhyloError variant.
    use phylo::error::PhyloError as E;
    type ErrorCheck = fn(&E) -> bool;
    let cases: &[(&str, ErrorCheck)] = &[
        ("ragged.fasta", |e| matches!(e, E::RaggedAlignment { .. })),
        ("bad_char.fasta", |e| matches!(e, E::InvalidCharacter { .. })),
        ("duplicate_taxon.fasta", |e| matches!(e, E::DuplicateTaxon(_))),
        ("headerless.fasta", |e| matches!(e, E::Parse { format: "FASTA", .. })),
        ("truncated.phy", |e| matches!(e, E::Parse { format: "PHYLIP", .. })),
        ("bad_header.phy", |e| matches!(e, E::Parse { format: "PHYLIP", .. })),
        ("short_row.phy", |e| matches!(e, E::Parse { format: "PHYLIP", .. })),
    ];
    for (name, expected) in cases {
        match load_alignment(&data.join(name)) {
            Err(ExperimentError::Phylo(e)) => {
                assert!(expected(&e), "{name}: unexpected error {e}");
                // Display output is a real diagnosis, not Debug spew.
                assert!(!e.to_string().is_empty());
            }
            other => panic!("{name}: expected a typed Phylo error, got {other:?}"),
        }
    }

    // A missing file is an I/O error with the path in the message.
    let missing = data.join("does-not-exist.fasta");
    match load_alignment(&missing) {
        Err(ExperimentError::Io { path, .. }) => {
            assert!(path.contains("does-not-exist"));
        }
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn files_round_trip_on_disk() {
    let dir = std::env::temp_dir().join(format!("raxml-cell-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let w = SimulationConfig::new(6, 200, 9).generate();
    let names = w.raw.taxon_names().to_vec();

    let aln_path = dir.join("data.phy");
    let tree_path = dir.join("tree.nwk");
    std::fs::write(&aln_path, write_phylip(&w.raw)).unwrap();
    std::fs::write(&tree_path, write_newick(&w.true_tree, &names)).unwrap();

    let aln = parse_phylip(&std::fs::read_to_string(&aln_path).unwrap()).unwrap();
    let tree = parse_newick(&std::fs::read_to_string(&tree_path).unwrap(), &names).unwrap();
    assert_eq!(aln, w.raw);
    assert_eq!(robinson_foulds(&tree, &w.true_tree), 0);

    std::fs::remove_dir_all(&dir).ok();
}
