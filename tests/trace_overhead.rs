//! Near-zero-overhead guarantee for the disabled trace log.
//!
//! Every DES hot path now carries a `&mut TraceLog`; production runs pass
//! `TraceLog::disabled()`. The observability contract is that the disabled
//! log is free: every emit helper early-returns before touching its event
//! buffer, so a simulation instrumented end to end costs zero heap
//! operations over the uninstrumented baseline. This test wraps the system
//! allocator in a counting shim and hammers every emit path to prove it.
//!
//! It is the only test in this file on purpose: a `#[global_allocator]`
//! counts every allocation in the process, and a concurrently running test
//! would perturb the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn heap_counters() -> (u64, u64, u64) {
    (
        ALLOCATIONS.load(Ordering::SeqCst),
        DEALLOCATIONS.load(Ordering::SeqCst),
        REALLOCATIONS.load(Ordering::SeqCst),
    )
}

#[test]
fn disabled_trace_log_does_not_touch_the_heap() {
    use cellsim::tracelog::TraceLog;

    let mut tlog = TraceLog::disabled();

    let before = heap_counters();
    for i in 0..10_000u64 {
        tlog.spe_burst(i, (i % 8) as usize, 0, 100, 80, 20);
        tlog.ppe_span(i, 0, 50, i % 3 == 0);
        tlog.task_start(i, 0, i as usize);
        tlog.task_complete(i + 40, 0, i as usize);
        tlog.dma_transfer(i, i % 16, 16_384, 1_200, 1);
        tlog.signal(i, i % 16, 960, 2);
        tlog.fault(i, "retry", (i % 8) as usize);
        tlog.phase_span(i, "EDTLP", 10);
        tlog.round_span(i, (i % 4) as u32, 10);
        tlog.counter(i, "eib_contention", 1.25);
        tlog.set_offset(i);
    }
    let after = heap_counters();
    black_box(&tlog);

    assert!(tlog.is_empty(), "disabled log must record nothing");
    assert_eq!(
        (after.0 - before.0, after.1 - before.1, after.2 - before.2),
        (0, 0, 0),
        "disabled trace log must not allocate: +{} allocs, +{} deallocs, +{} reallocs \
         over 110,000 emit calls",
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
    );

    // Contrast: the enabled log does record (and therefore allocates), so
    // the emit paths exercised above really do carry payloads.
    let mut live = TraceLog::enabled();
    let live_before = heap_counters();
    for i in 0..64u64 {
        live.spe_burst(i, (i % 8) as usize, 0, 100, 80, 20);
    }
    let live_after = heap_counters();
    assert_eq!(live.len(), 64);
    assert!(live_after.0 > live_before.0, "enabled log must observe its event buffer growing");

    // Sanity: the counting allocator is actually live.
    let probe_before = heap_counters();
    black_box(vec![0u8; 1024]);
    let probe_after = heap_counters();
    assert!(probe_after.0 > probe_before.0, "counting allocator must observe allocations");
}
