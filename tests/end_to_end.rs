//! Cross-crate integration: a real inference feeds the Cell simulator and
//! the whole pipeline stays consistent.

use cellsim::cost::{CostModel, ExecutionFlags};
use phylo::bipartitions::robinson_foulds;
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::reference::log_likelihood_naive;
use phylo::likelihood::LikelihoodConfig;
use phylo::model::{GammaRates, SubstModel};
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;
use raxml_cell::config::OptConfig;
/// One inference via the unified entry point.
fn infer(
    aln: &phylo::alignment::PatternAlignment,
    cfg: &SearchConfig,
    seed: u64,
) -> phylo::search::SearchResult {
    run_inference(aln, &InferenceRequest::new(cfg.clone(), seed), InferenceOptions::new())
        .unwrap()
        .result
}

use raxml_cell::experiment::{capture_workload, WorkloadSpec};
use raxml_cell::offload::price_trace;

/// The engine the search uses must agree with the naive reference on the
/// final tree of a real inference — the strongest end-to-end correctness
/// statement: every optimized kernel, cache and invalidation shortcut in
/// the search produced a tree whose likelihood an independent
/// implementation confirms.
#[test]
fn search_result_likelihood_is_confirmed_by_reference() {
    let w = SimulationConfig::new(8, 250, 99).generate();
    let result = infer(&w.alignment, &SearchConfig::fast(), 3);
    let rates = GammaRates::new(result.alpha, 4).unwrap();
    let naive = log_likelihood_naive(&result.tree, &w.alignment, &result.model, &rates);
    assert!(
        (naive - result.log_likelihood).abs() < 1e-6 * naive.abs(),
        "search reported {} but the naive reference computes {}",
        result.log_likelihood,
        naive
    );
}

/// Likelihood invariants survive the full pipeline: rooting invariance and
/// pattern-compression consistency on searched (not just random) trees.
#[test]
fn searched_tree_satisfies_reversibility_invariant() {
    let w = SimulationConfig::new(9, 300, 5).generate();
    let result = infer(&w.alignment, &SearchConfig::fast(), 7);
    let mut engine = LikelihoodEngine::new(
        &w.alignment,
        result.model.clone(),
        GammaRates::new(result.alpha, 4).unwrap(),
        LikelihoodConfig::optimized(),
    );
    let edges = result.tree.edges();
    let first = engine.log_likelihood_at(&result.tree, edges[0]);
    for &e in edges.iter().skip(1).step_by(3) {
        let lnl = engine.log_likelihood_at(&result.tree, e);
        assert!((lnl - first).abs() < 1e-7, "branch {e:?}: {lnl} vs {first}");
    }
}

/// A captured workload prices coherently at every ladder rung: cycle totals
/// are conserved and the optimization ordering holds for the real trace.
#[test]
fn real_trace_prices_coherently_across_the_ladder() {
    let workload = capture_workload(&WorkloadSpec::small()).expect("capture");
    let model = CostModel::paper_calibrated();
    let mut previous_total: Option<u64> = None;
    for (label, cfg) in OptConfig::ladder().into_iter().skip(1) {
        let priced = price_trace(&workload.events, &model, &cfg);
        assert_eq!(
            priced.invocations.len(),
            workload.events.len() + 1,
            "{label}: every event priced + the other-work entry"
        );
        assert!(priced.spe_cycles() > 0, "{label}: SPE work must exist");
        // Each cumulative optimization reduces the sequential end-to-end
        // time. (SPE-busy cycles alone can *grow* at the last rung — Table 7
        // moves makenewz/evaluate compute onto the SPE — so the monotone
        // quantity is the total.)
        let total = priced.sequential_cycles();
        if let Some(prev) = previous_total {
            assert!(
                total <= prev,
                "{label}: each optimization must reduce total cycles ({total} > {prev})"
            );
        }
        previous_total = Some(total);
        // Totals decompose exactly.
        assert_eq!(total, priced.ppe_cycles() + priced.spe_cycles());
    }
}

/// The cost model's per-event pricing is deterministic and stable across
/// repeated pricing of the same trace.
#[test]
fn pricing_is_deterministic() {
    let workload = capture_workload(&WorkloadSpec::small()).expect("capture");
    let model = CostModel::paper_calibrated();
    let cfg = OptConfig::fully_optimized();
    let a = price_trace(&workload.events, &model, &cfg);
    let b = price_trace(&workload.events, &model, &cfg);
    assert_eq!(a.sequential_cycles(), b.sequential_cycles());
    assert_eq!(a.invocations, b.invocations);
}

/// Sanity: kernel events carry physically sensible quantities.
#[test]
fn trace_events_are_physically_sensible() {
    let workload = capture_workload(&WorkloadSpec::small()).expect("capture");
    let model = CostModel::paper_calibrated();
    for ev in &workload.events {
        assert!(ev.patterns > 0);
        assert!(ev.rates == 4);
        assert!(ev.exp_calls > 0);
        assert!(ev.flops() > 0);
        // One likelihood vector is at most patterns × rates × 4 × 8 bytes;
        // at most 3 operands stream through DMA.
        assert!(ev.dma_bytes() <= ev.patterns as u64 * ev.rates as u64 * 4 * 8 * 3);
        let cost = model.kernel_cost(ev, &ExecutionFlags::spe_optimized());
        assert!(cost.total() > 0);
        assert!(cost.parallelizable() + cost.serial() == cost.processor_busy());
    }
}

/// Full-system determinism: capturing the same workload twice produces the
/// identical trace (search, RNG, kernels, bookkeeping all reproducible).
#[test]
fn workload_capture_is_deterministic() {
    let a = capture_workload(&WorkloadSpec::small()).expect("capture");
    let b = capture_workload(&WorkloadSpec::small()).expect("capture");
    assert_eq!(a.events.len(), b.events.len());
    assert_eq!(a.log_likelihood, b.log_likelihood);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.events, b.events);
}

/// Searches started from different seeds explore different trees but both
/// land within the same likelihood neighbourhood on easy data.
#[test]
fn multiple_inferences_converge_on_easy_data() {
    let w = SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(8, 900, 123) }.generate();
    let a = infer(&w.alignment, &SearchConfig::fast(), 10);
    let b = infer(&w.alignment, &SearchConfig::fast(), 20);
    assert!(
        (a.log_likelihood - b.log_likelihood).abs() < 1.0,
        "{} vs {}",
        a.log_likelihood,
        b.log_likelihood
    );
    assert!(robinson_foulds(&a.tree, &b.tree) <= 2);
}

/// The substitution-model plumbing exposed at the workspace level stays
/// consistent: an HKY model is a constrained GTR.
#[test]
fn hky_is_a_special_case_of_gtr() {
    let w = SimulationConfig::new(6, 200, 8).generate();
    let freqs = w.alignment.base_frequencies();
    let kappa = 3.0;
    let hky = SubstModel::hky85(freqs, kappa).unwrap();
    let gtr = SubstModel::gtr(freqs, [1.0, kappa, 1.0, 1.0, kappa, 1.0]).unwrap();
    let rates = GammaRates::standard(0.9).unwrap();
    let mut e1 =
        LikelihoodEngine::new(&w.alignment, hky, rates.clone(), LikelihoodConfig::optimized());
    let mut e2 = LikelihoodEngine::new(&w.alignment, gtr, rates, LikelihoodConfig::optimized());
    let lnl1 = e1.log_likelihood(&w.true_tree);
    let lnl2 = e2.log_likelihood(&w.true_tree);
    assert!((lnl1 - lnl2).abs() < 1e-9, "{lnl1} vs {lnl2}");
}
