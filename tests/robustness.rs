//! Robustness: degenerate and extreme inputs the pipeline must survive.

use phylo::alignment::Alignment;
use phylo::bootstrap::BootstrapAnalysis;
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::LikelihoodConfig;
use phylo::model::{GammaRates, SubstModel};
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;
use phylo::tree::{Tree, MAX_BRANCH, MIN_BRANCH};
/// One inference via the unified entry point.
fn infer(
    aln: &phylo::alignment::PatternAlignment,
    cfg: &SearchConfig,
    seed: u64,
) -> phylo::search::SearchResult {
    run_inference(aln, &InferenceRequest::new(cfg.clone(), seed), InferenceOptions::new())
        .unwrap()
        .result
}

fn fast() -> SearchConfig {
    let mut cfg = SearchConfig::fast();
    cfg.max_spr_rounds = 2;
    cfg
}

/// All-identical sequences: zero phylogenetic signal. The search must not
/// panic, branch lengths collapse toward the minimum, and the likelihood is
/// that of a star-ish tree with no substitutions.
#[test]
fn identical_sequences_do_not_break_the_search() {
    let seq = "ACGTACGTACGTACGTACGT";
    let aln = Alignment::from_named_sequences(&[
        ("a", seq),
        ("b", seq),
        ("c", seq),
        ("d", seq),
        ("e", seq),
    ])
    .unwrap()
    .compress();
    let result = infer(&aln, &fast(), 1);
    assert!(result.log_likelihood.is_finite());
    assert_eq!(result.starting_parsimony, 0.0);
    // With no signal every branch should optimize to (near) zero.
    let total = result.tree.total_length();
    assert!(
        total < 15.0 * MIN_BRANCH * 10.0,
        "branches should collapse on constant data: total {total}"
    );
}

/// The minimum viable problem: three taxa (a single inner node, no
/// topology to search).
#[test]
fn three_taxa_is_the_degenerate_search() {
    let w = SimulationConfig::new(3, 200, 4).generate();
    let result = infer(&w.alignment, &fast(), 1);
    assert!(result.log_likelihood.is_finite());
    assert_eq!(result.moves_applied, 0, "no SPR exists on 3 taxa");
    assert_eq!(result.tree.edges().len(), 3);
    result.tree.validate().unwrap();
}

/// Four taxa: exactly one internal edge, three topologies. Simulated on an
/// explicit quartet with a solid internal branch (a random 4-taxon tree can
/// draw a near-zero internal branch, which makes the quartet genuinely
/// unresolvable).
#[test]
fn four_taxa_searches_all_topologies() {
    let mut quartet = Tree::initial_triplet(4, 0.1).unwrap();
    let pendant = phylo::tree::edge(0, quartet.neighbors_of(0).next().unwrap().0);
    let v = quartet.add_taxon_on_edge(3, pendant, 0.1).unwrap();
    // Make the internal branch decisive.
    let internal: Vec<_> = quartet.neighbors_of(v).filter(|&(n, _)| !quartet.is_tip(n)).collect();
    quartet.set_branch_length(v, internal[0].0, 0.15);
    let w =
        SimulationConfig { tree: Some(quartet), ..SimulationConfig::new(4, 2000, 9) }.generate();
    let result = infer(&w.alignment, &fast(), 1);
    assert_eq!(
        phylo::bipartitions::robinson_foulds(&result.tree, &w.true_tree),
        0,
        "4-taxon ML with 2000 sites must find the right quartet"
    );
}

/// A taxon that is entirely gaps carries no information but must flow
/// through every stage (gaps hit the ambiguity-code paths everywhere).
#[test]
fn all_gap_taxon_survives_the_pipeline() {
    let w = SimulationConfig::new(6, 150, 3).generate();
    let mut pairs: Vec<(String, String)> =
        (0..6).map(|i| (w.raw.taxon_names()[i].clone(), w.raw.sequence_string(i))).collect();
    pairs.push(("gappy".to_string(), "-".repeat(150)));
    let aln = Alignment::from_named_sequences(&pairs).unwrap().compress();
    let result = infer(&aln, &fast(), 1);
    assert!(result.log_likelihood.is_finite());
    result.tree.validate().unwrap();
    assert_eq!(result.tree.n_taxa(), 7);
}

/// Extreme Γ shapes at both engine bounds.
#[test]
fn alpha_extremes_stay_finite() {
    let w = SimulationConfig::new(6, 200, 11).generate();
    let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
    for alpha in [0.02, 0.5, 20.0] {
        let rates = GammaRates::standard(alpha).unwrap();
        let mut engine = LikelihoodEngine::new(
            &w.alignment,
            model.clone(),
            rates,
            LikelihoodConfig::optimized(),
        );
        let lnl = engine.log_likelihood(&w.true_tree);
        assert!(lnl.is_finite() && lnl < 0.0, "alpha {alpha}: {lnl}");
    }
}

/// Branch lengths clamped at both extremes still give valid likelihoods
/// (saturated branches approach the stationary distribution).
#[test]
fn branch_length_extremes() {
    let w = SimulationConfig::new(5, 150, 21).generate();
    let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
    let rates = GammaRates::standard(0.7).unwrap();

    for len in [MIN_BRANCH, MAX_BRANCH] {
        let mut tree = w.true_tree.clone();
        for (a, b) in tree.edges() {
            tree.set_branch_length(a, b, len);
        }
        let mut engine = LikelihoodEngine::new(
            &w.alignment,
            model.clone(),
            rates.clone(),
            LikelihoodConfig::optimized(),
        );
        let lnl = engine.log_likelihood(&tree);
        assert!(lnl.is_finite(), "len {len}: {lnl}");
    }
}

/// Deep trees (a caterpillar of 160 taxa) exercise the scaling machinery:
/// partials shrink exponentially with accumulated state conflicts and must
/// rescale rather than underflow to zero. (The threshold is 2⁻²⁵⁶ ≈ 9e-78,
/// so it takes on the order of a hundred conflicting merges to trip it —
/// which is exactly why the paper's 42-taxon workload never rescales and
/// its conditional is all misprediction cost, no body cost.)
#[test]
fn deep_caterpillar_tree_needs_and_survives_scaling() {
    let n = 160;
    let w = SimulationConfig {
        mean_branch: 0.3, // long branches: fast decay of partials
        ..SimulationConfig::new(n, 120, 13)
    }
    .generate();
    // Build a caterpillar: taxa strung along a path — the deepest possible
    // traversal for n taxa.
    let mut tree = Tree::initial_triplet(n, 0.3).unwrap();
    for tip in 3..n {
        // Always insert on the last tip's pendant edge: maximal depth.
        let junction = tree.neighbors_of(tip - 1).next().unwrap().0;
        tree.add_taxon_on_edge(tip, phylo::tree::edge(tip - 1, junction), 0.3).unwrap();
    }
    tree.validate().unwrap();

    let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
    // A mid-range α keeps even the slowest Γ category decaying at state
    // conflicts, so the all-categories-below-threshold condition can fire.
    let rates = GammaRates::standard(1.0).unwrap();
    let mut engine =
        LikelihoodEngine::new(&w.alignment, model, rates, LikelihoodConfig::optimized());
    let lnl = engine.log_likelihood(&tree);
    assert!(lnl.is_finite(), "deep tree must not underflow: {lnl}");
    // The point of the test: scaling actually fired.
    assert!(
        engine.trace().counters().scalings > 0,
        "a 160-taxon caterpillar with 0.3 branches must trigger §5.2.3 rescaling"
    );
}

/// Bootstrap analysis on a tiny, noisy alignment: supports may be low but
/// everything must hold together.
#[test]
fn tiny_noisy_bootstrap_analysis() {
    let w = SimulationConfig {
        mean_branch: 0.01, // nearly no signal
        ..SimulationConfig::new(5, 60, 17)
    }
    .generate();
    let analysis = BootstrapAnalysis {
        n_inferences: 2,
        n_bootstraps: 8,
        n_workers: 2,
        seed: 5,
        search: fast(),
    };
    let result = analysis.try_run(&w.alignment).unwrap();
    assert!(result.best_log_likelihood.is_finite());
    assert_eq!(result.bootstrap_trees.len(), 8);
    for &(_, s) in &result.best.support {
        assert!((0.0..=1.0).contains(&s));
    }
    // The consensus of noisy replicates is typically unresolved — it must
    // still render.
    let consensus = result.consensus(0.5);
    let names = w.alignment.taxon_names().to_vec();
    assert!(consensus.to_newick(&names).ends_with(';'));
}

/// Single-pattern alignments (one repeated column).
#[test]
fn single_pattern_alignment() {
    let aln = Alignment::from_named_sequences(&[
        ("a", "AAAA"),
        ("b", "CCCC"),
        ("c", "GGGG"),
        ("d", "TTTT"),
    ])
    .unwrap()
    .compress();
    assert_eq!(aln.n_patterns(), 1);
    let result = infer(&aln, &fast(), 1);
    assert!(result.log_likelihood.is_finite());
}

// ---------------------------------------------------------------------------
// Fault matrix: every fault kind × every scheduler, end to end.
// ---------------------------------------------------------------------------

mod fault_matrix {
    use cellsim::cost::CostModel;
    use cellsim::fault::FaultPlan;
    use raxml_cell::config::{OptConfig, Scheduler};
    use raxml_cell::experiment::{capture_workload, WorkloadSpec};
    use raxml_cell::offload::{price_trace, PricedTrace};
    use raxml_cell::sched::{schedule_makespan, schedule_makespan_with_faults, DesParams};

    const SCHEDULERS: [Scheduler; 4] = [
        Scheduler::Edtlp,
        Scheduler::Llp { workers: 2 },
        Scheduler::Llp { workers: 4 },
        Scheduler::Mgps,
    ];

    fn priced() -> PricedTrace {
        let workload = capture_workload(&WorkloadSpec::small()).expect("capture");
        price_trace(&workload.events, &CostModel::paper_calibrated(), &OptConfig::fully_optimized())
    }

    /// A plan injecting only one fault kind at the given rate.
    fn single_kind_plan(kind: usize, seed: u64, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan { seed, ..FaultPlan::none() };
        match kind {
            0 => plan.dma_failure_rate = rate,
            1 => plan.dma_timeout_rate = rate,
            2 => plan.signal_drop_rate = rate,
            3 => plan.signal_corrupt_rate = rate,
            4 => plan.stall_rate = rate,
            5 => plan = plan.with_death(0, 1_000_000),
            _ => unreachable!(),
        }
        plan
    }

    /// Every fault kind × every scheduler: no panics, finite makespans, and
    /// a makespan never *shorter* than the fault-free run.
    #[test]
    fn every_fault_kind_on_every_scheduler_completes() {
        let trace = priced();
        let params = DesParams::default();
        let model = CostModel::paper_calibrated();
        for &sched in &SCHEDULERS {
            let clean = schedule_makespan(sched, &trace, 8, &model, &params);
            for kind in 0..6 {
                let plan = single_kind_plan(kind, 17, 0.2);
                let out = schedule_makespan_with_faults(sched, &trace, 8, &model, &params, &plan);
                // Perturbing one worker's burst can reorder PPE grants and
                // occasionally *improve* global packing (a Graham-style
                // scheduling anomaly), so faults only guarantee "not much
                // faster", not strict monotonicity.
                assert!(
                    out.makespan as f64 >= clean as f64 * 0.95,
                    "{sched:?} kind {kind}: faults cut the makespan by >5%"
                );
                assert!(out.makespan > 0);
                if kind == 5 {
                    assert!(
                        out.faults.redispatches > 0 || out.faults.degradations > 0,
                        "{sched:?}: a dead SPE must force recovery work"
                    );
                }
            }
        }
    }

    /// Replaying the same plan is deterministic: two invocations agree on
    /// the makespan and the full fault report, for every scheduler.
    #[test]
    fn fault_replay_is_deterministic() {
        let trace = priced();
        let params = DesParams::default();
        let model = CostModel::paper_calibrated();
        for &sched in &SCHEDULERS {
            let plan = FaultPlan::uniform(23, 0.1);
            let a = schedule_makespan_with_faults(sched, &trace, 8, &model, &params, &plan);
            let b = schedule_makespan_with_faults(sched, &trace, 8, &model, &params, &plan);
            assert_eq!(a.makespan, b.makespan, "{sched:?}");
            assert_eq!(a.faults, b.faults, "{sched:?}");
            assert_eq!(a.stats.ppe_busy, b.stats.ppe_busy, "{sched:?}");
        }
    }

    /// The all-zero plan is the fault-free path, bit for bit: same makespan
    /// and statistics as the legacy (plan-less) entry points.
    #[test]
    fn inert_plan_is_bit_exact_for_every_scheduler() {
        let trace = priced();
        let params = DesParams::default();
        let model = CostModel::paper_calibrated();
        for &sched in &SCHEDULERS {
            let clean = schedule_makespan(sched, &trace, 8, &model, &params);
            let inert = schedule_makespan_with_faults(
                sched,
                &trace,
                8,
                &model,
                &params,
                &FaultPlan::none(),
            );
            assert_eq!(inert.makespan, clean, "{sched:?}");
            assert!(inert.faults.is_clean(), "{sched:?}: inert plan must report nothing");
        }
    }
}

/// Larger trees keep the engine honest: a 96-taxon inference completes and
/// improves on its starting tree.
#[test]
fn mid_scale_inference_is_sane() {
    let w = SimulationConfig::new(96, 300, 31).generate();
    let mut cfg = fast();
    cfg.spr_radius = 2;
    cfg.max_spr_rounds = 1;
    cfg.optimize_alpha = false;
    let result = infer(&w.alignment, &cfg, 1);
    assert!(result.log_likelihood.is_finite());
    result.tree.validate().unwrap();
    assert_eq!(result.tree.n_taxa(), 96);
}
