//! Cross-crate stress and integration tests for the inference farm:
//! accounting under hundreds of tiny jobs with injected failures, the
//! determinism contract across worker counts, and coherence between the
//! farm's own statistics and the `cellsim` trace-log bridge.

use cellsim::tracelog::{validate_jsonl, EventData, TraceLog};
use phylo::farm::{run_batch, run_farm, FarmConfig, FarmError, FarmFaultPlan};
use phylo::prelude::*;
use raxml_cell::FarmTracer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Install a silent panic hook for the duration of one closure so
/// intentionally panicking jobs don't spray backtraces over test output.
/// Serialized: the hook is process-global.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap();
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(default_hook);
    out
}

/// Hundreds of tiny jobs with injected worker panics: every job accounted
/// for exactly once, result order preserved, failures typed per slot.
#[test]
fn farm_stress_accounts_every_job_exactly_once() {
    const N: usize = 500;
    let executions = AtomicUsize::new(0);
    let panicky = [23usize, 99, 250, 251, 480];
    let outcome = with_quiet_panics(|| {
        run_batch((0..N).collect(), 8, |idx, j: usize| {
            executions.fetch_add(1, Ordering::SeqCst);
            if panicky.contains(&idx) {
                panic!("injected worker panic on job {idx}");
            }
            j.wrapping_mul(2654435761)
        })
    });

    // Every job ran exactly once and has exactly one result slot.
    assert_eq!(executions.load(Ordering::SeqCst), N);
    assert_eq!(outcome.results.len(), N);
    assert_eq!(outcome.stats.n_jobs, N);
    assert_eq!(outcome.stats.per_worker_jobs.iter().sum::<usize>(), N);

    // Order preserved: slot i holds job i's value or job i's typed error.
    for (i, r) in outcome.results.iter().enumerate() {
        if panicky.contains(&i) {
            match r {
                Err(FarmError::JobPanicked { job, message, .. }) => {
                    assert_eq!(*job, i);
                    assert!(message.contains(&format!("job {i}")), "payload lost: {message}");
                }
                other => panic!("job {i}: expected JobPanicked, got {other:?}"),
            }
        } else {
            assert_eq!(*r.as_ref().unwrap(), i.wrapping_mul(2654435761), "job {i}");
        }
    }
    assert_eq!(outcome.stats.n_failed, panicky.len());
}

/// The full gauntlet at once — backpressure, a dead worker, an injected
/// fault, a panic — with the in-order seal still firing once per job.
#[test]
fn farm_survives_combined_fault_injection() {
    const N: usize = 300;
    let config = FarmConfig::new(4)
        .bounded(6)
        .with_fault(FarmFaultPlan::none().fail_job(7).kill_worker_after(1, 2));
    let sealed = Mutex::new(Vec::new());
    let outcome = with_quiet_panics(|| {
        run_farm(
            &config,
            (0..N).collect::<Vec<_>>(),
            |_| (),
            |(), idx, j: usize| {
                if idx == 150 {
                    panic!("mid-batch panic");
                }
                j + 1
            },
            None,
            |i, _| sealed.lock().unwrap().push(i),
        )
    });
    assert_eq!(*sealed.lock().unwrap(), (0..N).collect::<Vec<_>>());
    assert!(outcome.stats.max_in_flight <= 6);
    assert_eq!(outcome.stats.n_failed, 2);
    let ok = outcome.results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, N - 2);
}

/// Determinism across worker counts on real likelihood work: the same
/// bootstrap batch under 1, 2 and 5 workers produces bit-identical lnLs
/// and identical trees, regardless of stealing and shard reuse.
#[test]
fn farm_bootstrap_batch_is_worker_count_invariant() {
    let aln = SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(6, 240, 9) }
        .generate()
        .alignment;
    let search = SearchConfig::fast();
    let run = |workers: usize| {
        let outcome = run_farm(
            &FarmConfig::new(workers),
            (0..6u64).collect::<Vec<_>>(),
            |_| LikelihoodWorkspace::new(),
            |ws: &mut LikelihoodWorkspace, _, seed| {
                let owned = std::mem::take(ws);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let replicate = aln.bootstrap_replicate(&mut rng);
                let outcome = phylo::search::run_inference(
                    &replicate,
                    &phylo::search::InferenceRequest::new(search.clone(), seed),
                    phylo::search::InferenceOptions::new().with_workspace(owned),
                )
                .unwrap();
                *ws = outcome.workspace;
                let result = outcome.result;
                (result.log_likelihood.to_bits(), result.tree.to_exact_string())
            },
            None,
            |_, _| {},
        );
        outcome.into_results().unwrap()
    };
    use rand::SeedableRng as _;
    let one = run(1);
    assert_eq!(one, run(2), "1 vs 2 workers");
    assert_eq!(one, run(5), "1 vs 5 workers");
}

/// The trace-log bridge and the farm's own statistics must tell the same
/// story: task starts/completes match job count, failures land in the
/// fault lane, counters match FarmStats, and the JSONL export validates.
#[test]
fn farm_trace_bridge_is_coherent_with_farm_stats() {
    let mut log = TraceLog::enabled();
    let mut tracer = FarmTracer::new(&mut log, 1e9);
    let config =
        FarmConfig::new(3).with_fault(FarmFaultPlan::none().fail_job(5).kill_worker_after(2, 0));
    let outcome = run_farm(
        &config,
        (0..60u32).collect::<Vec<_>>(),
        |_| (),
        |(), _, j| j,
        Some(&mut tracer),
        |_, _| {},
    );
    tracer.finish(&outcome.stats);

    let count =
        |pred: fn(&EventData) -> bool| log.events().iter().filter(|e| pred(&e.data)).count();
    assert_eq!(count(|d| matches!(d, EventData::TaskStart { .. })), 60);
    assert_eq!(count(|d| matches!(d, EventData::TaskComplete { .. })), 60);
    // Faults = 1 injected job failure + 1 worker death.
    assert_eq!(log.summary(0).faults, 2);
    assert_eq!(log.last_counter("farm_jobs"), Some(outcome.stats.n_jobs as f64));
    assert_eq!(log.last_counter("farm_failed"), Some(outcome.stats.n_failed as f64));
    assert_eq!(log.last_counter("farm_steals"), Some(outcome.stats.steals as f64));
    assert_eq!(log.last_counter("farm_workers_died"), Some(outcome.stats.workers_died as f64));

    let jsonl = log.to_metrics_jsonl(1e9, 0);
    validate_jsonl(&jsonl).unwrap();
    assert!(jsonl.contains("farm_jobs_per_sec"));
}
