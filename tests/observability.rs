//! Cross-layer observability guarantees.
//!
//! The trace log is not a parallel bookkeeping system that can drift from
//! the simulator — every span carries the exact cycles the DES charged, so
//! totals re-derived from the event stream must equal `SimStats` to the
//! cycle. These tests pin that contract at the raw DES level (property
//! test over random phase shapes) and at the scheduler level (every
//! scheduler's export parses as the format it claims to be).

use proptest::prelude::*;

proptest! {
    /// Fault-free runs tile time exactly: per SPE, busy + stalled + idle
    /// equals the makespan (no bucket over- or under-charges), and the
    /// totals the trace re-derives equal the DES's own accounting.
    #[test]
    fn fault_free_sim_conserves_time_and_trace_matches_stats(
        n_jobs in 1usize..16,
        n_workers in 1usize..9,
        spes_per_worker in 1usize..5,
        ppe in 1u64..5_000,
        spe in 1u64..50_000,
        dma in 0u64..10_000,
        phases in 1usize..12,
    ) {
        use cellsim::fault::FaultPlan;
        use cellsim::tracelog::TraceLog;
        use raxml_cell::sched::{simulate_task_parallel_jobs_traced, DesParams, Phase};

        let params = DesParams { n_ppe_threads: 2, smt_penalty: 1.0, n_spes: 8 };
        let n_workers = n_workers.min(params.n_spes);
        let spes_per_worker = spes_per_worker.clamp(1, params.n_spes / n_workers);
        let job: Vec<Phase> = (0..phases).map(|_| Phase { ppe, spe, dma }).collect();
        let jobs: Vec<&[Phase]> = (0..n_jobs).map(|_| job.as_slice()).collect();

        let mut tlog = TraceLog::enabled();
        let out = simulate_task_parallel_jobs_traced(
            &jobs,
            n_workers,
            spes_per_worker,
            &params,
            &FaultPlan::none(),
            &mut tlog,
        );

        // Time conservation: no SPE is charged beyond the makespan, and
        // busy + stalled + idle tiles makespan × n_spes exactly.
        let mut tiled: u64 = 0;
        for s in &out.stats.spes {
            prop_assert!(
                s.occupied() <= out.makespan,
                "SPE charged {} cycles over a {}-cycle makespan",
                s.occupied(),
                out.makespan
            );
            let idle = out.makespan - s.occupied();
            tiled += s.busy() + s.stalled() + idle;
        }
        prop_assert_eq!(
            tiled,
            out.makespan * params.n_spes as u64,
            "busy+stalled+idle must tile the makespan across the machine"
        );

        // The trace is self-consistent with the stats, cycle for cycle.
        let summary = tlog.summary(params.n_spes);
        prop_assert_eq!(summary.end, out.makespan, "trace end must be the makespan");
        prop_assert_eq!(summary.ppe_busy, out.stats.ppe_busy, "trace PPE busy");
        for (i, spe_stats) in out.stats.spes.iter().enumerate() {
            prop_assert_eq!(summary.spe_busy[i], spe_stats.busy(), "SPE {} busy", i);
            prop_assert_eq!(summary.spe_stalled[i], spe_stats.stalled(), "SPE {} stalled", i);
        }
    }
}

/// Every scheduler's trace of a real (small) workload round exports a
/// well-formed Chrome trace and JSONL metrics snapshot, and the trace end
/// matches the reported makespan.
#[test]
fn every_scheduler_emits_valid_exports_for_a_real_round() {
    use cellsim::cost::CostModel;
    use cellsim::fault::FaultPlan;
    use cellsim::tracelog::{validate_json, validate_jsonl, TraceLog};
    use raxml_cell::config::{OptConfig, Scheduler};
    use raxml_cell::experiment::{capture_workload, WorkloadSpec};
    use raxml_cell::offload::price_trace;
    use raxml_cell::sched::{schedule_makespan_traced, DesParams};

    let w = capture_workload(&WorkloadSpec::small()).expect("capture");
    assert!(!w.rounds.is_empty(), "the search must mark its SPR rounds");
    let model = CostModel::paper_calibrated();
    let params = DesParams::default();
    let events = w.round_events(&w.rounds[0]);
    assert!(!events.is_empty(), "round 0 must contain kernel invocations");
    let priced = price_trace(events, &model, &OptConfig::fully_optimized());

    for sched in [Scheduler::Edtlp, Scheduler::Llp { workers: 2 }, Scheduler::Mgps] {
        let mut tlog = TraceLog::enabled();
        let out = schedule_makespan_traced(
            sched,
            &priced,
            8,
            &model,
            &params,
            &FaultPlan::none(),
            &mut tlog,
        );
        assert!(out.makespan > 0, "{sched:?}: empty makespan");
        assert!(!tlog.is_empty(), "{sched:?}: no events emitted");

        let chrome = tlog.to_chrome_trace(model.clock_hz);
        validate_json(&chrome).unwrap_or_else(|e| panic!("{sched:?}: chrome trace invalid: {e}"));
        assert!(chrome.contains("\"traceEvents\""), "{sched:?}: missing traceEvents");

        let metrics = tlog.to_metrics_jsonl(model.clock_hz, params.n_spes);
        validate_jsonl(&metrics).unwrap_or_else(|e| panic!("{sched:?}: metrics invalid: {e}"));

        let summary = tlog.summary(params.n_spes);
        assert_eq!(summary.end, out.makespan, "{sched:?}: trace end vs makespan");
        assert_eq!(summary.ppe_busy, out.stats.ppe_busy, "{sched:?}: trace PPE busy");
    }
}
