//! Integration tests for the wall-clock metrics layer: histogram
//! invariants under randomized inputs, coherence between the registry's
//! farm counters and the farm's own `FarmStats`, and the bit-identity of
//! likelihood results with metrics on vs off.

use std::sync::Mutex;

use obs::hist::{bucket_bounds, bucket_index, N_BUCKETS};
use obs::HistogramSnapshot;
use phylo::farm::{run_farm, FarmConfig, FarmFaultPlan};
use phylo::prelude::*;
use proptest::prelude::*;

/// One inference via the unified entry point.
fn infer(aln: &PatternAlignment, cfg: &SearchConfig, seed: u64) -> SearchResult {
    run_inference(aln, &InferenceRequest::new(cfg.clone(), seed), InferenceOptions::new())
        .unwrap()
        .result
}

proptest! {
    /// Every recorded value lies inside its bucket's reported bounds, and
    /// the bucket index is within range.
    #[test]
    fn recorded_values_lie_in_their_bucket_bounds(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {i} = [{lo}, {hi}]");
    }

    /// Bucket bounds tile the u64 axis without gaps: bucket i+1 starts
    /// exactly one past bucket i's end.
    #[test]
    fn bucket_bounds_are_contiguous(i in 0usize..N_BUCKETS - 1) {
        let (_, hi) = bucket_bounds(i);
        let (lo_next, _) = bucket_bounds(i + 1);
        prop_assert_eq!(lo_next, hi + 1);
    }

    /// Quantiles are monotone (p50 <= p90 <= p99 <= max) and every
    /// quantile of a nonempty histogram is a value <= the recorded max.
    #[test]
    fn quantiles_are_monotone_and_bounded(values in collection::vec(0u64..u64::MAX, 1..200)) {
        let cell = obs::HistogramCell::default();
        for &v in &values {
            cell.record(v);
        }
        let snap = cell.snapshot();
        let p50 = snap.quantile(0.5);
        let p90 = snap.quantile(0.9);
        let p99 = snap.quantile(0.99);
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= snap.max);
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        prop_assert_eq!(snap.count, values.len() as u64);
    }

    /// Merging per-worker histograms equals recording everything into one:
    /// sharded measurement loses nothing.
    #[test]
    fn merged_shards_equal_single_histogram(
        shards in collection::vec(collection::vec(0u64..u64::MAX, 0..60), 1..5)
    ) {
        let single = obs::HistogramCell::default();
        let mut merged = HistogramSnapshot::default();
        for shard in &shards {
            let cell = obs::HistogramCell::default();
            for &v in shard {
                cell.record(v);
                single.record(v);
            }
            merged.merge(&cell.snapshot());
        }
        let reference = single.snapshot();
        prop_assert_eq!(merged.count, reference.count);
        prop_assert_eq!(merged.max, reference.max);
        prop_assert_eq!(merged.buckets, reference.buckets);
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), reference.quantile(q));
        }
    }
}

/// Tests below share the process-global registry; serialize them so one
/// test's reset cannot race another's readings.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// The registry's farm counters must agree exactly with the farm's own
/// `FarmStats`, including under injected job failures and worker deaths —
/// both tick at the same code sites, and this pins that.
#[test]
fn farm_counters_cohere_with_farm_stats_under_faults() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let registry = obs::global();
    registry.set_enabled(true);
    registry.reset();

    const N: usize = 120;
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let config = FarmConfig::new(3)
        .bounded(4)
        .with_fault(FarmFaultPlan::none().fail_job(7).kill_worker_after(2, 0));
    let outcome = run_farm(
        &config,
        (0..N as u64).collect::<Vec<_>>(),
        |_| (),
        |(), _, j| {
            if j == 33 {
                panic!("job thirty-three exploded");
            }
            j * 2
        },
        None,
        |_, _| {},
    );
    std::panic::set_hook(default_hook);

    let stats = &outcome.stats;
    let counter = |name: &str| registry.counter(name).get();
    assert_eq!(counter("farm_jobs_total"), stats.n_jobs as u64);
    assert_eq!(counter("farm_jobs_failed_total"), stats.n_failed as u64);
    assert_eq!(counter("farm_steals_total"), stats.steals);
    assert_eq!(counter("farm_workers_died_total"), stats.workers_died as u64);
    assert_eq!(stats.n_failed, 2, "the injected fault and the panic");
    assert_eq!(stats.workers_died, 1);

    // Per-worker run-time histograms account for every job that actually
    // ran on a worker (write-offs from the killed worker never ran).
    let merged = registry.merged_histogram("farm_job_run_ns_w");
    let written_off = outcome
        .results
        .iter()
        .filter(|r| matches!(r, Err(phylo::farm::FarmError::WorkerLost { .. })))
        .count();
    assert_eq!(merged.count, (stats.n_jobs - written_off) as u64);

    registry.set_enabled(false);
    registry.reset();
}

/// Recording metrics must not perturb the search arithmetic: the same
/// inference with the registry enabled and disabled produces bit-identical
/// log-likelihoods and trees.
#[test]
fn likelihood_bits_are_identical_with_metrics_on_and_off() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let registry = obs::global();
    registry.set_enabled(false);

    let w = SimulationConfig::new(7, 240, 11).generate();
    let cfg = SearchConfig::fast();
    let off = infer(&w.alignment, &cfg, 4);

    registry.set_enabled(true);
    registry.reset();
    let on = infer(&w.alignment, &cfg, 4);
    // The instrumented run must actually have recorded something, or this
    // test proves nothing.
    assert!(
        registry.histogram("evaluate_dispatch_ns").snapshot().count > 0
            || registry.histogram("newton_dispatch_ns").snapshot().count > 0,
        "enabled registry recorded no dispatch samples"
    );
    registry.set_enabled(false);
    registry.reset();

    assert_eq!(
        off.log_likelihood.to_bits(),
        on.log_likelihood.to_bits(),
        "metrics recording changed the log-likelihood bits"
    );
    assert_eq!(off.tree.to_exact_string(), on.tree.to_exact_string());
}

/// The Prometheus and JSONL exports of a freshly exercised registry are
/// well-formed per the repo's own validators.
#[test]
fn registry_exports_validate() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let registry = obs::global();
    registry.set_enabled(true);
    registry.reset();
    registry.counter("export_jobs_total").add(3);
    registry.gauge("export_utilization").set(0.75);
    let h = registry.histogram("export_run_ns");
    for v in [100, 10_000, 1_000_000] {
        h.record(v);
    }

    let prom = registry.to_prometheus_text();
    obs::validate_prometheus_text(&prom).expect("prometheus export must validate");
    assert!(prom.contains("# TYPE export_jobs_total counter"));
    assert!(prom.contains("export_run_ns_bucket"));

    let jsonl = registry.to_jsonl();
    cellsim::tracelog::validate_jsonl(&jsonl).expect("jsonl export must validate");

    registry.set_enabled(false);
    registry.reset();
}
