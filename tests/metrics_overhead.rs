//! Zero-overhead guarantees for the wall-clock metrics registry.
//!
//! The `obs` registry is threaded through the inference farm, the parallel
//! dispatchers and the checkpoint writers; production runs leave it
//! disabled. The contract mirrors the trace log's (`trace_overhead.rs`):
//!
//! * a **disabled** registry's record/add/set calls cost one atomic load
//!   and a branch — zero heap operations;
//! * an **enabled** registry's steady-state recording (handles already
//!   created) only touches pre-allocated atomics — also zero heap
//!   operations; allocation happens once, at handle registration.
//!
//! One test in this file on purpose: the `#[global_allocator]` counts
//! every allocation in the process, and a concurrent test would perturb
//! the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn heap_counters() -> (u64, u64, u64) {
    (
        ALLOCATIONS.load(Ordering::SeqCst),
        DEALLOCATIONS.load(Ordering::SeqCst),
        REALLOCATIONS.load(Ordering::SeqCst),
    )
}

/// Run `pass` up to five times, returning the heap-counter deltas of the
/// first clean run (or the last run's deltas if none were clean).
///
/// The counters are process-global, so a libtest harness thread that
/// allocates concurrently with the measured loop shows up as a spurious
/// delta (observed intermittently in release builds). Retrying
/// distinguishes that one-off noise from a real per-call allocation: a
/// genuine leak in the record path allocates on every attempt and still
/// fails.
fn measure_clean_pass(mut pass: impl FnMut()) -> (u64, u64, u64) {
    let mut deltas = (u64::MAX, u64::MAX, u64::MAX);
    for _attempt in 0..5 {
        let before = heap_counters();
        pass();
        let after = heap_counters();
        deltas = (after.0 - before.0, after.1 - before.1, after.2 - before.2);
        if deltas == (0, 0, 0) {
            break;
        }
    }
    deltas
}

#[test]
fn metrics_recording_does_not_touch_the_heap() {
    // Handle registration is the only allocating step; do it up front.
    let registry = obs::Registry::new(true);
    let counter = registry.counter("jobs_total");
    let gauge = registry.gauge("utilization");
    let hist = registry.histogram("run_ns");

    // Enabled steady state: handles only touch pre-allocated atomics.
    let mut passes = 0u64;
    let deltas = measure_clean_pass(|| {
        passes += 1;
        for i in 0..100_000u64 {
            counter.add(i & 7);
            counter.inc();
            gauge.set(i as f64 * 0.5);
            // Sweep values across octaves so every bucket-index path runs.
            hist.record(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            hist.record(i);
        }
    });
    assert_eq!(
        deltas,
        (0, 0, 0),
        "enabled steady-state recording must not allocate: +{} allocs, +{} deallocs, \
         +{} reallocs over 500,000 calls on every attempt",
        deltas.0,
        deltas.1,
        deltas.2,
    );
    let per_pass = 100_000 + (0..100_000u64).map(|i| i & 7).sum::<u64>();
    assert_eq!(counter.get(), passes * per_pass);
    assert_eq!(hist.snapshot().count, passes * 200_000);

    // Disabled: same handles, one branch per call, nothing recorded.
    registry.set_enabled(false);
    registry.reset();
    let deltas = measure_clean_pass(|| {
        for i in 0..100_000u64 {
            counter.add(3);
            gauge.set(i as f64);
            hist.record(i);
        }
    });
    assert_eq!(deltas, (0, 0, 0), "disabled registry must not allocate");
    assert_eq!(counter.get(), 0, "disabled counter must record nothing");
    assert_eq!(hist.snapshot().count, 0, "disabled histogram must record nothing");
    black_box(&registry);

    // Sanity: the counting allocator is actually live.
    let probe_before = heap_counters();
    black_box(vec![0u8; 1024]);
    let probe_after = heap_counters();
    assert!(probe_after.0 > probe_before.0, "counting allocator must observe allocations");
}
