//! Equivalence tests for the unified inference API: every deprecated
//! `infer_ml_tree_*` shim must be lnL-bit-identical to the `run_inference`
//! call it delegates to, and the deprecated panicking `BootstrapAnalysis::run`
//! must agree with `try_run`. These pin the migration path: callers can
//! switch entry points without a single bit of numerical drift.

#![allow(deprecated)]

use phylo::bootstrap::BootstrapAnalysis;
use phylo::checkpoint::SearchCheckpointer;
use phylo::likelihood::LikelihoodWorkspace;
use phylo::prelude::*;

fn workload(seed: u64) -> PatternAlignment {
    SimulationConfig::new(7, 240, seed).generate().alignment
}

fn unified(aln: &PatternAlignment, cfg: &SearchConfig, seed: u64) -> SearchResult {
    run_inference(aln, &InferenceRequest::new(cfg.clone(), seed), InferenceOptions::new())
        .unwrap()
        .result
}

fn assert_same(label: &str, shim: &SearchResult, unified: &SearchResult) {
    assert_eq!(
        shim.log_likelihood.to_bits(),
        unified.log_likelihood.to_bits(),
        "{label}: lnL bits diverge from run_inference"
    );
    assert_eq!(
        shim.tree.to_exact_string(),
        unified.tree.to_exact_string(),
        "{label}: tree diverges from run_inference"
    );
    assert_eq!(shim.alpha.to_bits(), unified.alpha.to_bits(), "{label}: alpha bits diverge");
    assert_eq!(shim.rounds, unified.rounds, "{label}: round count diverges");
}

#[test]
fn infer_ml_tree_matches_run_inference() {
    let aln = workload(11);
    let cfg = SearchConfig::fast();
    assert_same("infer_ml_tree", &infer_ml_tree(&aln, &cfg, 3), &unified(&aln, &cfg, 3));
}

#[test]
fn infer_ml_tree_traced_matches_run_inference() {
    let aln = workload(12);
    let cfg = SearchConfig::fast();
    let shim = infer_ml_tree_traced(&aln, &cfg, 4, true);
    let via_options = run_inference(
        &aln,
        &InferenceRequest::new(cfg.clone(), 4),
        InferenceOptions::new().traced(),
    )
    .unwrap()
    .result;
    assert_same("infer_ml_tree_traced", &shim, &via_options);
    assert!(!via_options.trace.events().is_empty(), "traced run must record events");
    // Tracing itself must not perturb the arithmetic.
    assert_same("traced vs untraced", &shim, &unified(&aln, &cfg, 4));
}

#[test]
fn infer_ml_tree_pooled_matches_run_inference() {
    let aln = workload(13);
    let cfg = SearchConfig::fast();
    let (shim, ws) = infer_ml_tree_pooled(&aln, &cfg, 5, false, LikelihoodWorkspace::default());
    let outcome = run_inference(
        &aln,
        &InferenceRequest::new(cfg.clone(), 5),
        InferenceOptions::new().with_workspace(ws),
    )
    .unwrap();
    assert_same("infer_ml_tree_pooled", &shim, &outcome.result);
}

#[test]
fn infer_ml_tree_checked_matches_run_inference() {
    let aln = workload(14);
    let cfg = SearchConfig::fast();
    let shim = infer_ml_tree_checked(&aln, &cfg, 6).unwrap();
    assert_same("infer_ml_tree_checked", &shim, &unified(&aln, &cfg, 6));
}

#[test]
fn infer_ml_tree_checkpointed_matches_run_inference() {
    let dir = std::env::temp_dir().join("raxml-cell-unified-api-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let shim_path = dir.join("shim.ckpt");
    let new_path = dir.join("unified.ckpt");
    let _ = std::fs::remove_file(&shim_path);
    let _ = std::fs::remove_file(&new_path);

    let aln = workload(15);
    let cfg = SearchConfig::fast();
    let request = InferenceRequest::new(cfg.clone(), 7);
    let fp = request.fingerprint(&aln);

    let mut shim_ckpt = SearchCheckpointer::new(&shim_path, fp);
    let shim = infer_ml_tree_checkpointed(&aln, &cfg, 7, &mut shim_ckpt).unwrap();

    let mut new_ckpt = SearchCheckpointer::new(&new_path, fp);
    let via_options =
        run_inference(&aln, &request, InferenceOptions::new().with_checkpoint(&mut new_ckpt))
            .unwrap()
            .result;
    assert_same("infer_ml_tree_checkpointed", &shim, &via_options);
    // And checkpointing must not perturb the un-checkpointed result.
    assert_same("checkpointed vs plain", &shim, &unified(&aln, &cfg, 7));
}

#[test]
fn bootstrap_run_matches_try_run() {
    let aln = workload(16);
    let analysis = BootstrapAnalysis {
        n_inferences: 1,
        n_bootstraps: 4,
        n_workers: 2,
        seed: 9,
        search: SearchConfig::fast(),
    };
    let panicking = analysis.run(&aln);
    let fallible = analysis.try_run(&aln).unwrap();
    assert_eq!(
        panicking.best_log_likelihood.to_bits(),
        fallible.best_log_likelihood.to_bits(),
        "run and try_run diverge on the best tree's lnL"
    );
    assert_eq!(panicking.best.tree.to_exact_string(), fallible.best.tree.to_exact_string());
    assert_eq!(panicking.bootstrap_trees.len(), fallible.bootstrap_trees.len());
    for (a, b) in panicking.bootstrap_trees.iter().zip(&fallible.bootstrap_trees) {
        assert_eq!(a.to_exact_string(), b.to_exact_string());
    }
}
