//! Per-SPE state: local store, run state, and the decrementer.
//!
//! The paper measures SPE-side time with the decrementer register
//! (§5.2.1: "We used the SPE decrementer register to measure the time spent
//! in the SPE thread by newview()"). The decrementer is a 32-bit counter
//! that counts *down* at the timebase rate and wraps; measuring an interval
//! means writing a start value, running, reading, and subtracting — exactly
//! what [`Decrementer::elapsed`] models, wrap-around included.

use crate::comm::Channel;
use crate::localstore::LocalStore;
use crate::time::Cycles;

/// The SPE decrementer: a 32-bit down-counter driven by the timebase.
///
/// On real hardware the decrementer ticks at the timebase frequency
/// (14.318 MHz on the paper's blades), not the core clock; `ticks_per_cycle`
/// captures that ratio.
#[derive(Debug, Clone, Copy)]
pub struct Decrementer {
    /// Value written at start.
    start_value: u32,
    /// Simulation time of the write.
    written_at: Cycles,
    /// Decrementer ticks per core cycle (< 1).
    ticks_per_cycle: f64,
}

impl Decrementer {
    /// Timebase/clock ratio of the paper's blade: 14.318 MHz / 3.2 GHz.
    pub const CELL_TICKS_PER_CYCLE: f64 = 14.318e6 / 3.2e9;

    /// Write the decrementer at simulation time `now`.
    pub fn write(value: u32, now: Cycles) -> Decrementer {
        Decrementer {
            start_value: value,
            written_at: now,
            ticks_per_cycle: Self::CELL_TICKS_PER_CYCLE,
        }
    }

    /// A decrementer with an explicit tick ratio (for tests).
    pub fn with_ratio(value: u32, now: Cycles, ticks_per_cycle: f64) -> Decrementer {
        Decrementer { start_value: value, written_at: now, ticks_per_cycle }
    }

    /// Current register value at simulation time `now` (wrapping).
    pub fn read(&self, now: Cycles) -> u32 {
        let ticks = ((now - self.written_at) as f64 * self.ticks_per_cycle) as u64;
        self.start_value.wrapping_sub((ticks % (1u64 << 32)) as u32)
    }

    /// Elapsed ticks between the write and `now`, reconstructed the way
    /// measurement code does: `start − read`, wrap-safe for intervals
    /// shorter than one full wrap.
    pub fn elapsed(&self, now: Cycles) -> u32 {
        self.start_value.wrapping_sub(self.read(now))
    }

    /// Convert elapsed ticks back to core cycles.
    pub fn ticks_to_cycles(&self, ticks: u32) -> Cycles {
        (ticks as f64 / self.ticks_per_cycle) as Cycles
    }
}

/// Attempt to use an SPE that has died permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeDead {
    /// Index of the dead SPE.
    pub id: usize,
}

impl std::fmt::Display for SpeDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SPE{} is dead", self.id)
    }
}

impl std::error::Error for SpeDead {}

/// One Synergistic Processing Element.
#[derive(Debug, Clone)]
pub struct Spe {
    /// Index on the chip (0–7).
    pub id: usize,
    /// The 256 KB software-managed local store.
    pub local_store: LocalStore,
    /// PPE↔SPE signalling channel state.
    pub channel: Channel,
    /// Busy horizon: the SPE is executing until this simulation time.
    busy_until: Cycles,
    /// Total busy cycles accumulated.
    busy_total: Cycles,
    /// Cycles lost to transient stalls (not useful work).
    stalled_total: Cycles,
    /// Tasks executed.
    tasks: u64,
    /// False once the SPE has died permanently.
    alive: bool,
}

impl Spe {
    /// A fresh SPE with an empty Cell-sized local store.
    pub fn new(id: usize) -> Spe {
        Spe {
            id,
            local_store: LocalStore::cell(),
            channel: Channel::default(),
            busy_until: 0,
            busy_total: 0,
            stalled_total: 0,
            tasks: 0,
            alive: true,
        }
    }

    /// Is the SPE executing at time `now`?
    pub fn is_busy(&self, now: Cycles) -> bool {
        now < self.busy_until
    }

    /// Is the SPE still in service?
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Kill the SPE permanently: it accepts no further tasks.
    pub fn kill(&mut self) {
        self.alive = false;
    }

    /// Start a task of the given duration at time `now` (which must not be
    /// before the current busy horizon). Returns the completion time.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_run_task`, which reports a dead SPE as `SpeDead`"
    )]
    pub fn run_task(&mut self, now: Cycles, duration: Cycles) -> Cycles {
        self.try_run_task(now, duration).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`Spe::run_task`], but a dead SPE returns [`SpeDead`] instead of
    /// accepting work. Overlapping tasks still panic: that is a scheduler
    /// bug, not a runtime condition.
    pub fn try_run_task(&mut self, now: Cycles, duration: Cycles) -> Result<Cycles, SpeDead> {
        if !self.alive {
            return Err(SpeDead { id: self.id });
        }
        assert!(
            now >= self.busy_until,
            "SPE{} is busy until {} (asked to start at {now})",
            self.id,
            self.busy_until
        );
        self.busy_until = now + duration;
        self.busy_total += duration;
        self.tasks += 1;
        Ok(self.busy_until)
    }

    /// A transient stall at time `now`: pushes the busy horizon out by
    /// `cycles` without counting the time as useful work. Returns the new
    /// horizon.
    pub fn stall(&mut self, now: Cycles, cycles: Cycles) -> Cycles {
        self.busy_until = self.busy_until.max(now) + cycles;
        self.stalled_total += cycles;
        self.busy_until
    }

    /// Cycles lost to transient stalls.
    pub fn stalled_total(&self) -> Cycles {
        self.stalled_total
    }

    /// Completion time of the current task (or the last one).
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Accumulated busy cycles.
    pub fn busy_total(&self) -> Cycles {
        self.busy_total
    }

    /// Number of tasks executed.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Cycles) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy_total as f64 / horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decrementer_counts_down() {
        let d = Decrementer::with_ratio(1000, 0, 0.5);
        assert_eq!(d.read(0), 1000);
        assert_eq!(d.read(100), 950); // 100 cycles × 0.5 ticks/cycle
        assert_eq!(d.elapsed(100), 50);
        assert_eq!(d.ticks_to_cycles(50), 100);
    }

    #[test]
    fn decrementer_wraps_like_hardware() {
        // Start near zero: the register wraps below zero but the interval
        // reconstruction still works.
        let d = Decrementer::with_ratio(10, 0, 1.0);
        assert_eq!(d.read(5), 5);
        assert_eq!(d.read(15), u32::MAX - 4); // wrapped
        assert_eq!(d.elapsed(15), 15, "interval survives the wrap");
    }

    #[test]
    fn decrementer_interval_aliases_modulo_one_full_wrap() {
        // The 32-bit interval path: elapsed() reconstructs `start − read`,
        // which is exact for intervals < 2³² ticks and aliases modulo 2³²
        // beyond that — exactly how the hardware register behaves.
        let d = Decrementer::with_ratio(100, 0, 1.0);
        let wrap = 1u64 << 32;

        // One tick short of a full wrap: still measurable.
        assert_eq!(d.elapsed(wrap - 1), u32::MAX);
        // Exactly one full wrap: the register is back at its start value and
        // the measured interval collapses to zero.
        assert_eq!(d.read(wrap), 100);
        assert_eq!(d.elapsed(wrap), 0);
        // Past one wrap: only the remainder is visible.
        assert_eq!(d.read(wrap + 7), 93);
        assert_eq!(d.elapsed(wrap + 7), 7);
        // Several wraps behave the same: 3·2³² + 12345 → 12345.
        assert_eq!(d.elapsed(3 * wrap + 12_345), 12_345);
    }

    #[test]
    fn decrementer_wrap_interval_with_fractional_tick_ratio() {
        // At the real timebase ratio a wrap takes 2³² / ratio core cycles;
        // the tick count must still reduce modulo 2³².
        let ratio = Decrementer::CELL_TICKS_PER_CYCLE;
        let d = Decrementer::write(5, 0);
        let cycles_per_wrap = ((1u64 << 32) as f64 / ratio) as Cycles;
        let ticks_past = 1_000u64;
        let now = cycles_per_wrap + (ticks_past as f64 / ratio) as Cycles;
        let elapsed = d.elapsed(now) as u64;
        // Float rounding in the tick conversion allows a few ticks of slop,
        // but the measured interval must be the post-wrap remainder, not the
        // ~4.3-billion-tick true interval.
        assert!(
            elapsed.abs_diff(ticks_past) < 5,
            "expected ≈{ticks_past} ticks after one wrap, got {elapsed}"
        );
    }

    #[test]
    fn cell_ratio_measures_microseconds() {
        // 3200 cycles = 1 µs at 3.2 GHz ≈ 14.3 decrementer ticks.
        let d = Decrementer::write(u32::MAX, 0);
        let ticks = d.elapsed(3200);
        assert!((14..=15).contains(&ticks), "ticks = {ticks}");
        // Round-trip back to cycles is within one tick's resolution.
        let cycles = d.ticks_to_cycles(ticks);
        assert!((cycles as i64 - 3200).unsigned_abs() < 250, "cycles = {cycles}");
    }

    #[test]
    fn spe_task_accounting() {
        let mut spe = Spe::new(3);
        assert!(!spe.is_busy(0));
        let done = spe.try_run_task(100, 50).unwrap();
        assert_eq!(done, 150);
        assert!(spe.is_busy(120));
        assert!(!spe.is_busy(150));
        spe.try_run_task(200, 25).unwrap();
        assert_eq!(spe.busy_total(), 75);
        assert_eq!(spe.tasks(), 2);
        assert!((spe.utilization(300) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "is busy until")]
    fn spe_rejects_overlapping_tasks() {
        let mut spe = Spe::new(0);
        spe.try_run_task(0, 100).unwrap();
        let _ = spe.try_run_task(50, 10);
    }

    #[test]
    fn dead_spe_refuses_work() {
        let mut spe = Spe::new(2);
        assert!(spe.is_alive());
        assert_eq!(spe.try_run_task(0, 10), Ok(10));
        spe.kill();
        assert!(!spe.is_alive());
        assert_eq!(spe.try_run_task(20, 10), Err(SpeDead { id: 2 }));
        assert_eq!(spe.tasks(), 1, "the rejected task must not be counted");
    }

    /// The deprecated panicking wrapper must keep its contract while it
    /// survives as a shim.
    #[test]
    #[should_panic(expected = "SPE4 is dead")]
    fn run_task_panics_on_dead_spe() {
        let mut spe = Spe::new(4);
        spe.kill();
        #[allow(deprecated)]
        spe.run_task(0, 10);
    }

    #[test]
    fn stalls_extend_the_horizon_without_counting_as_work() {
        let mut spe = Spe::new(1);
        spe.try_run_task(0, 100).unwrap();
        assert_eq!(spe.stall(50, 30), 130, "stall extends the current task");
        assert_eq!(spe.stall(500, 20), 520, "idle stall starts from now");
        assert_eq!(spe.busy_total(), 100);
        assert_eq!(spe.stalled_total(), 50);
        assert!(spe.is_busy(510));
    }

    #[test]
    fn spe_local_store_is_full_size() {
        let spe = Spe::new(1);
        assert_eq!(spe.local_store.capacity(), 256 * 1024);
        assert_eq!(spe.local_store.used(), 0);
    }
}
