//! Simulation statistics: per-processor busy/idle accounting and
//! utilization reports (the simulator's analogue of the paper's SPE
//! decrementer measurements, §5.2.1).

use crate::cost::KernelCost;
use crate::time::Cycles;

/// Cycle accounting for one processor (an SPE or a PPE thread).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessorStats {
    /// Cycles spent in likelihood-loop compute.
    pub loop_cycles: Cycles,
    /// Cycles in scaling conditionals.
    pub cond_cycles: Cycles,
    /// Cycles in exponentials.
    pub exp_cycles: Cycles,
    /// Cycles stalled on DMA.
    pub dma_stall: Cycles,
    /// Cycles in signalling.
    pub comm: Cycles,
    /// Kernel invocations executed.
    pub invocations: u64,
}

impl ProcessorStats {
    /// Cycles doing useful work (compute + signalling). DMA-stall cycles are
    /// *not* busy — the SPE is waiting on the MFC, not working — and are
    /// reported separately by [`ProcessorStats::stalled`].
    pub fn busy(&self) -> Cycles {
        self.loop_cycles + self.cond_cycles + self.exp_cycles + self.comm
    }

    /// Cycles stalled waiting on DMA completion.
    pub fn stalled(&self) -> Cycles {
        self.dma_stall
    }

    /// Cycles the processor was occupied at all (busy or stalled); the
    /// complement of idle time over the makespan.
    pub fn occupied(&self) -> Cycles {
        self.busy() + self.stalled()
    }

    /// Add one priced invocation (the processor-side components).
    pub fn add(&mut self, cost: &KernelCost) {
        self.loop_cycles += cost.loop_cycles;
        self.cond_cycles += cost.cond_cycles;
        self.exp_cycles += cost.exp_cycles;
        self.dma_stall += cost.dma_stall;
        self.comm += cost.comm;
        self.invocations += 1;
    }
}

/// Whole-simulation statistics.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Per-SPE accounting.
    pub spes: Vec<ProcessorStats>,
    /// PPE busy cycles (kernel execution on the PPE plus offload
    /// marshalling), across all PPE threads.
    pub ppe_busy: Cycles,
    /// End-to-end simulated cycles.
    pub makespan: Cycles,
}

impl SimStats {
    /// Stats for a machine with `n_spes` SPEs.
    pub fn new(n_spes: usize) -> SimStats {
        SimStats { spes: vec![ProcessorStats::default(); n_spes], ppe_busy: 0, makespan: 0 }
    }

    /// Mean SPE utilization over the makespan (0–1): *useful* work only.
    /// DMA-stall time is excluded — see [`SimStats::spe_occupancy`] for the
    /// busy-or-stalled fraction.
    pub fn spe_utilization(&self) -> f64 {
        if self.makespan == 0 || self.spes.is_empty() {
            return 0.0;
        }
        let busy: Cycles = self.spes.iter().map(|s| s.busy()).sum();
        busy as f64 / (self.makespan as f64 * self.spes.len() as f64)
    }

    /// Mean fraction of the makespan the SPEs were busy *or* stalled on DMA
    /// (0–1). This is what the old buggy `spe_utilization` reported.
    pub fn spe_occupancy(&self) -> f64 {
        if self.makespan == 0 || self.spes.is_empty() {
            return 0.0;
        }
        let occupied: Cycles = self.spes.iter().map(|s| s.occupied()).sum();
        occupied as f64 / (self.makespan as f64 * self.spes.len() as f64)
    }

    /// Mean fraction of the makespan the SPEs spent stalled on DMA (0–1).
    pub fn spe_stall_fraction(&self) -> f64 {
        if self.makespan == 0 || self.spes.is_empty() {
            return 0.0;
        }
        let stalled: Cycles = self.spes.iter().map(|s| s.stalled()).sum();
        stalled as f64 / (self.makespan as f64 * self.spes.len() as f64)
    }

    /// Utilization of the busiest SPE (useful work only).
    pub fn max_spe_utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.spes.iter().map(|s| s.busy() as f64 / self.makespan as f64).fold(0.0, f64::max)
    }

    /// Total kernel invocations across all SPEs.
    pub fn total_invocations(&self) -> u64 {
        self.spes.iter().map(|s| s.invocations).sum()
    }

    /// A compact human-readable utilization report.
    pub fn report(&self, clock_hz: f64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "makespan: {:.3} s | mean SPE utilization {:.1}% (+{:.1}% DMA-stalled)",
            self.makespan as f64 / clock_hz,
            self.spe_utilization() * 100.0,
            self.spe_stall_fraction() * 100.0,
        );
        for (i, s) in self.spes.iter().enumerate() {
            if s.invocations == 0 {
                continue;
            }
            let _ = write!(
                out,
                "  SPE{i}: {:>10} tasks, busy {:.3} s ({:.1}%) + stalled {:.3} s ({:.1}%)",
                s.invocations,
                s.busy() as f64 / clock_hz,
                100.0 * s.busy() as f64 / self.makespan.max(1) as f64,
                s.stalled() as f64 / clock_hz,
                100.0 * s.stalled() as f64 / self.makespan.max(1) as f64,
            );
            // Component split is only known when the caller recorded it
            // (the phase-level DES tracks busy and DMA-stall time only).
            if s.exp_cycles + s.cond_cycles + s.comm > 0 {
                let _ = write!(
                    out,
                    " [loops {:.0}% exp {:.0}% cond {:.0}% dma {:.1}% comm {:.1}%]",
                    100.0 * s.loop_cycles as f64 / s.occupied().max(1) as f64,
                    100.0 * s.exp_cycles as f64 / s.occupied().max(1) as f64,
                    100.0 * s.cond_cycles as f64 / s.occupied().max(1) as f64,
                    100.0 * s.dma_stall as f64 / s.occupied().max(1) as f64,
                    100.0 * s.comm as f64 / s.occupied().max(1) as f64,
                );
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(loops: Cycles) -> KernelCost {
        KernelCost {
            loop_cycles: loops,
            cond_cycles: 10,
            exp_cycles: 20,
            dma_stall: 5,
            comm: 1,
            ppe_overhead: 7,
        }
    }

    #[test]
    fn processor_accounting() {
        let mut p = ProcessorStats::default();
        p.add(&cost(100));
        p.add(&cost(200));
        assert_eq!(p.invocations, 2);
        // DMA stalls are accounted, but NOT as busy time.
        assert_eq!(p.busy(), 300 + 2 * (10 + 20 + 1));
        assert_eq!(p.stalled(), 2 * 5);
        assert_eq!(p.occupied(), p.busy() + p.stalled());
    }

    #[test]
    fn utilization_math() {
        let mut s = SimStats::new(2);
        s.spes[0].add(&cost(969)); // busy = 1000, stalled = 5
        s.makespan = 1000;
        assert_eq!(s.spes[0].busy(), 1000);
        assert_eq!(s.spes[0].stalled(), 5);
        // Utilization counts useful work only; stall time reports separately.
        assert!((s.spe_utilization() - 0.5).abs() < 1e-12);
        assert!((s.spe_stall_fraction() - 5.0 / 2000.0).abs() < 1e-12);
        assert!((s.spe_occupancy() - 1005.0 / 2000.0).abs() < 1e-12);
        assert!((s.max_spe_utilization() - 1.0).abs() < 1e-12);
        assert_eq!(s.total_invocations(), 1);
    }

    #[test]
    fn dma_stall_is_not_utilization() {
        // A pure-stall SPE has zero utilization — the pre-fix accounting
        // reported 100% here, inflating every SPE-utilization figure.
        let mut s = SimStats::new(1);
        s.spes[0].dma_stall = 1000;
        s.spes[0].invocations = 1;
        s.makespan = 1000;
        assert_eq!(s.spe_utilization(), 0.0);
        assert_eq!(s.spe_stall_fraction(), 1.0);
        assert_eq!(s.spe_occupancy(), 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SimStats::new(8);
        assert_eq!(s.spe_utilization(), 0.0);
        assert_eq!(s.max_spe_utilization(), 0.0);
        assert_eq!(s.total_invocations(), 0);
    }

    #[test]
    fn report_mentions_active_spes_only() {
        let mut s = SimStats::new(8);
        s.spes[3].add(&cost(1000));
        s.makespan = 5000;
        let r = s.report(3.2e9);
        assert!(r.contains("SPE3"));
        assert!(!r.contains("SPE0"));
        assert!(r.contains("makespan"));
    }
}
