//! MFC DMA transfer model.
//!
//! Architecture rules (paper §4): transfers move data between main memory
//! and local store in sizes of 1, 2, 4, 8 bytes or multiples of 16 bytes, at
//! most 16 KB per request, 128-bit aligned; DMA lists batch up to 2,048
//! requests. Latency is modelled as a fixed startup (MFC issue + EIB
//! arbitration + memory latency) plus size over bandwidth.
//!
//! The strip-mining pattern of §5.2.4 (2 KB buffers, 16 loop iterations per
//! batch) appears here as a *stream*: `n` chunks fetched one after another,
//! either blocking (the SPE stalls for every chunk) or double-buffered (the
//! next chunk transfers while the current one is processed — §5.2.4 removed
//! an 11.4% stall this way).

use crate::fault::FaultPlan;
use crate::time::Cycles;
use crate::tracelog::TraceLog;

/// Maximum size of a single DMA request.
pub const MAX_TRANSFER: usize = 16 * 1024;
/// Maximum entries in a DMA list.
pub const MAX_LIST_ENTRIES: usize = 2048;

/// DMA timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaCosts {
    /// Fixed cycles per request: MFC issue, EIB arbitration, memory access.
    /// Kistler et al. (the paper’s citation \[17\]) measured small-transfer round-trip
    /// latencies in the hundreds of nanoseconds; we use ~250 ns ≙ 800
    /// cycles at 3.2 GHz, which reproduces the paper's 11.4% `newview`
    /// DMA-wait share (§5.2.4) on the 42_SC trace.
    pub startup_cycles: Cycles,
    /// Sustained transfer bandwidth into one SPE, bytes per cycle
    /// (25.6 GB/s ≙ 8 B/cycle; we model 16 B/cycle for the combined
    /// in/out streams of the strip-mining loop).
    pub bytes_per_cycle: f64,
}

impl Default for DmaCosts {
    fn default() -> Self {
        DmaCosts { startup_cycles: 800, bytes_per_cycle: 16.0 }
    }
}

/// Why a transfer request is illegal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// Size not in {1, 2, 4, 8} and not a multiple of 16.
    BadSize(usize),
    /// Size exceeds 16 KB.
    TooLarge(usize),
    /// Address not 128-bit (16-byte) aligned.
    Misaligned(u64),
    /// DMA list longer than 2,048 entries.
    ListTooLong(usize),
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::BadSize(s) => write!(f, "illegal DMA size {s} (must be 1,2,4,8 or 16n)"),
            DmaError::TooLarge(s) => write!(f, "DMA size {s} exceeds the 16 KB limit"),
            DmaError::Misaligned(a) => write!(f, "address {a:#x} is not 128-bit aligned"),
            DmaError::ListTooLong(n) => write!(f, "DMA list with {n} entries exceeds 2048"),
        }
    }
}

impl std::error::Error for DmaError {}

/// Validate a single transfer request (size and alignment rules of §4).
pub fn validate_transfer(bytes: usize, addr: u64) -> Result<(), DmaError> {
    if bytes > MAX_TRANSFER {
        return Err(DmaError::TooLarge(bytes));
    }
    let size_ok = matches!(bytes, 1 | 2 | 4 | 8) || (bytes > 0 && bytes.is_multiple_of(16));
    if !size_ok {
        return Err(DmaError::BadSize(bytes));
    }
    if !addr.is_multiple_of(16) {
        return Err(DmaError::Misaligned(addr));
    }
    Ok(())
}

/// Split a large transfer into a DMA list of ≤16 KB entries.
/// Returns the entry sizes, or an error if the list would be too long.
pub fn build_dma_list(total_bytes: usize) -> Result<Vec<usize>, DmaError> {
    let full = total_bytes / MAX_TRANSFER;
    let rest = total_bytes % MAX_TRANSFER;
    let n = full + usize::from(rest > 0);
    if n > MAX_LIST_ENTRIES {
        return Err(DmaError::ListTooLong(n));
    }
    let mut entries = vec![MAX_TRANSFER; full];
    if rest > 0 {
        // Round the tail up to a legal size.
        let tail = if matches!(rest, 1 | 2 | 4 | 8) { rest } else { rest.div_ceil(16) * 16 };
        entries.push(tail);
    }
    Ok(entries)
}

/// Cycles for one transfer: startup plus size over bandwidth.
pub fn transfer_cycles(bytes: usize, costs: &DmaCosts) -> Cycles {
    costs.startup_cycles + (bytes as f64 / costs.bytes_per_cycle).ceil() as Cycles
}

/// Total stall cycles for streaming `total_bytes` through `chunk`-byte
/// buffers with *blocking* waits: the SPE waits out every chunk (the
/// original port, Table 4's "before" case).
pub fn stream_stall_blocking(total_bytes: u64, chunk: usize, costs: &DmaCosts) -> Cycles {
    if total_bytes == 0 {
        return 0;
    }
    let n_chunks = total_bytes.div_ceil(chunk as u64);
    n_chunks * transfer_cycles(chunk, costs)
}

/// Stall cycles beyond compute when the same stream is *double-buffered*:
/// the first chunk's latency is exposed, every later transfer overlaps the
/// previous chunk's compute; stalls only occur when transfer time exceeds
/// per-chunk compute (§5.2.4 "eliminated this waiting time").
pub fn stream_stall_double_buffered(
    total_bytes: u64,
    chunk: usize,
    compute_cycles: Cycles,
    costs: &DmaCosts,
) -> Cycles {
    if total_bytes == 0 {
        return 0;
    }
    let n_chunks = total_bytes.div_ceil(chunk as u64);
    let per_chunk_dma = transfer_cycles(chunk, costs);
    let per_chunk_compute = compute_cycles / n_chunks.max(1);
    // Pipeline: expose the first fill, then each of the remaining n−1
    // transfers hides behind one chunk of compute.
    let hidden_deficit = per_chunk_dma.saturating_sub(per_chunk_compute);
    per_chunk_dma + (n_chunks - 1) * hidden_deficit
}

/// Outcome of a fault-aware transfer: total cycles including retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOutcome {
    /// Total cycles charged: every attempt, detection, and backoff delay.
    pub cycles: Cycles,
    /// Attempts made (1 on the fault-free path).
    pub attempts: u32,
    /// Faults injected along the way.
    pub faults: u32,
}

/// Why a fault-aware transfer did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The request violates the architecture's size/alignment rules.
    Illegal(DmaError),
    /// Every retry attempt faulted; the cycles were still spent.
    Exhausted { attempts: u32, cycles: Cycles },
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Illegal(e) => write!(f, "illegal transfer: {e}"),
            TransferError::Exhausted { attempts, cycles } => {
                write!(f, "transfer failed after {attempts} attempts ({cycles} cycles lost)")
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// One transfer under a [`FaultPlan`]: validate, then retry until success
/// or until the plan's attempt budget is exhausted. Each attempt pays the
/// full transfer latency; faulted attempts add the detection cost and the
/// capped-exponential backoff delay. With an inert plan this is exactly one
/// attempt of [`transfer_cycles`].
pub fn transfer_with_faults(
    bytes: usize,
    addr: u64,
    costs: &DmaCosts,
    plan: &FaultPlan,
    stream: u64,
    index: u64,
) -> Result<TransferOutcome, TransferError> {
    validate_transfer(bytes, addr).map_err(TransferError::Illegal)?;
    let per_attempt = transfer_cycles(bytes, costs);
    let mut cycles: Cycles = 0;
    let mut faults = 0u32;
    let max = plan.backoff.max_attempts.max(1);
    for attempt in 0..max {
        cycles += per_attempt;
        match plan.dma_fault(stream, index, attempt) {
            None => return Ok(TransferOutcome { cycles, attempts: attempt + 1, faults }),
            Some(kind) => {
                faults += 1;
                cycles += plan.detect_cost(kind) + plan.backoff.delay(attempt);
            }
        }
    }
    Err(TransferError::Exhausted { attempts: max, cycles })
}

/// [`transfer_with_faults`] that also records the transfer into a
/// [`TraceLog`]: the full transfer span (retries included) starting at
/// simulated time `at`, plus one `dma_fault` instant per faulted attempt.
/// With a disabled log this is bit-identical to the untraced call.
#[allow(clippy::too_many_arguments)]
pub fn transfer_with_faults_traced(
    bytes: usize,
    addr: u64,
    costs: &DmaCosts,
    plan: &FaultPlan,
    stream: u64,
    index: u64,
    at: Cycles,
    tlog: &mut TraceLog,
) -> Result<TransferOutcome, TransferError> {
    let result = transfer_with_faults(bytes, addr, costs, plan, stream, index);
    if tlog.is_enabled() {
        match &result {
            Ok(out) => {
                tlog.dma_transfer(at, stream, bytes as u64, out.cycles, out.attempts);
                for _ in 0..out.faults {
                    tlog.fault(at, "dma_fault", stream as usize);
                }
            }
            Err(TransferError::Exhausted { attempts, cycles }) => {
                tlog.dma_transfer(at, stream, bytes as u64, *cycles, *attempts);
                tlog.fault(at, "dma_exhausted", stream as usize);
            }
            Err(TransferError::Illegal(_)) => {}
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_sizes() {
        for s in [1usize, 2, 4, 8, 16, 32, 2048, 16 * 1024] {
            assert!(validate_transfer(s, 0).is_ok(), "size {s}");
        }
        for s in [3usize, 5, 7, 9, 12, 17, 100] {
            assert_eq!(validate_transfer(s, 0), Err(DmaError::BadSize(s)), "size {s}");
        }
        assert_eq!(validate_transfer(0, 0), Err(DmaError::BadSize(0)));
        assert_eq!(validate_transfer(16 * 1024 + 16, 0), Err(DmaError::TooLarge(16 * 1024 + 16)));
    }

    #[test]
    fn alignment() {
        assert!(validate_transfer(16, 0x1000).is_ok());
        assert_eq!(validate_transfer(16, 0x1008), Err(DmaError::Misaligned(0x1008)));
    }

    #[test]
    fn dma_lists_split_correctly() {
        let entries = build_dma_list(40 * 1024).unwrap();
        assert_eq!(entries, vec![16 * 1024, 16 * 1024, 8 * 1024]);
        let entries = build_dma_list(16 * 1024 + 100).unwrap();
        assert_eq!(entries, vec![16 * 1024, 112], "tail rounds up to 16n");
        // > 2048 × 16 KB overflows the list.
        assert!(matches!(
            build_dma_list(MAX_LIST_ENTRIES * MAX_TRANSFER + 1),
            Err(DmaError::ListTooLong(_))
        ));
        assert_eq!(build_dma_list(MAX_LIST_ENTRIES * MAX_TRANSFER).unwrap().len(), 2048);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let c = DmaCosts::default();
        let small = transfer_cycles(128, &c);
        let large = transfer_cycles(16 * 1024, &c);
        assert!(large > small);
        assert_eq!(small, 800 + 8);
        assert_eq!(large, 800 + 1024);
    }

    #[test]
    fn blocking_stall_counts_every_chunk() {
        let c = DmaCosts::default();
        let stall = stream_stall_blocking(8192, 2048, &c);
        assert_eq!(stall, 4 * transfer_cycles(2048, &c));
        assert_eq!(stream_stall_blocking(0, 2048, &c), 0);
    }

    #[test]
    fn double_buffering_hides_transfers_behind_compute() {
        let c = DmaCosts::default();
        // Plenty of compute per chunk: only the first fill is exposed.
        let stall = stream_stall_double_buffered(8192, 2048, 1_000_000, &c);
        assert_eq!(stall, transfer_cycles(2048, &c));
        // No compute at all: double buffering degenerates to blocking-ish.
        let stall = stream_stall_double_buffered(8192, 2048, 0, &c);
        assert_eq!(stall, 4 * transfer_cycles(2048, &c));
    }

    #[test]
    fn faultless_transfer_costs_exactly_one_attempt() {
        let c = DmaCosts::default();
        let out = transfer_with_faults(2048, 0, &c, &FaultPlan::none(), 0, 0).unwrap();
        assert_eq!(
            out,
            TransferOutcome { cycles: transfer_cycles(2048, &c), attempts: 1, faults: 0 }
        );
    }

    #[test]
    fn faulty_transfer_retries_and_charges_backoff() {
        let c = DmaCosts::default();
        let mut plan = FaultPlan::none();
        plan.dma_failure_rate = 0.4;
        plan.seed = 11;
        // Scan until a seed/index combination faults at least once but
        // eventually succeeds — deterministic, so the scan is stable.
        let hit = (0..200)
            .filter_map(|i| transfer_with_faults(2048, 0, &c, &plan, 1, i).ok())
            .find(|o| o.faults > 0)
            .expect("40% failure rate must fault somewhere in 200 transfers");
        assert!(hit.attempts > 1);
        assert!(
            hit.cycles > hit.attempts as u64 * transfer_cycles(2048, &c),
            "retries must charge more than the raw attempts"
        );
    }

    #[test]
    fn certain_faults_exhaust_the_transfer() {
        let c = DmaCosts::default();
        let plan = FaultPlan::uniform(3, 1.0);
        let err = transfer_with_faults(2048, 0, &c, &plan, 0, 0).unwrap_err();
        match err {
            TransferError::Exhausted { attempts, cycles } => {
                assert_eq!(attempts, plan.backoff.max_attempts);
                assert!(cycles >= attempts as u64 * transfer_cycles(2048, &c));
            }
            other => panic!("expected exhaustion, got {other}"),
        }
        // Illegal requests fail fast regardless of the plan.
        assert!(matches!(
            transfer_with_faults(3, 0, &c, &plan, 0, 0),
            Err(TransferError::Illegal(DmaError::BadSize(3)))
        ));
    }

    #[test]
    fn traced_transfer_matches_untraced_and_records_span() {
        use crate::tracelog::{EventData, TraceLog};
        let c = DmaCosts::default();
        let plan = FaultPlan::none();

        // Disabled log: same outcome, nothing recorded.
        let mut off = TraceLog::disabled();
        let traced = transfer_with_faults_traced(2048, 0, &c, &plan, 3, 0, 500, &mut off).unwrap();
        assert_eq!(traced, transfer_with_faults(2048, 0, &c, &plan, 3, 0).unwrap());
        assert!(off.is_empty());

        // Enabled log: one span with the exact cycles and attempts.
        let mut on = TraceLog::enabled();
        let out = transfer_with_faults_traced(2048, 0, &c, &plan, 3, 0, 500, &mut on).unwrap();
        assert_eq!(on.len(), 1);
        assert_eq!(on.events()[0].at, 500);
        assert_eq!(
            on.events()[0].data,
            EventData::DmaTransfer { stream: 3, bytes: 2048, dur: out.cycles, attempts: 1 }
        );

        // Exhausted transfers still record their wasted span plus a fault.
        let mut on = TraceLog::enabled();
        let certain = FaultPlan::uniform(3, 1.0);
        assert!(transfer_with_faults_traced(2048, 0, &c, &certain, 0, 0, 0, &mut on).is_err());
        assert!(on
            .events()
            .iter()
            .any(|e| matches!(e.data, EventData::Fault { kind: "dma_exhausted", .. })));
    }

    #[test]
    fn double_buffering_always_at_least_as_good_as_blocking() {
        let c = DmaCosts::default();
        for total in [2048u64, 10_000, 87_000, 500_000] {
            for compute in [0u64, 10_000, 100_000, 10_000_000] {
                let b = stream_stall_blocking(total, 2048, &c);
                let d = stream_stall_double_buffered(total, 2048, compute, &c);
                assert!(d <= b, "total={total} compute={compute}: {d} > {b}");
            }
        }
    }
}
