//! Simulated time: cycle counts and second conversions.

/// A point in (or span of) simulated time, in processor cycles.
pub type Cycles = u64;

/// Convert a cycle count to seconds at a given clock.
#[inline]
pub fn cycles_to_seconds(cycles: Cycles, clock_hz: f64) -> f64 {
    cycles as f64 / clock_hz
}

/// Convert seconds to cycles at a given clock (rounded).
#[inline]
pub fn seconds_to_cycles(seconds: f64, clock_hz: f64) -> Cycles {
    (seconds * clock_hz).round() as Cycles
}

/// Convert microseconds to cycles at a given clock (rounded).
#[inline]
pub fn micros_to_cycles(micros: f64, clock_hz: f64) -> Cycles {
    seconds_to_cycles(micros * 1e-6, clock_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLOCK: f64 = 3.2e9; // the Cell's 3.2 GHz

    #[test]
    fn round_trips() {
        assert_eq!(seconds_to_cycles(1.0, CLOCK), 3_200_000_000);
        assert!((cycles_to_seconds(3_200_000_000, CLOCK) - 1.0).abs() < 1e-12);
        assert_eq!(micros_to_cycles(1.0, CLOCK), 3200);
    }

    #[test]
    fn fractional_seconds() {
        let c = seconds_to_cycles(0.5, CLOCK);
        assert_eq!(c, 1_600_000_000);
        assert!((cycles_to_seconds(c, CLOCK) - 0.5).abs() < 1e-12);
    }
}
