//! The calibrated per-operation cycle cost model.
//!
//! Every `phylo::trace::KernelEvent` (a real `newview` / `evaluate` /
//! `makenewz` invocation with its true operation counts) is priced into
//! cycles under a set of [`ExecutionFlags`] that mirror the paper's
//! optimization ladder. The constants below are **calibrated once** against
//! the component measurements the paper publishes for the `42_SC` workload
//! and then never touched per-experiment — every table of the paper falls
//! out of the same model.
//!
//! ## Calibration derivation (all at 3.2 GHz)
//!
//! The paper gives, for 1 worker / 1 bootstrap on `42_SC` (Tables 1–7):
//! PPE-only 36.9 s; `newview`-offload naive 106.37 s; +SDK exp 62.8 s;
//! +integer-cast conditionals 49.3 s; +double buffering 47 s;
//! +vectorization 40.9 s; +direct memory communication 39.9 s. With the §5.2
//! profile (76.8% `newview`, 19.16% `makenewz`, 2.37% `evaluate`), the
//! non-`newview` work stays on the PPE in all of these configs at
//! 36.9 × (1 − 0.768) ≈ 8.39 s, so the per-optimization deltas are pure
//! `newview`-on-SPE component times. Dividing by the 230,500 invocations
//! (§5.2.6) gives per-invocation components (µs):
//!
//! | component                  | value | source                      |
//! |----------------------------|-------|-----------------------------|
//! | libm exp                   | 212   | Δ(T1b→T2) = 43.57 s + SDK residual; "exp() takes 50% of the total SPE time" (§5.2.2) |
//! | SDK exp                    | 23    | residual after the Δ        |
//! | float scaling conditional  | 69    | Δ(T2→T3) = 13.5 s + residual |
//! | int-cast conditional       | 11    | "6% as opposed to 45%" (§5.2.3) |
//! | blocking DMA wait          | 11    | Δ(T3→T4) = 2.3 s + residual; "11.4% of newview" (§5.2.4) |
//! | scalar likelihood loops    | 85    | "19.57 s in the two loops" (§5.2.5) |
//! | vectorized loops           | 58.5  | Δ(T4→T5) = 6.1 s            |
//! | mailbox round trip         | 4.6   | Δ(T5→T6) = 1.0 s            |
//! | direct-memory round trip   | 0.3   | residual                    |
//! | per-offload marshalling    | 43.3  | closes T1b: the remainder   |
//!
//! An average `42_SC` `newview` invocation in *this* implementation runs
//! 228 patterns × 4 Γ-rates = 912 loop iterations (44 DP FLOPs each for the
//! inner/inner path), 32 `exp` calls (2 branches × 4 rates × 4
//! eigenvalues — the paper's code made ~150; the per-call constant absorbs
//! the difference), 912 scaling conditionals and ~87.5 KB of likelihood
//! vector DMA. Dividing the µs components by those counts yields the
//! per-unit constants in [`CostModel::paper_calibrated`]; the tests at the
//! bottom verify that re-pricing the reference invocation reproduces every
//! per-invocation figure above to within 2%.

use crate::comm::{CommCosts, SignalKind};
use crate::dma::{stream_stall_blocking, stream_stall_double_buffered, DmaCosts};
use crate::time::Cycles;
use phylo::trace::KernelEvent;

/// Which exponential implementation the SPE code uses (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpKind {
    /// Software libm `exp` — catastrophically slow on the SPE.
    Libm,
    /// The Cell SDK numerical exp.
    #[default]
    Sdk,
}

/// How the scaling conditional is evaluated (§5.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CondKind {
    /// Double-precision comparisons: 8 hard-to-predict branches, ~20-cycle
    /// misprediction penalty each (§5.2.3).
    Float,
    /// Sign-masked integer comparison via SPE intrinsics.
    #[default]
    IntCast,
}

/// Where a kernel invocation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// On a PPE thread (the original port / Table 1a).
    Ppe,
    /// Offloaded to an SPE.
    Spe,
}

/// The complete execution configuration of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionFlags {
    pub location: Location,
    pub exp: ExpKind,
    pub cond: CondKind,
    /// §5.2.5 vectorized likelihood loops.
    pub vectorized: bool,
    /// §5.2.4 double-buffered strip-mining DMA.
    pub double_buffered: bool,
    /// §5.2.6 signalling mechanism.
    pub signal: SignalKind,
    /// Whether this invocation pays the PPE-side offload marshalling and a
    /// signalling round trip (true for PPE-initiated calls; false for
    /// `newview` nested inside an on-SPE `makenewz`/`evaluate`, §5.2.7).
    pub pay_offload: bool,
}

impl ExecutionFlags {
    /// Everything-off baseline on the SPE (the naive offload, Table 1b).
    pub fn spe_naive() -> ExecutionFlags {
        ExecutionFlags {
            location: Location::Spe,
            exp: ExpKind::Libm,
            cond: CondKind::Float,
            vectorized: false,
            double_buffered: false,
            signal: SignalKind::Mailbox,
            pay_offload: true,
        }
    }

    /// Fully optimized SPE execution (Table 6/7 configuration).
    pub fn spe_optimized() -> ExecutionFlags {
        ExecutionFlags {
            location: Location::Spe,
            exp: ExpKind::Sdk,
            cond: CondKind::IntCast,
            vectorized: true,
            double_buffered: true,
            signal: SignalKind::DirectMemory,
            pay_offload: true,
        }
    }

    /// Execution on the PPE (Table 1a).
    pub fn ppe() -> ExecutionFlags {
        ExecutionFlags {
            location: Location::Ppe,
            exp: ExpKind::Libm,
            cond: CondKind::Float,
            vectorized: false,
            double_buffered: false,
            signal: SignalKind::Mailbox,
            pay_offload: false,
        }
    }
}

/// Priced components of one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCost {
    /// The big per-pattern likelihood loops (parallelizable across SPEs in
    /// the LLP model).
    pub loop_cycles: Cycles,
    /// Scaling conditionals (inside the big loops — also parallelizable).
    pub cond_cycles: Cycles,
    /// Transition-matrix `exp` reconstruction (the small loop; serial).
    pub exp_cycles: Cycles,
    /// DMA stall beyond compute (parallelizable: each SPE streams its own
    /// slice).
    pub dma_stall: Cycles,
    /// Signalling round trip (serial).
    pub comm: Cycles,
    /// PPE-side marshalling for the offload (occupies a PPE thread, not
    /// the SPE).
    pub ppe_overhead: Cycles,
}

impl KernelCost {
    /// Cycles the executing processor (SPE, or PPE for `Location::Ppe`) is
    /// busy with this invocation.
    pub fn processor_busy(&self) -> Cycles {
        self.loop_cycles + self.cond_cycles + self.exp_cycles + self.dma_stall + self.comm
    }

    /// Sequential end-to-end cycles (offload marshalling + execution).
    pub fn total(&self) -> Cycles {
        self.processor_busy() + self.ppe_overhead
    }

    /// The portion the LLP scheduler can split across SPEs.
    pub fn parallelizable(&self) -> Cycles {
        self.loop_cycles + self.cond_cycles + self.dma_stall
    }

    /// The portion that stays serial under LLP.
    pub fn serial(&self) -> Cycles {
        self.exp_cycles + self.comm
    }
}

/// The calibrated cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Clock frequency (3.2 GHz on the paper's blade).
    pub clock_hz: f64,
    /// SPE cycles per double-precision FLOP in scalar likelihood code:
    /// 298 cycles per 44-FLOP loop iteration (85 µs / 912 iterations).
    pub spe_cycles_per_flop_scalar: f64,
    /// Multiplier on loop cycles when vectorized (58.5 µs / 85 µs): the
    /// paper's FLOP count drops 44 → 22 but adds 25 shuffle/splat ops.
    pub spe_vector_factor: f64,
    /// SPE cycles per libm `exp` call (212 µs over 32 calls).
    pub spe_exp_libm: Cycles,
    /// SPE cycles per SDK `exp` call (23 µs over 32 calls).
    pub spe_exp_sdk: Cycles,
    /// SPE cycles per float scaling conditional (69 µs over 912 checks —
    /// 8 data-dependent branches at ~20 cycles misprediction each, §5.2.3).
    pub spe_cond_float: f64,
    /// SPE cycles per integer-cast conditional.
    pub spe_cond_int: f64,
    /// PPE-side marshalling per offload: argument packing, signal handling
    /// and (under oversubscription) the context switch — 43.3 µs.
    pub offload_overhead: Cycles,
    /// PPE cycles per double-precision FLOP in the same loops (the PPE's
    /// 123 µs/invocation ⇒ ~8.2 cycles/FLOP after exp and conditionals).
    pub ppe_cycles_per_flop: f64,
    /// PPE cycles per `exp` (hardware FPU: ~100 ns).
    pub ppe_exp: Cycles,
    /// PPE cycles per scaling conditional.
    pub ppe_cond: f64,
    /// DMA timing.
    pub dma: DmaCosts,
    /// Strip-mining buffer size (§5.2.4: 2 KB).
    pub dma_chunk: usize,
    /// Signalling costs.
    pub comm: CommCosts,
    /// Serial cost per *additional* SPE when one invocation's loop is split
    /// across SPEs (LLP): work distribution, argument broadcast, partial
    /// result gather. Calibrated against Table 8's single-bootstrap time.
    pub llp_dispatch: Cycles,
    /// Extra PPE cycles per offload when the PPE is oversubscribed with
    /// more MPI processes than hardware threads (EDTLP's
    /// "switch-on-offload", §5.3): the process context switch, scheduler
    /// work and cache disturbance. Calibrated against Table 8's
    /// eight-bootstrap time (42.18 s vs the 27.7 s sequential Table 7 run:
    /// the ~50% EDTLP inflation is PPE-side multiplexing cost).
    pub edtlp_context_switch: Cycles,
}

impl CostModel {
    /// The model calibrated to the paper's 42_SC measurements (see the
    /// module docs for the derivation).
    pub fn paper_calibrated() -> CostModel {
        CostModel {
            clock_hz: 3.2e9,
            spe_cycles_per_flop_scalar: 6.8,
            spe_vector_factor: 0.69,
            spe_exp_libm: 21_200,
            spe_exp_sdk: 2_300,
            spe_cond_float: 243.0,
            spe_cond_int: 37.0,
            offload_overhead: 138_560,
            ppe_cycles_per_flop: 8.2,
            ppe_exp: 320,
            ppe_cond: 60.0,
            dma: DmaCosts::default(),
            dma_chunk: 2048,
            comm: CommCosts::default(),
            llp_dispatch: 12_500,
            edtlp_context_switch: 370_000, // ~115 µs per oversubscribed offload
        }
    }

    /// Price one kernel invocation under the given flags.
    pub fn kernel_cost(&self, ev: &KernelEvent, flags: &ExecutionFlags) -> KernelCost {
        match flags.location {
            Location::Ppe => KernelCost {
                loop_cycles: (ev.flops() as f64 * self.ppe_cycles_per_flop) as Cycles,
                cond_cycles: (ev.scaling_checks as f64 * self.ppe_cond) as Cycles,
                exp_cycles: ev.exp_calls as Cycles * self.ppe_exp,
                dma_stall: 0,
                comm: 0,
                ppe_overhead: 0,
            },
            Location::Spe => {
                let loop_factor = if flags.vectorized { self.spe_vector_factor } else { 1.0 };
                let loop_cycles =
                    (ev.flops() as f64 * self.spe_cycles_per_flop_scalar * loop_factor) as Cycles;
                let cond_unit = match flags.cond {
                    CondKind::Float => self.spe_cond_float,
                    CondKind::IntCast => self.spe_cond_int,
                };
                let cond_cycles = (ev.scaling_checks as f64 * cond_unit) as Cycles;
                let exp_unit = match flags.exp {
                    ExpKind::Libm => self.spe_exp_libm,
                    ExpKind::Sdk => self.spe_exp_sdk,
                };
                let exp_cycles = ev.exp_calls as Cycles * exp_unit;
                let dma_stall = if flags.double_buffered {
                    stream_stall_double_buffered(
                        ev.dma_bytes(),
                        self.dma_chunk,
                        loop_cycles + cond_cycles,
                        &self.dma,
                    )
                } else {
                    stream_stall_blocking(ev.dma_bytes(), self.dma_chunk, &self.dma)
                };
                let (comm, ppe_overhead) = if flags.pay_offload {
                    (self.comm.roundtrip(flags.signal), self.offload_overhead)
                } else {
                    (0, 0)
                };
                KernelCost { loop_cycles, cond_cycles, exp_cycles, dma_stall, comm, ppe_overhead }
            }
        }
    }

    /// Convert cycles to seconds under this model's clock.
    pub fn seconds(&self, cycles: Cycles) -> f64 {
        crate::time::cycles_to_seconds(cycles, self.clock_hz)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::trace::{CallParent, KernelOp};

    /// The reference 42_SC `newview` invocation: 228 patterns × 4 rates,
    /// inner/inner path, 32 exp calls, 3 likelihood-vector DMA operands.
    fn reference_newview() -> KernelEvent {
        KernelEvent {
            op: KernelOp::NewviewInnerInner,
            parent: CallParent::Search,
            patterns: 228,
            rates: 4,
            exp_calls: 32,
            scaling_checks: 912,
            scalings: 0,
            newton_iters: 0,
            inner_operands: 3,
        }
    }

    fn micros(model: &CostModel, cycles: Cycles) -> f64 {
        model.seconds(cycles) * 1e6
    }

    fn assert_within(actual: f64, target: f64, pct: f64, what: &str) {
        let tol = target * pct / 100.0;
        assert!(
            (actual - target).abs() <= tol,
            "{what}: {actual:.1} vs target {target:.1} (±{pct}%)"
        );
    }

    /// The optimization ladder per-invocation times derived from Tables
    /// 1–6 (see module docs). This is the calibration contract.
    #[test]
    fn ladder_reproduces_paper_per_invocation_times() {
        let m = CostModel::paper_calibrated();
        let ev = reference_newview();

        let mut flags = ExecutionFlags::spe_naive();
        assert_within(micros(&m, m.kernel_cost(&ev, &flags).total()), 425.1, 2.0, "naive");

        flags.exp = ExpKind::Sdk;
        assert_within(micros(&m, m.kernel_cost(&ev, &flags).total()), 236.1, 2.0, "+sdk exp");

        flags.cond = CondKind::IntCast;
        assert_within(micros(&m, m.kernel_cost(&ev, &flags).total()), 177.5, 2.0, "+int cond");

        flags.double_buffered = true;
        assert_within(micros(&m, m.kernel_cost(&ev, &flags).total()), 167.5, 2.5, "+dbuf");

        flags.vectorized = true;
        assert_within(micros(&m, m.kernel_cost(&ev, &flags).total()), 141.0, 2.0, "+vector");

        flags.signal = SignalKind::DirectMemory;
        assert_within(micros(&m, m.kernel_cost(&ev, &flags).total()), 136.7, 2.0, "+direct");
    }

    #[test]
    fn ppe_invocation_matches_derived_123us() {
        let m = CostModel::paper_calibrated();
        let cost = m.kernel_cost(&reference_newview(), &ExecutionFlags::ppe());
        assert_within(micros(&m, cost.total()), 123.0, 2.0, "PPE newview");
        assert_eq!(cost.comm, 0);
        assert_eq!(cost.dma_stall, 0);
        assert_eq!(cost.ppe_overhead, 0);
    }

    #[test]
    fn naive_spe_is_about_3_4x_slower_than_ppe() {
        // Paper: (106.37−8.39)/(36.9−8.39) ≈ 3.44× on the newview portion.
        let m = CostModel::paper_calibrated();
        let ev = reference_newview();
        let spe = m.kernel_cost(&ev, &ExecutionFlags::spe_naive()).total();
        let ppe = m.kernel_cost(&ev, &ExecutionFlags::ppe()).total();
        let ratio = spe as f64 / ppe as f64;
        assert!((3.2..3.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn optimized_spe_beats_ppe() {
        // After all optimizations the SPE wins (paper: offloaded+optimized
        // code is 25% faster overall; per-invocation even without nesting
        // savings the compute portion must beat the PPE).
        let m = CostModel::paper_calibrated();
        let ev = reference_newview();
        let mut flags = ExecutionFlags::spe_optimized();
        flags.pay_offload = false; // nested invocation (Table 7 regime)
        let spe = m.kernel_cost(&ev, &flags).total();
        let ppe = m.kernel_cost(&ev, &ExecutionFlags::ppe()).total();
        assert!(spe < ppe, "optimized nested SPE ({spe}) must beat PPE ({ppe})");
    }

    #[test]
    fn paper_component_fractions_hold() {
        let m = CostModel::paper_calibrated();
        let ev = reference_newview();
        // §5.2.2: exp is ~50% of the naive SPE invocation.
        let naive = m.kernel_cost(&ev, &ExecutionFlags::spe_naive());
        let exp_frac = naive.exp_cycles as f64 / naive.total() as f64;
        assert!((0.45..0.55).contains(&exp_frac), "exp fraction {exp_frac}");
        // §5.2.4: blocking DMA wait ~11.4% of the *kernel-compute* time at
        // the pre-double-buffering stage (use the int-cast config).
        let mut f = ExecutionFlags::spe_naive();
        f.exp = ExpKind::Sdk;
        f.cond = CondKind::IntCast;
        let c = m.kernel_cost(&ev, &f);
        let dma_frac = c.dma_stall as f64 / c.processor_busy() as f64;
        assert!((0.05..0.18).contains(&dma_frac), "dma fraction {dma_frac}");
    }

    #[test]
    fn nested_invocations_skip_comm_and_overhead() {
        let m = CostModel::paper_calibrated();
        let ev = reference_newview();
        let mut flags = ExecutionFlags::spe_optimized();
        let top = m.kernel_cost(&ev, &flags);
        flags.pay_offload = false;
        let nested = m.kernel_cost(&ev, &flags);
        assert_eq!(nested.comm, 0);
        assert_eq!(nested.ppe_overhead, 0);
        assert_eq!(top.total() - nested.total(), m.offload_overhead + m.comm.direct_roundtrip);
    }

    #[test]
    fn parallelizable_plus_serial_covers_processor_busy() {
        let m = CostModel::paper_calibrated();
        let ev = reference_newview();
        for flags in [ExecutionFlags::spe_naive(), ExecutionFlags::spe_optimized()] {
            let c = m.kernel_cost(&ev, &flags);
            assert_eq!(c.parallelizable() + c.serial(), c.processor_busy());
        }
    }

    #[test]
    fn tip_cases_are_cheaper() {
        let m = CostModel::paper_calibrated();
        let mut ev = reference_newview();
        let ii = m.kernel_cost(&ev, &ExecutionFlags::spe_optimized()).total();
        ev.op = KernelOp::NewviewTipInner;
        ev.inner_operands = 2;
        let ti = m.kernel_cost(&ev, &ExecutionFlags::spe_optimized()).total();
        ev.op = KernelOp::NewviewTipTip;
        ev.inner_operands = 1;
        let tt = m.kernel_cost(&ev, &ExecutionFlags::spe_optimized()).total();
        assert!(tt < ti && ti < ii, "tt={tt} ti={ti} ii={ii}");
    }
}
