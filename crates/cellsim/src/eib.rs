//! Element Interconnect Bus contention model.
//!
//! The EIB is a four-ring bus moving 96 bytes/cycle peak (204.8 GB/s usable
//! at 3.2 GHz) and sustaining over 100 outstanding DMA requests (paper §4).
//! For the workloads here the interesting effect is *bandwidth sharing*:
//! when k SPEs stream likelihood vectors concurrently (the LLP scheduler
//! splits one loop across SPEs), each stream gets
//! `min(per_link, total / k)` bytes per cycle.

/// EIB bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EibModel {
    /// Usable aggregate data bandwidth, bytes/cycle (64 at 3.2 GHz ≙
    /// 204.8 GB/s).
    pub total_bytes_per_cycle: f64,
    /// Per-SPE link bandwidth, bytes/cycle.
    pub per_link_bytes_per_cycle: f64,
    /// Maximum outstanding requests before arbitration stalls.
    pub max_outstanding: usize,
}

impl Default for EibModel {
    fn default() -> Self {
        EibModel {
            total_bytes_per_cycle: 64.0,
            per_link_bytes_per_cycle: 16.0,
            max_outstanding: 128,
        }
    }
}

impl EibModel {
    /// Effective bandwidth available to each of `active_streams` concurrent
    /// streams, bytes/cycle.
    pub fn effective_bandwidth(&self, active_streams: usize) -> f64 {
        if active_streams == 0 {
            return self.per_link_bytes_per_cycle;
        }
        self.per_link_bytes_per_cycle.min(self.total_bytes_per_cycle / active_streams as f64)
    }

    /// Slowdown factor (≥ 1) a stream experiences relative to an
    /// uncontended link.
    pub fn contention_factor(&self, active_streams: usize) -> f64 {
        self.per_link_bytes_per_cycle / self.effective_bandwidth(active_streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_gets_full_link() {
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(1), 16.0);
        assert_eq!(eib.contention_factor(1), 1.0);
    }

    #[test]
    fn few_streams_uncontended() {
        // 4 streams × 16 B/cycle = 64 B/cycle = the EIB total: just fits.
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(4), 16.0);
        assert_eq!(eib.contention_factor(4), 1.0);
    }

    #[test]
    fn many_streams_share_the_bus() {
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(8), 8.0);
        assert_eq!(eib.contention_factor(8), 2.0);
        assert!(eib.effective_bandwidth(16) < eib.effective_bandwidth(8));
    }

    #[test]
    fn zero_streams_is_idle() {
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(0), 16.0);
    }

    #[test]
    fn aggregate_matches_paper_quote() {
        // 64 B/cycle at 3.2 GHz = 204.8 GB/s (paper §4).
        let eib = EibModel::default();
        assert!((eib.total_bytes_per_cycle * 3.2e9 / 1e9 - 204.8).abs() < 1e-9);
    }
}
