//! Element Interconnect Bus contention model.
//!
//! The EIB is a four-ring bus moving 96 bytes/cycle peak (204.8 GB/s usable
//! at 3.2 GHz) and sustaining over 100 outstanding DMA requests (paper §4).
//! For the workloads here the interesting effect is *bandwidth sharing*:
//! when k SPEs stream likelihood vectors concurrently (the LLP scheduler
//! splits one loop across SPEs), each stream gets
//! `min(per_link, total / k)` bytes per cycle.

/// EIB bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EibModel {
    /// Usable aggregate data bandwidth, bytes/cycle (64 at 3.2 GHz ≙
    /// 204.8 GB/s).
    pub total_bytes_per_cycle: f64,
    /// Per-SPE link bandwidth, bytes/cycle.
    pub per_link_bytes_per_cycle: f64,
    /// Maximum outstanding requests before arbitration stalls.
    pub max_outstanding: usize,
}

impl Default for EibModel {
    fn default() -> Self {
        EibModel {
            total_bytes_per_cycle: 64.0,
            per_link_bytes_per_cycle: 16.0,
            max_outstanding: 128,
        }
    }
}

/// Floor on the effective per-stream bandwidth, bytes/cycle. Degenerate
/// configurations (zero aggregate bandwidth, astronomically many streams)
/// would otherwise round a stream's share down to 0 bytes/cycle, pricing
/// transfers at infinite cycles and making [`EibModel::contention_factor`]
/// non-finite.
pub const MIN_EFFECTIVE_BANDWIDTH: f64 = 1e-6;

impl EibModel {
    /// Effective bandwidth available to each of `active_streams` concurrent
    /// streams, bytes/cycle. Always ≥ [`MIN_EFFECTIVE_BANDWIDTH`] and never
    /// NaN, whatever the configuration.
    pub fn effective_bandwidth(&self, active_streams: usize) -> f64 {
        let share = if active_streams == 0 {
            // No stream is contending; an arriving one would get a full link.
            self.per_link_bytes_per_cycle
        } else {
            self.per_link_bytes_per_cycle.min(self.total_bytes_per_cycle / active_streams as f64)
        };
        if share.is_finite() {
            share.max(MIN_EFFECTIVE_BANDWIDTH)
        } else {
            MIN_EFFECTIVE_BANDWIDTH
        }
    }

    /// Slowdown factor a stream experiences relative to an uncontended
    /// link. Always finite and ≥ 1, even for zero-bandwidth or
    /// zero-stream configurations.
    pub fn contention_factor(&self, active_streams: usize) -> f64 {
        let factor = self.per_link_bytes_per_cycle / self.effective_bandwidth(active_streams);
        if factor.is_finite() {
            factor.max(1.0)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_gets_full_link() {
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(1), 16.0);
        assert_eq!(eib.contention_factor(1), 1.0);
    }

    #[test]
    fn few_streams_uncontended() {
        // 4 streams × 16 B/cycle = 64 B/cycle = the EIB total: just fits.
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(4), 16.0);
        assert_eq!(eib.contention_factor(4), 1.0);
    }

    #[test]
    fn many_streams_share_the_bus() {
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(8), 8.0);
        assert_eq!(eib.contention_factor(8), 2.0);
        assert!(eib.effective_bandwidth(16) < eib.effective_bandwidth(8));
    }

    #[test]
    fn zero_streams_is_idle() {
        let eib = EibModel::default();
        assert_eq!(eib.effective_bandwidth(0), 16.0);
        assert_eq!(eib.contention_factor(0), 1.0);
    }

    #[test]
    fn degenerate_configs_never_price_zero_bandwidth() {
        // Absurd stream counts: the share underflows toward 0 but must stay
        // at the floor, and the slowdown must stay finite.
        let eib = EibModel::default();
        for streams in [1usize << 40, usize::MAX] {
            let bw = eib.effective_bandwidth(streams);
            assert!(bw >= MIN_EFFECTIVE_BANDWIDTH, "streams={streams}: bw {bw}");
            let f = eib.contention_factor(streams);
            assert!(f.is_finite() && f >= 1.0, "streams={streams}: factor {f}");
        }

        // Zero aggregate bandwidth: the factor is huge but finite.
        let dead_bus = EibModel { total_bytes_per_cycle: 0.0, ..EibModel::default() };
        assert_eq!(dead_bus.effective_bandwidth(8), MIN_EFFECTIVE_BANDWIDTH);
        assert!(dead_bus.contention_factor(8).is_finite());

        // Zero per-link bandwidth: no link to contend for, factor clamps to 1.
        let dead_link = EibModel { per_link_bytes_per_cycle: 0.0, ..EibModel::default() };
        assert!(dead_link.effective_bandwidth(4) >= MIN_EFFECTIVE_BANDWIDTH);
        assert_eq!(dead_link.contention_factor(4), 1.0);
        assert_eq!(dead_link.contention_factor(0), 1.0);
    }

    #[test]
    fn contention_factor_is_monotone_in_streams() {
        let eib = EibModel::default();
        let mut last = 0.0;
        for s in 0..64 {
            let f = eib.contention_factor(s);
            assert!(f >= last, "streams={s}: {f} < {last}");
            last = f;
        }
    }

    #[test]
    fn aggregate_matches_paper_quote() {
        // 64 B/cycle at 3.2 GHz = 204.8 GB/s (paper §4).
        let eib = EibModel::default();
        assert!((eib.total_bytes_per_cycle * 3.2e9 / 1e9 - 204.8).abs() < 1e-9);
    }
}
