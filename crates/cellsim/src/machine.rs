//! Machine description of the simulated Cell blade (paper §4, §5).

/// Static description of the simulated processor.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Core clock in Hz. The blade in the paper runs at 3.2 GHz.
    pub clock_hz: f64,
    /// Number of SPEs (8 on a Cell).
    pub n_spes: usize,
    /// Hardware threads on the PPE (2-way SMT).
    pub ppe_threads: usize,
    /// SPE local store capacity in bytes (256 KB).
    pub local_store_bytes: usize,
    /// EIB aggregate bandwidth in bytes/cycle (96 B/cycle transmit capacity;
    /// 204.8 GB/s ≙ 64 B/cycle of usable data bandwidth at 3.2 GHz).
    pub eib_bytes_per_cycle: f64,
    /// Per-SPE link bandwidth in bytes/cycle (25.6 GB/s ≙ 8 B/cycle each
    /// direction; we model 16 B/cycle combined).
    pub spe_link_bytes_per_cycle: f64,
}

impl MachineConfig {
    /// The Cell blade used in the paper: 3.2 GHz, 8 SPEs, dual-thread PPE.
    pub fn cell_blade() -> MachineConfig {
        MachineConfig {
            clock_hz: 3.2e9,
            n_spes: 8,
            ppe_threads: 2,
            local_store_bytes: 256 * 1024,
            eib_bytes_per_cycle: 64.0,
            spe_link_bytes_per_cycle: 16.0,
        }
    }

    /// Peak double-precision GFLOP/s of the SPEs: each SPE issues one
    /// 2-lane DP madd (4 FLOPs) every six cycles ⇒ 8 × 4/6 × 3.2 GHz ≈
    /// 17.1. The paper quotes 21.03 GFLOP/s for the whole chip, i.e.
    /// including the PPE's FPU (~3.9 GFLOP/s).
    pub fn peak_dp_gflops(&self) -> f64 {
        self.n_spes as f64 * 4.0 / 6.0 * self.clock_hz / 1e9
    }

    /// Peak single-precision GFLOP/s of the SPEs: one 4-lane SP madd
    /// (8 FLOPs) per cycle per SPE, fully pipelined ⇒ 204.8 at 3.2 GHz.
    /// The paper quotes 230.4 GFLOP/s for the whole chip (with the PPE's
    /// VMX unit contributing 25.6).
    pub fn peak_sp_gflops(&self) -> f64 {
        self.n_spes as f64 * 4.0 * 2.0 * self.clock_hz / 1e9
    }

    /// EIB bandwidth in GB/s.
    pub fn eib_gbytes_per_sec(&self) -> f64 {
        self.eib_bytes_per_cycle * self.clock_hz / 1e9
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::cell_blade()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_blade_parameters() {
        let m = MachineConfig::cell_blade();
        assert_eq!(m.n_spes, 8);
        assert_eq!(m.ppe_threads, 2);
        assert_eq!(m.local_store_bytes, 262_144);
        assert!((m.clock_hz - 3.2e9).abs() < 1.0);
    }

    #[test]
    fn peak_flops_match_paper_quotes() {
        let m = MachineConfig::cell_blade();
        // Paper §4 quotes 21.03 GFLOP/s DP and 230.4 GFLOP/s SP for the
        // whole chip; the SPE-only peaks are ~17.1 and 204.8 — the chip
        // totals must bracket our SPE-only numbers from above.
        let dp = m.peak_dp_gflops();
        assert!((17.07 - dp).abs() < 0.1, "dp = {dp}");
        assert!(dp < 21.03, "SPE-only DP peak below the chip quote");
        let sp = m.peak_sp_gflops();
        assert!((204.8 - sp).abs() < 0.1, "sp = {sp}");
        assert!(sp < 230.4, "SPE-only SP peak below the chip quote");
    }

    #[test]
    fn eib_bandwidth_matches_paper() {
        let m = MachineConfig::cell_blade();
        // Paper §4: 204.8 GB/s.
        assert!((m.eib_gbytes_per_sec() - 204.8).abs() < 1.0);
    }
}
