//! Code-overlay modelling — the road the paper chose *not* to take.
//!
//! §5.2.4: "Recursive function calls in general, necessitate the use of
//! manually managed code overlays on the Cell. We have not experimented
//! with this option, relying instead on careful control of the code
//! footprint of the offloaded functions to avoid overlays." The three
//! kernels fit (117 KB of 256 KB), so the real port never reloads code.
//!
//! This module answers the counterfactual: *what would overlays have cost?*
//! Given a code budget smaller than the total footprint, function calls
//! fault whenever their module is not resident; each fault DMA-streams the
//! module's code into local store, evicting least-recently-used modules.
//! The experiment harness replays real kernel traces through this model to
//! price the paper's design decision.

use crate::dma::{transfer_cycles, DmaCosts, MAX_TRANSFER};
use crate::time::Cycles;

/// A code module that can be overlaid into SPE local store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeModule {
    pub name: String,
    pub bytes: usize,
}

/// The paper's three offloaded kernels, 117 KB total (§5.2), apportioned by
/// their relative complexity.
pub fn paper_modules() -> Vec<CodeModule> {
    vec![
        CodeModule { name: "newview".into(), bytes: 60 * 1024 },
        CodeModule { name: "makenewz".into(), bytes: 40 * 1024 },
        CodeModule { name: "evaluate".into(), bytes: 17 * 1024 },
    ]
}

/// An LRU overlay manager over a fixed code budget.
#[derive(Debug, Clone)]
pub struct OverlayManager {
    modules: Vec<CodeModule>,
    budget: usize,
    /// Resident module indices, most recently used last.
    resident: Vec<usize>,
    faults: u64,
    calls: u64,
    bytes_reloaded: u64,
}

impl OverlayManager {
    /// Create a manager. Panics if any single module exceeds the budget
    /// (it could never run).
    pub fn new(modules: Vec<CodeModule>, budget: usize) -> OverlayManager {
        for m in &modules {
            assert!(
                m.bytes <= budget,
                "module {} ({} B) cannot fit the {} B code budget",
                m.name,
                m.bytes,
                budget
            );
        }
        OverlayManager {
            modules,
            budget,
            resident: Vec::new(),
            faults: 0,
            calls: 0,
            bytes_reloaded: 0,
        }
    }

    fn resident_bytes(&self) -> usize {
        self.resident.iter().map(|&i| self.modules[i].bytes).sum()
    }

    /// Record a call into `module`. Returns the bytes reloaded (0 on a hit).
    pub fn call(&mut self, module: usize) -> usize {
        assert!(module < self.modules.len());
        self.calls += 1;
        if let Some(pos) = self.resident.iter().position(|&m| m == module) {
            // Hit: refresh recency.
            self.resident.remove(pos);
            self.resident.push(module);
            return 0;
        }
        // Fault: evict LRU modules until the new one fits.
        let need = self.modules[module].bytes;
        while self.resident_bytes() + need > self.budget {
            self.resident.remove(0);
        }
        self.resident.push(module);
        self.faults += 1;
        self.bytes_reloaded += need as u64;
        need
    }

    /// (calls, faults, bytes reloaded) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.calls, self.faults, self.bytes_reloaded)
    }

    /// Fault rate so far.
    pub fn fault_rate(&self) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        self.faults as f64 / self.calls as f64
    }
}

/// Cycles to stream `bytes` of code into local store as a DMA list of
/// maximal transfers.
pub fn reload_cycles(bytes: usize, dma: &DmaCosts) -> Cycles {
    if bytes == 0 {
        return 0;
    }
    let full = bytes / MAX_TRANSFER;
    let rest = bytes % MAX_TRANSFER;
    let mut cycles = full as Cycles * transfer_cycles(MAX_TRANSFER, dma);
    if rest > 0 {
        cycles += transfer_cycles(rest.div_ceil(16) * 16, dma);
    }
    cycles
}

/// Replay a call sequence (module indices) through an overlay manager and
/// return the total overlay overhead in cycles.
pub fn overlay_overhead(
    calls: impl IntoIterator<Item = usize>,
    modules: Vec<CodeModule>,
    budget: usize,
    dma: &DmaCosts,
) -> (OverlayManager, Cycles) {
    let mut mgr = OverlayManager::new(modules, budget);
    let mut cycles: Cycles = 0;
    for m in calls {
        let bytes = mgr.call(m);
        cycles += reload_cycles(bytes, dma);
    }
    (mgr, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_modules() -> Vec<CodeModule> {
        vec![
            CodeModule { name: "a".into(), bytes: 100 },
            CodeModule { name: "b".into(), bytes: 100 },
            CodeModule { name: "c".into(), bytes: 100 },
        ]
    }

    #[test]
    fn everything_resident_never_faults_after_warmup() {
        let mut mgr = OverlayManager::new(three_modules(), 300);
        // Cold faults only.
        assert!(mgr.call(0) > 0);
        assert!(mgr.call(1) > 0);
        assert!(mgr.call(2) > 0);
        for i in [0usize, 1, 2, 2, 1, 0] {
            assert_eq!(mgr.call(i), 0, "module {i} must be resident");
        }
        assert_eq!(mgr.stats().1, 3, "exactly the three cold faults");
    }

    #[test]
    fn lru_eviction_order() {
        // Budget for two of three: cycling a,b,c,a,b,c… faults every call.
        let mut mgr = OverlayManager::new(three_modules(), 200);
        for _ in 0..3 {
            for m in 0..3 {
                mgr.call(m);
            }
        }
        assert_eq!(mgr.fault_rate(), 1.0, "cyclic access thrashes LRU");

        // But an a,b,a,b… pattern only cold-faults.
        let mut mgr = OverlayManager::new(three_modules(), 200);
        for _ in 0..5 {
            mgr.call(0);
            mgr.call(1);
        }
        assert_eq!(mgr.stats().1, 2);
    }

    #[test]
    fn paper_footprint_fits_entirely() {
        // With the real 139 KB+ of code space, all three kernels stay
        // resident: 3 cold faults, nothing after.
        let modules = paper_modules();
        let total: usize = modules.iter().map(|m| m.bytes).sum();
        assert_eq!(total, 117 * 1024, "the paper's 117 KB figure");
        let calls = [0usize, 1, 2, 0, 0, 1, 0, 2, 0, 0, 1].into_iter();
        let (mgr, _) = overlay_overhead(calls, modules, 139 * 1024, &DmaCosts::default());
        assert_eq!(mgr.stats().1, 3);
    }

    #[test]
    fn reload_cost_scales_with_module_size() {
        let dma = DmaCosts::default();
        assert_eq!(reload_cycles(0, &dma), 0);
        let small = reload_cycles(17 * 1024, &dma);
        let large = reload_cycles(60 * 1024, &dma);
        assert!(large > small);
        // 60 KB = 3 × 16 KB + 12 KB: four transfers.
        assert_eq!(large, 3 * transfer_cycles(16 * 1024, &dma) + transfer_cycles(12 * 1024, &dma));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_module_rejected() {
        OverlayManager::new(three_modules(), 99);
    }

    #[test]
    fn unused_overlay_fault_rate_is_zero_not_nan() {
        // Regression: fault_rate() on a manager that never served a call
        // divides faults by calls — with calls == 0 it must return 0.0, not
        // NaN (NaN would poison any report arithmetic built on top).
        let mgr = OverlayManager::new(three_modules(), 300);
        assert_eq!(mgr.stats(), (0, 0, 0));
        let rate = mgr.fault_rate();
        assert!(!rate.is_nan(), "unused overlay must not produce NaN");
        assert_eq!(rate, 0.0);

        // An empty replay through overlay_overhead hits the same path.
        let (mgr, cycles) =
            overlay_overhead(std::iter::empty(), three_modules(), 300, &DmaCosts::default());
        assert_eq!(cycles, 0);
        assert_eq!(mgr.fault_rate(), 0.0);
    }
}
