//! SPE local store accounting.
//!
//! Each SPE has 256 KB of software-managed local storage holding *both* code
//! and data (paper §4). The port keeps all three offloaded functions
//! resident (117 KB of code, §5.2), leaving 139 KB for stack, heap and the
//! 2 KB strip-mining buffers (§5.2.4). This module enforces that budget: an
//! offload plan whose code + buffers exceed the store is rejected, exactly
//! the constraint that forced the paper's small-buffer recursion design.

use std::collections::HashMap;

/// Code footprint of the three offloaded functions in the paper (§5.2):
/// 117 KB total, leaving 139 KB free.
pub const PAPER_CODE_FOOTPRINT: usize = 117 * 1024;

/// The 2 KB likelihood-vector strip-mining buffer of §5.2.4.
pub const PAPER_STRIP_BUFFER: usize = 2 * 1024;

/// Errors from local-store allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalStoreError {
    /// The requested allocation does not fit.
    OutOfMemory { requested: usize, free: usize },
    /// An allocation label was reused.
    DuplicateLabel(String),
    /// Freeing an unknown label.
    UnknownLabel(String),
}

impl std::fmt::Display for LocalStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalStoreError::OutOfMemory { requested, free } => {
                write!(f, "local store exhausted: requested {requested} bytes, {free} free")
            }
            LocalStoreError::DuplicateLabel(l) => write!(f, "allocation {l:?} already exists"),
            LocalStoreError::UnknownLabel(l) => write!(f, "no allocation named {l:?}"),
        }
    }
}

impl std::error::Error for LocalStoreError {}

/// A labelled-region allocator over one SPE's local store.
#[derive(Debug, Clone)]
pub struct LocalStore {
    capacity: usize,
    used: usize,
    regions: HashMap<String, usize>,
}

impl LocalStore {
    /// An empty local store of the given capacity.
    pub fn new(capacity: usize) -> LocalStore {
        LocalStore { capacity, used: 0, regions: HashMap::new() }
    }

    /// The Cell's 256 KB store.
    pub fn cell() -> LocalStore {
        LocalStore::new(256 * 1024)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// Allocate a labelled region. All sizes are rounded up to 16 bytes —
    /// the MFC's quadword alignment unit.
    pub fn alloc(&mut self, label: &str, bytes: usize) -> Result<(), LocalStoreError> {
        let bytes = bytes.div_ceil(16) * 16;
        if self.regions.contains_key(label) {
            return Err(LocalStoreError::DuplicateLabel(label.to_string()));
        }
        if bytes > self.free() {
            return Err(LocalStoreError::OutOfMemory { requested: bytes, free: self.free() });
        }
        self.regions.insert(label.to_string(), bytes);
        self.used += bytes;
        Ok(())
    }

    /// Free a labelled region.
    pub fn dealloc(&mut self, label: &str) -> Result<(), LocalStoreError> {
        match self.regions.remove(label) {
            Some(bytes) => {
                self.used -= bytes;
                Ok(())
            }
            None => Err(LocalStoreError::UnknownLabel(label.to_string())),
        }
    }

    /// Size of a named region, if present.
    pub fn region(&self, label: &str) -> Option<usize> {
        self.regions.get(label).copied()
    }
}

/// The paper's resident-offload memory plan: all three kernels' code plus
/// double-buffered strip-mining buffers and working state. Returns the
/// configured store, or an error if the plan cannot fit.
pub fn paper_offload_plan(double_buffered: bool) -> Result<LocalStore, LocalStoreError> {
    let mut ls = LocalStore::cell();
    ls.alloc("code:newview+makenewz+evaluate", PAPER_CODE_FOOTPRINT)?;
    // Strip-mine buffers: one per likelihood-vector operand (left, right,
    // out), doubled when double buffering.
    let sets = if double_buffered { 2 } else { 1 };
    for set in 0..sets {
        for operand in ["left", "right", "out"] {
            ls.alloc(&format!("buf{set}:{operand}"), PAPER_STRIP_BUFFER)?;
        }
    }
    // Stack + heap + static data reservation.
    ls.alloc("stack+heap", 64 * 1024)?;
    Ok(ls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_cycle() {
        let mut ls = LocalStore::new(1024);
        ls.alloc("a", 100).unwrap();
        assert_eq!(ls.region("a"), Some(112), "rounded to 16-byte quadwords");
        assert_eq!(ls.used(), 112);
        ls.dealloc("a").unwrap();
        assert_eq!(ls.used(), 0);
    }

    #[test]
    fn rejects_overflow() {
        let mut ls = LocalStore::new(256);
        ls.alloc("a", 200).unwrap();
        let err = ls.alloc("b", 100).unwrap_err();
        assert!(matches!(err, LocalStoreError::OutOfMemory { .. }));
    }

    #[test]
    fn rejects_duplicates_and_unknown_frees() {
        let mut ls = LocalStore::new(1024);
        ls.alloc("x", 16).unwrap();
        assert_eq!(ls.alloc("x", 16), Err(LocalStoreError::DuplicateLabel("x".into())));
        assert_eq!(ls.dealloc("y"), Err(LocalStoreError::UnknownLabel("y".into())));
    }

    #[test]
    fn paper_plan_fits_with_room_to_spare() {
        // §5.2: 117 KB of code "fit in the local storage and still leave
        // 139 KB free for stack, heap and static data".
        let ls = paper_offload_plan(true).expect("the paper's plan fits");
        assert!(ls.free() > 60 * 1024, "free = {}", ls.free());
        let without_dbuf = paper_offload_plan(false).unwrap();
        assert!(without_dbuf.used() < ls.used());
    }

    #[test]
    fn oversized_code_does_not_fit() {
        // A hypothetical 300 KB code module must be rejected — this is why
        // arbitrary function offloading needs overlays (§5.2.4).
        let mut ls = LocalStore::cell();
        let err = ls.alloc("code:everything", 300 * 1024).unwrap_err();
        assert!(matches!(err, LocalStoreError::OutOfMemory { .. }));
    }
}
