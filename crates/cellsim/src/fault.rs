//! Deterministic fault injection for the simulated Cell.
//!
//! The paper's blade is assumed perfectly reliable: every DMA lands, every
//! mailbox message arrives, every SPE finishes its offload. A production
//! system cannot assume any of that, so the simulator can now inject faults
//! from a [`FaultPlan`]: DMA transfer failures and timeouts, dropped or
//! corrupted PPE↔SPE signals, transient SPE stalls, and permanent SPE death
//! at chosen cycle points.
//!
//! Everything is **counter-based and seed-driven**: a fault decision is a
//! pure function of `(seed, stream, index, attempt, site)`, hashed through
//! splitmix64. No RNG state is carried between draws, so any component can
//! ask "does this offload fault?" in any order and two simulations with the
//! same plan replay the exact same fault history — the property the
//! determinism tests in `tests/robustness.rs` lock down.

use crate::time::Cycles;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A DMA transfer fails outright (MFC tag status reports an error).
    DmaFailure,
    /// A DMA transfer hangs and is only detected by timeout.
    DmaTimeout,
    /// A mailbox/flag signal never arrives.
    SignalDropped,
    /// A signal arrives with a corrupted payload (caught by validation).
    SignalCorrupted,
    /// The SPE stalls transiently (e.g. livelocked channel) but recovers.
    SpeStall,
    /// The SPE dies permanently.
    SpeDeath,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::DmaFailure => "dma-failure",
            FaultKind::DmaTimeout => "dma-timeout",
            FaultKind::SignalDropped => "signal-dropped",
            FaultKind::SignalCorrupted => "signal-corrupted",
            FaultKind::SpeStall => "spe-stall",
            FaultKind::SpeDeath => "spe-death",
        };
        f.write_str(s)
    }
}

/// A scheduled permanent SPE failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeDeath {
    /// Absolute SPE index on the machine.
    pub spe: usize,
    /// Simulation time at which the SPE stops responding.
    pub at: Cycles,
}

/// Capped exponential backoff between retry attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Cycles,
    /// Upper bound on any single delay.
    pub cap: Cycles,
    /// Total attempts before the offload is given up and re-dispatched.
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff { base: 1_000, cap: 64_000, max_attempts: 5 }
    }
}

impl Backoff {
    /// Delay charged after failed attempt `attempt` (0-based):
    /// `min(base · 2^attempt, cap)`.
    pub fn delay(&self, attempt: u32) -> Cycles {
        if attempt >= 64 {
            return self.cap;
        }
        self.base.checked_mul(1u64 << attempt).unwrap_or(self.cap).min(self.cap)
    }
}

/// A deterministic, seed-driven fault schedule.
///
/// Rates are per-*site* probabilities in `[0, 1]`: each offload attempt
/// draws once per fault category. [`FaultPlan::none`] injects nothing and
/// is guaranteed to leave every consumer bit-identical to the fault-free
/// code path.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Probability that a DMA transfer attempt fails outright.
    pub dma_failure_rate: f64,
    /// Probability that a DMA transfer attempt hangs until timeout.
    pub dma_timeout_rate: f64,
    /// Probability that a signal is dropped.
    pub signal_drop_rate: f64,
    /// Probability that a signal payload is corrupted.
    pub signal_corrupt_rate: f64,
    /// Probability that a successful offload still suffers a transient stall.
    pub stall_rate: f64,
    /// Cycles lost to one transient stall.
    pub stall_cycles: Cycles,
    /// Cycles before a hung transfer / dropped signal is declared lost.
    pub detect_timeout: Cycles,
    /// Retry policy for failed attempts.
    pub backoff: Backoff,
    /// Scheduled permanent SPE deaths.
    pub deaths: Vec<SpeDeath>,
    /// Slowdown factor when offloaded work degrades to PPE-only execution
    /// (the PPE runs the scalar kernel; calibrated loosely to Table 1a's
    /// PPE-only vs offloaded gap).
    pub ppe_fallback_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no probabilistic faults, no deaths. Consumers must
    /// behave bit-identically to their fault-free paths under this plan.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dma_failure_rate: 0.0,
            dma_timeout_rate: 0.0,
            signal_drop_rate: 0.0,
            signal_corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall_cycles: 50_000,
            detect_timeout: 20_000,
            backoff: Backoff::default(),
            deaths: Vec::new(),
            ppe_fallback_factor: 2.5,
        }
    }

    /// A plan applying `rate` uniformly to every probabilistic category.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} outside [0, 1]");
        FaultPlan {
            seed,
            dma_failure_rate: rate,
            dma_timeout_rate: rate,
            signal_drop_rate: rate,
            signal_corrupt_rate: rate,
            stall_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// Add a scheduled permanent SPE death.
    pub fn with_death(mut self, spe: usize, at: Cycles) -> FaultPlan {
        self.deaths.push(SpeDeath { spe, at });
        self
    }

    /// True when the plan can never inject anything: consumers use this to
    /// short-circuit straight onto the fault-free (bit-exact) path.
    pub fn is_inert(&self) -> bool {
        self.dma_failure_rate == 0.0
            && self.dma_timeout_rate == 0.0
            && self.signal_drop_rate == 0.0
            && self.signal_corrupt_rate == 0.0
            && self.stall_rate == 0.0
            && self.deaths.is_empty()
    }

    /// A uniform draw in `[0, 1)` for the given site. `stream` identifies
    /// the drawing component (e.g. a worker id), `index` the operation
    /// within the stream, `attempt` the retry, and `salt` the category.
    fn draw(&self, stream: u64, index: u64, attempt: u32, salt: u64) -> f64 {
        let mut x = self.seed ^ salt;
        x = splitmix64(x);
        x ^= stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = splitmix64(x);
        x ^= index.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= (attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
        let bits = splitmix64(x);
        // 53 high bits → uniform double in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does this DMA transfer attempt fault, and how?
    pub fn dma_fault(&self, stream: u64, index: u64, attempt: u32) -> Option<FaultKind> {
        if self.draw(stream, index, attempt, SALT_DMA_FAIL) < self.dma_failure_rate {
            return Some(FaultKind::DmaFailure);
        }
        if self.draw(stream, index, attempt, SALT_DMA_HANG) < self.dma_timeout_rate {
            return Some(FaultKind::DmaTimeout);
        }
        None
    }

    /// Does this signal round trip fault, and how?
    pub fn signal_fault(&self, stream: u64, index: u64, attempt: u32) -> Option<FaultKind> {
        if self.draw(stream, index, attempt, SALT_SIG_DROP) < self.signal_drop_rate {
            return Some(FaultKind::SignalDropped);
        }
        if self.draw(stream, index, attempt, SALT_SIG_CORRUPT) < self.signal_corrupt_rate {
            return Some(FaultKind::SignalCorrupted);
        }
        None
    }

    /// Transient stall on an otherwise successful offload: the cycles lost,
    /// if one strikes.
    pub fn stall(&self, stream: u64, index: u64) -> Option<Cycles> {
        (self.draw(stream, index, 0, SALT_STALL) < self.stall_rate).then_some(self.stall_cycles)
    }

    /// Time at which `spe` dies permanently, if the plan schedules one.
    pub fn death_time(&self, spe: usize) -> Option<Cycles> {
        self.deaths.iter().filter(|d| d.spe == spe).map(|d| d.at).min()
    }

    /// Is `spe` dead at time `now`?
    pub fn dead_at(&self, spe: usize, now: Cycles) -> bool {
        self.death_time(spe).is_some_and(|at| at <= now)
    }

    /// Cycle cost of detecting one fault of the given kind: an outright DMA
    /// failure is reported immediately by the MFC tag status; everything
    /// else is only discovered by timeout.
    pub fn detect_cost(&self, kind: FaultKind) -> Cycles {
        match kind {
            FaultKind::DmaFailure => 0,
            _ => self.detect_timeout,
        }
    }

    /// Walk one complete offload through the fault/retry state machine:
    /// signal and DMA draws per attempt, capped exponential backoff between
    /// attempts, an optional transient stall on the successful attempt.
    ///
    /// The returned [`Recovery`] is everything a scheduler needs: how many
    /// faults were injected, how many retries were paid, the extra cycles to
    /// charge, and whether the offload exhausted its attempts (`gave_up`) —
    /// in which case the caller re-dispatches the work elsewhere.
    pub fn offload_recovery(&self, stream: u64, index: u64) -> Recovery {
        let mut rec = Recovery::default();
        if self.is_inert() {
            return rec;
        }
        for attempt in 0..self.backoff.max_attempts {
            let fault = self
                .signal_fault(stream, index, attempt)
                .or_else(|| self.dma_fault(stream, index, attempt));
            let Some(kind) = fault else {
                if let Some(stall) = self.stall(stream, index) {
                    rec.injected += 1;
                    rec.extra_cycles += stall;
                }
                return rec;
            };
            rec.injected += 1;
            if rec.first_fault.is_none() {
                rec.first_fault = Some(kind);
            }
            rec.extra_cycles += self.detect_cost(kind) + self.backoff.delay(attempt);
            if attempt + 1 == self.backoff.max_attempts {
                rec.gave_up = true;
            } else {
                rec.retries += 1;
            }
        }
        rec
    }
}

const SALT_DMA_FAIL: u64 = 0xd31a_0001;
const SALT_DMA_HANG: u64 = 0xd31a_0002;
const SALT_SIG_DROP: u64 = 0x5160_0001;
const SALT_SIG_CORRUPT: u64 = 0x5160_0002;
const SALT_STALL: u64 = 0x57a1_0001;

/// What one offload went through under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Faults injected across all attempts (including a stall, if any).
    pub injected: u32,
    /// Retries actually paid (a gave-up final attempt is not a retry).
    pub retries: u32,
    /// Extra cycles charged: detection timeouts, backoff delays, stalls.
    pub extra_cycles: Cycles,
    /// All attempts exhausted: the caller must re-dispatch the work.
    pub gave_up: bool,
    /// The first fault encountered, if any.
    pub first_fault: Option<FaultKind>,
}

/// Aggregated fault accounting for one simulation, threaded through
/// `SimOutcome` so degradation shows up next to makespans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Fault events injected.
    pub injected: u64,
    /// Offload retries paid.
    pub retries: u64,
    /// Offloads whose attempts were exhausted and had to be re-dispatched.
    pub redispatches: u64,
    /// Workers that fell back to PPE-only execution.
    pub degradations: u64,
    /// SPEs removed from service (scheduled deaths + repeat offenders).
    pub blacklisted: u64,
    /// Extra cycles charged for detection, backoff, stalls, and fallback.
    pub penalty_cycles: Cycles,
}

impl FaultReport {
    /// Accumulate another report (e.g. an MGPS tail phase) into this one.
    pub fn merge(&mut self, other: &FaultReport) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.redispatches += other.redispatches;
        self.degradations += other.degradations;
        self.blacklisted += other.blacklisted;
        self.penalty_cycles += other.penalty_cycles;
    }

    /// True when nothing at all happened.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }
}

/// The splitmix64 finalizer: a fast, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        for i in 0..100 {
            assert_eq!(plan.dma_fault(0, i, 0), None);
            assert_eq!(plan.signal_fault(3, i, 1), None);
            assert_eq!(plan.stall(1, i), None);
            assert_eq!(plan.offload_recovery(0, i), Recovery::default());
        }
        assert!(!plan.dead_at(0, u64::MAX / 2));
    }

    #[test]
    fn draws_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::uniform(42, 0.3);
        let b = FaultPlan::uniform(42, 0.3);
        let c = FaultPlan::uniform(43, 0.3);
        let hist = |p: &FaultPlan| -> Vec<Recovery> {
            (0..200).map(|i| p.offload_recovery(i % 8, i)).collect()
        };
        assert_eq!(hist(&a), hist(&b), "same seed must replay identically");
        assert_ne!(hist(&a), hist(&c), "different seed must diverge");
    }

    #[test]
    fn rates_shape_the_fault_frequency() {
        let low = FaultPlan::uniform(7, 0.01);
        let high = FaultPlan::uniform(7, 0.5);
        let count =
            |p: &FaultPlan| (0..1000u64).filter(|&i| p.dma_fault(0, i, 0).is_some()).count();
        let (lo, hi) = (count(&low), count(&high));
        assert!(lo < 60, "1% rate fired {lo}/1000 times");
        assert!(hi > 500, "50% rate (two categories) fired only {hi}/1000 times");
    }

    #[test]
    fn certain_faults_exhaust_attempts() {
        let plan = FaultPlan::uniform(1, 1.0);
        let rec = plan.offload_recovery(0, 0);
        assert!(rec.gave_up);
        assert_eq!(rec.injected, plan.backoff.max_attempts);
        assert_eq!(rec.retries, plan.backoff.max_attempts - 1);
        assert!(rec.extra_cycles > 0);
        // Rate 1.0 drops every signal first: that is the recorded kind.
        assert_eq!(rec.first_fault, Some(FaultKind::SignalDropped));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let b = Backoff { base: 1_000, cap: 10_000, max_attempts: 8 };
        assert_eq!(b.delay(0), 1_000);
        assert_eq!(b.delay(1), 2_000);
        assert_eq!(b.delay(3), 8_000);
        assert_eq!(b.delay(4), 10_000, "caps at 10k");
        assert_eq!(b.delay(63), 10_000);
        assert_eq!(b.delay(200), 10_000, "oversized shifts saturate at the cap");
    }

    #[test]
    fn death_schedule_is_a_step_function() {
        let plan = FaultPlan::none().with_death(3, 1_000).with_death(3, 500).with_death(5, 2_000);
        assert!(!plan.is_inert(), "deaths make a plan non-inert");
        assert_eq!(plan.death_time(3), Some(500), "earliest death wins");
        assert_eq!(plan.death_time(4), None);
        assert!(!plan.dead_at(3, 499));
        assert!(plan.dead_at(3, 500));
        assert!(plan.dead_at(5, 2_000));
        assert!(!plan.dead_at(5, 1_999));
    }

    #[test]
    fn stall_costs_show_up_in_recovery() {
        let mut plan = FaultPlan::none();
        plan.stall_rate = 1.0;
        plan.stall_cycles = 777;
        let rec = plan.offload_recovery(2, 9);
        assert_eq!(rec.extra_cycles, 777);
        assert_eq!(rec.injected, 1);
        assert!(!rec.gave_up);
        assert_eq!(rec.retries, 0);
    }

    #[test]
    fn report_merging_accumulates() {
        let mut a =
            FaultReport { injected: 3, retries: 2, penalty_cycles: 100, ..Default::default() };
        let b = FaultReport {
            injected: 1,
            redispatches: 1,
            blacklisted: 2,
            degradations: 1,
            retries: 0,
            penalty_cycles: 50,
        };
        a.merge(&b);
        assert_eq!(a.injected, 4);
        assert_eq!(a.redispatches, 1);
        assert_eq!(a.blacklisted, 2);
        assert_eq!(a.degradations, 1);
        assert_eq!(a.penalty_cycles, 150);
        assert!(!a.is_clean());
        assert!(FaultReport::default().is_clean());
    }
}
