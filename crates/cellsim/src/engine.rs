//! A minimal deterministic discrete-event engine.
//!
//! Schedulers (in the `raxml-cell` crate) push `(time, event)` pairs and pop
//! them in time order; ties break by insertion sequence, making every
//! simulation fully deterministic.

use crate::time::Cycles;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduling request that would rewind the clock, returned (with the
/// rejected event) by [`EventQueue::try_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePast {
    /// The requested (past) timestamp.
    pub at: Cycles,
    /// The queue's current time.
    pub now: Cycles,
}

impl std::fmt::Display for SchedulePast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot schedule at {} (now = {})", self.at, self.now)
    }
}

impl std::error::Error for SchedulePast {}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Cycles, u64, usize)>>,
    events: Vec<Option<E>>,
    seq: u64,
    now: Cycles,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), events: Vec::new(), seq: 0, now: 0 }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Schedule an event at an absolute time. Panics if the time is in the
    /// past — discrete-event simulations must never rewind.
    pub fn schedule(&mut self, at: Cycles, event: E) {
        if let Err((_, e)) = self.try_schedule(at, event) {
            panic!("{e}");
        }
    }

    /// Fallible [`EventQueue::schedule`]: a past timestamp returns the event
    /// back with a [`SchedulePast`] instead of panicking, so fault-recovery
    /// code can reroute work it computed against a stale clock.
    pub fn try_schedule(&mut self, at: Cycles, event: E) -> Result<(), (E, SchedulePast)> {
        if at < self.now {
            return Err((event, SchedulePast { at, now: self.now }));
        }
        let slot = self.events.len();
        self.events.push(Some(event));
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
        Ok(())
    }

    /// Schedule an event `delay` cycles from now.
    pub fn schedule_after(&mut self, delay: Cycles, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let Reverse((at, _, slot)) = self.heap.pop()?;
        self.now = at;
        let ev = self.events[slot].take().expect("event popped exactly once");
        Some((at, ev))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        q.pop();
        q.schedule_after(50, "y");
        assert_eq!(q.pop(), Some((150, "y")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        q.pop();
        q.schedule(50, "too late");
    }

    #[test]
    fn try_schedule_returns_past_events_instead_of_panicking() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        q.pop();
        let (event, err) = q.try_schedule(50, "too late").unwrap_err();
        assert_eq!(event, "too late");
        assert_eq!(err, SchedulePast { at: 50, now: 100 });
        assert_eq!(err.to_string(), "cannot schedule at 50 (now = 100)");
        // The current time is legal (not in the past).
        assert!(q.try_schedule(100, "boundary").is_ok());
        assert_eq!(q.pop(), Some((100, "boundary")));
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7, 1);
        q.schedule(3, 2);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_scheduling_stays_deterministic() {
        // Simulate a ping-pong: each pop schedules a follow-up.
        let mut q = EventQueue::new();
        q.schedule(0, 0u64);
        let mut log = Vec::new();
        while let Some((t, id)) = q.pop() {
            log.push((t, id));
            if id < 5 {
                q.schedule_after(10, id + 1);
            }
        }
        assert_eq!(log, vec![(0, 0), (10, 1), (20, 2), (30, 3), (40, 4), (50, 5)]);
    }
}
