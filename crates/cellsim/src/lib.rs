//! # cellsim — a Cell Broadband Engine performance simulator
//!
//! The RAxML-Cell paper (Blagojevic et al., IPPS 2007) runs on a real
//! dual-Cell blade. This crate is the reproduction's hardware substitute: a
//! discrete-event performance model of one Cell processor —
//!
//! * a PPE (64-bit PowerPC, 2-way SMT) that runs the control program,
//! * eight SPEs, each with a 256 KB software-managed local store
//!   ([`localstore`]), a decrementer, and a Memory Flow Controller,
//! * MFC DMA transfers with the architecture's size/alignment rules and a
//!   double-buffering pipeline model ([`dma`]),
//! * the Element Interconnect Bus with its 204.8 GB/s aggregate bandwidth
//!   ([`eib`]),
//! * PPE↔SPE signalling via mailboxes or direct memory-to-memory writes
//!   ([`comm`]),
//! * and a calibrated per-operation cycle cost model ([`cost`]) that prices
//!   real kernel-invocation traces recorded by the `phylo` crate.
//!
//! The simulator does **not** execute SPE code; it *prices* the actual
//! likelihood workload. The `phylo` engine records every `newview` /
//! `evaluate` / `makenewz` invocation with its true operation counts
//! (patterns, rate categories, `exp` calls, scaling conditionals, DMA
//! bytes); [`cost::CostModel::kernel_cost`] converts each invocation into
//! cycles under a given optimization configuration. Scheduling (which SPE
//! runs what, when) is simulated by the `raxml-cell` crate on top of the
//! event engine ([`engine`]).
//!
//! ## Calibration
//!
//! Cost constants are calibrated once against the component measurements the
//! paper publishes for the `42_SC` workload (§5.2.1–5.2.7): libm `exp` = 50%
//! of naive SPE time, the scaling conditional = 45% of `newview`, DMA wait =
//! 11.4%, the two likelihood loops 69.4% → 57% after vectorization, and the
//! per-optimization deltas of Tables 1–7. See [`cost`] for the derivations.

pub mod comm;
pub mod cost;
pub mod dma;
pub mod eib;
pub mod engine;
pub mod fault;
pub mod localstore;
pub mod machine;
pub mod overlay;
pub mod spe;
pub mod stats;
pub mod time;
pub mod tracelog;

pub use comm::SignalKind;
pub use cost::{CondKind, CostModel, ExecutionFlags, ExpKind, KernelCost, Location};
pub use engine::EventQueue;
pub use fault::{FaultKind, FaultPlan, FaultReport, SpeDeath};
pub use machine::MachineConfig;
pub use time::Cycles;
pub use tracelog::{EventData, TraceEvent, TraceLog, TraceSummary};
