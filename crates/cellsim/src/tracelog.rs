//! Unified structured event sink for the whole simulation stack.
//!
//! Every layer — the discrete-event scheduler core, the DMA/EIB/comm
//! models, the EDTLP/LLP/MGPS schedulers, and the phylo search drivers —
//! emits timestamped spans and counters into one [`TraceLog`]. Two
//! exporters turn a log into artifacts:
//!
//! * [`TraceLog::to_chrome_trace`] — Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing` for a per-SPE timeline view,
//! * [`TraceLog::to_metrics_jsonl`] — line-delimited JSON metric
//!   snapshots for machine consumption.
//!
//! [`TraceLog::summary`] independently re-derives the per-SPE busy/stall
//! accounting from the recorded spans, which makes the simulator's
//! [`crate::stats::SimStats`] numbers *self-checking*: a test can assert
//! that what the stats counted is exactly what the timeline shows.
//!
//! ## Overhead contract
//!
//! A disabled log ([`TraceLog::disabled`]) is inert: every emit method
//! early-returns before touching the event buffer, so the instrumented hot
//! paths pay one branch and zero heap operations (proven by the
//! `trace_overhead` integration test with a counting allocator). All event
//! payloads use `Copy` data and `&'static str` names — recording itself
//! never formats or allocates per event beyond the buffer's amortized
//! growth.

use crate::time::Cycles;

/// What happened at one point (or over one span) of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventData {
    /// One SPE's share of an offloaded burst: `busy` compute cycles and
    /// `dma` stall cycles charged to SPE `spe` over a wall window of `dur`.
    SpeBurst { spe: u32, worker: u32, dur: Cycles, busy: Cycles, dma: Cycles },
    /// A PPE hardware-thread grant to `worker` for `dur` cycles.
    /// `fallback` marks degraded SPE work running on the PPE.
    PpeSpan { worker: u32, dur: Cycles, fallback: bool },
    /// Worker `worker` picked up job `job`.
    TaskStart { worker: u32, job: u32 },
    /// Worker `worker` finished job `job`.
    TaskComplete { worker: u32, job: u32 },
    /// One DMA transfer (including retries) on stream `stream`.
    DmaTransfer { stream: u32, bytes: u64, dur: Cycles, attempts: u32 },
    /// One PPE↔SPE signalling round trip (including retries).
    Signal { stream: u32, dur: Cycles, attempts: u32 },
    /// A fault-machinery event: `kind` is one of `"retry"`, `"redispatch"`,
    /// `"blacklist"`, `"degradation"`, `"dma_fault"`, `"signal_fault"`;
    /// `unit` is the SPE/worker/stream it concerns.
    Fault { kind: &'static str, unit: u32 },
    /// A named scheduler phase (e.g. an MGPS EDTLP batch) spanning `dur`.
    PhaseSpan { name: &'static str, dur: Cycles },
    /// One SPR search round mapped onto the simulated timeline.
    RoundSpan { round: u32, dur: Cycles },
    /// A named metric snapshot.
    Counter { name: &'static str, value: f64 },
}

/// One recorded event: an absolute timestamp plus its payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Absolute simulated time in cycles (the log's offset already applied).
    pub at: Cycles,
    pub data: EventData,
}

/// The structured event sink. See the module docs for the overhead
/// contract.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    /// Added to every emitted timestamp — lets multi-segment simulations
    /// (MGPS's EDTLP batch followed by its LLP tail, which restarts the DES
    /// clock at zero) stitch into one timeline.
    offset: Cycles,
    events: Vec<TraceEvent>,
    /// Latest value per distinct counter name, maintained at emit time so
    /// [`TraceLog::last_counter`] and [`TraceLog::counters_snapshot`] never
    /// scan the event buffer. A `Vec` rather than a map: counter names are
    /// `&'static str` literals and a trace has a handful of distinct ones,
    /// so the linear probe on emit is cheaper than hashing.
    counters: Vec<(&'static str, f64)>,
}

impl TraceLog {
    /// An inert log: every emit is a no-op that never touches the heap.
    pub fn disabled() -> TraceLog {
        TraceLog::default()
    }

    /// A recording log.
    pub fn enabled() -> TraceLog {
        TraceLog { enabled: true, ..TraceLog::default() }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Set the base offset added to subsequently emitted timestamps.
    pub fn set_offset(&mut self, offset: Cycles) {
        self.offset = offset;
    }

    /// The current timestamp offset.
    pub fn offset(&self) -> Cycles {
        self.offset
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events (keeps mode and offset).
    pub fn clear(&mut self) {
        self.events.clear();
        self.counters.clear();
    }

    /// Emit one event at relative time `at` (the offset is applied here).
    #[inline]
    pub fn emit(&mut self, at: Cycles, data: EventData) {
        if !self.enabled {
            return;
        }
        if let EventData::Counter { name, value } = data {
            match self.counters.iter_mut().find(|(n, _)| *n == name) {
                Some(entry) => entry.1 = value,
                None => self.counters.push((name, value)),
            }
        }
        self.events.push(TraceEvent { at: self.offset + at, data });
    }

    /// An SPE's share of an offloaded burst.
    #[inline]
    pub fn spe_burst(
        &mut self,
        at: Cycles,
        spe: usize,
        worker: usize,
        dur: Cycles,
        busy: Cycles,
        dma: Cycles,
    ) {
        self.emit(
            at,
            EventData::SpeBurst { spe: spe as u32, worker: worker as u32, dur, busy, dma },
        );
    }

    /// A PPE hardware-thread grant.
    #[inline]
    pub fn ppe_span(&mut self, at: Cycles, worker: usize, dur: Cycles, fallback: bool) {
        self.emit(at, EventData::PpeSpan { worker: worker as u32, dur, fallback });
    }

    /// A task dispatch instant.
    #[inline]
    pub fn task_start(&mut self, at: Cycles, worker: usize, job: usize) {
        self.emit(at, EventData::TaskStart { worker: worker as u32, job: job as u32 });
    }

    /// A task completion instant.
    #[inline]
    pub fn task_complete(&mut self, at: Cycles, worker: usize, job: usize) {
        self.emit(at, EventData::TaskComplete { worker: worker as u32, job: job as u32 });
    }

    /// A task that completed *without* producing a result (panicked or was
    /// failed by fault injection) — recorded as a `"job-failure"` fault
    /// instant on `worker`, so failed jobs show up in the fault lane and in
    /// [`TraceSummary::faults`]. Emitted by the farm-tier bridge alongside
    /// the ordinary [`TraceLog::task_complete`].
    #[inline]
    pub fn task_failed(&mut self, at: Cycles, worker: usize) {
        self.emit(at, EventData::Fault { kind: "job-failure", unit: worker as u32 });
    }

    /// A DMA transfer span.
    #[inline]
    pub fn dma_transfer(
        &mut self,
        at: Cycles,
        stream: u64,
        bytes: u64,
        dur: Cycles,
        attempts: u32,
    ) {
        self.emit(at, EventData::DmaTransfer { stream: stream as u32, bytes, dur, attempts });
    }

    /// A signalling round-trip span.
    #[inline]
    pub fn signal(&mut self, at: Cycles, stream: u64, dur: Cycles, attempts: u32) {
        self.emit(at, EventData::Signal { stream: stream as u32, dur, attempts });
    }

    /// A fault-machinery instant.
    #[inline]
    pub fn fault(&mut self, at: Cycles, kind: &'static str, unit: usize) {
        self.emit(at, EventData::Fault { kind, unit: unit as u32 });
    }

    /// A named scheduler-phase span.
    #[inline]
    pub fn phase_span(&mut self, at: Cycles, name: &'static str, dur: Cycles) {
        self.emit(at, EventData::PhaseSpan { name, dur });
    }

    /// An SPR-round span.
    #[inline]
    pub fn round_span(&mut self, at: Cycles, round: u32, dur: Cycles) {
        self.emit(at, EventData::RoundSpan { round, dur });
    }

    /// A metric snapshot.
    #[inline]
    pub fn counter(&mut self, at: Cycles, name: &'static str, value: f64) {
        self.emit(at, EventData::Counter { name, value });
    }

    /// Re-derive aggregate accounting from the recorded spans.
    pub fn summary(&self, n_spes: usize) -> TraceSummary {
        let mut s = TraceSummary {
            spe_busy: vec![0; n_spes],
            spe_stalled: vec![0; n_spes],
            spe_bursts: vec![0; n_spes],
            ppe_busy: 0,
            end: 0,
            faults: 0,
        };
        for ev in &self.events {
            match ev.data {
                EventData::SpeBurst { spe, dur, busy, dma, .. } => {
                    let i = spe as usize;
                    if i < n_spes {
                        s.spe_busy[i] += busy;
                        s.spe_stalled[i] += dma;
                        s.spe_bursts[i] += 1;
                    }
                    s.end = s.end.max(ev.at + dur);
                }
                EventData::PpeSpan { dur, .. } => {
                    s.ppe_busy += dur;
                    s.end = s.end.max(ev.at + dur);
                }
                EventData::DmaTransfer { dur, .. }
                | EventData::Signal { dur, .. }
                | EventData::PhaseSpan { dur, .. }
                | EventData::RoundSpan { dur, .. } => {
                    s.end = s.end.max(ev.at + dur);
                }
                EventData::Fault { .. } => {
                    s.faults += 1;
                    s.end = s.end.max(ev.at);
                }
                _ => s.end = s.end.max(ev.at),
            }
        }
        s
    }

    /// The last recorded value of counter `name`, if any. Served from the
    /// per-name index maintained at emit time — O(distinct counter names),
    /// not a reverse scan of the whole event buffer.
    pub fn last_counter(&self, name: &str) -> Option<f64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// The latest value of every distinct counter, in first-emission order.
    /// One slice borrow — the per-scrape export path reads every counter
    /// without touching the event buffer at all.
    pub fn counters_snapshot(&self) -> &[(&'static str, f64)] {
        &self.counters
    }

    /// Export as Chrome trace-event JSON (the object form with a
    /// `traceEvents` array), loadable in Perfetto and `chrome://tracing`.
    /// Timestamps convert from cycles to microseconds at `clock_hz`.
    ///
    /// Lane layout: tid 0..n = SPEs, tid 100+w = PPE grants per worker,
    /// tid 200+s = DMA/signal streams, tid 900+ = phases, rounds, faults.
    pub fn to_chrome_trace(&self, clock_hz: f64) -> String {
        let us = |cycles: Cycles| cycles as f64 / clock_hz * 1e6;
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"cellsim\"}}",
        );

        // Thread-name metadata for every lane that appears.
        let mut named: Vec<u32> = Vec::new();
        for ev in &self.events {
            let tid = lane_of(&ev.data);
            if !named.contains(&tid) {
                named.push(tid);
                out.push(',');
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                    lane_name(tid)
                ));
            }
        }

        for ev in &self.events {
            let tid = lane_of(&ev.data);
            let ts = us(ev.at);
            out.push(',');
            match ev.data {
                EventData::SpeBurst { worker, dur, busy, dma, .. } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\"name\":\"burst w{worker}\",\"args\":{{\"busy_cycles\":{busy},\"dma_stall_cycles\":{dma}}}}}",
                        us(dur)
                    ));
                }
                EventData::PpeSpan { worker, dur, fallback } => {
                    let name = if fallback { "ppe fallback" } else { "ppe" };
                    out.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\"name\":\"{name}\",\"args\":{{\"worker\":{worker}}}}}",
                        us(dur)
                    ));
                }
                EventData::TaskStart { worker, job } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":\"start job {job}\",\"args\":{{\"worker\":{worker}}}}}"
                    ));
                }
                EventData::TaskComplete { worker, job } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":\"complete job {job}\",\"args\":{{\"worker\":{worker}}}}}"
                    ));
                }
                EventData::DmaTransfer { bytes, dur, attempts, .. } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\"name\":\"dma\",\"args\":{{\"bytes\":{bytes},\"attempts\":{attempts}}}}}",
                        us(dur)
                    ));
                }
                EventData::Signal { dur, attempts, .. } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\"name\":\"signal\",\"args\":{{\"attempts\":{attempts}}}}}",
                        us(dur)
                    ));
                }
                EventData::Fault { kind, unit } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"s\":\"g\",\"name\":\"{kind}\",\"args\":{{\"unit\":{unit}}}}}"
                    ));
                }
                EventData::PhaseSpan { name, dur } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\"name\":\"{name}\",\"args\":{{}}}}",
                        us(dur)
                    ));
                }
                EventData::RoundSpan { round, dur } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\"name\":\"SPR round {round}\",\"args\":{{}}}}",
                        us(dur)
                    ));
                }
                EventData::Counter { name, value } => {
                    out.push_str(&format!(
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\",\"args\":{{\"value\":{}}}}}",
                        json_f64(value)
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Export metric snapshots as line-delimited JSON: one summary line per
    /// SPE, one for the PPE, one per recorded counter, and a trailer with
    /// the derived makespan and utilization figures.
    pub fn to_metrics_jsonl(&self, clock_hz: f64, n_spes: usize) -> String {
        let s = self.summary(n_spes);
        let mut out = String::new();
        for i in 0..n_spes {
            out.push_str(&format!(
                "{{\"metric\":\"spe\",\"spe\":{i},\"busy_cycles\":{},\"dma_stall_cycles\":{},\"bursts\":{},\"utilization\":{},\"stall_fraction\":{}}}\n",
                s.spe_busy[i],
                s.spe_stalled[i],
                s.spe_bursts[i],
                json_f64(s.utilization(i)),
                json_f64(s.stall_fraction(i)),
            ));
        }
        out.push_str(&format!("{{\"metric\":\"ppe\",\"busy_cycles\":{}}}\n", s.ppe_busy));
        for ev in &self.events {
            if let EventData::Counter { name, value } = ev.data {
                out.push_str(&format!(
                    "{{\"metric\":\"counter\",\"name\":\"{name}\",\"at_cycles\":{},\"value\":{}}}\n",
                    ev.at,
                    json_f64(value)
                ));
            }
        }
        out.push_str(&format!(
            "{{\"metric\":\"totals\",\"makespan_cycles\":{},\"makespan_seconds\":{},\"events\":{},\"faults\":{},\"mean_spe_utilization\":{},\"mean_spe_stall_fraction\":{}}}\n",
            s.end,
            json_f64(s.end as f64 / clock_hz),
            self.events.len(),
            s.faults,
            json_f64(s.mean_utilization()),
            json_f64(s.mean_stall_fraction()),
        ));
        out
    }
}

/// Chrome-trace lane (tid) for an event.
fn lane_of(data: &EventData) -> u32 {
    match *data {
        EventData::SpeBurst { spe, .. } => spe,
        EventData::PpeSpan { worker, .. }
        | EventData::TaskStart { worker, .. }
        | EventData::TaskComplete { worker, .. } => 100 + worker,
        EventData::DmaTransfer { stream, .. } | EventData::Signal { stream, .. } => 200 + stream,
        EventData::PhaseSpan { .. } => 900,
        EventData::RoundSpan { .. } => 901,
        EventData::Fault { .. } => 902,
        EventData::Counter { .. } => 903,
    }
}

/// Human-readable lane name for the thread-name metadata.
fn lane_name(tid: u32) -> String {
    match tid {
        0..=99 => format!("SPE{tid}"),
        100..=199 => format!("PPE worker {}", tid - 100),
        200..=899 => format!("stream {}", tid - 200),
        900 => "phases".to_string(),
        901 => "SPR rounds".to_string(),
        902 => "faults".to_string(),
        _ => "counters".to_string(),
    }
}

/// Render an `f64` as a JSON number (JSON has no NaN/inf — clamp to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Aggregates re-derived from a [`TraceLog`]'s spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Per-SPE busy (compute + signalling) cycles.
    pub spe_busy: Vec<Cycles>,
    /// Per-SPE DMA-stall cycles.
    pub spe_stalled: Vec<Cycles>,
    /// Per-SPE burst count.
    pub spe_bursts: Vec<u64>,
    /// Total PPE-thread grant cycles.
    pub ppe_busy: Cycles,
    /// Latest span end — the trace-derived makespan.
    pub end: Cycles,
    /// Fault instants recorded.
    pub faults: u64,
}

impl TraceSummary {
    /// Busy fraction of SPE `i` over the trace-derived makespan.
    pub fn utilization(&self, i: usize) -> f64 {
        if self.end == 0 {
            return 0.0;
        }
        self.spe_busy[i] as f64 / self.end as f64
    }

    /// DMA-stall fraction of SPE `i` over the trace-derived makespan.
    pub fn stall_fraction(&self, i: usize) -> f64 {
        if self.end == 0 {
            return 0.0;
        }
        self.spe_stalled[i] as f64 / self.end as f64
    }

    /// Mean SPE busy fraction (the trace-derived analogue of
    /// [`crate::stats::SimStats::spe_utilization`]).
    pub fn mean_utilization(&self) -> f64 {
        if self.end == 0 || self.spe_busy.is_empty() {
            return 0.0;
        }
        let busy: Cycles = self.spe_busy.iter().sum();
        busy as f64 / (self.end as f64 * self.spe_busy.len() as f64)
    }

    /// Mean SPE DMA-stall fraction.
    pub fn mean_stall_fraction(&self) -> f64 {
        if self.end == 0 || self.spe_stalled.is_empty() {
            return 0.0;
        }
        let stalled: Cycles = self.spe_stalled.iter().sum();
        stalled as f64 / (self.end as f64 * self.spe_stalled.len() as f64)
    }
}

/// Validate that `text` is one well-formed JSON value (with optional
/// trailing whitespace). A minimal recursive-descent checker — the build
/// environment has no JSON dependency, and the exporters above hand-roll
/// their output, so CI uses this to prove the artifacts actually parse.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    pos = parse_value(bytes, pos, 0)?;
    pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

/// Validate line-delimited JSON: every non-empty line is one JSON value.
pub fn validate_jsonl(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn parse_value(b: &[u8], pos: usize, depth: usize) -> Result<usize, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    match b.get(pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos += 1; // opening quote
    while pos < b.len() {
        match b[pos] {
            b'"' => return Ok(pos + 1),
            b'\\' => {
                match b.get(pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                    Some(b'u') => {
                        if b.len() < pos + 6
                            || !b[pos + 2..pos + 6].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                };
            }
            0x00..=0x1f => return Err(format!("raw control character in string at byte {pos}")),
            _ => pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let int_start = pos;
    while pos < b.len() && b[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        let frac_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == frac_start {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == exp_start {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(pos)
}

fn parse_object(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        pos = parse_string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = parse_value(b, pos, depth + 1)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = parse_value(b, pos, depth + 1)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::enabled();
        log.task_start(0, 0, 0);
        log.ppe_span(0, 0, 100, false);
        log.spe_burst(100, 0, 0, 900, 800, 100);
        log.spe_burst(100, 1, 0, 900, 800, 100);
        log.dma_transfer(150, 3, 2048, 928, 1);
        log.signal(1080, 3, 960, 1);
        log.fault(500, "retry", 1);
        log.phase_span(0, "EDTLP", 1000);
        log.round_span(0, 0, 1000);
        log.counter(1000, "eib_contention", 1.5);
        log.task_complete(1000, 0, 0);
        log
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        assert!(!log.is_enabled());
        log.spe_burst(0, 0, 0, 100, 90, 10);
        log.ppe_span(0, 0, 100, false);
        log.counter(0, "x", 1.0);
        assert!(log.is_empty());
        assert_eq!(log.summary(8).end, 0);
    }

    #[test]
    fn offset_stitches_segments() {
        let mut log = TraceLog::enabled();
        log.spe_burst(10, 0, 0, 90, 90, 0);
        log.set_offset(1000);
        log.spe_burst(10, 0, 0, 90, 90, 0);
        assert_eq!(log.events()[0].at, 10);
        assert_eq!(log.events()[1].at, 1010);
        let s = log.summary(1);
        assert_eq!(s.end, 1100);
        assert_eq!(s.spe_busy[0], 180);
    }

    #[test]
    fn summary_rederives_accounting() {
        let log = sample_log();
        let s = log.summary(8);
        assert_eq!(s.spe_busy[0], 800);
        assert_eq!(s.spe_stalled[0], 100);
        assert_eq!(s.spe_busy[1], 800);
        assert_eq!(s.spe_bursts[0], 1);
        assert_eq!(s.ppe_busy, 100);
        assert_eq!(s.faults, 1);
        assert_eq!(s.end, 1080 + 960);
        assert!(s.utilization(0) > 0.0);
        assert!(s.mean_utilization() > 0.0);
        assert_eq!(log.last_counter("eib_contention"), Some(1.5));
        assert_eq!(log.last_counter("missing"), None);
    }

    #[test]
    fn counter_index_tracks_latest_values() {
        let mut log = TraceLog::enabled();
        log.counter(10, "a", 1.0);
        log.counter(20, "b", 2.0);
        log.counter(30, "a", 3.0);
        assert_eq!(log.last_counter("a"), Some(3.0), "index holds the latest emission");
        assert_eq!(log.counters_snapshot(), &[("a", 3.0), ("b", 2.0)]);
        // The index agrees with a full scan of the event buffer.
        for &(name, value) in log.counters_snapshot() {
            let scanned = log
                .events()
                .iter()
                .rev()
                .find_map(|ev| match ev.data {
                    EventData::Counter { name: n, value } if n == name => Some(value),
                    _ => None,
                })
                .unwrap();
            assert_eq!(scanned, value);
        }
        log.clear();
        assert!(log.counters_snapshot().is_empty());
        assert_eq!(log.last_counter("a"), None);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let text = sample_log().to_chrome_trace(3.2e9);
        validate_json(&text).expect("chrome trace must parse");
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"ph\":\"M\""));
        assert!(text.contains("SPE0"));
        assert!(text.contains("SPR round 0"));
        assert!(text.contains("eib_contention"));
    }

    #[test]
    fn metrics_jsonl_is_valid_and_complete() {
        let text = sample_log().to_metrics_jsonl(3.2e9, 8);
        validate_jsonl(&text).expect("jsonl must parse");
        // 8 SPE lines + 1 PPE + 1 counter + 1 totals.
        assert_eq!(text.lines().count(), 11);
        assert!(text.contains("\"metric\":\"totals\""));
        assert!(text.contains("\"metric\":\"counter\""));
    }

    #[test]
    fn empty_log_exports_cleanly() {
        let log = TraceLog::enabled();
        validate_json(&log.to_chrome_trace(3.2e9)).unwrap();
        validate_jsonl(&log.to_metrics_jsonl(3.2e9, 8)).unwrap();
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"a\\u00e9\\n\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            "  [1, 2, 3]  ",
        ] {
            assert!(validate_json(good).is_ok(), "{good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "{} extra",
            "01a",
            "[1 2]",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
        assert!(validate_jsonl("{\"a\":1}\n{\"b\":2}\n").is_ok());
        assert!(validate_jsonl("{\"a\":1}\noops\n").is_err());
    }

    #[test]
    fn task_failed_lands_in_the_fault_lane() {
        let mut log = TraceLog::enabled();
        log.task_start(0, 2, 5);
        log.task_failed(10, 2);
        log.task_complete(10, 2, 5);
        let s = log.summary(1);
        assert_eq!(s.faults, 1);
        let text = log.to_chrome_trace(3.2e9);
        validate_json(&text).unwrap();
        assert!(text.contains("job-failure"));
        // Disabled logs stay inert.
        let mut off = TraceLog::disabled();
        off.task_failed(0, 0);
        assert!(off.is_empty());
    }

    #[test]
    fn clear_keeps_mode() {
        let mut log = sample_log();
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
        assert!(log.is_enabled());
    }
}
