//! PPE↔SPE signalling: mailboxes vs direct memory-to-memory writes.
//!
//! Paper §5.2.6: the first port signalled offloads through the SPE
//! mailboxes; replacing mailbox traffic with the PPE writing a flag directly
//! into SPE local store (and the SPE committing results directly to main
//! memory) improved whole-program time by 2–11%, with the benefit growing
//! with the number of active SPEs because the offloaded functions are
//! fine-grained (71 µs average for `newview`).

use crate::fault::FaultPlan;
use crate::time::Cycles;
use crate::tracelog::TraceLog;

/// How the PPE and an SPE signal each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignalKind {
    /// MMIO mailbox registers (the naive port).
    Mailbox,
    /// PPE writes a flag word into SPE local store; SPE commits results
    /// straight to main memory (§5.2.6).
    #[default]
    DirectMemory,
}

/// Signalling cost parameters (cycles at 3.2 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCosts {
    /// Full offload round trip via mailboxes: PPE MMIO write, SPE mailbox
    /// read, result mailbox write, PPE MMIO read. MMIO to an SPE's
    /// problem-state registers is slow (hundreds of ns each way);
    /// calibrated to ≈4.6 µs ≙ 14,850 cycles so that Table 6's 2–11%
    /// improvement falls out of the 42_SC trace.
    pub mailbox_roundtrip: Cycles,
    /// Round trip via direct memory: a cacheable store into local storage
    /// plus a busy-wait poll on the SPE — ≈0.3 µs ≙ 960 cycles.
    pub direct_roundtrip: Cycles,
}

impl Default for CommCosts {
    fn default() -> Self {
        CommCosts { mailbox_roundtrip: 14_850, direct_roundtrip: 960 }
    }
}

impl CommCosts {
    /// Round-trip cycles for one offload signal under the given mechanism.
    pub fn roundtrip(&self, kind: SignalKind) -> Cycles {
        match kind {
            SignalKind::Mailbox => self.mailbox_roundtrip,
            SignalKind::DirectMemory => self.direct_roundtrip,
        }
    }
}

/// A functional model of the mailbox/flag handshake, used to validate the
/// protocol logic the schedulers assume (signal → run → complete → ack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelState {
    /// No request pending.
    #[default]
    Idle,
    /// PPE has posted work; SPE has not picked it up.
    Posted,
    /// SPE is executing.
    Running,
    /// SPE finished; result not yet consumed by the PPE.
    Complete,
}

/// One PPE↔SPE signalling channel.
#[derive(Debug, Clone, Default)]
pub struct Channel {
    state: ChannelState,
    posted: u64,
    completed: u64,
}

impl Channel {
    /// PPE posts a work item. Returns false if the channel is busy (the
    /// paper's design never double-posts: one outstanding offload per SPE).
    pub fn post(&mut self) -> bool {
        if self.state != ChannelState::Idle {
            return false;
        }
        self.state = ChannelState::Posted;
        self.posted += 1;
        true
    }

    /// SPE picks up the posted work.
    pub fn accept(&mut self) -> bool {
        if self.state != ChannelState::Posted {
            return false;
        }
        self.state = ChannelState::Running;
        true
    }

    /// SPE completes the work.
    pub fn complete(&mut self) -> bool {
        if self.state != ChannelState::Running {
            return false;
        }
        self.state = ChannelState::Complete;
        self.completed += 1;
        true
    }

    /// PPE consumes the result, freeing the channel.
    pub fn consume(&mut self) -> bool {
        if self.state != ChannelState::Complete {
            return false;
        }
        self.state = ChannelState::Idle;
        true
    }

    /// Current protocol state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Items posted / completed so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.posted, self.completed)
    }
}

/// Outcome of a fault-aware signal round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalOutcome {
    /// Total cycles: every attempt plus detection and backoff on faults.
    pub cycles: Cycles,
    /// Round trips attempted (1 on the fault-free path).
    pub attempts: u32,
    /// Signals lost or corrupted along the way.
    pub faults: u32,
}

/// A signal that never got through: all retry attempts faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalError {
    pub attempts: u32,
    pub cycles: Cycles,
}

impl std::fmt::Display for SignalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "signal lost after {} attempts ({} cycles spent)", self.attempts, self.cycles)
    }
}

impl std::error::Error for SignalError {}

/// One offload signal round trip under a [`FaultPlan`]: dropped signals are
/// detected by timeout and resent after backoff; corrupted ones are caught
/// by payload validation and likewise retried. With an inert plan this is
/// exactly one [`CommCosts::roundtrip`].
pub fn roundtrip_with_faults(
    costs: &CommCosts,
    kind: SignalKind,
    plan: &FaultPlan,
    stream: u64,
    index: u64,
) -> Result<SignalOutcome, SignalError> {
    let per_attempt = costs.roundtrip(kind);
    let mut cycles: Cycles = 0;
    let mut faults = 0u32;
    let max = plan.backoff.max_attempts.max(1);
    for attempt in 0..max {
        cycles += per_attempt;
        match plan.signal_fault(stream, index, attempt) {
            None => return Ok(SignalOutcome { cycles, attempts: attempt + 1, faults }),
            Some(f) => {
                faults += 1;
                cycles += plan.detect_cost(f) + plan.backoff.delay(attempt);
            }
        }
    }
    Err(SignalError { attempts: max, cycles })
}

/// [`roundtrip_with_faults`] that also records the round trip into a
/// [`TraceLog`]: the full signal span (retries included) starting at
/// simulated time `at`, plus one `signal_fault` instant per faulted
/// attempt. With a disabled log this is bit-identical to the untraced call.
pub fn roundtrip_with_faults_traced(
    costs: &CommCosts,
    kind: SignalKind,
    plan: &FaultPlan,
    stream: u64,
    index: u64,
    at: Cycles,
    tlog: &mut TraceLog,
) -> Result<SignalOutcome, SignalError> {
    let result = roundtrip_with_faults(costs, kind, plan, stream, index);
    if tlog.is_enabled() {
        match &result {
            Ok(out) => {
                tlog.signal(at, stream, out.cycles, out.attempts);
                for _ in 0..out.faults {
                    tlog.fault(at, "signal_fault", stream as usize);
                }
            }
            Err(err) => {
                tlog.signal(at, stream, err.cycles, err.attempts);
                tlog.fault(at, "signal_lost", stream as usize);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_memory_is_much_cheaper() {
        let c = CommCosts::default();
        assert!(c.roundtrip(SignalKind::DirectMemory) * 10 < c.roundtrip(SignalKind::Mailbox));
    }

    #[test]
    fn channel_happy_path() {
        let mut ch = Channel::default();
        assert!(ch.post());
        assert!(ch.accept());
        assert!(ch.complete());
        assert!(ch.consume());
        assert_eq!(ch.counts(), (1, 1));
        assert_eq!(ch.state(), ChannelState::Idle);
    }

    #[test]
    fn channel_rejects_out_of_order_transitions() {
        let mut ch = Channel::default();
        assert!(!ch.accept(), "nothing posted yet");
        assert!(!ch.complete());
        assert!(!ch.consume());
        assert!(ch.post());
        assert!(!ch.post(), "no double posting");
        assert!(!ch.complete(), "must accept first");
        assert!(ch.accept());
        assert!(!ch.consume(), "must complete first");
        assert!(ch.complete());
        assert!(!ch.accept());
        assert!(ch.consume());
    }

    #[test]
    fn faultless_signal_is_one_roundtrip() {
        let c = CommCosts::default();
        let out =
            roundtrip_with_faults(&c, SignalKind::DirectMemory, &FaultPlan::none(), 0, 0).unwrap();
        assert_eq!(out, SignalOutcome { cycles: c.direct_roundtrip, attempts: 1, faults: 0 });
    }

    #[test]
    fn dropped_signals_are_retried_deterministically() {
        let c = CommCosts::default();
        let mut plan = FaultPlan::uniform(9, 0.0);
        plan.signal_drop_rate = 0.5;
        let run = |idx| roundtrip_with_faults(&c, SignalKind::Mailbox, &plan, 4, idx);
        let retried = (0..100).filter_map(|i| run(i).ok()).find(|o| o.faults > 0).unwrap();
        assert!(retried.attempts > 1);
        assert!(retried.cycles > retried.attempts as u64 * c.mailbox_roundtrip);
        for i in 0..100 {
            assert_eq!(run(i), run(i), "replays must be identical");
        }
    }

    #[test]
    fn certain_drops_exhaust_the_signal() {
        let c = CommCosts::default();
        let mut plan = FaultPlan::uniform(2, 0.0);
        plan.signal_drop_rate = 1.0;
        let err = roundtrip_with_faults(&c, SignalKind::Mailbox, &plan, 0, 0).unwrap_err();
        assert_eq!(err.attempts, plan.backoff.max_attempts);
        assert!(err.cycles > 0);
    }

    #[test]
    fn traced_signal_matches_untraced_and_records_span() {
        use crate::tracelog::{EventData, TraceLog};
        let c = CommCosts::default();
        let plan = FaultPlan::none();

        let mut off = TraceLog::disabled();
        let traced =
            roundtrip_with_faults_traced(&c, SignalKind::DirectMemory, &plan, 2, 7, 100, &mut off)
                .unwrap();
        assert_eq!(
            traced,
            roundtrip_with_faults(&c, SignalKind::DirectMemory, &plan, 2, 7).unwrap()
        );
        assert!(off.is_empty());

        let mut on = TraceLog::enabled();
        let out =
            roundtrip_with_faults_traced(&c, SignalKind::DirectMemory, &plan, 2, 7, 100, &mut on)
                .unwrap();
        assert_eq!(on.len(), 1);
        assert_eq!(
            on.events()[0].data,
            EventData::Signal { stream: 2, dur: out.cycles, attempts: 1 }
        );

        // A lost signal records the wasted span plus a fault instant.
        let mut on = TraceLog::enabled();
        let mut lossy = FaultPlan::uniform(2, 0.0);
        lossy.signal_drop_rate = 1.0;
        assert!(roundtrip_with_faults_traced(&c, SignalKind::Mailbox, &lossy, 0, 0, 0, &mut on)
            .is_err());
        assert!(on
            .events()
            .iter()
            .any(|e| matches!(e.data, EventData::Fault { kind: "signal_lost", .. })));
    }

    #[test]
    fn counts_accumulate_over_many_offloads() {
        let mut ch = Channel::default();
        for _ in 0..100 {
            assert!(ch.post() && ch.accept() && ch.complete() && ch.consume());
        }
        assert_eq!(ch.counts(), (100, 100));
    }
}
