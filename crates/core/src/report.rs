//! The paper's published measurements and comparison formatting.
//!
//! Absolute seconds depend on the workload trace (our inference makes a
//! different number of kernel calls than RAxML-VI-HPC v2.2.0 did on the real
//! `42_SC` file), so the meaningful comparison is the *shape*: per-row
//! speedup ratios along the optimization ladder, scheduler scaling, and the
//! platform ranking. The formatting here prints paper seconds, simulated
//! seconds, and both normalized to their own baseline.

/// The four workload rows of Tables 1–7: (label, workers, bootstraps).
pub const TABLE_ROWS: [(&str, usize, usize); 4] = [
    ("1 worker, 1 bootstrap", 1, 1),
    ("2 workers, 8 bootstraps", 2, 8),
    ("2 workers, 16 bootstraps", 2, 16),
    ("2 workers, 32 bootstraps", 2, 32),
];

/// Paper Table 1a: whole application on the PPE (seconds).
pub const PAPER_TABLE_1A: [f64; 4] = [36.9, 207.67, 427.95, 824.0];
/// Paper Table 1b: `newview` naively offloaded to one SPE per worker.
pub const PAPER_TABLE_1B: [f64; 4] = [106.37, 459.16, 915.75, 1836.6];
/// Paper Table 2: + SDK `exp`.
pub const PAPER_TABLE_2: [f64; 4] = [62.8, 285.25, 572.92, 1138.5];
/// Paper Table 3: + cast/vectorized conditionals.
pub const PAPER_TABLE_3: [f64; 4] = [49.3, 230.0, 460.43, 917.09];
/// Paper Table 4: + double buffering.
pub const PAPER_TABLE_4: [f64; 4] = [47.0, 220.92, 441.39, 884.47];
/// Paper Table 5: + vectorization.
pub const PAPER_TABLE_5: [f64; 4] = [40.9, 195.7, 393.0, 800.9];
/// Paper Table 6: + direct memory-to-memory communication.
pub const PAPER_TABLE_6: [f64; 4] = [39.9, 180.46, 357.08, 712.2];
/// Paper Table 7: all three functions offloaded.
pub const PAPER_TABLE_7: [f64; 4] = [27.7, 112.41, 224.69, 444.87];

/// Paper Table 8 (MGPS): (bootstraps, seconds).
pub const PAPER_TABLE_8: [(usize, f64); 4] = [(1, 17.6), (8, 42.18), (16, 84.21), (32, 167.57)];

/// The ladder tables in order (1a, 1b, 2, 3, 4, 5, 6, 7).
pub const PAPER_LADDER: [&[f64; 4]; 8] = [
    &PAPER_TABLE_1A,
    &PAPER_TABLE_1B,
    &PAPER_TABLE_2,
    &PAPER_TABLE_3,
    &PAPER_TABLE_4,
    &PAPER_TABLE_5,
    &PAPER_TABLE_6,
    &PAPER_TABLE_7,
];

/// Figure 3's bootstrap counts.
pub const FIGURE3_BOOTSTRAPS: [usize; 6] = [1, 8, 16, 32, 64, 128];

/// §5.2 profile: fraction of sequential runtime per function.
pub const PAPER_PROFILE: [(&str, f64); 3] =
    [("newview", 0.768), ("makenewz", 0.1916), ("evaluate", 0.0237)];

/// One comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub label: String,
    pub paper_seconds: f64,
    pub simulated_seconds: f64,
}

impl Comparison {
    /// Simulated time normalized by the paper time.
    pub fn ratio(&self) -> f64 {
        self.simulated_seconds / self.paper_seconds
    }
}

/// Format a list of comparisons as an aligned text table, adding per-row
/// normalizations against the first row (the shape comparison).
pub fn format_comparison(title: &str, rows: &[Comparison]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  {:<38} {:>10} {:>11} | {:>9} {:>9}",
        "", "paper [s]", "sim [s]", "paper ×", "sim ×"
    );
    let base_paper = rows.first().map(|r| r.paper_seconds).unwrap_or(1.0);
    let base_sim = rows.first().map(|r| r.simulated_seconds).unwrap_or(1.0);
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<38} {:>10.2} {:>11.2} | {:>9.3} {:>9.3}",
            r.label,
            r.paper_seconds,
            r.simulated_seconds,
            r.paper_seconds / base_paper,
            r.simulated_seconds / base_sim,
        );
    }
    out
}

/// One row of a fault-study sweep: a scheduler at a fault rate, with the
/// resulting makespan and recovery accounting.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scheduler label (e.g. "EDTLP", "LLP/2", "MGPS").
    pub scheduler: String,
    /// Uniform per-category fault rate of the plan.
    pub fault_rate: f64,
    /// Makespan in cycles under the plan.
    pub makespan: cellsim::Cycles,
    /// Makespan in cycles of the fault-free run (the degradation baseline).
    pub clean_makespan: cellsim::Cycles,
    /// What the recovery machinery did.
    pub report: cellsim::fault::FaultReport,
}

impl FaultRow {
    /// Slowdown relative to the fault-free run (1.0 = unaffected).
    pub fn degradation(&self) -> f64 {
        if self.clean_makespan == 0 {
            return 1.0;
        }
        self.makespan as f64 / self.clean_makespan as f64
    }
}

/// Format a fault sweep as an aligned text table: one line per
/// (scheduler, rate) with the degradation factor and recovery counters.
pub fn format_fault_table(title: &str, rows: &[FaultRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  {:<10} {:>6} {:>14} {:>9} | {:>8} {:>8} {:>7} {:>7} {:>6}",
        "scheduler",
        "rate",
        "makespan",
        "slowdown",
        "injected",
        "retries",
        "redisp",
        "blackl",
        "degr"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<10} {:>6.3} {:>14} {:>8.3}x | {:>8} {:>8} {:>7} {:>7} {:>6}",
            r.scheduler,
            r.fault_rate,
            r.makespan,
            r.degradation(),
            r.report.injected,
            r.report.retries,
            r.report.redispatches,
            r.report.blacklisted,
            r.report.degradations,
        );
    }
    out
}

/// Check that the simulated *shape* matches the paper: each row's
/// normalized value (relative to the first row) must be within
/// `rel_tolerance` of the paper's normalized value. Returns the worst
/// relative deviation.
pub fn shape_deviation(rows: &[Comparison]) -> f64 {
    if rows.len() < 2 {
        return 0.0;
    }
    let base_paper = rows[0].paper_seconds;
    let base_sim = rows[0].simulated_seconds;
    rows[1..]
        .iter()
        .map(|r| {
            let paper_norm = r.paper_seconds / base_paper;
            let sim_norm = r.simulated_seconds / base_sim;
            (sim_norm / paper_norm - 1.0).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_internally_consistent() {
        // Every optimization row improves on the previous for every workload.
        for col in 0..4 {
            for pair in PAPER_LADDER.windows(2).skip(1) {
                assert!(
                    pair[1][col] < pair[0][col],
                    "column {col}: {} !< {}",
                    pair[1][col],
                    pair[0][col]
                );
            }
            // Naive offload is worse than the PPE.
            assert!(PAPER_TABLE_1B[col] > PAPER_TABLE_1A[col]);
            // Final config beats the PPE (the paper's 25% claim at 1 bs).
            assert!(PAPER_TABLE_7[col] < PAPER_TABLE_1A[col]);
        }
        // §5.2.7: ≥31% improvement from offloading all three functions.
        let gain = 1.0 - PAPER_TABLE_7[0] / PAPER_TABLE_6[0];
        assert!(gain > 0.30, "gain {gain}");
    }

    #[test]
    fn profile_sums_to_nearly_all_runtime() {
        // The paper quotes 98.77% inside the three functions; its own
        // per-function numbers (76.8 + 19.16 + 2.37) sum to 98.33 — we keep
        // the per-function numbers and accept the paper's rounding slack.
        let total: f64 = PAPER_PROFILE.iter().map(|&(_, f)| f).sum();
        assert!((total - 0.9833).abs() < 1e-4, "total {total}");
        assert!((total - 0.9877).abs() < 0.006, "close to the quoted 98.77%");
    }

    #[test]
    fn comparison_formatting() {
        let rows = vec![
            Comparison { label: "a".into(), paper_seconds: 10.0, simulated_seconds: 20.0 },
            Comparison { label: "b".into(), paper_seconds: 20.0, simulated_seconds: 40.0 },
        ];
        let text = format_comparison("Test", &rows);
        assert!(text.contains("Test"));
        assert!(text.contains("a"));
        // Perfect shape despite 2× absolute offset.
        assert_eq!(shape_deviation(&rows), 0.0);
        assert_eq!(rows[0].ratio(), 2.0);
    }

    #[test]
    fn fault_table_formatting() {
        let rows = vec![
            FaultRow {
                scheduler: "EDTLP".into(),
                fault_rate: 0.0,
                makespan: 1000,
                clean_makespan: 1000,
                report: Default::default(),
            },
            FaultRow {
                scheduler: "MGPS".into(),
                fault_rate: 0.1,
                makespan: 1500,
                clean_makespan: 1000,
                report: cellsim::fault::FaultReport {
                    injected: 7,
                    retries: 5,
                    ..Default::default()
                },
            },
        ];
        assert_eq!(rows[0].degradation(), 1.0);
        assert!((rows[1].degradation() - 1.5).abs() < 1e-12);
        let text = format_fault_table("Fault study", &rows);
        assert!(text.contains("Fault study"));
        assert!(text.contains("MGPS"));
        assert!(text.contains("1.500x"));
        // Zero baseline does not divide by zero.
        let degenerate = FaultRow { clean_makespan: 0, ..rows[1].clone() };
        assert_eq!(degenerate.degradation(), 1.0);
    }

    #[test]
    fn shape_deviation_detects_mismatch() {
        let rows = vec![
            Comparison { label: "a".into(), paper_seconds: 10.0, simulated_seconds: 10.0 },
            Comparison { label: "b".into(), paper_seconds: 20.0, simulated_seconds: 30.0 },
        ];
        assert!((shape_deviation(&rows) - 0.5).abs() < 1e-12);
    }
}
