//! Bridge from the inference farm's observer events to the `cellsim`
//! structured trace log.
//!
//! Layering: `phylo` cannot depend on `cellsim`, so the farm exposes the
//! neutral [`phylo::farm::FarmObserver`] trait and this crate adapts it —
//! farm-tier runs export the same Chrome-trace / JSONL metric artifacts as
//! the simulator (`profile_study`-grade observability for the task tier).
//!
//! The farm timestamps events in wall nanoseconds; the trace log speaks
//! simulated cycles. The tracer converts at a caller-chosen `clock_hz` —
//! pass `1e9` to record wall nanoseconds as "cycles" 1:1, which keeps the
//! exporters' cycles→seconds conversion exact.

use cellsim::tracelog::TraceLog;
use phylo::farm::{FarmEvent, FarmObserver, FarmStats};

/// A [`FarmObserver`] that forwards farm events into a [`TraceLog`]:
/// job lifecycles become Task events, failures land in the fault lane,
/// steals and the end-of-run aggregates become counters.
#[derive(Debug)]
pub struct FarmTracer<'a> {
    log: &'a mut TraceLog,
    clock_hz: f64,
    steals: u64,
}

impl<'a> FarmTracer<'a> {
    /// Record farm events into `log`, converting nanosecond timestamps to
    /// cycles at `clock_hz` (use `1e9` for 1 cycle = 1 ns).
    pub fn new(log: &'a mut TraceLog, clock_hz: f64) -> FarmTracer<'a> {
        FarmTracer { log, clock_hz, steals: 0 }
    }

    fn cycles(&self, at_nanos: u64) -> u64 {
        (at_nanos as f64 * self.clock_hz / 1e9) as u64
    }

    /// Emit the run's aggregate counters and consume the tracer. Call after
    /// `run_farm` returns, with the outcome's stats.
    pub fn finish(self, stats: &FarmStats) {
        let at = self.cycles(stats.elapsed_nanos);
        self.log.counter(at, "farm_jobs", stats.n_jobs as f64);
        self.log.counter(at, "farm_failed", stats.n_failed as f64);
        self.log.counter(at, "farm_steals", stats.steals as f64);
        self.log.counter(at, "farm_max_in_flight", stats.max_in_flight as f64);
        self.log.counter(at, "farm_workers_died", stats.workers_died as f64);
        self.log.counter(at, "farm_jobs_per_sec", stats.jobs_per_sec());
    }
}

/// Mirror every [`TraceLog`] counter's latest value into same-named gauges
/// in `registry` — the bridge from the simulator's cycle-domain telemetry
/// to the wall-clock metrics exporters, so one Prometheus scrape or JSONL
/// snapshot carries both domains. Reads the log's per-name counter index
/// ([`TraceLog::counters_snapshot`]), not the event buffer, so a per-scrape
/// call stays O(distinct counters) regardless of trace length.
///
/// Gauges (not counters) because trace counters are snapshots of
/// already-aggregated values — `farm_jobs_per_sec` is a rate, re-emitted
/// values overwrite — and because the registry's own farm counters use the
/// `_total` suffix, so the two namespaces cannot collide in kind.
pub fn bridge_counters_to_gauges(log: &TraceLog, registry: &obs::Registry) {
    if !registry.is_enabled() {
        return;
    }
    for &(name, value) in log.counters_snapshot() {
        registry.gauge(name).set(value);
    }
}

impl FarmObserver for FarmTracer<'_> {
    fn on_event(&mut self, event: FarmEvent) {
        match event {
            FarmEvent::JobStarted { at_nanos, worker, job } => {
                self.log.task_start(self.cycles(at_nanos), worker, job);
            }
            FarmEvent::JobCompleted { at_nanos, worker, job, ok } => {
                let at = self.cycles(at_nanos);
                if !ok {
                    self.log.task_failed(at, worker);
                }
                self.log.task_complete(at, worker, job);
            }
            FarmEvent::JobStolen { at_nanos, .. } => {
                self.steals += 1;
                self.log.counter(self.cycles(at_nanos), "farm_steals", self.steals as f64);
            }
            FarmEvent::WorkerDied { at_nanos, worker } => {
                self.log.fault(self.cycles(at_nanos), "worker-death", worker);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellsim::tracelog::{validate_json, validate_jsonl, EventData};
    use phylo::farm::{run_farm, FarmConfig, FarmFaultPlan};

    #[test]
    fn tracer_records_coherent_task_lifecycles() {
        let mut log = TraceLog::enabled();
        let mut tracer = FarmTracer::new(&mut log, 1e9);
        let config = FarmConfig::new(2).with_fault(FarmFaultPlan::none().fail_job(3));
        let outcome = run_farm(
            &config,
            (0..12u32).collect::<Vec<_>>(),
            |_| (),
            |(), _, j| j,
            Some(&mut tracer),
            |_, _| {},
        );
        tracer.finish(&outcome.stats);

        let starts =
            log.events().iter().filter(|e| matches!(e.data, EventData::TaskStart { .. })).count();
        let completes = log
            .events()
            .iter()
            .filter(|e| matches!(e.data, EventData::TaskComplete { .. }))
            .count();
        assert_eq!(starts, 12);
        assert_eq!(completes, 12);
        // The injected failure shows up in the fault lane…
        assert_eq!(log.summary(0).faults, 1);
        // …and in the aggregate counters.
        assert_eq!(log.last_counter("farm_failed"), Some(1.0));
        assert_eq!(log.last_counter("farm_jobs"), Some(12.0));
        assert!(log.last_counter("farm_jobs_per_sec").unwrap() > 0.0);

        // Both exporters must produce parseable artifacts.
        validate_json(&log.to_chrome_trace(1e9)).unwrap();
        validate_jsonl(&log.to_metrics_jsonl(1e9, 0)).unwrap();
    }

    #[test]
    fn counters_bridge_into_registry_gauges() {
        let mut log = TraceLog::enabled();
        log.counter(10, "farm_jobs", 12.0);
        log.counter(20, "farm_jobs_per_sec", 340.5);
        log.counter(30, "farm_jobs", 24.0);

        let registry = obs::Registry::new(true);
        bridge_counters_to_gauges(&log, &registry);
        assert_eq!(registry.gauge("farm_jobs").get(), 24.0, "latest value wins");
        assert_eq!(registry.gauge("farm_jobs_per_sec").get(), 340.5);

        // A disabled registry is left untouched.
        let off = obs::Registry::new(false);
        bridge_counters_to_gauges(&log, &off);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn disabled_log_stays_inert_under_farm_events() {
        let mut log = TraceLog::disabled();
        let mut tracer = FarmTracer::new(&mut log, 1e9);
        let outcome = run_farm(
            &FarmConfig::new(2),
            (0..5u32).collect::<Vec<_>>(),
            |_| (),
            |(), _, j| j,
            Some(&mut tracer),
            |_, _| {},
        );
        tracer.finish(&outcome.stats);
        assert!(log.is_empty());
    }
}
