//! Scheduling models for distributing bootstraps over the Cell (paper §5.3).
//!
//! * [`sync_workers_makespan`] — the naive port: `w` MPI workers on the
//!   PPE's SMT threads, each blocking on its own SPE (Tables 1–7 use 1–2).
//! * [`simulate_task_parallel`] — a discrete-event simulation of EDTLP:
//!   up to 8 workers multiplexed over the 2 PPE threads with
//!   switch-on-offload, each worker owning `k` SPEs (k = 1 is plain EDTLP;
//!   k > 1 adds loop-level parallelization of each offloaded call — LLP).
//! * [`mgps_makespan`] — the dynamic multi-grain scheduler: EDTLP batches
//!   of eight while enough bootstraps remain, LLP for the tail.

pub mod des;

pub use des::{
    compress_phases, simulate_task_parallel, simulate_task_parallel_jobs,
    simulate_task_parallel_jobs_traced, simulate_task_parallel_jobs_with_faults,
    simulate_task_parallel_with_faults, DesParams, Phase, SimOutcome,
};

use crate::config::Scheduler;
use crate::offload::PricedTrace;
use cellsim::cost::CostModel;
use cellsim::eib::EibModel;
use cellsim::fault::FaultPlan;
use cellsim::tracelog::TraceLog;
use cellsim::Cycles;

/// PPE SMT slowdown when both hardware threads are busy, calibrated from
/// Table 1a: 2 workers × 8 bootstraps take 207.67 s where 4 × 36.9 s =
/// 147.6 s of single-thread work would be expected ⇒ each thread runs
/// ×1.407 slower under SMT contention.
pub const SMT_PENALTY: f64 = 1.407;

/// Default number of macro-phases each job is compressed to before the
/// discrete-event simulation (keeps Figure 3's 128-bootstrap runs fast
/// while preserving the PPE/SPE alternation structure).
pub const DEFAULT_GRANULARITY: usize = 4096;

/// Makespan of `n_jobs` bootstraps under `w` synchronous workers: each
/// worker alternates PPE work (slowed by SMT when ≥2 workers share the
/// PPE) and blocking SPE offloads; jobs are processed in waves.
pub fn sync_workers_makespan(trace: &PricedTrace, n_jobs: usize, w: usize) -> Cycles {
    assert!(w >= 1);
    let smt = if w >= 2 { SMT_PENALTY } else { 1.0 };
    let per_job = (trace.ppe_cycles() as f64 * smt) as Cycles + trace.spe_cycles();
    (n_jobs.div_ceil(w)) as Cycles * per_job
}

/// Makespan under EDTLP: up to eight workers over the shared PPE. When the
/// PPE is oversubscribed (more workers than hardware threads) every offload
/// pays the switch-on-offload context switch.
pub fn edtlp_makespan(
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
) -> SimOutcome {
    edtlp_makespan_with_faults(trace, n_jobs, model, params, &FaultPlan::none())
}

/// [`edtlp_makespan`] under a fault plan: each worker's offloads pay the
/// plan's retry/backoff costs and SPE deaths shrink worker sets.
pub fn edtlp_makespan_with_faults(
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
) -> SimOutcome {
    edtlp_makespan_traced(trace, n_jobs, model, params, plan, &mut TraceLog::disabled())
}

/// [`edtlp_makespan_with_faults`] emitting every scheduling decision into
/// `tlog`, plus an `EDTLP` phase span covering the run and the priced
/// trace's component totals as counters (for §5.2-style breakdown tables).
pub fn edtlp_makespan_traced(
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
    tlog: &mut TraceLog,
) -> SimOutcome {
    let workers = n_jobs.min(params.n_spes);
    let ctx = if workers > params.n_ppe_threads { model.edtlp_context_switch } else { 0 };
    let eib = EibModel::default().contention_factor(workers);
    let phases = des::phases_for(trace, 1, model.llp_dispatch, ctx, eib);
    let phases = compress_phases(&phases, DEFAULT_GRANULARITY);
    let jobs: Vec<&[Phase]> = (0..n_jobs).map(|_| phases.as_slice()).collect();
    let out = simulate_task_parallel_jobs_traced(&jobs, workers, 1, params, plan, tlog);
    annotate_schedule(tlog, "EDTLP", &out, trace, eib);
    out
}

/// Makespan under LLP with `workers` processes, each splitting its
/// offloaded loops across `n_spes / workers` SPEs.
pub fn llp_makespan(
    trace: &PricedTrace,
    n_jobs: usize,
    workers: usize,
    model: &CostModel,
    params: &DesParams,
) -> SimOutcome {
    llp_makespan_with_faults(trace, n_jobs, workers, model, params, &FaultPlan::none())
}

/// [`llp_makespan`] under a fault plan. A dead SPE stretches its worker's
/// loop splits across the survivors; a fully dead set degrades to the PPE.
pub fn llp_makespan_with_faults(
    trace: &PricedTrace,
    n_jobs: usize,
    workers: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
) -> SimOutcome {
    llp_makespan_traced(trace, n_jobs, workers, model, params, plan, &mut TraceLog::disabled())
}

/// [`llp_makespan_with_faults`] emitting into `tlog` (see
/// [`edtlp_makespan_traced`]).
pub fn llp_makespan_traced(
    trace: &PricedTrace,
    n_jobs: usize,
    workers: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
    tlog: &mut TraceLog,
) -> SimOutcome {
    let workers = workers.clamp(1, params.n_spes);
    let k = (params.n_spes / workers).max(1);
    let ctx = if workers > params.n_ppe_threads { model.edtlp_context_switch } else { 0 };
    // All workers' SPE sets stream concurrently: k × workers active streams.
    let eib = EibModel::default().contention_factor(k * workers);
    let phases = des::phases_for(trace, k, model.llp_dispatch, ctx, eib);
    let phases = compress_phases(&phases, DEFAULT_GRANULARITY);
    let jobs: Vec<&[Phase]> = (0..n_jobs).map(|_| phases.as_slice()).collect();
    let out = simulate_task_parallel_jobs_traced(&jobs, workers, k, params, plan, tlog);
    annotate_schedule(tlog, "LLP", &out, trace, eib);
    out
}

/// Makespan under MGPS: full batches of eight bootstraps run EDTLP; a tail
/// of fewer than eight switches the surviving workers to LLP (paper §5.3:
/// "if there is not enough work to keep the eight SPEs busy, the idle MPI
/// processes are suspended, and the remaining active MPI processes use the
/// idle SPEs for loop-level parallelization").
pub fn mgps_makespan(
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
) -> SimOutcome {
    mgps_makespan_with_faults(trace, n_jobs, model, params, &FaultPlan::none())
}

/// [`mgps_makespan`] under a fault plan. Fault accounting from the EDTLP
/// batches and the LLP/EDTLP tail is merged into one [`FaultReport`].
pub fn mgps_makespan_with_faults(
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
) -> SimOutcome {
    mgps_makespan_traced(trace, n_jobs, model, params, plan, &mut TraceLog::disabled())
}

/// [`mgps_makespan_with_faults`] emitting into `tlog`. The EDTLP batch and
/// the tail are separate DES runs whose clocks both start at zero; the tail
/// segment is stitched onto the batch's end via the log's timestamp offset,
/// so the exported timeline shows one contiguous run (with nested `EDTLP` /
/// `LLP` phase spans marking the regime switch).
pub fn mgps_makespan_traced(
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
    tlog: &mut TraceLog,
) -> SimOutcome {
    let batch = params.n_spes;
    let full_batches = n_jobs / batch;
    let tail = n_jobs % batch;
    let base = tlog.offset();

    let mut total: Cycles = 0;
    let mut stats = cellsim::stats::SimStats::new(params.n_spes);
    let mut faults = cellsim::fault::FaultReport::default();
    if full_batches > 0 {
        let out = edtlp_makespan_traced(trace, full_batches * batch, model, params, plan, tlog);
        total += out.makespan;
        stats = out.stats;
        faults = out.faults;
    }
    if tail > 0 {
        tlog.set_offset(base + total);
        let out = if tail <= 4 {
            // LLP: `tail` workers, 8/tail SPEs each.
            llp_makespan_traced(trace, tail, tail, model, params, plan, tlog)
        } else {
            // 5–7 leftover tasks: not enough SPEs for ≥2-way loop splits;
            // run them EDTLP-style.
            edtlp_makespan_traced(trace, tail, model, params, plan, tlog)
        };
        total += out.makespan;
        for (a, b) in stats.spes.iter_mut().zip(&out.stats.spes) {
            a.loop_cycles += b.loop_cycles;
            a.cond_cycles += b.cond_cycles;
            a.exp_cycles += b.exp_cycles;
            a.dma_stall += b.dma_stall;
            a.comm += b.comm;
            a.invocations += b.invocations;
        }
        stats.ppe_busy += out.stats.ppe_busy;
        faults.merge(&out.faults);
    }
    tlog.set_offset(base);
    stats.makespan = total;
    let out = SimOutcome { makespan: total, stats, faults };
    annotate_schedule(tlog, "MGPS", &out, trace, 1.0);
    out
}

/// Stamp a completed scheduler run into the log: a phase span covering the
/// whole makespan plus the priced trace's per-job component totals as
/// counters, so a timeline report can regenerate the paper's §5.2-style
/// breakdown tables straight from the trace. Counter values are per-job
/// cycle totals — breakdown *fractions* are what the tables use, and those
/// are invariant to the job count.
fn annotate_schedule(
    tlog: &mut TraceLog,
    name: &'static str,
    out: &SimOutcome,
    trace: &PricedTrace,
    eib_factor: f64,
) {
    if !tlog.is_enabled() {
        return;
    }
    tlog.phase_span(0, name, out.makespan);
    let t = &trace.totals;
    tlog.counter(out.makespan, "trace_loop_cycles", t.loop_cycles as f64);
    tlog.counter(out.makespan, "trace_cond_cycles", t.cond_cycles as f64);
    tlog.counter(out.makespan, "trace_exp_cycles", t.exp_cycles as f64);
    tlog.counter(out.makespan, "trace_dma_stall", t.dma_stall as f64);
    tlog.counter(out.makespan, "trace_comm", t.comm as f64);
    tlog.counter(out.makespan, "trace_ppe_overhead", t.ppe_overhead as f64);
    tlog.counter(out.makespan, "eib_contention", eib_factor);
}

/// Dispatch on a [`Scheduler`] value.
pub fn schedule_makespan(
    scheduler: Scheduler,
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
) -> Cycles {
    match scheduler {
        Scheduler::SyncWorkers(w) => sync_workers_makespan(trace, n_jobs, w),
        Scheduler::Edtlp => edtlp_makespan(trace, n_jobs, model, params).makespan,
        Scheduler::Llp { workers } => llp_makespan(trace, n_jobs, workers, model, params).makespan,
        Scheduler::Mgps => mgps_makespan(trace, n_jobs, model, params).makespan,
    }
}

/// [`schedule_makespan`] under a fault plan, returning the full
/// [`SimOutcome`] so callers can read the fault report next to the
/// makespan.
///
/// `SyncWorkers` stays the closed-form wave model: it has no discrete-event
/// machinery to inject faults into, so the plan is ignored there (the naive
/// port is only ever used as a fault-free baseline).
pub fn schedule_makespan_with_faults(
    scheduler: Scheduler,
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
) -> SimOutcome {
    schedule_makespan_traced(
        scheduler,
        trace,
        n_jobs,
        model,
        params,
        plan,
        &mut TraceLog::disabled(),
    )
}

/// [`schedule_makespan_with_faults`] emitting the full scheduling timeline
/// into `tlog` — the traced entry point the profiling harness uses to
/// produce Perfetto-loadable traces per scheduler.
pub fn schedule_makespan_traced(
    scheduler: Scheduler,
    trace: &PricedTrace,
    n_jobs: usize,
    model: &CostModel,
    params: &DesParams,
    plan: &FaultPlan,
    tlog: &mut TraceLog,
) -> SimOutcome {
    match scheduler {
        Scheduler::SyncWorkers(w) => {
            let makespan = sync_workers_makespan(trace, n_jobs, w);
            let mut stats = cellsim::stats::SimStats::new(params.n_spes);
            stats.makespan = makespan;
            let out =
                SimOutcome { makespan, stats, faults: cellsim::fault::FaultReport::default() };
            annotate_schedule(tlog, "SyncWorkers", &out, trace, 1.0);
            out
        }
        Scheduler::Edtlp => edtlp_makespan_traced(trace, n_jobs, model, params, plan, tlog),
        Scheduler::Llp { workers } => {
            llp_makespan_traced(trace, n_jobs, workers, model, params, plan, tlog)
        }
        Scheduler::Mgps => mgps_makespan_traced(trace, n_jobs, model, params, plan, tlog),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptConfig;
    use crate::offload::price_trace;
    use phylo::trace::{CallParent, KernelEvent, KernelOp};

    fn synthetic_trace(n: usize) -> Vec<KernelEvent> {
        (0..n)
            .map(|i| KernelEvent {
                op: if i % 10 == 9 {
                    KernelOp::Makenewz
                } else if i % 10 == 8 {
                    KernelOp::Evaluate
                } else {
                    KernelOp::NewviewInnerInner
                },
                parent: if i % 3 == 0 { CallParent::Search } else { CallParent::Makenewz },
                patterns: 228,
                rates: 4,
                exp_calls: 32,
                scaling_checks: 912,
                scalings: 0,
                newton_iters: if i % 10 == 9 { 4 } else { 0 },
                inner_operands: 3,
            })
            .collect()
    }

    fn priced() -> PricedTrace {
        let model = CostModel::paper_calibrated();
        price_trace(&synthetic_trace(500), &model, &OptConfig::fully_optimized())
    }

    fn params() -> DesParams {
        DesParams { n_ppe_threads: 2, smt_penalty: SMT_PENALTY, n_spes: 8 }
    }

    #[test]
    fn sync_workers_scale_in_waves() {
        let t = priced();
        let one = sync_workers_makespan(&t, 1, 1);
        let two_two = sync_workers_makespan(&t, 2, 2);
        let two_eight = sync_workers_makespan(&t, 8, 2);
        // 2 workers, 8 jobs: 4 waves, each SMT-penalized.
        assert_eq!(two_eight, 4 * two_two);
        assert!(two_two > one, "SMT contention makes each wave slower than solo");
        assert!((two_two as f64) < 2.0 * one as f64);
    }

    #[test]
    fn edtlp_beats_two_sync_workers() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let sync2 = sync_workers_makespan(&t, 8, 2);
        let edtlp = edtlp_makespan(&t, 8, &model, &params()).makespan;
        assert!(
            edtlp < sync2,
            "8 SPEs under EDTLP must beat 2 SPEs under sync: {edtlp} vs {sync2}"
        );
    }

    #[test]
    fn llp_beats_single_worker_on_one_job() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let solo = sync_workers_makespan(&t, 1, 1);
        let llp = llp_makespan(&t, 1, 1, &model, &params()).makespan;
        assert!(llp < solo, "8-way LLP must beat one SPE: {llp} vs {solo}");
        // But not by more than 8× (Amdahl + dispatch).
        assert!(llp > solo / 8);
    }

    #[test]
    fn mgps_matches_edtlp_on_full_batches() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        let mgps = mgps_makespan(&t, 16, &model, &p).makespan;
        let edtlp = edtlp_makespan(&t, 16, &model, &p).makespan;
        assert_eq!(mgps, edtlp);
    }

    #[test]
    fn mgps_is_never_worse_than_pure_strategies() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        for n in [1usize, 2, 3, 4, 8, 9, 12, 16, 20] {
            let mgps = mgps_makespan(&t, n, &model, &p).makespan;
            let edtlp = edtlp_makespan(&t, n, &model, &p).makespan;
            // Allow a small tolerance: the tail heuristic is not exactly
            // optimal but must be in the same ballpark or better.
            assert!(mgps as f64 <= edtlp as f64 * 1.05, "n={n}: mgps {mgps} vs edtlp {edtlp}");
        }
    }

    #[test]
    fn mgps_scales_linearly_in_full_batches() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        let m8 = mgps_makespan(&t, 8, &model, &p).makespan;
        let m16 = mgps_makespan(&t, 16, &model, &p).makespan;
        let m32 = mgps_makespan(&t, 32, &model, &p).makespan;
        assert!((m16 as f64 / m8 as f64 - 2.0).abs() < 0.1);
        assert!((m32 as f64 / m8 as f64 - 4.0).abs() < 0.2);
    }

    #[test]
    fn scheduler_dispatch_is_consistent() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        assert_eq!(
            schedule_makespan(Scheduler::SyncWorkers(2), &t, 4, &model, &p),
            sync_workers_makespan(&t, 4, 2)
        );
        assert_eq!(
            schedule_makespan(Scheduler::Mgps, &t, 9, &model, &p),
            mgps_makespan(&t, 9, &model, &p).makespan
        );
    }

    #[test]
    fn inert_plan_reproduces_every_scheduler_exactly() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        let inert = FaultPlan::none();
        for sched in [Scheduler::Edtlp, Scheduler::Llp { workers: 2 }, Scheduler::Mgps] {
            let clean = schedule_makespan(sched, &t, 12, &model, &p);
            let out = schedule_makespan_with_faults(sched, &t, 12, &model, &p, &inert);
            assert_eq!(clean, out.makespan, "{sched:?}");
            assert!(out.faults.is_clean());
        }
    }

    #[test]
    fn faulty_schedulers_report_and_slow_down() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        let plan = FaultPlan::uniform(11, 0.05);
        for sched in [Scheduler::Edtlp, Scheduler::Llp { workers: 2 }, Scheduler::Mgps] {
            let clean = schedule_makespan(sched, &t, 12, &model, &p);
            let out = schedule_makespan_with_faults(sched, &t, 12, &model, &p, &plan);
            assert!(out.makespan >= clean, "{sched:?}");
            assert!(out.faults.injected > 0, "{sched:?} must inject");
        }
    }

    #[test]
    fn traced_run_is_identical_and_trace_matches_stats() {
        // The traced simulation must (a) change nothing about the outcome,
        // and (b) produce spans whose aggregate equals SimStats exactly —
        // the accounting is self-checking against the timeline.
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        let inert = FaultPlan::none();
        for sched in [Scheduler::Edtlp, Scheduler::Llp { workers: 2 }, Scheduler::Mgps] {
            let mut tlog = TraceLog::enabled();
            let traced = schedule_makespan_traced(sched, &t, 12, &model, &p, &inert, &mut tlog);
            let plain = schedule_makespan_with_faults(sched, &t, 12, &model, &p, &inert);
            assert_eq!(traced.makespan, plain.makespan, "{sched:?}");
            assert!(!tlog.is_empty(), "{sched:?} must emit events");

            let summary = tlog.summary(p.n_spes);
            assert_eq!(summary.end, traced.makespan, "{sched:?}: trace end = makespan");
            assert_eq!(summary.ppe_busy, traced.stats.ppe_busy, "{sched:?}");
            for s in 0..p.n_spes {
                assert_eq!(
                    summary.spe_busy[s],
                    traced.stats.spes[s].busy(),
                    "{sched:?} SPE{s} busy"
                );
                assert_eq!(
                    summary.spe_stalled[s],
                    traced.stats.spes[s].stalled(),
                    "{sched:?} SPE{s} stalled"
                );
            }
        }
    }

    #[test]
    fn mgps_merges_fault_reports_across_batch_and_tail() {
        let model = CostModel::paper_calibrated();
        let t = priced();
        let p = params();
        let plan = FaultPlan::uniform(3, 0.3);
        // 11 jobs: one full EDTLP batch of 8 + an LLP tail of 3.
        let whole = mgps_makespan_with_faults(&t, 11, &model, &p, &plan);
        let batch = edtlp_makespan_with_faults(&t, 8, &model, &p, &plan);
        let tail = llp_makespan_with_faults(&t, 3, 3, &model, &p, &plan);
        let mut merged = batch.faults;
        merged.merge(&tail.faults);
        assert_eq!(whole.faults, merged);
        assert_eq!(whole.makespan, batch.makespan + tail.makespan);
    }
}
