//! The discrete-event core of the EDTLP/LLP/MGPS simulations.
//!
//! Each worker (an oversubscribed MPI process) alternates between a PPE
//! phase (offload marshalling or kernels that stayed on the PPE — needs one
//! of the two PPE hardware threads) and an SPE phase (the offloaded kernel —
//! runs on the worker's own SPE set). The "switch-on-offload" policy of
//! §5.3 is what makes the PPE thread available to other workers during SPE
//! phases; the naive port busy-waits instead (modelled by
//! [`super::sync_workers_makespan`]).
//!
//! ## Fault model
//!
//! [`simulate_task_parallel_jobs_with_faults`] runs the same simulation
//! under a [`FaultPlan`]: every SPE burst walks the plan's offload
//! retry/backoff state machine (extra cycles are charged to the burst and
//! recorded in a [`FaultReport`]), offloads that exhaust their attempts are
//! re-dispatched, repeatedly failing SPE sets have members blacklisted,
//! scheduled SPE deaths shrink a worker's set mid-run (in-flight work is
//! lost and re-dispatched), and a worker whose whole set is dead degrades
//! to PPE-only execution of its remaining SPE phases. With an inert plan
//! the event sequence — and therefore every makespan and statistic — is
//! bit-identical to the fault-free simulator.

use crate::offload::PricedTrace;
use cellsim::fault::{FaultPlan, FaultReport};
use cellsim::stats::SimStats;
use cellsim::tracelog::TraceLog;
use cellsim::{Cycles, EventQueue};
use std::collections::VecDeque;

/// One scheduling phase of a worker: PPE work followed by an SPE offload.
/// The SPE side is split into compute (`spe`) and DMA-stall (`dma`) cycles
/// so utilization accounting can tell useful work from MFC waits; the
/// burst's wall duration is always `spe + dma`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phase {
    /// PPE-thread cycles (before SMT inflation).
    pub ppe: Cycles,
    /// SPE busy (compute + signalling) cycles.
    pub spe: Cycles,
    /// SPE DMA-stall cycles.
    pub dma: Cycles,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesParams {
    /// PPE hardware threads (2 on the Cell).
    pub n_ppe_threads: usize,
    /// Slowdown of PPE work when threads contend (≥ 1).
    pub smt_penalty: f64,
    /// SPEs available (8 on the Cell).
    pub n_spes: usize,
}

impl Default for DesParams {
    fn default() -> Self {
        DesParams { n_ppe_threads: 2, smt_penalty: super::SMT_PENALTY, n_spes: 8 }
    }
}

/// Result of one scheduling simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// End-to-end cycles.
    pub makespan: Cycles,
    /// Utilization accounting.
    pub stats: SimStats,
    /// Fault/recovery accounting (all-zero without a fault plan).
    pub faults: FaultReport,
}

/// Turn a priced trace into scheduling phases with `k`-way loop-level
/// parallelization of each offloaded invocation. `ctx_switch` is added to
/// the PPE side of every *offloading* invocation (one with both PPE
/// marshalling and SPE work) — the per-offload process switch an
/// oversubscribed PPE pays under EDTLP's switch-on-offload policy.
/// `eib_factor` (≥ 1) models Element Interconnect Bus contention on the DMA
/// share when many SPEs stream concurrently.
pub fn phases_for(
    trace: &PricedTrace,
    k: usize,
    dispatch: Cycles,
    ctx_switch: Cycles,
    eib_factor: f64,
) -> Vec<Phase> {
    trace
        .invocations
        .iter()
        .map(|inv| {
            let is_offload = inv.spe_busy() > 0 && inv.ppe > 0;
            let total = inv.spe_busy_llp(k, dispatch, eib_factor);
            let dma = inv.spe_dma_llp(k, eib_factor);
            Phase { ppe: inv.ppe + if is_offload { ctx_switch } else { 0 }, spe: total - dma, dma }
        })
        .collect()
}

/// Merge consecutive phases so a job has at most `target` macro-phases.
/// Preserves total PPE and SPE cycles exactly; coarsens the alternation.
pub fn compress_phases(phases: &[Phase], target: usize) -> Vec<Phase> {
    if phases.len() <= target {
        return phases.to_vec();
    }
    let group = phases.len().div_ceil(target);
    phases
        .chunks(group)
        .map(|chunk| {
            let mut m = Phase::default();
            for p in chunk {
                m.ppe += p.ppe;
                m.spe += p.spe;
                m.dma += p.dma;
            }
            m
        })
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    PpeDone(usize),
    SpeDone(usize),
}

/// Consecutive exhausted offloads before a member of the worker's SPE set
/// is blacklisted as a repeat offender.
const BLACKLIST_AFTER: u32 = 2;

struct Worker {
    /// Index into the phase list of the current job.
    phase: usize,
    /// The job currently held (an index into the job list).
    job: Option<usize>,
    /// Offload sequence number: the per-worker fault-draw stream index.
    seq: u64,
    /// The outstanding PPE grant is degraded (fallback) SPE work.
    fallback: bool,
    /// All of this worker's SPEs are dead: run everything on the PPE.
    degraded: bool,
    /// Consecutive offloads that exhausted their retry budget.
    failures: u32,
    /// In-flight SPE burst, for mid-flight death detection.
    burst: Option<Burst>,
}

struct Burst {
    /// Absolute SPE ids that were alive when the burst started.
    members: Vec<usize>,
    /// Wall duration the burst was scheduled for.
    duration: Cycles,
    /// Nominal SPE busy cycles of the phase (for re-dispatch).
    spe_cycles: Cycles,
    /// Nominal SPE DMA-stall cycles of the phase (for re-dispatch).
    dma_cycles: Cycles,
}

struct Sim<'a> {
    jobs: &'a [&'a [Phase]],
    plan: &'a FaultPlan,
    queue: EventQueue<Ev>,
    stats: SimStats,
    report: FaultReport,
    next_job: usize,
    ppe_free: usize,
    /// Workers waiting for a PPE thread, with the duration to charge.
    ppe_waiting: VecDeque<(usize, Cycles)>,
    workers: Vec<Worker>,
    smt: f64,
    spes_per_worker: usize,
    spe_dead: Vec<bool>,
    tlog: &'a mut TraceLog,
}

impl Sim<'_> {
    /// Advance a worker to its next phase with nonzero work; start the PPE
    /// request or SPE burst.
    fn advance(&mut self, wid: usize) {
        loop {
            let now = self.queue.now();
            let w = &mut self.workers[wid];
            let done = match w.job {
                None => true,
                Some(j) => w.phase >= self.jobs[j].len(),
            };
            if done {
                if let Some(j) = w.job.take() {
                    self.tlog.task_complete(now, wid, j);
                }
                if self.next_job >= self.jobs.len() {
                    return;
                }
                let j = self.next_job;
                self.next_job += 1;
                let w = &mut self.workers[wid];
                w.job = Some(j);
                w.phase = 0;
                self.tlog.task_start(now, wid, j);
            }
            let w = &self.workers[wid];
            let job = self.jobs[w.job.expect("worker holds a job")];
            if w.phase >= job.len() {
                // Zero-length job: loop to take the next one.
                continue;
            }
            let phase = job[w.phase];
            if phase.ppe > 0 {
                let dur = (phase.ppe as f64 * self.smt).round() as Cycles;
                self.request_ppe(wid, dur, false);
                return;
            }
            if phase.spe + phase.dma > 0 {
                self.start_spe(wid, phase.spe, phase.dma);
                return;
            }
            // Empty phase: skip.
            self.workers[wid].phase += 1;
        }
    }

    /// Request a PPE hardware thread for `dur` cycles (already SMT-inflated).
    fn request_ppe(&mut self, wid: usize, dur: Cycles, fallback: bool) {
        self.workers[wid].fallback = fallback;
        if self.ppe_free > 0 {
            self.ppe_free -= 1;
            self.stats.ppe_busy += dur;
            self.tlog.ppe_span(self.queue.now(), wid, dur, fallback);
            self.queue.schedule_after(dur, Ev::PpeDone(wid));
        } else {
            self.ppe_waiting.push_back((wid, dur));
        }
    }

    /// Mark every death scheduled at or before `now`, once.
    fn apply_deaths(&mut self, now: Cycles) {
        if self.plan.deaths.is_empty() {
            return;
        }
        for d in &self.plan.deaths {
            if d.at <= now && d.spe < self.spe_dead.len() && !self.spe_dead[d.spe] {
                self.spe_dead[d.spe] = true;
                self.report.blacklisted += 1;
                self.tlog.fault(now, "spe_death", d.spe);
            }
        }
    }

    /// The worker's SPEs that are still in service.
    fn alive_set(&self, wid: usize) -> Vec<usize> {
        (wid * self.spes_per_worker..(wid + 1) * self.spes_per_worker)
            .filter(|&s| !self.spe_dead[s])
            .collect()
    }

    /// Start an SPE burst of nominally `spe_cycles` busy + `dma_cycles`
    /// stall cycles for worker `wid`, running the fault/retry machinery
    /// when the plan is live. The wall duration is driven by the combined
    /// total, exactly as the pre-split simulator's single figure was.
    fn start_spe(&mut self, wid: usize, spe_cycles: Cycles, dma_cycles: Cycles) {
        let total = spe_cycles + dma_cycles;
        self.apply_deaths(self.queue.now());
        loop {
            let now = self.queue.now();
            let alive = self.alive_set(wid);
            if alive.is_empty() {
                self.degrade(wid, total);
                return;
            }
            let mut extra: Cycles = 0;
            if !self.plan.is_inert() {
                let seq = self.workers[wid].seq;
                self.workers[wid].seq += 1;
                let rec = self.plan.offload_recovery(wid as u64, seq);
                self.report.injected += rec.injected as u64;
                self.report.retries += rec.retries as u64;
                self.report.penalty_cycles += rec.extra_cycles;
                extra = rec.extra_cycles;
                for _ in 0..rec.retries {
                    self.tlog.fault(now, "retry", wid);
                }
                if rec.gave_up {
                    // The offload never completed on this set: re-dispatch.
                    self.report.redispatches += 1;
                    self.workers[wid].failures += 1;
                    self.tlog.fault(now, "redispatch", wid);
                    if self.workers[wid].failures >= BLACKLIST_AFTER {
                        // Repeat offender: blacklist one member and retry on
                        // the reduced set (degrading if none remain).
                        self.workers[wid].failures = 0;
                        self.spe_dead[alive[0]] = true;
                        self.report.blacklisted += 1;
                        self.tlog.fault(now, "blacklist", alive[0]);
                        continue;
                    }
                } else {
                    self.workers[wid].failures = 0;
                }
            }
            // Burst duration and per-SPE attribution. The fault-free branch
            // is kept arithmetically identical to the legacy simulator; a
            // shrunken set stretches the wall time by k/alive (the same loop
            // split across fewer SPEs). Busy and DMA-stall shares divide
            // separately so stall time never inflates busy accounting.
            let k = self.spes_per_worker;
            let duration =
                if alive.len() == k { total } else { total * k as u64 / alive.len() as u64 };
            let busy_share = spe_cycles / alive.len() as u64;
            let dma_share = dma_cycles / alive.len() as u64;
            if alive.len() < k {
                self.report.penalty_cycles += duration - total;
            }
            let duration = duration + extra;
            for (i, &s) in alive.iter().enumerate() {
                self.stats.spes[s].loop_cycles += busy_share;
                self.stats.spes[s].dma_stall += dma_share;
                if i == 0 {
                    self.stats.spes[s].invocations += 1;
                }
                self.tlog.spe_burst(now, s, wid, duration, busy_share, dma_share);
            }
            self.workers[wid].burst =
                Some(Burst { members: alive, duration, spe_cycles, dma_cycles });
            self.queue.schedule_after(duration, Ev::SpeDone(wid));
            return;
        }
    }

    /// All of the worker's SPEs are dead: run the SPE phase on the PPE at
    /// the plan's fallback slowdown, through the normal thread queue.
    fn degrade(&mut self, wid: usize, spe_cycles: Cycles) {
        if !self.workers[wid].degraded {
            self.workers[wid].degraded = true;
            self.report.degradations += 1;
            self.tlog.fault(self.queue.now(), "degradation", wid);
        }
        let dur = (spe_cycles as f64 * self.plan.ppe_fallback_factor * self.smt).round() as Cycles;
        self.report.penalty_cycles += dur.saturating_sub(spe_cycles);
        self.request_ppe(wid, dur, true);
    }

    fn on_ppe_done(&mut self, wid: usize) {
        self.ppe_free += 1;
        // Hand the freed thread to the next waiter.
        if let Some((next, dur)) = self.ppe_waiting.pop_front() {
            self.ppe_free -= 1;
            self.stats.ppe_busy += dur;
            let fb = self.workers[next].fallback;
            self.tlog.ppe_span(self.queue.now(), next, dur, fb);
            self.queue.schedule_after(dur, Ev::PpeDone(next));
        }
        // The finishing worker proceeds: SPE burst or next phase.
        if self.workers[wid].fallback {
            // Degraded SPE work just completed on the PPE: phase done.
            self.workers[wid].fallback = false;
            self.workers[wid].phase += 1;
            self.advance(wid);
            return;
        }
        let w = &self.workers[wid];
        let phase = self.jobs[w.job.expect("worker holds a job")][w.phase];
        if phase.spe + phase.dma > 0 {
            self.start_spe(wid, phase.spe, phase.dma);
        } else {
            self.workers[wid].phase += 1;
            self.advance(wid);
        }
    }

    fn on_spe_done(&mut self, wid: usize, now: Cycles) {
        let burst = self.workers[wid].burst.take().expect("SpeDone without a burst");
        if !self.plan.deaths.is_empty() {
            let died_in_flight =
                burst.members.iter().any(|&s| !self.spe_dead[s] && self.plan.dead_at(s, now));
            if died_in_flight {
                // The burst's output is lost with the dead SPE: blacklist
                // the casualties and re-dispatch the whole phase from now.
                self.apply_deaths(now);
                self.report.redispatches += 1;
                self.report.penalty_cycles += burst.duration;
                self.tlog.fault(now, "redispatch", wid);
                self.start_spe(wid, burst.spe_cycles, burst.dma_cycles);
                return;
            }
        }
        self.workers[wid].phase += 1;
        self.advance(wid);
    }
}

/// Simulate `n_jobs` identical jobs (each the given phase list) over
/// `n_workers` workers, each owning `spes_per_worker` SPEs, sharing
/// `params.n_ppe_threads` PPE threads with switch-on-offload.
pub fn simulate_task_parallel(
    job_phases: &[Phase],
    n_jobs: usize,
    n_workers: usize,
    spes_per_worker: usize,
    params: &DesParams,
) -> SimOutcome {
    let jobs: Vec<&[Phase]> = (0..n_jobs).map(|_| job_phases).collect();
    simulate_task_parallel_jobs(&jobs, n_workers, spes_per_worker, params)
}

/// As [`simulate_task_parallel`], under a fault plan.
pub fn simulate_task_parallel_with_faults(
    job_phases: &[Phase],
    n_jobs: usize,
    n_workers: usize,
    spes_per_worker: usize,
    params: &DesParams,
    plan: &FaultPlan,
) -> SimOutcome {
    let jobs: Vec<&[Phase]> = (0..n_jobs).map(|_| job_phases).collect();
    simulate_task_parallel_jobs_with_faults(&jobs, n_workers, spes_per_worker, params, plan)
}

/// As [`simulate_task_parallel`], with an explicit (possibly different)
/// phase list per job — real bootstrap replicates differ in search length,
/// and this entry point lets callers schedule genuinely varied traces.
pub fn simulate_task_parallel_jobs(
    jobs: &[&[Phase]],
    n_workers: usize,
    spes_per_worker: usize,
    params: &DesParams,
) -> SimOutcome {
    simulate_task_parallel_jobs_with_faults(
        jobs,
        n_workers,
        spes_per_worker,
        params,
        &FaultPlan::none(),
    )
}

/// The full simulator: [`simulate_task_parallel_jobs`] under a
/// [`FaultPlan`]. An inert plan reproduces the fault-free event sequence
/// bit-exactly; a live plan charges retries, backoff, re-dispatches, and
/// PPE-fallback degradation into the makespan and reports them.
pub fn simulate_task_parallel_jobs_with_faults(
    jobs: &[&[Phase]],
    n_workers: usize,
    spes_per_worker: usize,
    params: &DesParams,
    plan: &FaultPlan,
) -> SimOutcome {
    simulate_task_parallel_jobs_traced(
        jobs,
        n_workers,
        spes_per_worker,
        params,
        plan,
        &mut TraceLog::disabled(),
    )
}

/// As [`simulate_task_parallel_jobs_with_faults`], emitting every scheduling
/// decision into `tlog`: one `SpeBurst` span per alive SPE of every burst
/// (carrying the exact busy/DMA-stall shares charged to [`SimStats`]), one
/// `PpeSpan` per hardware-thread grant, task start/complete instants, and
/// fault/retry/blacklist/degradation instants. With a disabled log this *is*
/// the untraced simulator — the emit calls early-return before any work.
pub fn simulate_task_parallel_jobs_traced(
    jobs: &[&[Phase]],
    n_workers: usize,
    spes_per_worker: usize,
    params: &DesParams,
    plan: &FaultPlan,
    tlog: &mut TraceLog,
) -> SimOutcome {
    let n_jobs = jobs.len();
    assert!(n_workers >= 1, "need at least one worker");
    assert!(
        n_workers * spes_per_worker <= params.n_spes,
        "worker SPE sets exceed the machine ({n_workers} × {spes_per_worker} > {})",
        params.n_spes
    );
    let n_workers = n_workers.min(n_jobs.max(1));
    let smt = if n_workers >= 2 { params.smt_penalty } else { 1.0 };

    let mut sim = Sim {
        jobs,
        plan,
        queue: EventQueue::new(),
        stats: SimStats::new(params.n_spes),
        report: FaultReport::default(),
        next_job: 0,
        ppe_free: params.n_ppe_threads,
        ppe_waiting: VecDeque::new(),
        workers: (0..n_workers)
            .map(|_| Worker {
                phase: 0,
                job: None,
                seq: 0,
                fallback: false,
                degraded: false,
                failures: 0,
                burst: None,
            })
            .collect(),
        smt,
        spes_per_worker,
        spe_dead: vec![false; params.n_spes],
        tlog,
    };

    // Kick off every worker.
    for wid in 0..n_workers {
        sim.advance(wid);
    }

    let mut makespan: Cycles = 0;
    while let Some((t, ev)) = sim.queue.pop() {
        makespan = t;
        match ev {
            Ev::PpeDone(wid) => sim.on_ppe_done(wid),
            Ev::SpeDone(wid) => sim.on_spe_done(wid, t),
        }
    }

    sim.stats.makespan = makespan;
    SimOutcome { makespan, stats: sim.stats, faults: sim.report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DesParams {
        DesParams { n_ppe_threads: 2, smt_penalty: 1.0, n_spes: 8 }
    }

    #[test]
    fn single_worker_is_sequential() {
        let phases = vec![Phase { ppe: 100, spe: 900, dma: 0 }; 10];
        let out = simulate_task_parallel(&phases, 1, 1, 1, &params());
        assert_eq!(out.makespan, 10 * 1000);
        assert_eq!(out.stats.spes[0].busy(), 9000);
        assert_eq!(out.stats.ppe_busy, 1000);
        assert!(out.faults.is_clean());
    }

    #[test]
    fn multiple_jobs_on_one_worker_serialize() {
        let phases = vec![Phase { ppe: 50, spe: 50, dma: 0 }];
        let out = simulate_task_parallel(&phases, 5, 1, 1, &params());
        assert_eq!(out.makespan, 5 * 100);
    }

    #[test]
    fn spe_bound_workload_scales_with_workers() {
        // Tiny PPE phases: 8 workers ≈ 8× throughput.
        let phases = vec![Phase { ppe: 1, spe: 10_000, dma: 0 }; 20];
        let one = simulate_task_parallel(&phases, 8, 1, 1, &params()).makespan;
        let eight = simulate_task_parallel(&phases, 8, 8, 1, &params()).makespan;
        let speedup = one as f64 / eight as f64;
        assert!(speedup > 7.5, "speedup {speedup}");
    }

    #[test]
    fn ppe_bound_workload_caps_at_two_threads() {
        // Pure PPE phases: 8 workers can use only 2 threads.
        let phases = vec![Phase { ppe: 1000, spe: 1, dma: 0 }; 10];
        let one_worker = simulate_task_parallel(&phases, 8, 1, 1, &params()).makespan;
        let eight = simulate_task_parallel(&phases, 8, 8, 1, &params()).makespan;
        let speedup = one_worker as f64 / eight as f64;
        assert!((1.8..=2.1).contains(&speedup), "PPE-bound speedup must cap at ~2: {speedup}");
    }

    #[test]
    fn smt_penalty_inflates_ppe_work_only_with_contention() {
        let phases = vec![Phase { ppe: 1000, spe: 1000, dma: 0 }; 4];
        let p = DesParams { smt_penalty: 1.5, ..params() };
        let solo = simulate_task_parallel(&phases, 1, 1, 1, &p).makespan;
        assert_eq!(solo, 4 * 2000, "single worker pays no SMT penalty");
        let duo = simulate_task_parallel(&phases, 2, 2, 1, &p).makespan;
        assert!(duo > solo / 2, "two jobs in parallel but inflated PPE");
        // Each worker: 4 phases of (1500 PPE + 1000 SPE) = 10000, with
        // plenty of PPE capacity (2 threads, 2 workers).
        assert_eq!(duo, 4 * 2500);
    }

    #[test]
    fn queueing_delays_appear_when_ppe_oversubscribed() {
        // 4 workers, 2 threads, PPE-heavy: makespan ≥ total PPE / 2.
        let phases = vec![Phase { ppe: 100, spe: 10, dma: 0 }; 50];
        let out = simulate_task_parallel(&phases, 4, 4, 1, &params());
        let total_ppe: Cycles = 4 * 50 * 100;
        assert!(out.makespan >= total_ppe / 2);
        assert!(out.stats.ppe_busy == total_ppe);
    }

    #[test]
    fn llp_attributes_busy_across_spe_set() {
        let phases = vec![Phase { ppe: 10, spe: 800, dma: 0 }];
        let out = simulate_task_parallel(&phases, 1, 1, 8, &params());
        for s in 0..8 {
            assert_eq!(out.stats.spes[s].loop_cycles, 100);
        }
    }

    #[test]
    fn compress_preserves_totals() {
        let phases: Vec<Phase> =
            (0..1000).map(|i| Phase { ppe: i % 7, spe: 100 + i % 13, dma: 0 }).collect();
        let compressed = compress_phases(&phases, 64);
        assert!(compressed.len() <= 64);
        let tp: Cycles = phases.iter().map(|p| p.ppe).sum();
        let ts: Cycles = phases.iter().map(|p| p.spe).sum();
        let cp: Cycles = compressed.iter().map(|p| p.ppe).sum();
        let cs: Cycles = compressed.iter().map(|p| p.spe).sum();
        assert_eq!((tp, ts), (cp, cs));
        // Short inputs pass through untouched.
        assert_eq!(compress_phases(&phases[..10], 64), phases[..10].to_vec());
    }

    #[test]
    fn empty_phases_are_skipped() {
        let phases = vec![
            Phase { ppe: 0, spe: 0, dma: 0 },
            Phase { ppe: 10, spe: 0, dma: 0 },
            Phase { ppe: 0, spe: 20, dma: 0 },
            Phase { ppe: 0, spe: 0, dma: 0 },
        ];
        let out = simulate_task_parallel(&phases, 2, 2, 1, &params());
        assert_eq!(out.makespan, 30, "phases run back to back per worker");
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let phases = vec![Phase { ppe: 10, spe: 100, dma: 0 }];
        let out = simulate_task_parallel(&phases, 2, 8, 1, &params());
        assert_eq!(out.makespan, 110);
    }

    #[test]
    #[should_panic(expected = "exceed the machine")]
    fn rejects_oversized_spe_sets() {
        let phases = vec![Phase { ppe: 1, spe: 1, dma: 0 }];
        simulate_task_parallel(&phases, 8, 8, 2, &params());
    }

    #[test]
    fn varied_jobs_schedule_correctly() {
        // Jobs of very different lengths: the makespan is bounded by the
        // longest job below and the serial sum above, and all work is
        // conserved.
        let short: Vec<Phase> = vec![Phase { ppe: 10, spe: 100, dma: 0 }; 2];
        let long: Vec<Phase> = vec![Phase { ppe: 10, spe: 100, dma: 0 }; 50];
        let jobs: Vec<&[Phase]> = vec![&long, &short, &short, &short];
        let out = simulate_task_parallel_jobs(&jobs, 4, 1, &params());
        // With 4 workers each job has its own worker: makespan = longest.
        assert_eq!(out.makespan, 50 * 110);
        let total_spe: Cycles = out.stats.spes.iter().map(|s| s.busy()).sum();
        assert_eq!(total_spe, (50 + 3 * 2) * 100);

        // One worker: everything serializes.
        let out = simulate_task_parallel_jobs(&jobs, 1, 1, &params());
        assert_eq!(out.makespan, (50 + 3 * 2) * 110);
    }

    #[test]
    fn varied_jobs_greedy_assignment() {
        // 2 workers, jobs [long, short, short]: worker A takes long, worker
        // B takes both shorts; makespan = max(long, 2×short).
        let short: Vec<Phase> = vec![Phase { ppe: 0, spe: 100, dma: 0 }; 3];
        let long: Vec<Phase> = vec![Phase { ppe: 0, spe: 100, dma: 0 }; 10];
        let jobs: Vec<&[Phase]> = vec![&long, &short, &short];
        let out = simulate_task_parallel_jobs(&jobs, 2, 1, &params());
        assert_eq!(out.makespan, 1000);
    }

    #[test]
    fn deterministic() {
        let phases: Vec<Phase> =
            (0..500).map(|i| Phase { ppe: 30 + i % 11, spe: 200 + i % 17, dma: 0 }).collect();
        let a = simulate_task_parallel(&phases, 16, 8, 1, &params()).makespan;
        let b = simulate_task_parallel(&phases, 16, 8, 1, &params()).makespan;
        assert_eq!(a, b);
    }

    #[test]
    fn inert_plan_is_bit_identical_to_fault_free() {
        let phases: Vec<Phase> =
            (0..300).map(|i| Phase { ppe: 40 + i % 13, spe: 300 + i % 23, dma: 0 }).collect();
        let p = DesParams { smt_penalty: 1.407, ..params() };
        for (workers, k) in [(8, 1), (4, 2), (2, 4), (1, 8)] {
            let clean = simulate_task_parallel(&phases, 16, workers, k, &p);
            let inert =
                simulate_task_parallel_with_faults(&phases, 16, workers, k, &p, &FaultPlan::none());
            assert_eq!(clean.makespan, inert.makespan, "workers={workers} k={k}");
            assert_eq!(clean.stats.ppe_busy, inert.stats.ppe_busy);
            for s in 0..8 {
                assert_eq!(clean.stats.spes[s].busy(), inert.stats.spes[s].busy());
            }
            assert!(inert.faults.is_clean());
        }
    }

    #[test]
    fn fault_rates_stretch_the_makespan_monotonically() {
        let phases = vec![Phase { ppe: 100, spe: 2000, dma: 0 }; 40];
        let clean = simulate_task_parallel(&phases, 16, 8, 1, &params()).makespan;
        let mut last = clean;
        for rate in [0.01, 0.1, 0.4] {
            let out = simulate_task_parallel_with_faults(
                &phases,
                16,
                8,
                1,
                &params(),
                &FaultPlan::uniform(7, rate),
            );
            assert!(
                out.makespan >= last,
                "rate {rate}: makespan {} should not beat {last}",
                out.makespan
            );
            assert!(out.faults.injected > 0, "rate {rate} must inject something");
            assert!(out.faults.penalty_cycles > 0);
            last = out.makespan;
        }
        assert!(last > clean, "40% faults must cost real cycles");
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let phases = vec![Phase { ppe: 100, spe: 2000, dma: 0 }; 30];
        let plan = FaultPlan::uniform(99, 0.2).with_death(3, 50_000);
        let a = simulate_task_parallel_with_faults(&phases, 12, 8, 1, &params(), &plan);
        let b = simulate_task_parallel_with_faults(&phases, 12, 8, 1, &params(), &plan);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn spe_death_redispatches_and_shrinks_the_set() {
        // One worker owning all 8 SPEs; kill one mid-run. The work must
        // complete, with at least one re-dispatch and a longer makespan.
        let phases = vec![Phase { ppe: 10, spe: 8000, dma: 0 }; 10];
        let clean = simulate_task_parallel(&phases, 1, 1, 8, &params());
        let plan = FaultPlan::none().with_death(2, clean.makespan / 2);
        let out = simulate_task_parallel_with_faults(&phases, 1, 1, 8, &params(), &plan);
        assert!(out.makespan > clean.makespan);
        assert_eq!(out.faults.blacklisted, 1);
        assert!(out.faults.redispatches >= 1, "in-flight work on SPE2 must be re-dispatched");
        // SPE 2 stops accumulating after its death; survivors absorb more.
        assert!(out.stats.spes[2].busy() < out.stats.spes[3].busy());
    }

    #[test]
    fn all_spes_dead_degrades_to_ppe_only() {
        let phases = vec![Phase { ppe: 100, spe: 1000, dma: 0 }; 5];
        let mut plan = FaultPlan::none();
        for s in 0..8 {
            plan = plan.with_death(s, 0);
        }
        let out = simulate_task_parallel_with_faults(&phases, 2, 2, 1, &params(), &plan);
        let clean = simulate_task_parallel(&phases, 2, 2, 1, &params());
        assert_eq!(out.faults.degradations, 2, "both workers degrade");
        assert_eq!(out.faults.blacklisted, 8);
        assert!(out.makespan > clean.makespan, "PPE fallback is slower");
        // No SPE did any work.
        assert!(out.stats.spes.iter().all(|s| s.busy() == 0));
        // All SPE work ran on the PPE at the fallback factor.
        let expected_fallback: Cycles = 2 * 5 * (1000.0 * 2.5f64).round() as Cycles;
        assert_eq!(out.stats.ppe_busy, 2 * 5 * 100 + expected_fallback);
    }

    #[test]
    fn certain_faults_blacklist_repeat_offenders_and_still_finish() {
        // Rate 1.0: every offload exhausts its retries. Repeat offenders are
        // blacklisted until the worker degrades to the PPE — the simulation
        // must terminate with all work done.
        let phases = vec![Phase { ppe: 10, spe: 500, dma: 0 }; 6];
        let out = simulate_task_parallel_with_faults(
            &phases,
            4,
            4,
            2,
            &params(),
            &FaultPlan::uniform(5, 1.0),
        );
        assert!(out.makespan > 0);
        assert!(out.faults.blacklisted > 0);
        assert_eq!(out.faults.degradations, 4, "every worker eventually degrades");
    }
}
