//! The discrete-event core of the EDTLP/LLP/MGPS simulations.
//!
//! Each worker (an oversubscribed MPI process) alternates between a PPE
//! phase (offload marshalling or kernels that stayed on the PPE — needs one
//! of the two PPE hardware threads) and an SPE phase (the offloaded kernel —
//! runs on the worker's own SPE set). The "switch-on-offload" policy of
//! §5.3 is what makes the PPE thread available to other workers during SPE
//! phases; the naive port busy-waits instead (modelled by
//! [`super::sync_workers_makespan`]).

use crate::offload::PricedTrace;
use cellsim::stats::SimStats;
use cellsim::{Cycles, EventQueue};
use std::collections::VecDeque;

/// One scheduling phase of a worker: PPE work followed by an SPE offload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phase {
    /// PPE-thread cycles (before SMT inflation).
    pub ppe: Cycles,
    /// SPE-busy cycles.
    pub spe: Cycles,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesParams {
    /// PPE hardware threads (2 on the Cell).
    pub n_ppe_threads: usize,
    /// Slowdown of PPE work when threads contend (≥ 1).
    pub smt_penalty: f64,
    /// SPEs available (8 on the Cell).
    pub n_spes: usize,
}

impl Default for DesParams {
    fn default() -> Self {
        DesParams { n_ppe_threads: 2, smt_penalty: super::SMT_PENALTY, n_spes: 8 }
    }
}

/// Result of one scheduling simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// End-to-end cycles.
    pub makespan: Cycles,
    /// Utilization accounting.
    pub stats: SimStats,
}

/// Turn a priced trace into scheduling phases with `k`-way loop-level
/// parallelization of each offloaded invocation. `ctx_switch` is added to
/// the PPE side of every *offloading* invocation (one with both PPE
/// marshalling and SPE work) — the per-offload process switch an
/// oversubscribed PPE pays under EDTLP's switch-on-offload policy.
/// `eib_factor` (≥ 1) models Element Interconnect Bus contention on the DMA
/// share when many SPEs stream concurrently.
pub fn phases_for(
    trace: &PricedTrace,
    k: usize,
    dispatch: Cycles,
    ctx_switch: Cycles,
    eib_factor: f64,
) -> Vec<Phase> {
    trace
        .invocations
        .iter()
        .map(|inv| {
            let is_offload = inv.spe_busy() > 0 && inv.ppe > 0;
            Phase {
                ppe: inv.ppe + if is_offload { ctx_switch } else { 0 },
                spe: inv.spe_busy_llp(k, dispatch, eib_factor),
            }
        })
        .collect()
}

/// Merge consecutive phases so a job has at most `target` macro-phases.
/// Preserves total PPE and SPE cycles exactly; coarsens the alternation.
pub fn compress_phases(phases: &[Phase], target: usize) -> Vec<Phase> {
    if phases.len() <= target {
        return phases.to_vec();
    }
    let group = phases.len().div_ceil(target);
    phases
        .chunks(group)
        .map(|chunk| {
            let mut m = Phase::default();
            for p in chunk {
                m.ppe += p.ppe;
                m.spe += p.spe;
            }
            m
        })
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    PpeDone(usize),
    SpeDone(usize),
}

struct Worker {
    /// Index into the phase list of the current job.
    phase: usize,
    /// The job currently held (an index into the job list).
    job: Option<usize>,
}

/// Simulate `n_jobs` identical jobs (each the given phase list) over
/// `n_workers` workers, each owning `spes_per_worker` SPEs, sharing
/// `params.n_ppe_threads` PPE threads with switch-on-offload.
pub fn simulate_task_parallel(
    job_phases: &[Phase],
    n_jobs: usize,
    n_workers: usize,
    spes_per_worker: usize,
    params: &DesParams,
) -> SimOutcome {
    let jobs: Vec<&[Phase]> = (0..n_jobs).map(|_| job_phases).collect();
    simulate_task_parallel_jobs(&jobs, n_workers, spes_per_worker, params)
}

/// As [`simulate_task_parallel`], with an explicit (possibly different)
/// phase list per job — real bootstrap replicates differ in search length,
/// and this entry point lets callers schedule genuinely varied traces.
pub fn simulate_task_parallel_jobs(
    jobs: &[&[Phase]],
    n_workers: usize,
    spes_per_worker: usize,
    params: &DesParams,
) -> SimOutcome {
    let n_jobs = jobs.len();
    assert!(n_workers >= 1, "need at least one worker");
    assert!(
        n_workers * spes_per_worker <= params.n_spes,
        "worker SPE sets exceed the machine ({n_workers} × {spes_per_worker} > {})",
        params.n_spes
    );
    let n_workers = n_workers.min(n_jobs.max(1));
    let smt = if n_workers >= 2 { params.smt_penalty } else { 1.0 };

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut stats = SimStats::new(params.n_spes);
    let mut next_job = 0usize;
    let mut ppe_free = params.n_ppe_threads;
    let mut ppe_waiting: VecDeque<usize> = VecDeque::new();
    let mut workers: Vec<Worker> = (0..n_workers).map(|_| Worker { phase: 0, job: None }).collect();
    let mut makespan: Cycles = 0;

    // Advance a worker to its next phase with nonzero work; start the PPE
    // request or SPE burst. Returns scheduled events via the queue.
    // (The argument list is the full simulation state on purpose: a struct
    // would just re-bundle the same locals the event loop destructures.)
    #[allow(clippy::too_many_arguments)]
    fn advance(
        wid: usize,
        now_queue: &mut EventQueue<Ev>,
        workers: &mut [Worker],
        next_job: &mut usize,
        jobs: &[&[Phase]],
        ppe_free: &mut usize,
        ppe_waiting: &mut VecDeque<usize>,
        stats: &mut SimStats,
        smt: f64,
        spes_per_worker: usize,
    ) {
        loop {
            let w = &mut workers[wid];
            let done = match w.job {
                None => true,
                Some(j) => w.phase >= jobs[j].len(),
            };
            if done {
                if *next_job >= jobs.len() {
                    w.job = None;
                    return;
                }
                w.job = Some(*next_job);
                *next_job += 1;
                w.phase = 0;
            }
            let w = &workers[wid];
            let job = jobs[w.job.expect("worker holds a job")];
            if w.phase >= job.len() {
                // Zero-length job: loop to take the next one.
                continue;
            }
            let phase = job[w.phase];
            if phase.ppe > 0 {
                // Request a PPE thread.
                if *ppe_free > 0 {
                    *ppe_free -= 1;
                    let dur = (phase.ppe as f64 * smt).round() as Cycles;
                    stats.ppe_busy += dur;
                    now_queue.schedule_after(dur, Ev::PpeDone(wid));
                } else {
                    ppe_waiting.push_back(wid);
                }
                return;
            }
            if phase.spe > 0 {
                start_spe(wid, phase.spe, now_queue, stats, spes_per_worker);
                return;
            }
            // Empty phase: skip.
            workers[wid].phase += 1;
        }
    }

    fn start_spe(
        wid: usize,
        spe_cycles: Cycles,
        queue: &mut EventQueue<Ev>,
        stats: &mut SimStats,
        spes_per_worker: usize,
    ) {
        // Attribute busy cycles evenly over the worker's SPE set (for LLP
        // the loop is split across them).
        let share = spe_cycles / spes_per_worker as u64;
        for s in 0..spes_per_worker {
            let spe = wid * spes_per_worker + s;
            stats.spes[spe].loop_cycles += share;
            if s == 0 {
                stats.spes[spe].invocations += 1;
            }
        }
        queue.schedule_after(spe_cycles, Ev::SpeDone(wid));
    }

    // Kick off every worker.
    for wid in 0..n_workers {
        advance(
            wid,
            &mut queue,
            &mut workers,
            &mut next_job,
            jobs,
            &mut ppe_free,
            &mut ppe_waiting,
            &mut stats,
            smt,
            spes_per_worker,
        );
    }

    while let Some((t, ev)) = queue.pop() {
        makespan = t;
        match ev {
            Ev::PpeDone(wid) => {
                ppe_free += 1;
                // Hand the freed thread to the next waiter.
                if let Some(next) = ppe_waiting.pop_front() {
                    ppe_free -= 1;
                    let w = &workers[next];
                    let phase = jobs[w.job.expect("waiter holds a job")][w.phase];
                    let dur = (phase.ppe as f64 * smt).round() as Cycles;
                    stats.ppe_busy += dur;
                    queue.schedule_after(dur, Ev::PpeDone(next));
                }
                // The finishing worker proceeds: SPE burst or next phase.
                let w = &workers[wid];
                let phase = jobs[w.job.expect("worker holds a job")][w.phase];
                if phase.spe > 0 {
                    start_spe(wid, phase.spe, &mut queue, &mut stats, spes_per_worker);
                } else {
                    workers[wid].phase += 1;
                    advance(
                        wid,
                        &mut queue,
                        &mut workers,
                        &mut next_job,
                        jobs,
                        &mut ppe_free,
                        &mut ppe_waiting,
                        &mut stats,
                        smt,
                        spes_per_worker,
                    );
                }
            }
            Ev::SpeDone(wid) => {
                workers[wid].phase += 1;
                advance(
                    wid,
                    &mut queue,
                    &mut workers,
                    &mut next_job,
                    jobs,
                    &mut ppe_free,
                    &mut ppe_waiting,
                    &mut stats,
                    smt,
                    spes_per_worker,
                );
            }
        }
    }

    stats.makespan = makespan;
    SimOutcome { makespan, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DesParams {
        DesParams { n_ppe_threads: 2, smt_penalty: 1.0, n_spes: 8 }
    }

    #[test]
    fn single_worker_is_sequential() {
        let phases = vec![Phase { ppe: 100, spe: 900 }; 10];
        let out = simulate_task_parallel(&phases, 1, 1, 1, &params());
        assert_eq!(out.makespan, 10 * 1000);
        assert_eq!(out.stats.spes[0].busy(), 9000);
        assert_eq!(out.stats.ppe_busy, 1000);
    }

    #[test]
    fn multiple_jobs_on_one_worker_serialize() {
        let phases = vec![Phase { ppe: 50, spe: 50 }];
        let out = simulate_task_parallel(&phases, 5, 1, 1, &params());
        assert_eq!(out.makespan, 5 * 100);
    }

    #[test]
    fn spe_bound_workload_scales_with_workers() {
        // Tiny PPE phases: 8 workers ≈ 8× throughput.
        let phases = vec![Phase { ppe: 1, spe: 10_000 }; 20];
        let one = simulate_task_parallel(&phases, 8, 1, 1, &params()).makespan;
        let eight = simulate_task_parallel(&phases, 8, 8, 1, &params()).makespan;
        let speedup = one as f64 / eight as f64;
        assert!(speedup > 7.5, "speedup {speedup}");
    }

    #[test]
    fn ppe_bound_workload_caps_at_two_threads() {
        // Pure PPE phases: 8 workers can use only 2 threads.
        let phases = vec![Phase { ppe: 1000, spe: 1 }; 10];
        let one_worker = simulate_task_parallel(&phases, 8, 1, 1, &params()).makespan;
        let eight = simulate_task_parallel(&phases, 8, 8, 1, &params()).makespan;
        let speedup = one_worker as f64 / eight as f64;
        assert!((1.8..=2.1).contains(&speedup), "PPE-bound speedup must cap at ~2: {speedup}");
    }

    #[test]
    fn smt_penalty_inflates_ppe_work_only_with_contention() {
        let phases = vec![Phase { ppe: 1000, spe: 1000 }; 4];
        let p = DesParams { smt_penalty: 1.5, ..params() };
        let solo = simulate_task_parallel(&phases, 1, 1, 1, &p).makespan;
        assert_eq!(solo, 4 * 2000, "single worker pays no SMT penalty");
        let duo = simulate_task_parallel(&phases, 2, 2, 1, &p).makespan;
        assert!(duo > solo / 2, "two jobs in parallel but inflated PPE");
        // Each worker: 4 phases of (1500 PPE + 1000 SPE) = 10000, with
        // plenty of PPE capacity (2 threads, 2 workers).
        assert_eq!(duo, 4 * 2500);
    }

    #[test]
    fn queueing_delays_appear_when_ppe_oversubscribed() {
        // 4 workers, 2 threads, PPE-heavy: makespan ≥ total PPE / 2.
        let phases = vec![Phase { ppe: 100, spe: 10 }; 50];
        let out = simulate_task_parallel(&phases, 4, 4, 1, &params());
        let total_ppe: Cycles = 4 * 50 * 100;
        assert!(out.makespan >= total_ppe / 2);
        assert!(out.stats.ppe_busy == total_ppe);
    }

    #[test]
    fn llp_attributes_busy_across_spe_set() {
        let phases = vec![Phase { ppe: 10, spe: 800 }];
        let out = simulate_task_parallel(&phases, 1, 1, 8, &params());
        for s in 0..8 {
            assert_eq!(out.stats.spes[s].loop_cycles, 100);
        }
    }

    #[test]
    fn compress_preserves_totals() {
        let phases: Vec<Phase> =
            (0..1000).map(|i| Phase { ppe: i % 7, spe: 100 + i % 13 }).collect();
        let compressed = compress_phases(&phases, 64);
        assert!(compressed.len() <= 64);
        let tp: Cycles = phases.iter().map(|p| p.ppe).sum();
        let ts: Cycles = phases.iter().map(|p| p.spe).sum();
        let cp: Cycles = compressed.iter().map(|p| p.ppe).sum();
        let cs: Cycles = compressed.iter().map(|p| p.spe).sum();
        assert_eq!((tp, ts), (cp, cs));
        // Short inputs pass through untouched.
        assert_eq!(compress_phases(&phases[..10], 64), phases[..10].to_vec());
    }

    #[test]
    fn empty_phases_are_skipped() {
        let phases = vec![
            Phase { ppe: 0, spe: 0 },
            Phase { ppe: 10, spe: 0 },
            Phase { ppe: 0, spe: 20 },
            Phase { ppe: 0, spe: 0 },
        ];
        let out = simulate_task_parallel(&phases, 2, 2, 1, &params());
        assert_eq!(out.makespan, 30, "phases run back to back per worker");
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let phases = vec![Phase { ppe: 10, spe: 100 }];
        let out = simulate_task_parallel(&phases, 2, 8, 1, &params());
        assert_eq!(out.makespan, 110);
    }

    #[test]
    #[should_panic(expected = "exceed the machine")]
    fn rejects_oversized_spe_sets() {
        let phases = vec![Phase { ppe: 1, spe: 1 }];
        simulate_task_parallel(&phases, 8, 8, 2, &params());
    }

    #[test]
    fn varied_jobs_schedule_correctly() {
        // Jobs of very different lengths: the makespan is bounded by the
        // longest job below and the serial sum above, and all work is
        // conserved.
        let short: Vec<Phase> = vec![Phase { ppe: 10, spe: 100 }; 2];
        let long: Vec<Phase> = vec![Phase { ppe: 10, spe: 100 }; 50];
        let jobs: Vec<&[Phase]> = vec![&long, &short, &short, &short];
        let out = simulate_task_parallel_jobs(&jobs, 4, 1, &params());
        // With 4 workers each job has its own worker: makespan = longest.
        assert_eq!(out.makespan, 50 * 110);
        let total_spe: Cycles = out.stats.spes.iter().map(|s| s.busy()).sum();
        assert_eq!(total_spe, (50 + 3 * 2) * 100);

        // One worker: everything serializes.
        let out = simulate_task_parallel_jobs(&jobs, 1, 1, &params());
        assert_eq!(out.makespan, (50 + 3 * 2) * 110);
    }

    #[test]
    fn varied_jobs_greedy_assignment() {
        // 2 workers, jobs [long, short, short]: worker A takes long, worker
        // B takes both shorts; makespan = max(long, 2×short).
        let short: Vec<Phase> = vec![Phase { ppe: 0, spe: 100 }; 3];
        let long: Vec<Phase> = vec![Phase { ppe: 0, spe: 100 }; 10];
        let jobs: Vec<&[Phase]> = vec![&long, &short, &short];
        let out = simulate_task_parallel_jobs(&jobs, 2, 1, &params());
        assert_eq!(out.makespan, 1000);
    }

    #[test]
    fn deterministic() {
        let phases: Vec<Phase> =
            (0..500).map(|i| Phase { ppe: 30 + i % 11, spe: 200 + i % 17 }).collect();
        let a = simulate_task_parallel(&phases, 16, 8, 1, &params()).makespan;
        let b = simulate_task_parallel(&phases, 16, 8, 1, &params()).makespan;
        assert_eq!(a, b);
    }
}
