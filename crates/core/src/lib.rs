//! # raxml-cell — the paper's contribution, reproduced
//!
//! This crate reproduces the porting-and-optimization study of *"RAxML-Cell:
//! Parallel Phylogenetic Tree Inference on the Cell Broadband Engine"*
//! (Blagojevic et al., IPPS 2007) on top of the two substrates built for it:
//!
//! * [`phylo`] — the RAxML-class maximum-likelihood inference engine whose
//!   kernels (`newview`, `makenewz`, `evaluate`) are the offload targets;
//! * [`cellsim`] — the Cell Broadband Engine performance model.
//!
//! The pieces:
//!
//! * [`config`] — the paper's optimization ladder (§5.2): PPE-only → naive
//!   `newview` offload → +SDK exp → +integer-cast conditionals → +double
//!   buffering → +vectorization → +direct memory communication → all three
//!   functions offloaded.
//! * [`offload`] — maps every kernel invocation of a real inference trace
//!   onto the simulated machine under a given ladder level.
//! * [`sched`] — the scheduling models: synchronous workers (the naive MPI
//!   port), EDTLP (event-driven task-level parallelism, §5.3), LLP
//!   (loop-level parallelism across SPEs) and MGPS (the dynamic multi-grain
//!   scheduler).
//! * [`platform`] — the IBM Power5 and Intel Xeon comparison platforms of
//!   §6 (Figure 3).
//! * [`experiment`] — end-to-end drivers that regenerate every table and
//!   figure of the paper from a real captured workload trace.
//! * [`error`] — the [`ExperimentError`] type every driver returns instead
//!   of panicking; the table/figure binaries print it and exit nonzero.
//! * [`farm_trace`] — bridges the `phylo::farm` inference farm's observer
//!   events into the `cellsim` trace log, so task-tier runs export the
//!   same Chrome-trace/JSONL artifacts as the simulator.
//! * [`report`] — the paper's published numbers and table formatting.

pub mod config;
pub mod error;
pub mod experiment;
pub mod farm_trace;
pub mod offload;
pub mod platform;
pub mod report;
pub mod sched;

pub use config::{OffloadStage, OptConfig, Scheduler};
pub use error::ExperimentError;
pub use experiment::{capture_workload, capture_workloads, Workload, WorkloadSpec};
pub use farm_trace::{bridge_counters_to_gauges, FarmTracer};
