//! End-to-end experiment drivers: capture a real inference workload, then
//! regenerate every table and figure of the paper from it.
//!
//! The pipeline is exactly the substitution DESIGN.md documents: a real ML
//! inference runs on a synthetic `42_SC`-equivalent alignment with full
//! kernel tracing; the trace is priced by the calibrated Cell cost model
//! under every rung of the optimization ladder; the schedulers distribute
//! the priced invocations over the simulated machine.

use crate::config::OptConfig;
use crate::error::{ExperimentError, Result};
use crate::offload::price_trace;
use crate::platform::PlatformModel;
use crate::report::{Comparison, FIGURE3_BOOTSTRAPS, PAPER_LADDER, PAPER_TABLE_8, TABLE_ROWS};
use crate::sched::{mgps_makespan, sync_workers_makespan, DesParams};
use cellsim::cost::CostModel;
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;
use phylo::trace::{KernelEvent, KernelOp, TraceCounters};

/// What workload to capture.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub n_taxa: usize,
    pub n_sites: usize,
    pub seed: u64,
    pub search: SearchConfig,
}

impl WorkloadSpec {
    /// The paper's workload: the `42_SC`-equivalent dataset (42 taxa ×
    /// 1167 sites, ~250 patterns) under a complete rapid-hill-climbing
    /// inference.
    pub fn aln42() -> WorkloadSpec {
        let mut search = SearchConfig::standard();
        search.spr_radius = 8;
        search.max_spr_rounds = 6;
        search.branch_smoothings = 6;
        WorkloadSpec { n_taxa: 42, n_sites: 1167, seed: 0x42_5C, search }
    }

    /// A small workload for tests (same structure, much less work).
    ///
    /// NOTE: with only ~100 site patterns the per-offload marshalling
    /// dominates the kernels, so offloading does *not* pay off on this
    /// workload — a real granularity effect. Shape assertions that depend
    /// on 42_SC-like kernel sizes should use [`WorkloadSpec::test_mid`].
    pub fn small() -> WorkloadSpec {
        let mut search = SearchConfig::fast();
        search.spr_radius = 3;
        search.max_spr_rounds = 1;
        WorkloadSpec { n_taxa: 10, n_sites: 300, seed: 7, search }
    }

    /// A mid-size test workload whose per-invocation pattern count is in
    /// the 42_SC range (~250 patterns), so offload granularity effects
    /// match the paper's regime while staying fast enough for unit tests.
    pub fn test_mid() -> WorkloadSpec {
        let mut search = SearchConfig::fast();
        search.spr_radius = 2;
        search.max_spr_rounds = 1;
        search.optimize_alpha = false;
        WorkloadSpec { n_taxa: 12, n_sites: 900, seed: 11, search }
    }
}

/// A captured workload: the full kernel-invocation trace of one inference.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Every kernel invocation, in execution order.
    pub events: Vec<KernelEvent>,
    /// Aggregate counters.
    pub counters: TraceCounters,
    /// SPR-round boundaries: each mark slices `events` into one round's
    /// invocations (plus setup/polish work outside any round).
    pub rounds: Vec<phylo::trace::RoundMark>,
    /// Final log-likelihood of the inference (sanity anchor).
    pub log_likelihood: f64,
    /// Distinct site patterns of the alignment.
    pub n_patterns: usize,
}

impl Workload {
    /// The events of one SPR round, by round mark.
    pub fn round_events(&self, mark: &phylo::trace::RoundMark) -> &[KernelEvent] {
        let begin = mark.begin.min(self.events.len());
        let end = mark.end.min(self.events.len());
        &self.events[begin..end]
    }
}

/// Run a real inference with full tracing and return its workload.
pub fn capture_workload(spec: &WorkloadSpec) -> Result<Workload> {
    if spec.n_taxa < 4 {
        return Err(ExperimentError::InvalidSpec {
            field: "n_taxa",
            value: spec.n_taxa,
            reason: "an unrooted tree search needs at least 4 taxa",
        });
    }
    if spec.n_sites == 0 {
        return Err(ExperimentError::InvalidSpec {
            field: "n_sites",
            value: spec.n_sites,
            reason: "an alignment needs at least one site",
        });
    }
    let sim = if spec.n_taxa == 42 && spec.n_sites == 1167 {
        SimulationConfig::aln42()
    } else {
        SimulationConfig::new(spec.n_taxa, spec.n_sites, spec.seed)
    };
    let generated = sim.generate();
    let request = InferenceRequest::new(spec.search.clone(), spec.seed);
    let result = run_inference(&generated.alignment, &request, InferenceOptions::new().traced())
        .expect("un-checkpointed search on finite data cannot fail")
        .result;
    if !result.log_likelihood.is_finite() {
        return Err(ExperimentError::NonFiniteLikelihood(result.log_likelihood));
    }
    let counters = *result.trace.counters();
    let rounds = result.trace.rounds().to_vec();
    let events = result.trace.into_events();
    if events.is_empty() {
        return Err(ExperimentError::EmptyTrace);
    }
    Ok(Workload {
        events,
        counters,
        rounds,
        log_likelihood: result.log_likelihood,
        n_patterns: generated.alignment.n_patterns(),
    })
}

/// Capture several workloads concurrently on the inference farm: one job
/// per spec, `n_workers` worker threads, results in spec order. This is
/// the multi-inference driver behind `run_table8_varied`-style studies —
/// each capture is a full traced inference, so farming them out is the
/// task-level parallelism of the paper's §3.1 applied to the experiment
/// pipeline itself.
///
/// A spec that fails validation surfaces as its own typed error; a capture
/// that panics surfaces as [`ExperimentError::Farm`] naming the job. In
/// both cases the error reported is the first by spec order.
pub fn capture_workloads(specs: &[WorkloadSpec], n_workers: usize) -> Result<Vec<Workload>> {
    let jobs: Vec<WorkloadSpec> = specs.to_vec();
    let outcome = phylo::farm::run_batch(jobs, n_workers.max(1), |_, spec| capture_workload(&spec));
    outcome
        .results
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(inner) => inner,
            Err(fe) => Err(ExperimentError::Farm { job: i, message: fe.to_string() }),
        })
        .collect()
}

/// Load an alignment from disk, detecting the format from the extension
/// (`.fa`/`.fasta` → FASTA, `.nwk` aside, everything else sniffed: a leading
/// `>` means FASTA, otherwise relaxed PHYLIP — RAxML's own input format).
///
/// Unreadable files surface as [`ExperimentError::Io`]; malformed contents
/// as the parser's typed [`phylo::error::PhyloError`] wrapped in
/// [`ExperimentError::Phylo`], so drivers print a line/column diagnosis and
/// exit nonzero instead of panicking on corrupt input.
pub fn load_alignment(path: &std::path::Path) -> Result<phylo::alignment::Alignment> {
    let text = std::fs::read_to_string(path).map_err(|e| ExperimentError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let ext = path.extension().and_then(|e| e.to_str()).map(|e| e.to_ascii_lowercase());
    let is_fasta = match ext.as_deref() {
        Some("fa" | "fasta") => true,
        Some("phy" | "phylip") => false,
        _ => text.trim_start().starts_with('>'),
    };
    let aln =
        if is_fasta { phylo::io::parse_fasta(&text)? } else { phylo::io::parse_phylip(&text)? };
    Ok(aln)
}

/// Reject workloads whose trace has nothing to price.
fn check_workload(workload: &Workload) -> Result<()> {
    if workload.events.is_empty() {
        return Err(ExperimentError::EmptyTrace);
    }
    Ok(())
}

/// One rung of the ladder with its four workload rows.
#[derive(Debug, Clone)]
pub struct LevelResult {
    pub label: &'static str,
    pub config: OptConfig,
    pub rows: Vec<Comparison>,
}

/// Reproduce Tables 1a–7: every ladder rung × the paper's four workload
/// rows (1 worker × 1 bootstrap, 2 workers × 8/16/32 bootstraps) under
/// synchronous-worker scheduling.
pub fn run_ladder(workload: &Workload, model: &CostModel) -> Result<Vec<LevelResult>> {
    check_workload(workload)?;
    let levels = OptConfig::ladder()
        .into_iter()
        .enumerate()
        .map(|(i, (label, config))| {
            let priced = price_trace(&workload.events, model, &config);
            let rows = TABLE_ROWS
                .iter()
                .zip(PAPER_LADDER[i].iter())
                .map(|(&(row_label, workers, bootstraps), &paper)| Comparison {
                    label: row_label.to_string(),
                    paper_seconds: paper,
                    simulated_seconds: model
                        .seconds(sync_workers_makespan(&priced, bootstraps, workers)),
                })
                .collect();
            LevelResult { label, config, rows }
        })
        .collect();
    Ok(levels)
}

/// Reproduce Table 8: the MGPS dynamic scheduler over 1/8/16/32 bootstraps
/// with the fully optimized code.
pub fn run_table8(
    workload: &Workload,
    model: &CostModel,
    params: &DesParams,
) -> Result<Vec<Comparison>> {
    check_workload(workload)?;
    let priced = price_trace(&workload.events, model, &OptConfig::fully_optimized());
    Ok(PAPER_TABLE_8
        .iter()
        .map(|&(n, paper)| Comparison {
            label: format!("{n} bootstrap{}", if n == 1 { "" } else { "s" }),
            paper_seconds: paper,
            simulated_seconds: model.seconds(mgps_makespan(&priced, n, model, params).makespan),
        })
        .collect())
}

/// Table 8 with *varied* jobs: every bootstrap is a genuinely distinct
/// traced inference (different seed ⇒ different starting tree, search path
/// and trace length), scheduled under MGPS. The identical-trace
/// [`run_table8`] is the paper-style steady-state view; this one shows the
/// load imbalance real replicates add.
pub fn run_table8_varied(
    workloads: &[Workload],
    model: &CostModel,
    params: &DesParams,
) -> Result<Vec<Comparison>> {
    use crate::sched::{compress_phases, des, simulate_task_parallel_jobs, DEFAULT_GRANULARITY};
    if workloads.is_empty() {
        return Err(ExperimentError::NoWorkloads);
    }
    for w in workloads {
        check_workload(w)?;
    }
    let cfg = OptConfig::fully_optimized();
    let priced: Vec<_> = workloads.iter().map(|w| price_trace(&w.events, model, &cfg)).collect();
    // Pre-build per-workload phase lists for EDTLP (k = 1, oversubscribed).
    let phase_sets: Vec<Vec<des::Phase>> = priced
        .iter()
        .map(|t| {
            compress_phases(
                &des::phases_for(t, 1, model.llp_dispatch, model.edtlp_context_switch, 1.0),
                DEFAULT_GRANULARITY,
            )
        })
        .collect();

    Ok(PAPER_TABLE_8
        .iter()
        .map(|&(n, paper)| {
            let jobs: Vec<&[des::Phase]> =
                (0..n).map(|i| phase_sets[i % phase_sets.len()].as_slice()).collect();
            let workers = n.min(params.n_spes);
            let out = simulate_task_parallel_jobs(&jobs, workers, 1, params);
            Comparison {
                label: format!("{n} varied bootstrap{}", if n == 1 { "" } else { "s" }),
                paper_seconds: paper,
                simulated_seconds: model.seconds(out.makespan),
            }
        })
        .collect())
}

/// Figure 3 data: execution time vs #bootstraps on Cell (MGPS), Power5 and
/// Xeon.
#[derive(Debug, Clone)]
pub struct Figure3 {
    pub bootstraps: Vec<usize>,
    pub cell: Vec<f64>,
    pub power5: Vec<f64>,
    pub xeon: Vec<f64>,
}

/// Reproduce Figure 3.
pub fn run_figure3(workload: &Workload, model: &CostModel, params: &DesParams) -> Result<Figure3> {
    check_workload(workload)?;
    let optimized = price_trace(&workload.events, model, &OptConfig::fully_optimized());
    let ppe_only = price_trace(&workload.events, model, &OptConfig::ppe_only());
    let ppe_bootstrap_seconds = model.seconds(ppe_only.sequential_cycles());

    let power5 = PlatformModel::power5();
    let xeon = PlatformModel::xeon();
    let mut fig = Figure3 {
        bootstraps: FIGURE3_BOOTSTRAPS.to_vec(),
        cell: Vec::new(),
        power5: Vec::new(),
        xeon: Vec::new(),
    };
    for &n in &FIGURE3_BOOTSTRAPS {
        fig.cell.push(model.seconds(mgps_makespan(&optimized, n, model, params).makespan));
        fig.power5.push(power5.makespan_seconds(ppe_bootstrap_seconds, n));
        fig.xeon.push(xeon.makespan_seconds(ppe_bootstrap_seconds, n));
    }
    Ok(fig)
}

/// One optimization's isolated and leave-one-out impact.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub name: &'static str,
    /// Seconds when ONLY this optimization is applied to the naive offload.
    pub alone_seconds: f64,
    /// Improvement over the naive offload when applied alone.
    pub alone_gain: f64,
    /// Seconds when this optimization is REMOVED from the full config.
    pub without_seconds: f64,
    /// Cost of removing it from the full config.
    pub without_loss: f64,
}

/// Ablation study of the five SPE optimizations (beyond the paper's
/// cumulative ladder): each measured both *in isolation* on the naive
/// offload and *left out* of the fully optimized configuration. Interaction
/// effects — e.g. double buffering being worth more once compute shrinks —
/// show up as the difference between the two views.
pub fn run_ablation(workload: &Workload, model: &CostModel) -> Result<Vec<AblationRow>> {
    check_workload(workload)?;
    let naive = OptConfig::naive_offload();
    let mut full = OptConfig::fully_optimized();
    // Keep the offload stage fixed at NewviewOnly so the comparison is
    // purely about the five SPE-code optimizations.
    full.stage = crate::config::OffloadStage::NewviewOnly;

    let seconds = |cfg: &OptConfig| {
        model.seconds(price_trace(&workload.events, model, cfg).sequential_cycles())
    };
    let naive_s = seconds(&naive);
    let full_s = seconds(&full);

    type Toggle = fn(&mut OptConfig, bool);
    let toggles: [(&'static str, Toggle); 5] = [
        ("SDK exp (§5.2.2)", |c, v| c.sdk_exp = v),
        ("int-cast conditionals (§5.2.3)", |c, v| c.cast_conditionals = v),
        ("double buffering (§5.2.4)", |c, v| c.double_buffering = v),
        ("vectorized loops (§5.2.5)", |c, v| c.vectorized = v),
        ("direct memory comm (§5.2.6)", |c, v| c.direct_comm = v),
    ];

    Ok(toggles
        .iter()
        .map(|&(name, toggle)| {
            let mut alone = naive;
            toggle(&mut alone, true);
            let alone_seconds = seconds(&alone);
            let mut without = full;
            toggle(&mut without, false);
            let without_seconds = seconds(&without);
            AblationRow {
                name,
                alone_seconds,
                alone_gain: 1.0 - alone_seconds / naive_s,
                without_seconds,
                without_loss: without_seconds / full_s - 1.0,
            }
        })
        .collect())
}

/// One code-budget scenario of the overlay what-if study.
#[derive(Debug, Clone)]
pub struct OverlayScenario {
    /// Code budget in bytes.
    pub budget: usize,
    /// Overlay faults over the whole trace.
    pub faults: u64,
    /// Overlay fault rate (faults / kernel calls).
    pub fault_rate: f64,
    /// Seconds of code-reload DMA added to one bootstrap.
    pub overhead_seconds: f64,
    /// The Table 7 bootstrap time with this overhead added.
    pub bootstrap_seconds: f64,
}

/// The §5.2.4 counterfactual: what if the three kernels had NOT fit in the
/// local store and needed manually managed code overlays? Replays the real
/// call sequence through an LRU overlay manager at several code budgets and
/// prices the reload DMA. The paper avoided this by keeping the footprint
/// at 117 KB; the study quantifies what that design care was worth.
pub fn run_overlay_study(workload: &Workload, model: &CostModel) -> Result<Vec<OverlayScenario>> {
    use cellsim::overlay::{overlay_overhead, paper_modules};

    check_workload(workload)?;
    let base = price_trace(&workload.events, model, &OptConfig::fully_optimized());
    let base_seconds = model.seconds(base.sequential_cycles());

    let call_seq: Vec<usize> = workload
        .events
        .iter()
        .map(|ev| match ev.op {
            op if op.is_newview() => 0usize,
            phylo::trace::KernelOp::Makenewz => 1,
            _ => 2,
        })
        .collect();

    // 139 KB is what the real port had free-plus-code; 117 KB fits exactly;
    // smaller budgets force increasingly severe thrashing.
    Ok([139 * 1024, 117 * 1024, 100 * 1024, 80 * 1024, 64 * 1024]
        .into_iter()
        .map(|budget| {
            let (mgr, cycles) =
                overlay_overhead(call_seq.iter().copied(), paper_modules(), budget, &model.dma);
            let (_, faults, _) = mgr.stats();
            let overhead_seconds = model.seconds(cycles);
            OverlayScenario {
                budget,
                faults,
                fault_rate: mgr.fault_rate(),
                overhead_seconds,
                bootstrap_seconds: base_seconds + overhead_seconds,
            }
        })
        .collect())
}

/// One point of the multilevel-parallelism comparison.
#[derive(Debug, Clone)]
pub struct MultilevelPoint {
    pub n_bootstraps: usize,
    /// Pure task-level parallelism (EDTLP; two layers: tasks + vectors).
    pub edtlp_seconds: f64,
    /// Pure loop-level parallelism (LLP with min(n,4) workers; three
    /// layers: tasks + loops + vectors).
    pub llp_seconds: f64,
    /// The dynamic MGPS scheduler.
    pub mgps_seconds: f64,
}

/// Reproduce the paper's Contribution III: "two layers of parallelism …
/// being more beneficial for large and realistic workloads and three layers
/// … being beneficial for workloads with a low degree (≤ 4) of task-level
/// parallelism". Sweeps the bootstrap count and compares pure EDTLP, pure
/// LLP, and the dynamic MGPS that switches between them.
pub fn run_multilevel_study(
    workload: &Workload,
    model: &CostModel,
    params: &DesParams,
) -> Result<Vec<MultilevelPoint>> {
    use crate::sched::{edtlp_makespan, llp_makespan, mgps_makespan};
    check_workload(workload)?;
    let priced = price_trace(&workload.events, model, &OptConfig::fully_optimized());
    Ok([1usize, 2, 3, 4, 6, 8, 12, 16, 32]
        .into_iter()
        .map(|n| {
            let llp_workers = n.min(4);
            MultilevelPoint {
                n_bootstraps: n,
                edtlp_seconds: model.seconds(edtlp_makespan(&priced, n, model, params).makespan),
                llp_seconds: model
                    .seconds(llp_makespan(&priced, n, llp_workers, model, params).makespan),
                mgps_seconds: model.seconds(mgps_makespan(&priced, n, model, params).makespan),
            }
        })
        .collect())
}

/// One machine scale point of the SPE-scaling projection.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub n_spes: usize,
    pub ppe_threads: usize,
    pub makespan_seconds: f64,
    /// Speedup over the 1-SPE synchronous baseline.
    pub speedup: f64,
    /// Mean SPE utilization.
    pub spe_utilization: f64,
}

/// Projection study: how does the MGPS throughput scale with the number of
/// SPEs? The paper's blade has two Cells (16 SPEs) but uses one; IBM's
/// Petaflop plans (§1) stack many. The projection shows where the 2-thread
/// PPE becomes the bottleneck — the scaling wall the EDTLP design implies.
pub fn run_scaling_study(
    workload: &Workload,
    model: &CostModel,
    n_bootstraps: usize,
) -> Result<Vec<ScalingPoint>> {
    use crate::sched::mgps_makespan;
    check_workload(workload)?;
    if n_bootstraps == 0 {
        return Err(ExperimentError::InvalidParameter {
            name: "n_bootstraps",
            value: 0,
            reason: "the scaling projection needs at least one bootstrap to schedule",
        });
    }
    let priced = price_trace(&workload.events, model, &OptConfig::fully_optimized());
    let baseline = model.seconds(crate::sched::sync_workers_makespan(&priced, n_bootstraps, 1));

    Ok([(1usize, 2usize), (2, 2), (4, 2), (8, 2), (16, 2), (16, 4)]
        .into_iter()
        .map(|(n_spes, ppe_threads)| {
            let params = DesParams { n_spes, n_ppe_threads: ppe_threads, ..DesParams::default() };
            let out = mgps_makespan(&priced, n_bootstraps, model, &params);
            let makespan_seconds = model.seconds(out.makespan);
            ScalingPoint {
                n_spes,
                ppe_threads,
                makespan_seconds,
                speedup: baseline / makespan_seconds,
                spe_utilization: out.stats.spe_utilization(),
            }
        })
        .collect())
}

/// The §5.2 profile breakdown of a workload under PPE-only pricing.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Fraction of PPE time per kernel: (newview, makenewz, evaluate, other).
    pub fractions: [f64; 4],
    /// Fraction of `newview` calls nested inside `makenewz`/`evaluate`.
    pub nested_fraction: f64,
    /// Total kernel invocations.
    pub invocations: u64,
    /// Mean FLOPs per `newview` invocation (paper: ≈25,554 on 42_SC).
    pub newview_mean_flops: f64,
}

/// Profile a workload like the paper's gprofile run (§5.2).
pub fn profile_breakdown(workload: &Workload, model: &CostModel) -> Result<ProfileReport> {
    check_workload(workload)?;
    let cfg = OptConfig::ppe_only();
    let mut per_kernel = [0u64; 3]; // newview, makenewz, evaluate
    let mut newview_flops = 0u64;
    let mut newview_calls = 0u64;
    for ev in &workload.events {
        let (p, _) = crate::offload::price_event(ev, model, &cfg);
        let idx = match ev.op {
            KernelOp::NewviewTipTip | KernelOp::NewviewTipInner | KernelOp::NewviewInnerInner => {
                newview_flops += ev.flops();
                newview_calls += 1;
                0
            }
            KernelOp::Makenewz => 1,
            KernelOp::Evaluate => 2,
        };
        per_kernel[idx] += p.ppe;
    }
    let other = crate::offload::other_work_cycles(&workload.events, model);
    let total = (per_kernel.iter().sum::<u64>() + other) as f64;
    let nested =
        workload.counters.newview_nested as f64 / workload.counters.newview_calls.max(1) as f64;
    Ok(ProfileReport {
        fractions: [
            per_kernel[0] as f64 / total,
            per_kernel[1] as f64 / total,
            per_kernel[2] as f64 / total,
            other as f64 / total,
        ],
        nested_fraction: nested,
        invocations: workload.events.len() as u64,
        newview_mean_flops: newview_flops as f64 / newview_calls.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::shape_deviation;
    use std::sync::OnceLock;

    /// Capture the mid-size workload once; it is used by several tests.
    fn workload() -> &'static Workload {
        static CACHE: OnceLock<Workload> = OnceLock::new();
        CACHE.get_or_init(|| capture_workload(&WorkloadSpec::test_mid()).expect("capture"))
    }

    #[test]
    fn load_alignment_routes_typed_errors() {
        let dir = std::env::temp_dir().join("raxml-cell-load-aln-test");
        std::fs::create_dir_all(&dir).unwrap();

        // Missing file → Io.
        let missing = dir.join("does-not-exist.phy");
        match load_alignment(&missing) {
            Err(ExperimentError::Io { path, .. }) => assert!(path.contains("does-not-exist")),
            other => panic!("expected Io error, got {other:?}"),
        }

        // Corrupt PHYLIP → typed parse error with a line number.
        let bad = dir.join("bad.phy");
        std::fs::write(&bad, "2 4\nalpha ACGTTTTT\n").unwrap();
        match load_alignment(&bad) {
            Err(ExperimentError::Phylo(phylo::error::PhyloError::Parse {
                format, line, ..
            })) => {
                assert_eq!(format, "PHYLIP");
                assert!(line > 0);
            }
            other => panic!("expected Phylo(Parse) error, got {other:?}"),
        }

        // Good FASTA sniffed by content even with a neutral extension.
        let good = dir.join("good.txt");
        std::fs::write(&good, ">a\nACGT\n>b\nACGA\n").unwrap();
        let aln = load_alignment(&good).unwrap();
        assert_eq!((aln.n_taxa(), aln.n_sites()), (2, 4));

        // Good PHYLIP by extension.
        let phy = dir.join("good.phy");
        std::fs::write(&phy, "2 4\nalpha ACGT\nbeta  ACGA\n").unwrap();
        assert_eq!(load_alignment(&phy).unwrap().n_taxa(), 2);
    }

    #[test]
    fn capture_produces_a_real_trace() {
        let w = workload();
        assert!(w.events.len() > 1000, "a search makes many kernel calls: {}", w.events.len());
        assert!(w.log_likelihood.is_finite() && w.log_likelihood < 0.0);
        assert!(w.counters.newview_calls > 500);
        assert!(w.counters.makenewz_calls > 50);
        assert!(w.n_patterns > 10);
    }

    #[test]
    fn ladder_reproduces_the_paper_shape_qualitatively() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let ladder = run_ladder(w, &model).unwrap();
        assert_eq!(ladder.len(), 8);

        // Single-bootstrap column across the ladder.
        let col: Vec<f64> = ladder.iter().map(|l| l.rows[0].simulated_seconds).collect();
        // Naive offload is slower than the PPE.
        assert!(col[1] > col[0], "naive offload must hurt: {col:?}");
        // Every subsequent optimization helps.
        for i in 2..8 {
            assert!(col[i] < col[i - 1], "level {i} must improve: {col:?}");
        }
        // The fully offloaded version beats the PPE (the paper's 25%).
        assert!(col[7] < col[0], "final config must beat PPE: {col:?}");
    }

    #[test]
    fn ladder_workload_rows_scale_like_the_paper() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let ladder = run_ladder(w, &model).unwrap();
        for level in &ladder {
            // Within a table, rows scale with bootstraps/workers: the shape
            // deviation against the paper must be modest. (The mid-size
            // test workload has a different PPE/SPE balance than 42_SC, so
            // the band is wider than what the ALN42 run achieves — the
            // `tables` bench reports 0.7–10% there.)
            let dev = shape_deviation(&level.rows);
            assert!(dev < 0.25, "{}: deviation {dev}", level.label);
        }
    }

    #[test]
    fn table8_mgps_beats_sync_and_scales() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let params = DesParams::default();
        let t8 = run_table8(w, &model, &params).unwrap();
        assert_eq!(t8.len(), 4);
        // MGPS over 32 bootstraps crushes 2 synchronous workers (Table 7
        // row 4 vs Table 8 row 4 in the paper: 444.87 → 167.57).
        let ladder = run_ladder(w, &model).unwrap();
        let t7_32 = ladder[7].rows[3].simulated_seconds;
        let mgps_32 = t8[3].simulated_seconds;
        assert!(mgps_32 < t7_32 * 0.55, "MGPS must give a large speedup: {mgps_32} vs {t7_32}");
        // 1 bootstrap: LLP must help over plain sequential.
        let t7_1 = ladder[7].rows[0].simulated_seconds;
        let mgps_1 = t8[0].simulated_seconds;
        assert!(mgps_1 < t7_1, "LLP must beat one SPE: {mgps_1} vs {t7_1}");
    }

    #[test]
    fn figure3_preserves_the_platform_ranking() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let params = DesParams::default();
        let fig = run_figure3(w, &model, &params).unwrap();
        for i in 0..fig.bootstraps.len() {
            assert!(
                fig.cell[i] < fig.power5[i],
                "Cell must beat Power5 at {} bootstraps",
                fig.bootstraps[i]
            );
            assert!(
                fig.power5[i] < fig.xeon[i],
                "Power5 must beat Xeon at {} bootstraps",
                fig.bootstraps[i]
            );
        }
        // At scale, Xeon is >2× the Cell (the paper's §6 claim).
        let last = fig.bootstraps.len() - 1;
        assert!(fig.xeon[last] / fig.cell[last] > 2.0);
        // Times grow with bootstraps.
        for series in [&fig.cell, &fig.power5, &fig.xeon] {
            for w in series.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn varied_bootstraps_behave_like_identical_ones_on_average() {
        let base = workload();
        // A second, genuinely different inference on the same data.
        let mut spec = WorkloadSpec::test_mid();
        spec.seed = 1234;
        let other = capture_workload(&spec).expect("capture");
        assert_ne!(base.events.len(), other.events.len(), "traces should differ");

        let model = CostModel::paper_calibrated();
        let params = DesParams::default();
        let varied = run_table8_varied(&[base.clone(), other], &model, &params).unwrap();
        let uniform = run_table8(base, &model, &params).unwrap();
        // Skip the 1-bootstrap row: the uniform path runs it under 8-way
        // LLP (MGPS's tail rule) while the varied scheduler keeps k = 1,
        // so they measure different things there by design.
        for (v, u) in varied.iter().zip(&uniform).skip(1) {
            assert!(v.simulated_seconds > 0.0);
            // Varied jobs land in the same ballpark as the uniform model
            // (trace lengths differ, not orders of magnitude).
            let ratio = v.simulated_seconds / u.simulated_seconds;
            assert!((0.4..2.5).contains(&ratio), "{}: ratio {ratio}", v.label);
        }
    }

    #[test]
    fn ablation_is_consistent_with_the_ladder() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let rows = run_ablation(w, &model).unwrap();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            // Alone, every optimization helps (or at worst is neutral).
            assert!(r.alone_gain >= -1e-9, "{}: alone gain {}", r.name, r.alone_gain);
            // Removing any optimization from the full build never helps.
            assert!(r.without_loss >= -1e-9, "{}: loss {}", r.name, r.without_loss);
        }
        // The paper's headline ordering: the exp replacement is the single
        // biggest lever, and the conditional cast beats FP vectorization.
        let gain = |name: &str| rows.iter().find(|r| r.name.starts_with(name)).unwrap().alone_gain;
        assert!(gain("SDK exp") > gain("int-cast"), "exp dominates");
        assert!(
            gain("int-cast") > gain("vectorized loops"),
            "control-flow vectorization beats FP vectorization (§5.2.5)"
        );
    }

    #[test]
    fn multilevel_study_reproduces_contribution_iii() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let rows = run_multilevel_study(w, &model, &DesParams::default()).unwrap();
        let at = |n: usize| rows.iter().find(|r| r.n_bootstraps == n).unwrap();
        // Low task-level parallelism: three layers (LLP) win.
        assert!(at(1).llp_seconds < at(1).edtlp_seconds, "LLP must win at 1 bootstrap");
        // Ample task-level parallelism: two layers (EDTLP) win.
        assert!(at(32).edtlp_seconds < at(32).llp_seconds, "EDTLP must win at 32 bootstraps");
        // MGPS is never meaningfully worse than the better pure strategy.
        for r in &rows {
            let best = r.edtlp_seconds.min(r.llp_seconds);
            assert!(
                r.mgps_seconds <= best * 1.10,
                "n={}: MGPS {} vs best pure {}",
                r.n_bootstraps,
                r.mgps_seconds,
                best
            );
        }
    }

    #[test]
    fn overlay_study_shows_the_papers_design_margin() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let rows = run_overlay_study(w, &model).unwrap();
        assert_eq!(rows.len(), 5);
        // At the real 139 KB budget there are exactly the 3 cold faults.
        assert_eq!(rows[0].faults, 3);
        assert!(rows[0].overhead_seconds < 1e-3);
        // Shrinking the budget never reduces faults and never reduces cost.
        for pair in rows.windows(2) {
            assert!(pair[1].faults >= pair[0].faults);
            assert!(pair[1].overhead_seconds >= pair[0].overhead_seconds);
        }
        // The tightest budget must actually thrash.
        assert!(rows[4].fault_rate > 0.1, "rate {}", rows[4].fault_rate);
    }

    #[test]
    fn scaling_study_shows_the_ppe_wall() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let rows = run_scaling_study(w, &model, 32).unwrap();
        // Speedup grows with SPEs…
        for pair in rows.windows(2) {
            assert!(
                pair[1].speedup >= pair[0].speedup * 0.95,
                "speedup should not collapse: {:?}",
                rows
            );
        }
        // …but 16 SPEs behind 2 PPE threads gain much less than the extra
        // hardware would suggest, while 4 PPE threads unlock them.
        let spe16_2t = rows.iter().find(|r| r.n_spes == 16 && r.ppe_threads == 2).unwrap();
        let spe16_4t = rows.iter().find(|r| r.n_spes == 16 && r.ppe_threads == 4).unwrap();
        let spe8 = rows.iter().find(|r| r.n_spes == 8).unwrap();
        assert!(
            spe16_4t.speedup > spe16_2t.speedup * 1.2,
            "more PPE threads must matter at 16 SPEs: {} vs {}",
            spe16_4t.speedup,
            spe16_2t.speedup
        );
        assert!(spe16_2t.speedup < spe8.speedup * 1.5, "the 2-thread PPE caps the 16-SPE gain");
    }

    #[test]
    fn profile_breakdown_matches_expectations() {
        let w = workload();
        let model = CostModel::paper_calibrated();
        let p = profile_breakdown(w, &model).unwrap();
        let total: f64 = p.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The likelihood kernels dominate (the paper's 98.77% claim); the
        // newview/makenewz balance depends on tree size — on the small
        // 12-taxon test workload the lazy SPR's per-candidate makenewz
        // calls rival newview, while the 42-taxon ALN42 run shows the
        // paper-like newview domination (see the `tables` bench output).
        assert!(p.fractions[0] + p.fractions[1] > 0.9, "kernels must dominate: {:?}", p.fractions);
        assert!(p.fractions[0] > 0.3, "newview is a major component: {:?}", p.fractions);
        assert!(p.fractions[3] < 0.05, "other work is small");
        assert!(p.nested_fraction > 0.0 && p.nested_fraction <= 1.0);
        assert!(p.newview_mean_flops > 1000.0);
    }

    /// Farm-captured workloads must be bit-identical to sequential
    /// captures — the farm only changes where jobs run, never what they
    /// compute — and spec errors must keep their types through the farm.
    #[test]
    fn farmed_captures_match_sequential_bit_for_bit() {
        let mut a = WorkloadSpec::small();
        a.seed = 21;
        let mut b = WorkloadSpec::small();
        b.seed = 22;
        let specs = [a.clone(), b.clone()];

        let farmed = capture_workloads(&specs, 2).unwrap();
        let seq: Vec<Workload> = specs.iter().map(|s| capture_workload(s).unwrap()).collect();
        assert_eq!(farmed.len(), 2);
        for (f, s) in farmed.iter().zip(&seq) {
            assert_eq!(f.log_likelihood.to_bits(), s.log_likelihood.to_bits());
            assert_eq!(f.events.len(), s.events.len());
            assert_eq!(f.counters.newview_calls, s.counters.newview_calls);
            assert_eq!(f.n_patterns, s.n_patterns);
        }

        // A bad spec keeps its typed error (and its position).
        let mut bad = WorkloadSpec::small();
        bad.n_taxa = 3;
        match capture_workloads(&[a, bad], 2) {
            Err(ExperimentError::InvalidSpec { field: "n_taxa", .. }) => {}
            other => panic!("expected InvalidSpec via the farm: {other:?}"),
        }
    }

    #[test]
    fn capture_rejects_degenerate_specs() {
        let mut spec = WorkloadSpec::small();
        spec.n_taxa = 3;
        match capture_workload(&spec) {
            Err(ExperimentError::InvalidSpec { field: "n_taxa", .. }) => {}
            other => panic!("expected InvalidSpec for n_taxa: {other:?}"),
        }
        let mut spec = WorkloadSpec::small();
        spec.n_sites = 0;
        match capture_workload(&spec) {
            Err(ExperimentError::InvalidSpec { field: "n_sites", .. }) => {}
            other => panic!("expected InvalidSpec for n_sites: {other:?}"),
        }
    }

    #[test]
    fn drivers_reject_empty_traces_instead_of_panicking() {
        let empty = Workload {
            events: Vec::new(),
            counters: TraceCounters::default(),
            rounds: Vec::new(),
            log_likelihood: -1.0,
            n_patterns: 10,
        };
        let model = CostModel::paper_calibrated();
        let params = DesParams::default();
        assert_eq!(run_ladder(&empty, &model).unwrap_err(), ExperimentError::EmptyTrace);
        assert_eq!(run_table8(&empty, &model, &params).unwrap_err(), ExperimentError::EmptyTrace);
        assert_eq!(run_figure3(&empty, &model, &params).unwrap_err(), ExperimentError::EmptyTrace);
        assert_eq!(run_ablation(&empty, &model).unwrap_err(), ExperimentError::EmptyTrace);
        assert_eq!(run_overlay_study(&empty, &model).unwrap_err(), ExperimentError::EmptyTrace);
        assert_eq!(
            run_multilevel_study(&empty, &model, &params).unwrap_err(),
            ExperimentError::EmptyTrace
        );
        assert_eq!(profile_breakdown(&empty, &model).unwrap_err(), ExperimentError::EmptyTrace);
        assert_eq!(
            run_table8_varied(&[], &model, &params).unwrap_err(),
            ExperimentError::NoWorkloads
        );
        match run_scaling_study(workload(), &model, 0) {
            Err(ExperimentError::InvalidParameter { name: "n_bootstraps", .. }) => {}
            other => panic!("expected InvalidParameter: {other:?}"),
        }
    }
}
