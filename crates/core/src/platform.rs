//! Comparison platforms for §6 / Figure 3: IBM Power5 and Intel Xeon.
//!
//! The paper runs the MPI RAxML on a quad-context Power5 (2 cores × 2 SMT,
//! 1.65 GHz) and on two HT Xeons (2 sockets × 2 contexts, 2 GHz), and finds:
//! "One Cell processor clearly outperforms the Intel Xeon by a large margin
//! (more than a factor of two) … Cell performs 9%–10% better than the IBM
//! Power5."
//!
//! We model each platform as `contexts` independent execution contexts, each
//! running one bootstrap at `scale ×` the time the *PPE* needs for it. The
//! scales are calibrated from Figure 3's end points: at 32 bootstraps the
//! Cell (MGPS) takes 167.57 s (Table 8); Power5 ≈ 1.095 × Cell ⇒ 22.9 s per
//! bootstrap per context ⇒ 0.62 × the PPE's 36.9 s; Xeon ≈ 2.2 × Cell ⇒
//! 46.1 s ⇒ 1.25 × the PPE.

/// A §6 comparison platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformModel {
    /// Display name.
    pub name: &'static str,
    /// Hardware execution contexts running MPI workers.
    pub contexts: usize,
    /// Per-bootstrap time as a multiple of the Cell PPE's per-bootstrap
    /// time (SMT throughput effects folded in).
    pub per_bootstrap_scale: f64,
}

impl PlatformModel {
    /// IBM Power5: dual-core, dual-SMT (4 contexts), 1.65 GHz, big caches.
    pub fn power5() -> PlatformModel {
        PlatformModel { name: "IBM Power5", contexts: 4, per_bootstrap_scale: 0.62 }
    }

    /// Two Intel Pentium 4 Xeons with HyperThreading (4 contexts total,
    /// 2 GHz) — the paper gives the Xeon side two whole processors.
    pub fn xeon() -> PlatformModel {
        PlatformModel { name: "Intel Xeon (2 chips)", contexts: 4, per_bootstrap_scale: 1.25 }
    }

    /// Makespan (seconds) for `n` bootstraps, given the simulated
    /// per-bootstrap PPE-only time of the same workload.
    pub fn makespan_seconds(&self, ppe_bootstrap_seconds: f64, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let waves = n.div_ceil(self.contexts);
        waves as f64 * self.per_bootstrap_scale * ppe_bootstrap_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PPE_BS: f64 = 36.9; // the paper's Table 1a single-bootstrap time

    #[test]
    fn power5_matches_calibration_point() {
        // 32 bootstraps on 4 contexts = 8 waves × 0.62 × 36.9 ≈ 183 s —
        // within 10% of the Cell's 167.57 s (the "9–10% better" claim).
        let t = PlatformModel::power5().makespan_seconds(PPE_BS, 32);
        assert!((t / 167.57 - 1.095).abs() < 0.02, "ratio {}", t / 167.57);
    }

    #[test]
    fn xeon_is_over_twice_the_cell() {
        let t = PlatformModel::xeon().makespan_seconds(PPE_BS, 32);
        assert!(t / 167.57 > 2.0, "ratio {}", t / 167.57);
    }

    #[test]
    fn waves_round_up() {
        let p = PlatformModel::power5();
        assert_eq!(p.makespan_seconds(10.0, 4), p.makespan_seconds(10.0, 1) * 1.0);
        assert!(p.makespan_seconds(10.0, 5) > p.makespan_seconds(10.0, 4));
        assert_eq!(p.makespan_seconds(10.0, 0), 0.0);
    }

    #[test]
    fn single_bootstrap_uses_one_context() {
        let p = PlatformModel::power5();
        let one = p.makespan_seconds(PPE_BS, 1);
        assert!((one - 0.62 * PPE_BS).abs() < 1e-9);
    }
}
