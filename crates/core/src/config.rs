//! The optimization ladder and scheduling models of the paper.

use cellsim::{CondKind, ExpKind, SignalKind};

/// Which functions are offloaded to the SPEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadStage {
    /// Everything runs on the PPE (Table 1a — the initial MPI port).
    PpeOnly,
    /// Only `newview` runs on an SPE; `makenewz`/`evaluate` stay on the PPE
    /// and pay a communication round trip for every nested `newview`
    /// (Tables 1b–6).
    NewviewOnly,
    /// All three functions run on the SPE; nested `newview` calls are free
    /// of PPE↔SPE communication (Table 7, §5.2.7).
    AllThree,
}

/// One rung of the paper's §5.2 optimization ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    pub stage: OffloadStage,
    /// §5.2.2: replace libm `exp` with the SDK numerical exp.
    pub sdk_exp: bool,
    /// §5.2.3: integer-cast + vectorized scaling conditionals.
    pub cast_conditionals: bool,
    /// §5.2.4: double-buffered strip-mining DMA.
    pub double_buffering: bool,
    /// §5.2.5: vectorized likelihood loops.
    pub vectorized: bool,
    /// §5.2.6: direct memory-to-memory signalling instead of mailboxes.
    pub direct_comm: bool,
}

impl OptConfig {
    /// Table 1a: the pure-PPE port.
    pub fn ppe_only() -> OptConfig {
        OptConfig {
            stage: OffloadStage::PpeOnly,
            sdk_exp: false,
            cast_conditionals: false,
            double_buffering: false,
            vectorized: false,
            direct_comm: false,
        }
    }

    /// Table 1b: naive `newview` offload, no SPE optimizations.
    pub fn naive_offload() -> OptConfig {
        OptConfig { stage: OffloadStage::NewviewOnly, ..OptConfig::ppe_only() }
    }

    /// Table 7: everything offloaded, every optimization on.
    pub fn fully_optimized() -> OptConfig {
        OptConfig {
            stage: OffloadStage::AllThree,
            sdk_exp: true,
            cast_conditionals: true,
            double_buffering: true,
            vectorized: true,
            direct_comm: true,
        }
    }

    /// The cumulative ladder exactly as the paper applies it: each entry is
    /// (label, config, the table it reproduces).
    pub fn ladder() -> Vec<(&'static str, OptConfig)> {
        let l0 = OptConfig::ppe_only();
        let l1 = OptConfig::naive_offload();
        let l2 = OptConfig { sdk_exp: true, ..l1 };
        let l3 = OptConfig { cast_conditionals: true, ..l2 };
        let l4 = OptConfig { double_buffering: true, ..l3 };
        let l5 = OptConfig { vectorized: true, ..l4 };
        let l6 = OptConfig { direct_comm: true, ..l5 };
        let l7 = OptConfig { stage: OffloadStage::AllThree, ..l6 };
        vec![
            ("PPE only (Table 1a)", l0),
            ("newview offloaded, naive (Table 1b)", l1),
            ("+ SDK exp (Table 2)", l2),
            ("+ cast/vectorized conditionals (Table 3)", l3),
            ("+ double buffering (Table 4)", l4),
            ("+ vectorized loops (Table 5)", l5),
            ("+ direct memory comm (Table 6)", l6),
            ("all three functions offloaded (Table 7)", l7),
        ]
    }

    /// The `ExpKind` this config implies.
    pub fn exp_kind(&self) -> ExpKind {
        if self.sdk_exp {
            ExpKind::Sdk
        } else {
            ExpKind::Libm
        }
    }

    /// The `CondKind` this config implies.
    pub fn cond_kind(&self) -> CondKind {
        if self.cast_conditionals {
            CondKind::IntCast
        } else {
            CondKind::Float
        }
    }

    /// The signalling mechanism this config implies.
    pub fn signal_kind(&self) -> SignalKind {
        if self.direct_comm {
            SignalKind::DirectMemory
        } else {
            SignalKind::Mailbox
        }
    }
}

/// Scheduling model for distributing bootstraps over the Cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// `n` MPI workers on the PPE's SMT threads, each synchronously
    /// offloading to its own SPE (the paper's Tables 1–7 run 1 or 2).
    SyncWorkers(usize),
    /// Event-driven task-level parallelism: oversubscribe the PPE with up
    /// to 8 workers, context-switching on every offload (§5.3).
    Edtlp,
    /// Loop-level parallelism: `workers` processes, each splitting its
    /// offloaded loops across `8 / workers` SPEs (§5.3).
    Llp { workers: usize },
    /// The dynamic multi-grain scheduler: EDTLP while ≥8 tasks remain,
    /// LLP for the tail (§5.3, Table 8).
    Mgps,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let ladder = OptConfig::ladder();
        assert_eq!(ladder.len(), 8);
        assert_eq!(ladder[0].1, OptConfig::ppe_only());
        assert_eq!(ladder[1].1, OptConfig::naive_offload());
        assert_eq!(ladder[7].1, OptConfig::fully_optimized());
        // Each rung only adds optimizations.
        let count = |c: &OptConfig| {
            [c.sdk_exp, c.cast_conditionals, c.double_buffering, c.vectorized, c.direct_comm]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for pair in ladder.windows(2).skip(1) {
            assert!(count(&pair[1].1) >= count(&pair[0].1));
        }
    }

    #[test]
    fn kind_mappings() {
        let c = OptConfig::fully_optimized();
        assert_eq!(c.exp_kind(), ExpKind::Sdk);
        assert_eq!(c.cond_kind(), CondKind::IntCast);
        assert_eq!(c.signal_kind(), SignalKind::DirectMemory);
        let n = OptConfig::naive_offload();
        assert_eq!(n.exp_kind(), ExpKind::Libm);
        assert_eq!(n.cond_kind(), CondKind::Float);
        assert_eq!(n.signal_kind(), SignalKind::Mailbox);
    }
}
