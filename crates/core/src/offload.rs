//! Mapping a real inference trace onto the simulated Cell.
//!
//! The `phylo` engine records every kernel invocation of an actual tree
//! search. This module decides, per invocation and ladder level, *where* it
//! runs (PPE or SPE), whether it pays the offload marshalling and signalling
//! round trip, and what it costs — producing the per-invocation
//! `(PPE cycles, SPE cycles)` streams the schedulers consume.

use crate::config::{OffloadStage, OptConfig};
use cellsim::cost::{CostModel, ExecutionFlags, KernelCost, Location};
use cellsim::Cycles;
use phylo::trace::{CallParent, KernelEvent};

/// Fraction of total runtime outside the three kernels: the paper profiles
/// 98.77% inside them (§5.2), so the remainder is 1.23% of the total —
/// i.e. 1.23/98.77 of the kernel time — and always runs on the PPE.
pub const OTHER_WORK_RATIO: f64 = 0.0123 / 0.9877;

/// One priced kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PricedInvocation {
    /// Cycles of PPE-thread work (kernel-on-PPE compute, or offload
    /// marshalling when the kernel runs on an SPE).
    pub ppe: Cycles,
    /// SPE cycles that stay serial under loop-level parallelization
    /// (transition-matrix exponentials, signalling).
    pub spe_serial: Cycles,
    /// SPE compute cycles the LLP scheduler can split across SPEs (the big
    /// likelihood loops and conditionals).
    pub spe_parallel: Cycles,
    /// SPE DMA stall cycles — split across SPEs under LLP like the compute,
    /// but subject to EIB bandwidth contention when many SPEs stream at
    /// once.
    pub spe_dma: Cycles,
}

impl PricedInvocation {
    /// Total SPE-busy cycles when run on a single SPE.
    pub fn spe_busy(&self) -> Cycles {
        self.spe_serial + self.spe_parallel + self.spe_dma
    }

    /// End-to-end cycles under synchronous (blocking) offload.
    pub fn sequential(&self) -> Cycles {
        self.ppe + self.spe_busy()
    }

    /// SPE-busy cycles when the parallel portion is split across `k` SPEs,
    /// paying `dispatch` serial cycles per additional SPE (§5.3 LLP).
    /// `eib_factor` (≥ 1) inflates the DMA share for bus contention when
    /// `k × active workers` SPEs stream concurrently.
    pub fn spe_busy_llp(&self, k: usize, dispatch: Cycles, eib_factor: f64) -> Cycles {
        assert!(k >= 1);
        assert!(eib_factor >= 1.0);
        if self.spe_busy() == 0 || k == 1 {
            return self.spe_serial
                + self.spe_parallel
                + (self.spe_dma as f64 * eib_factor) as Cycles;
        }
        self.spe_serial
            + self.spe_parallel.div_ceil(k as u64)
            + (self.spe_dma as f64 * eib_factor) as Cycles / k as u64
            + (k as u64 - 1) * dispatch
    }

    /// The DMA-stall component of [`PricedInvocation::spe_busy_llp`] —
    /// exactly the cycles of that total an SPE spends waiting on the MFC
    /// rather than computing. `spe_busy_llp(…) - spe_dma_llp(…)` is the
    /// busy (compute + signalling) share. Replicates the parent's rounding
    /// bit-for-bit (cast before divide) so the split is exact.
    pub fn spe_dma_llp(&self, k: usize, eib_factor: f64) -> Cycles {
        assert!(k >= 1);
        assert!(eib_factor >= 1.0);
        let inflated = (self.spe_dma as f64 * eib_factor) as Cycles;
        if self.spe_busy() == 0 || k == 1 {
            inflated
        } else {
            inflated / k as u64
        }
    }
}

/// Decide where an invocation executes under a ladder level and with what
/// flags.
pub fn flags_for_event(ev: &KernelEvent, cfg: &OptConfig) -> ExecutionFlags {
    let on_spe = match cfg.stage {
        OffloadStage::PpeOnly => false,
        OffloadStage::NewviewOnly => ev.op.is_newview(),
        OffloadStage::AllThree => true,
    };
    if !on_spe {
        return ExecutionFlags {
            location: Location::Ppe,
            exp: cfg.exp_kind(),
            cond: cfg.cond_kind(),
            vectorized: cfg.vectorized,
            double_buffered: cfg.double_buffering,
            signal: cfg.signal_kind(),
            pay_offload: false,
        };
    }
    // On the SPE. With all three functions resident, `newview` invocations
    // nested inside an on-SPE `makenewz`/`evaluate` pay no PPE↔SPE
    // communication (§5.2.7); with only `newview` offloaded every call does.
    let nested_free = cfg.stage == OffloadStage::AllThree
        && ev.op.is_newview()
        && ev.parent != CallParent::Search;
    ExecutionFlags {
        location: Location::Spe,
        exp: cfg.exp_kind(),
        cond: cfg.cond_kind(),
        vectorized: cfg.vectorized,
        double_buffered: cfg.double_buffering,
        signal: cfg.signal_kind(),
        pay_offload: !nested_free,
    }
}

/// Price one event. Returns the invocation plus the raw [`KernelCost`].
pub fn price_event(
    ev: &KernelEvent,
    model: &CostModel,
    cfg: &OptConfig,
) -> (PricedInvocation, KernelCost) {
    let flags = flags_for_event(ev, cfg);
    let cost = model.kernel_cost(ev, &flags);
    let priced = match flags.location {
        Location::Ppe => {
            PricedInvocation { ppe: cost.total(), spe_serial: 0, spe_parallel: 0, spe_dma: 0 }
        }
        Location::Spe => PricedInvocation {
            ppe: cost.ppe_overhead,
            spe_serial: cost.serial(),
            spe_parallel: cost.loop_cycles + cost.cond_cycles,
            spe_dma: cost.dma_stall,
        },
    };
    (priced, cost)
}

/// A whole trace priced under one ladder level, with the bookkeeping the
/// schedulers and reports need.
#[derive(Debug, Clone)]
pub struct PricedTrace {
    /// Per-invocation costs in trace order. The final entry is the
    /// "other work" pseudo-invocation (PPE-only, §5.2's 1.23%).
    pub invocations: Vec<PricedInvocation>,
    /// Aggregate component cycles (for utilization breakdowns).
    pub totals: KernelCost,
}

impl PricedTrace {
    /// Total PPE-thread cycles (kernel-on-PPE + marshalling + other work).
    pub fn ppe_cycles(&self) -> Cycles {
        self.invocations.iter().map(|i| i.ppe).sum()
    }

    /// Total SPE-busy cycles.
    pub fn spe_cycles(&self) -> Cycles {
        self.invocations.iter().map(|i| i.spe_busy()).sum()
    }

    /// End-to-end cycles of one bootstrap under synchronous offload with a
    /// single worker.
    pub fn sequential_cycles(&self) -> Cycles {
        self.ppe_cycles() + self.spe_cycles()
    }
}

/// The PPE-only cost of a trace — used as the base for the "other work"
/// estimate and for the PPE-only ladder rung.
pub fn ppe_only_kernel_cycles(events: &[KernelEvent], model: &CostModel) -> Cycles {
    let cfg = OptConfig::ppe_only();
    events.iter().map(|ev| price_event(ev, model, &cfg).0.ppe).sum()
}

/// The per-bootstrap PPE-side work outside the three kernels.
pub fn other_work_cycles(events: &[KernelEvent], model: &CostModel) -> Cycles {
    (ppe_only_kernel_cycles(events, model) as f64 * OTHER_WORK_RATIO) as Cycles
}

/// Price a full trace under a ladder level, appending the "other work"
/// pseudo-invocation.
pub fn price_trace(events: &[KernelEvent], model: &CostModel, cfg: &OptConfig) -> PricedTrace {
    let mut invocations = Vec::with_capacity(events.len() + 1);
    let mut totals = KernelCost::default();
    for ev in events {
        let (priced, cost) = price_event(ev, model, cfg);
        totals.loop_cycles += cost.loop_cycles;
        totals.cond_cycles += cost.cond_cycles;
        totals.exp_cycles += cost.exp_cycles;
        totals.dma_stall += cost.dma_stall;
        totals.comm += cost.comm;
        totals.ppe_overhead += cost.ppe_overhead;
        invocations.push(priced);
    }
    invocations.push(PricedInvocation {
        ppe: other_work_cycles(events, model),
        spe_serial: 0,
        spe_parallel: 0,
        spe_dma: 0,
    });
    PricedTrace { invocations, totals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::trace::KernelOp;

    fn ev(op: KernelOp, parent: CallParent) -> KernelEvent {
        KernelEvent {
            op,
            parent,
            patterns: 228,
            rates: 4,
            exp_calls: 32,
            scaling_checks: 912,
            scalings: 1,
            newton_iters: if op == KernelOp::Makenewz { 4 } else { 0 },
            inner_operands: 3,
        }
    }

    #[test]
    fn ppe_only_runs_everything_on_ppe() {
        let model = CostModel::paper_calibrated();
        let cfg = OptConfig::ppe_only();
        for op in [KernelOp::NewviewInnerInner, KernelOp::Makenewz, KernelOp::Evaluate] {
            let (p, _) = price_event(&ev(op, CallParent::Search), &model, &cfg);
            assert_eq!(p.spe_busy(), 0, "{op:?}");
            assert!(p.ppe > 0);
        }
    }

    #[test]
    fn newview_only_splits_by_kernel() {
        let model = CostModel::paper_calibrated();
        let cfg = OptConfig::naive_offload();
        let (nv, _) =
            price_event(&ev(KernelOp::NewviewTipInner, CallParent::Makenewz), &model, &cfg);
        assert!(nv.spe_busy() > 0, "newview goes to the SPE");
        assert_eq!(nv.ppe, model.offload_overhead, "marshalling stays on the PPE");
        let (mz, _) = price_event(&ev(KernelOp::Makenewz, CallParent::Search), &model, &cfg);
        assert_eq!(mz.spe_busy(), 0, "makenewz stays on the PPE");
    }

    #[test]
    fn nested_newview_is_comm_free_only_with_all_three() {
        let nested = ev(KernelOp::NewviewInnerInner, CallParent::Makenewz);

        let partial = flags_for_event(&nested, &OptConfig::naive_offload());
        assert!(partial.pay_offload, "NewviewOnly: every newview pays comm");

        let full = flags_for_event(&nested, &OptConfig::fully_optimized());
        assert!(!full.pay_offload, "AllThree: nested newview is free");

        let top = ev(KernelOp::NewviewInnerInner, CallParent::Search);
        assert!(flags_for_event(&top, &OptConfig::fully_optimized()).pay_offload);
    }

    #[test]
    fn ladder_monotonically_improves_sequential_time() {
        let model = CostModel::paper_calibrated();
        let events: Vec<KernelEvent> = vec![
            ev(KernelOp::NewviewInnerInner, CallParent::Search),
            ev(KernelOp::NewviewTipInner, CallParent::Makenewz),
            ev(KernelOp::NewviewTipInner, CallParent::Evaluate),
            ev(KernelOp::Makenewz, CallParent::Search),
            ev(KernelOp::Evaluate, CallParent::Search),
        ];
        let ladder = OptConfig::ladder();
        let mut times: Vec<Cycles> = Vec::new();
        for (_, cfg) in &ladder[1..] {
            times.push(price_trace(&events, &model, cfg).sequential_cycles());
        }
        for w in times.windows(2) {
            assert!(w[1] <= w[0], "each optimization must help: {times:?}");
        }
    }

    #[test]
    fn other_work_is_small_and_constant_across_levels() {
        let model = CostModel::paper_calibrated();
        let events = vec![ev(KernelOp::NewviewInnerInner, CallParent::Search); 10];
        let other = other_work_cycles(&events, &model);
        let ppe_total = ppe_only_kernel_cycles(&events, &model);
        let frac = other as f64 / (other + ppe_total) as f64;
        assert!((frac - 0.0123).abs() < 1e-3, "other fraction {frac}");
    }

    #[test]
    fn llp_split_helps_parallel_portion_only() {
        let model = CostModel::paper_calibrated();
        let cfg = OptConfig::fully_optimized();
        let (p, _) =
            price_event(&ev(KernelOp::NewviewInnerInner, CallParent::Makenewz), &model, &cfg);
        let one = p.spe_busy_llp(1, model.llp_dispatch, 1.0);
        assert_eq!(one, p.spe_busy());
        let eight = p.spe_busy_llp(8, model.llp_dispatch, 2.0);
        assert!(eight < one, "8-way LLP must be faster: {eight} vs {one}");
        assert!(eight > p.spe_serial, "serial portion is not parallelized");
        // Extreme fan-out eventually loses to dispatch overhead.
        let huge = p.spe_busy_llp(64, model.llp_dispatch, 2.0);
        assert!(huge > eight, "dispatch overhead dominates at silly fan-outs");
    }

    #[test]
    fn dma_split_is_exact_for_all_fanouts() {
        let model = CostModel::paper_calibrated();
        let cfg = OptConfig::fully_optimized();
        let (p, _) =
            price_event(&ev(KernelOp::NewviewInnerInner, CallParent::Makenewz), &model, &cfg);
        assert!(p.spe_dma > 0, "offloaded newview must have a DMA share");
        for k in [1usize, 2, 3, 4, 8] {
            for eib in [1.0, 1.5, 2.0] {
                let total = p.spe_busy_llp(k, model.llp_dispatch, eib);
                let dma = p.spe_dma_llp(k, eib);
                assert!(dma <= total, "k={k} eib={eib}");
                // The busy remainder is exactly the non-DMA terms.
                let busy = total - dma;
                let expected_busy = if k == 1 {
                    p.spe_serial + p.spe_parallel
                } else {
                    p.spe_serial
                        + p.spe_parallel.div_ceil(k as u64)
                        + (k as u64 - 1) * model.llp_dispatch
                };
                assert_eq!(busy, expected_busy, "k={k} eib={eib}");
            }
        }
        // PPE-only invocations have no DMA share at all.
        let none = PricedInvocation { ppe: 1000, ..PricedInvocation::default() };
        assert_eq!(none.spe_dma_llp(8, 2.0), 0);
    }

    #[test]
    fn priced_trace_totals_are_consistent() {
        let model = CostModel::paper_calibrated();
        let cfg = OptConfig::fully_optimized();
        let events: Vec<KernelEvent> = vec![
            ev(KernelOp::NewviewInnerInner, CallParent::Search),
            ev(KernelOp::Makenewz, CallParent::Search),
        ];
        let t = price_trace(&events, &model, &cfg);
        assert_eq!(t.invocations.len(), 3, "two kernels + other-work entry");
        assert_eq!(t.sequential_cycles(), t.ppe_cycles() + t.spe_cycles());
        assert!(t.totals.loop_cycles > 0);
    }
}
