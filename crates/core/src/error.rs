//! Error type for the experiment drivers.

use std::fmt;

/// Errors produced while capturing a workload or running a study driver.
///
/// Mirrors [`phylo::error::PhyloError`]: a plain enum with structured
/// payloads, a human-readable [`fmt::Display`] and [`std::error::Error`], so
/// the table/figure binaries can print a diagnosis and exit nonzero instead
/// of unwinding.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// A [`crate::experiment::WorkloadSpec`] field was out of its domain.
    InvalidSpec { field: &'static str, value: usize, reason: &'static str },
    /// A captured workload contains no kernel events (nothing to price).
    EmptyTrace,
    /// A driver that schedules multiple distinct workloads received none.
    NoWorkloads,
    /// The captured inference produced a non-finite log-likelihood.
    NonFiniteLikelihood(f64),
    /// A study parameter was out of its valid domain.
    InvalidParameter { name: &'static str, value: usize, reason: &'static str },
    /// An input file could not be read (the I/O error is flattened to a
    /// string so the enum stays `Clone + PartialEq`).
    Io { path: String, message: String },
    /// An underlying phylogenetic-inference error.
    Phylo(phylo::error::PhyloError),
    /// An inference-farm job failed (panicked, injected fault, or lost its
    /// workers); `job` is the submission index, `message` the rendered
    /// `phylo::farm::FarmError`.
    Farm { job: usize, message: String },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidSpec { field, value, reason } => {
                write!(f, "invalid workload spec: {field} = {value}: {reason}")
            }
            ExperimentError::EmptyTrace => {
                write!(f, "workload trace is empty: no kernel invocations to price")
            }
            ExperimentError::NoWorkloads => {
                write!(f, "no workloads supplied: the varied scheduler needs at least one trace")
            }
            ExperimentError::NonFiniteLikelihood(lnl) => {
                write!(f, "captured inference produced a non-finite log-likelihood ({lnl})")
            }
            ExperimentError::InvalidParameter { name, value, reason } => {
                write!(f, "invalid value {value} for parameter {name}: {reason}")
            }
            ExperimentError::Io { path, message } => {
                write!(f, "cannot read {path}: {message}")
            }
            ExperimentError::Phylo(e) => write!(f, "phylogenetic inference failed: {e}"),
            ExperimentError::Farm { job, message } => {
                write!(f, "inference farm job {job} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Phylo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<phylo::error::PhyloError> for ExperimentError {
    fn from(e: phylo::error::PhyloError) -> Self {
        ExperimentError::Phylo(e)
    }
}

/// Crate-wide result alias for the experiment drivers.
pub type Result<T> = std::result::Result<T, ExperimentError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ExperimentError::InvalidSpec { field: "n_taxa", value: 2, reason: "need ≥ 4" };
        assert!(e.to_string().contains("n_taxa"));
        assert!(ExperimentError::EmptyTrace.to_string().contains("empty"));
        assert!(ExperimentError::NonFiniteLikelihood(f64::NAN).to_string().contains("NaN"));
    }

    #[test]
    fn phylo_errors_convert_and_chain() {
        let inner = phylo::error::PhyloError::EmptyAlignment;
        let e: ExperimentError = inner.clone().into();
        assert_eq!(e, ExperimentError::Phylo(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
