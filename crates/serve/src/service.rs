//! The service core: per-tenant FIFO queues drained by a fair round-robin
//! scheduler into **one long-lived farm run**, admission control, status
//! polling, and crash-safe jobs.
//!
//! ## Threading model
//!
//! [`InferenceService::start`] spawns a scheduler thread that calls
//! [`phylo::farm::run_farm`] once with a *blocking* job iterator
//! ([`JobFeed`]): `next()` parks on a condvar until a queued job exists (or
//! shutdown drains the queues), so the farm's worker pool — and every
//! per-worker [`LikelihoodWorkspace`] arena — persists across jobs instead
//! of being rebuilt per batch. Submissions are cheap queue pushes from any
//! thread.
//!
//! One farm subtlety shapes the design: the farm delivers seal callbacks on
//! the *feeding* thread, which in a persistent service is usually parked
//! inside `JobFeed::next()`. Seals therefore lag. The authoritative
//! completion path is the **work closure** (worker thread): it writes
//! `Done`/`Failed` into the job table and notifies waiters the moment the
//! inference finishes. `on_sealed` only settles jobs the closure never got
//! to run (farm write-offs) and feeds the exactly-once cross-check counters
//! reported by [`ShutdownReport`]; both paths converge on one idempotent
//! `finish` routine, so a job is accounted exactly once no matter which
//! fires first.
//!
//! ## Fairness
//!
//! Each tenant gets a FIFO queue; the feed cycles tenants in first-seen
//! order and takes at most one job per visit, so a tenant that dumps 100
//! jobs cannot starve one that submits a single job — dispatch order
//! interleaves `a b c a b c …` regardless of arrival order.
//!
//! ## Admission control
//!
//! [`InferenceService::submit`] rejects instead of queueing unboundedly:
//! an explicit [`RejectReason`] for a full service queue, an exhausted
//! per-tenant in-flight quota, an unknown dataset, or a draining service.
//! Between the service queue and the workers sits the farm's own bounded
//! submission (`farm_capacity`), so accepted work is also backpressured on
//! its way into the deques.
//!
//! ## Crash safety
//!
//! With a state dir configured, every accepted job is journaled
//! (`journal.jsonl`, JSON lines, torn-tail tolerant) and checkpointing jobs
//! snapshot through [`phylo::checkpoint::SearchCheckpointer`] under
//! `job-<id>.ckpt`. On restart the journal is replayed: finished jobs come
//! back pollable with their exact result bits, unfinished jobs re-enqueue
//! under their original ids and — when checkpointed — resume mid-search
//! bit-identically. A job interrupted mid-checkpoint is deliberately left
//! unsettled in the journal so the restart retries it.

use crate::wire::{self, JobSpec, JsonObj, RejectReason, StatsWire, WireResult, WireState};
use obs::json::{self, Json};
use phylo::alignment::PatternAlignment;
use phylo::checkpoint::SearchCheckpointer;
use phylo::error::PhyloError;
use phylo::farm::{run_farm, FarmConfig, FarmError, FarmEvent, FarmStats};
use phylo::likelihood::LikelihoodWorkspace;
use phylo::search::{run_inference, InferenceOptions, SearchResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Journal header line; a version bump invalidates old journals loudly.
const JOURNAL_HEADER: &str = "#RAXML-CELL-SERVE-JOURNAL v1";

/// When journal appends reach the disk platter.
///
/// `File::flush()` is a no-op for unbuffered files, so "append + flush" was
/// never durable — a machine crash could lose acknowledged submits. The
/// default now pays one `sync_data` per append: an acked submit survives
/// power loss. `OsManaged` opts back into the old cheap behaviour for
/// throughput studies where the OS page cache is trusted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `sync_data` after every journal append (durable acks).
    #[default]
    EveryAppend,
    /// Leave flushing to the OS page cache (fast, crash-lossy).
    OsManaged,
}

/// How the service is sized and where (if anywhere) it persists state.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Farm worker threads.
    pub n_workers: usize,
    /// The farm's bounded in-flight submission cap (`0` = unbounded); the
    /// feed thread blocks when this many dispatched jobs are unfinished.
    pub farm_capacity: usize,
    /// Max admitted-but-unfinished jobs per tenant (`0` = unlimited).
    pub tenant_quota: usize,
    /// Max jobs waiting in the service queues (`0` = unlimited); beyond it
    /// submissions are rejected with [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Directory for the journal and per-job checkpoints; `None` disables
    /// persistence (checkpoint-requesting jobs then run un-checkpointed).
    pub state_dir: Option<PathBuf>,
    /// Test hook: forward to
    /// [`SearchCheckpointer::abort_after_saves`](SearchCheckpointer) on
    /// every checkpointing job, modelling a crash between SPR rounds.
    pub abort_after_saves: Option<usize>,
    /// Start with dispatch paused (see [`InferenceService::resume`]) so
    /// datasets can be registered before recovered or pre-queued jobs run.
    pub start_paused: bool,
    /// Journal durability policy (default: `sync_data` per append).
    pub sync_policy: SyncPolicy,
}

impl ServiceConfig {
    /// A service with `n_workers` workers, farm capacity `2 * n_workers`,
    /// no quotas, no queue bound, and no persistence.
    pub fn new(n_workers: usize) -> ServiceConfig {
        ServiceConfig {
            n_workers,
            farm_capacity: 2 * n_workers,
            tenant_quota: 0,
            max_queue: 0,
            state_dir: None,
            abort_after_saves: None,
            start_paused: false,
            sync_policy: SyncPolicy::default(),
        }
    }

    pub fn with_farm_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.farm_capacity = capacity;
        self
    }

    pub fn with_tenant_quota(mut self, quota: usize) -> ServiceConfig {
        self.tenant_quota = quota;
        self
    }

    pub fn with_max_queue(mut self, max: usize) -> ServiceConfig {
        self.max_queue = max;
        self
    }

    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> ServiceConfig {
        self.state_dir = Some(dir.into());
        self
    }

    pub fn paused(mut self) -> ServiceConfig {
        self.start_paused = true;
        self
    }

    /// Test hook: make every checkpointing job abort after `n` snapshots.
    pub fn with_abort_after_saves(mut self, n: usize) -> ServiceConfig {
        self.abort_after_saves = Some(n);
        self
    }

    /// Choose the journal durability policy.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> ServiceConfig {
        self.sync_policy = policy;
        self
    }
}

/// Service-wide accounting, the in-process twin of [`StatsWire`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions admitted (including journal-recovered ones).
    pub accepted: u64,
    /// Submissions turned away at admission.
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    /// Jobs settled by cancellation (client request or expired deadline).
    pub cancelled: u64,
    /// Currently waiting in the service queues.
    pub queued: u64,
    /// Currently executing on a worker.
    pub running: u64,
}

impl ServiceStats {
    pub fn to_wire(self) -> StatsWire {
        StatsWire {
            accepted: self.accepted,
            rejected: self.rejected,
            completed: self.completed,
            failed: self.failed,
            cancelled: self.cancelled,
            queued: self.queued,
            running: self.running,
        }
    }
}

/// What [`InferenceService::shutdown`] returns: final service accounting,
/// the farm's own [`FarmStats`], and the seal counters — enough to prove
/// exactly-once execution (`dispatched == farm.n_jobs`,
/// `sealed_ok + sealed_failed == dispatched`, and
/// `completed + failed + cancelled == accepted` once the queues drained).
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    pub stats: ServiceStats,
    pub farm: FarmStats,
    /// Jobs handed to the farm over the service's lifetime.
    pub dispatched: usize,
    /// Farm seals that carried a result.
    pub sealed_ok: u64,
    /// Farm seals that carried a [`FarmError`].
    pub sealed_failed: u64,
}

/// One job's lifecycle state in the table.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Done(WireResult),
    Failed(String),
    Cancelled(String),
}

/// How a job settles through the idempotent [`Shared::finish`] path.
enum Settle {
    Done(WireResult),
    Failed { message: String, interrupted: bool },
    Cancelled { reason: String, deadline: bool },
}

#[derive(Debug)]
struct JobRecord {
    tenant: String,
    spec: JobSpec,
    state: JobState,
    submitted_at: Instant,
    /// Set by the idempotent `finish` routine — whichever of the work
    /// closure or the seal callback gets there first accounts the job.
    finished: bool,
}

#[derive(Default)]
struct State {
    datasets: HashMap<String, Arc<PatternAlignment>>,
    jobs: HashMap<u64, JobRecord>,
    /// Tenants in first-seen order — the round-robin ring.
    tenants: Vec<String>,
    queues: HashMap<String, VecDeque<u64>>,
    rr_cursor: usize,
    /// `dispatch_order[farm_idx]` is the job id of farm submission
    /// `farm_idx` — the seal callback's index→id map, and the fairness
    /// tests' witness.
    dispatch_order: Vec<u64>,
    next_id: u64,
    in_flight: HashMap<String, usize>,
    /// `tenant \u{1} key` → job id: the exactly-once retry dedup map,
    /// rebuilt from the journal on restart.
    idem: HashMap<String, u64>,
    stats: ServiceStats,
    paused: bool,
    draining: bool,
}

/// Idempotency keys are scoped per tenant; `\u{1}` cannot appear in either
/// half, so the composite is collision-free.
fn idem_key(tenant: &str, key: &str) -> String {
    format!("{tenant}\u{1}{key}")
}

struct Shared {
    config: ServiceConfig,
    state: Mutex<State>,
    /// Wakes the feed thread: new job queued, resume, or drain.
    feed_cv: Condvar,
    /// Wakes status waiters: some job reached `Done`/`Failed`.
    done_cv: Condvar,
    journal: Mutex<Option<File>>,
    sealed_ok: AtomicU64,
    sealed_failed: AtomicU64,
    /// `sync_data` calls actually issued — the durability tests' witness
    /// (obs counters are global and cross-test contaminated).
    journal_syncs: AtomicU64,
}

impl Shared {
    fn journal_line(&self, line: &str) {
        let mut guard = self.journal.lock().expect("journal lock");
        if let Some(file) = guard.as_mut() {
            // A torn final line (crash mid-append) is tolerated by the
            // replay parser; whether the append survives a crash at all is
            // the sync policy's call.
            let _ = writeln!(file, "{line}");
            match self.config.sync_policy {
                SyncPolicy::EveryAppend => {
                    if file.sync_data().is_ok() {
                        self.journal_syncs.fetch_add(1, Ordering::Relaxed);
                        obs::global().counter("serve_journal_sync_total").inc();
                    }
                }
                SyncPolicy::OsManaged => {
                    let _ = file.flush();
                }
            }
        }
    }

    /// The single idempotent completion path (worker closure, seal
    /// callback, or cancellation — whichever first). Updates the table,
    /// quotas, counters and metrics, appends the journal mark, and wakes
    /// waiters.
    fn finish(&self, job_id: u64, outcome: Settle) {
        let mut st = self.state.lock().expect("service state");
        let Some(rec) = st.jobs.get_mut(&job_id) else { return };
        if rec.finished {
            return;
        }
        rec.finished = true;
        let was_running = matches!(rec.state, JobState::Running);
        let tenant = rec.tenant.clone();
        let sojourn_start = rec.submitted_at;
        let journal_entry = match outcome {
            Settle::Done(result) => {
                let line = JsonObj::new()
                    .str("ev", "done")
                    .u64("job", job_id)
                    .num("log_likelihood", result.log_likelihood)
                    .u64("lnl_bits", result.log_likelihood.to_bits())
                    .u64("alpha_bits", result.alpha.to_bits())
                    .str("tree", &result.tree_exact)
                    .u64("rounds", result.rounds as u64)
                    .u64("moves_applied", result.moves_applied as u64)
                    .finish();
                rec.state = JobState::Done(result);
                st.stats.completed += 1;
                obs::global().counter("serve_completed_total").inc();
                Some(line)
            }
            Settle::Failed { message, interrupted } => {
                rec.state = JobState::Failed(message.clone());
                st.stats.failed += 1;
                obs::global().counter("serve_failed_total").inc();
                // An interrupted checkpointing job is left unsettled in the
                // journal on purpose: a restart re-enqueues it and the
                // checkpoint tier resumes it bit-identically.
                if interrupted {
                    None
                } else {
                    Some(
                        JsonObj::new()
                            .str("ev", "failed")
                            .u64("job", job_id)
                            .str("error", &message)
                            .finish(),
                    )
                }
            }
            Settle::Cancelled { reason, deadline } => {
                rec.state = JobState::Cancelled(reason.clone());
                st.stats.cancelled += 1;
                obs::global().counter("serve_cancelled_total").inc();
                if deadline {
                    obs::global().counter("serve_deadline_expired_total").inc();
                }
                Some(
                    JsonObj::new()
                        .str("ev", "cancelled")
                        .u64("job", job_id)
                        .str("reason", &reason)
                        .finish(),
                )
            }
        };
        if was_running {
            st.stats.running -= 1;
        }
        if let Some(n) = st.in_flight.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
        obs::global().histogram("serve_sojourn_ns").record_since(sojourn_start);
        drop(st);
        if let Some(line) = journal_entry {
            self.journal_line(&line);
        }
        self.done_cv.notify_all();
    }
}

/// The blocking iterator feeding the farm: round-robin over tenant queues,
/// parking on `feed_cv` while empty, `None` once draining *and* drained.
struct JobFeed {
    shared: Arc<Shared>,
}

impl Iterator for JobFeed {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let mut st = self.shared.state.lock().expect("service state");
        'scan: loop {
            if !st.paused {
                let n = st.tenants.len();
                for k in 0..n {
                    let ti = (st.rr_cursor + k) % n;
                    let tenant = st.tenants[ti].clone();
                    let popped = st.queues.get_mut(&tenant).and_then(VecDeque::pop_front);
                    if let Some(id) = popped {
                        st.rr_cursor = (ti + 1) % n;
                        st.stats.queued -= 1;
                        obs::global().gauge("serve_queue_depth").set(st.stats.queued as f64);
                        // A job cancelled while queued is already settled;
                        // skip it so `dispatched == farm.n_jobs` stays exact.
                        if st.jobs.get(&id).is_some_and(|r| r.finished) {
                            continue 'scan;
                        }
                        st.dispatch_order.push(id);
                        return Some(id);
                    }
                }
            }
            if st.draining {
                return None;
            }
            st = self.shared.feed_cv.wait(st).expect("service state");
        }
    }
}

/// The persistent multi-tenant inference service. Cheap to share behind an
/// [`Arc`]; dropped or [`shutdown`](InferenceService::shutdown), it drains
/// its queues and joins the farm.
pub struct InferenceService {
    shared: Arc<Shared>,
    scheduler: Mutex<Option<JoinHandle<FarmStats>>>,
}

impl InferenceService {
    /// Start the farm and (with a state dir) replay the journal. Jobs
    /// recovered as unfinished are re-enqueued under their original ids;
    /// start [`paused`](ServiceConfig::paused) to register their datasets
    /// before the first dispatch. Also enables the global [`obs`] registry
    /// so the `/metrics` endpoint is live.
    pub fn start(config: ServiceConfig) -> std::io::Result<InferenceService> {
        assert!(config.n_workers >= 1, "service needs at least one worker");
        obs::global().set_enabled(true);

        let mut state = State { paused: config.start_paused, next_id: 1, ..State::default() };
        let mut journal = None;
        if let Some(dir) = &config.state_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join("journal.jsonl");
            if path.exists() {
                replay_journal(&std::fs::read_to_string(&path)?, &mut state)?;
            }
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            if file.metadata()?.len() == 0 {
                writeln!(file, "{JOURNAL_HEADER}")?;
                if config.sync_policy == SyncPolicy::EveryAppend {
                    file.sync_data()?;
                } else {
                    file.flush()?;
                }
            }
            journal = Some(file);
        }
        obs::global().gauge("serve_queue_depth").set(state.stats.queued as f64);

        let shared = Arc::new(Shared {
            config: config.clone(),
            state: Mutex::new(state),
            feed_cv: Condvar::new(),
            done_cv: Condvar::new(),
            journal: Mutex::new(journal),
            sealed_ok: AtomicU64::new(0),
            sealed_failed: AtomicU64::new(0),
            journal_syncs: AtomicU64::new(0),
        });

        let farm_config = FarmConfig::new(config.n_workers).bounded(config.farm_capacity);
        let feed_shared = shared.clone();
        let work_shared = shared.clone();
        let seal_shared = shared.clone();
        let scheduler =
            std::thread::Builder::new().name("serve-scheduler".to_string()).spawn(move || {
                // Live progress for the `/metrics` endpoint: farm lifecycle
                // events become registry counters as the feeder drains its
                // mailbox, so a scrape sees starts/steals/deaths in flight,
                // not just at shutdown.
                let mut observer = |event: FarmEvent| match event {
                    FarmEvent::JobStarted { .. } => {
                        obs::global().counter("serve_farm_started_total").inc()
                    }
                    FarmEvent::JobCompleted { .. } => {}
                    FarmEvent::JobStolen { .. } => {
                        obs::global().counter("serve_farm_steals_total").inc()
                    }
                    FarmEvent::WorkerDied { .. } => {
                        obs::global().counter("serve_farm_worker_deaths_total").inc()
                    }
                };
                let outcome = run_farm(
                    &farm_config,
                    JobFeed { shared: feed_shared },
                    |_| LikelihoodWorkspace::default(),
                    move |ws, _idx, job_id| execute_job(&work_shared, ws, job_id),
                    Some(&mut observer),
                    move |farm_idx, sealed| on_sealed(&seal_shared, farm_idx, sealed),
                );
                outcome.stats
            })?;

        Ok(InferenceService { shared, scheduler: Mutex::new(Some(scheduler)) })
    }

    /// Register (or replace) a named dataset jobs can reference.
    pub fn register_dataset(&self, name: &str, aln: PatternAlignment) {
        let mut st = self.shared.state.lock().expect("service state");
        st.datasets.insert(name.to_string(), Arc::new(aln));
    }

    /// Un-pause dispatch after a [`paused`](ServiceConfig::paused) start.
    pub fn resume(&self) {
        let mut st = self.shared.state.lock().expect("service state");
        st.paused = false;
        drop(st);
        self.shared.feed_cv.notify_all();
    }

    /// Admit a job (returning its id) or reject it with a typed reason.
    pub fn submit(&self, tenant: &str, spec: &JobSpec) -> Result<u64, RejectReason> {
        self.submit_idem(tenant, spec, None)
    }

    /// [`submit`](InferenceService::submit) with an optional client-chosen
    /// idempotency key. A key already bound to a job (including journal-
    /// recovered ones) short-circuits to that job's id **before** admission
    /// checks run — a retried submit never re-executes and never gets
    /// rejected for queue pressure its first attempt already paid for.
    pub fn submit_idem(
        &self,
        tenant: &str,
        spec: &JobSpec,
        idem: Option<&str>,
    ) -> Result<u64, RejectReason> {
        let mut st = self.shared.state.lock().expect("service state");
        if let Some(key) = idem {
            if let Some(&existing) = st.idem.get(&idem_key(tenant, key)) {
                obs::global().counter("serve_idem_hits_total").inc();
                return Ok(existing);
            }
        }
        if st.draining {
            self.reject(&mut st);
            return Err(RejectReason::ShuttingDown);
        }
        if !st.datasets.contains_key(&spec.dataset) {
            self.reject(&mut st);
            return Err(RejectReason::UnknownDataset);
        }
        let quota = self.shared.config.tenant_quota;
        if quota > 0 && st.in_flight.get(tenant).copied().unwrap_or(0) >= quota {
            self.reject(&mut st);
            return Err(RejectReason::QuotaExceeded);
        }
        let max_queue = self.shared.config.max_queue;
        if max_queue > 0 && st.stats.queued as usize >= max_queue {
            self.reject(&mut st);
            return Err(RejectReason::QueueFull);
        }

        let id = st.next_id;
        st.next_id += 1;
        enqueue(&mut st, id, tenant.to_string(), spec.clone(), Instant::now());
        if let Some(key) = idem {
            st.idem.insert(idem_key(tenant, key), id);
        }
        st.stats.accepted += 1;
        obs::global().counter("serve_submitted_total").inc();
        obs::global().gauge("serve_queue_depth").set(st.stats.queued as f64);
        drop(st);

        let mut obj = JsonObj::new().str("ev", "submit").u64("job", id).str("tenant", tenant);
        if let Some(key) = idem {
            obj = obj.str("idem", key);
        }
        let line = spec.write_fields(obj).finish();
        self.shared.journal_line(&line);
        self.shared.feed_cv.notify_all();
        Ok(id)
    }

    /// Best-effort cancellation: a still-queued job settles as `Cancelled`
    /// (journaled, counted, never dispatched); a running or already-settled
    /// job is left alone. Returns the job's post-call status, `None` for an
    /// unknown id.
    pub fn cancel(&self, job_id: u64) -> Option<wire::JobStatusWire> {
        let cancellable = {
            let mut st = self.shared.state.lock().expect("service state");
            match st.jobs.get(&job_id) {
                None => return None,
                Some(rec) if !rec.finished && matches!(rec.state, JobState::Queued) => {
                    // Pull it out of its tenant queue so the queue depth
                    // stays honest; the feed also skips finished ids as a
                    // backstop for the pop-before-cancel race.
                    let tenant = rec.tenant.clone();
                    if let Some(q) = st.queues.get_mut(&tenant) {
                        if let Some(pos) = q.iter().position(|&id| id == job_id) {
                            q.remove(pos);
                            st.stats.queued -= 1;
                            obs::global().gauge("serve_queue_depth").set(st.stats.queued as f64);
                        }
                    }
                    true
                }
                Some(_) => false,
            }
        };
        if cancellable {
            self.shared.finish(
                job_id,
                Settle::Cancelled { reason: "cancelled by client".to_string(), deadline: false },
            );
        }
        self.status(job_id)
    }

    fn reject(&self, st: &mut State) {
        st.stats.rejected += 1;
        obs::global().counter("serve_rejected_total").inc();
    }

    /// A snapshot of one job's externally visible status.
    pub fn status(&self, job_id: u64) -> Option<wire::JobStatusWire> {
        let st = self.shared.state.lock().expect("service state");
        let rec = st.jobs.get(&job_id)?;
        let (state, result, error) = match &rec.state {
            JobState::Queued => (WireState::Queued, None, None),
            JobState::Running => (WireState::Running, None, None),
            JobState::Done(r) => (WireState::Done, Some(r.clone()), None),
            JobState::Failed(e) => (WireState::Failed, None, Some(e.clone())),
            JobState::Cancelled(reason) => (WireState::Cancelled, None, Some(reason.clone())),
        };
        Some(wire::JobStatusWire { job: job_id, tenant: rec.tenant.clone(), state, result, error })
    }

    /// Block until the job reaches `Done`/`Failed`/`Cancelled` (then return
    /// its status), or `None` on timeout or unknown id.
    pub fn wait_done(&self, job_id: u64, timeout: Duration) -> Option<wire::JobStatusWire> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("service state");
        loop {
            match st.jobs.get(&job_id).map(|r| &r.state) {
                None => return None,
                Some(JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled(_)) => break,
                Some(_) => {}
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, timed_out) =
                self.shared.done_cv.wait_timeout(st, left).expect("service state");
            st = guard;
            if timed_out.timed_out() {
                return None;
            }
        }
        drop(st);
        self.status(job_id)
    }

    pub fn stats(&self) -> ServiceStats {
        self.shared.state.lock().expect("service state").stats
    }

    /// `sync_data` calls the journal has issued (0 under
    /// [`SyncPolicy::OsManaged`] or without a state dir).
    pub fn journal_sync_count(&self) -> u64 {
        self.shared.journal_syncs.load(Ordering::Relaxed)
    }

    /// The order jobs were handed to the farm — the fairness tests'
    /// observable.
    pub fn dispatch_order(&self) -> Vec<u64> {
        self.shared.state.lock().expect("service state").dispatch_order.clone()
    }

    /// Drain: stop admitting, finish everything queued, join the farm, and
    /// report final accounting. Idempotent; later calls return `None`.
    pub fn shutdown(&self) -> Option<ShutdownReport> {
        let handle = self.scheduler.lock().expect("scheduler handle").take()?;
        {
            let mut st = self.shared.state.lock().expect("service state");
            st.draining = true;
            st.paused = false;
        }
        self.shared.feed_cv.notify_all();
        let farm = handle.join().expect("scheduler thread panicked");
        let st = self.shared.state.lock().expect("service state");
        Some(ShutdownReport {
            stats: st.stats,
            farm,
            dispatched: st.dispatch_order.len(),
            sealed_ok: self.shared.sealed_ok.load(Ordering::Relaxed),
            sealed_failed: self.shared.sealed_failed.load(Ordering::Relaxed),
        })
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Insert a record and queue it under its tenant (shared by `submit` and
/// journal replay).
fn enqueue(st: &mut State, id: u64, tenant: String, spec: JobSpec, submitted_at: Instant) {
    if !st.tenants.contains(&tenant) {
        st.tenants.push(tenant.clone());
    }
    st.queues.entry(tenant.clone()).or_default().push_back(id);
    *st.in_flight.entry(tenant.clone()).or_insert(0) += 1;
    st.stats.queued += 1;
    st.jobs.insert(
        id,
        JobRecord { tenant, spec, state: JobState::Queued, submitted_at, finished: false },
    );
}

fn wire_result(result: &SearchResult) -> WireResult {
    WireResult {
        log_likelihood: result.log_likelihood,
        alpha: result.alpha,
        tree_exact: result.tree.to_exact_string(),
        rounds: result.rounds,
        moves_applied: result.moves_applied,
    }
}

/// The farm work closure: runs on a worker thread, owns the authoritative
/// completion marking (see module docs).
fn execute_job(shared: &Arc<Shared>, ws: &mut LikelihoodWorkspace, job_id: u64) {
    let (spec, aln) = {
        let mut st = shared.state.lock().expect("service state");
        let Some(rec) = st.jobs.get_mut(&job_id) else { return };
        if rec.finished {
            // Cancelled between the feed popping it and the worker picking
            // it up; the settle already happened, so do nothing.
            return;
        }
        // Per-job deadlines are enforced at dispatch: a job that waited in
        // the queue past its budget settles as a deadline cancellation
        // instead of burning a worker on an answer nobody wants.
        if let Some(ms) = rec.spec.deadline_ms {
            if rec.submitted_at.elapsed() >= Duration::from_millis(ms) {
                drop(st);
                shared.finish(
                    job_id,
                    Settle::Cancelled {
                        reason: format!("deadline of {ms} ms expired before execution"),
                        deadline: true,
                    },
                );
                return;
            }
        }
        rec.state = JobState::Running;
        let spec = rec.spec.clone();
        let aln = st.datasets.get(&spec.dataset).cloned();
        st.stats.running += 1;
        (spec, aln)
    };
    let Some(aln) = aln else {
        // Possible only for journal-recovered jobs whose dataset was not
        // re-registered before `resume()`.
        let msg = format!("dataset {:?} is not registered", spec.dataset);
        shared.finish(job_id, Settle::Failed { message: msg, interrupted: false });
        return;
    };

    let replicate;
    let target: &PatternAlignment = match spec.kind {
        wire::JobKind::Search => &aln,
        wire::JobKind::Bootstrap => {
            let mut rng = StdRng::seed_from_u64(spec.seed);
            replicate = aln.bootstrap_replicate(&mut rng);
            &replicate
        }
    };
    let request = spec.to_request();

    let mut checkpointer = None;
    if spec.checkpoint {
        if let Some(dir) = &shared.config.state_dir {
            let mut ckpt = SearchCheckpointer::new(
                dir.join(format!("job-{job_id}.ckpt")),
                request.fingerprint(target),
            );
            if let Some(n) = shared.config.abort_after_saves {
                ckpt = ckpt.abort_after_saves(n);
            }
            checkpointer = Some(ckpt);
        }
    }

    let mut options = InferenceOptions::new().with_workspace(std::mem::take(ws));
    if let Some(ckpt) = checkpointer.as_mut() {
        options = options.with_checkpoint(ckpt);
    }

    match run_inference(target, &request, options) {
        Ok(outcome) => {
            let result = wire_result(&outcome.result);
            *ws = outcome.workspace;
            // Completed checkpoints are spent; drop the file so a restart
            // does not resurrect a finished search.
            if let Some(dir) = &shared.config.state_dir {
                if spec.checkpoint {
                    let _ = std::fs::remove_file(dir.join(format!("job-{job_id}.ckpt")));
                }
            }
            shared.finish(job_id, Settle::Done(result));
        }
        Err(err) => {
            let interrupted = matches!(err, PhyloError::Interrupted { .. });
            shared.finish(job_id, Settle::Failed { message: err.to_string(), interrupted });
        }
    }
}

/// The farm seal callback (feeding thread): settles write-offs the work
/// closure never ran, and counts seals for the exactly-once cross-check.
fn on_sealed(shared: &Arc<Shared>, farm_idx: usize, sealed: &Result<(), FarmError>) {
    match sealed {
        Ok(()) => {
            shared.sealed_ok.fetch_add(1, Ordering::Relaxed);
        }
        Err(err) => {
            shared.sealed_failed.fetch_add(1, Ordering::Relaxed);
            let job_id = {
                let st = shared.state.lock().expect("service state");
                st.dispatch_order.get(farm_idx).copied()
            };
            if let Some(id) = job_id {
                shared.finish(id, Settle::Failed { message: err.to_string(), interrupted: false });
            }
        }
    }
}

/// Replay a journal into a fresh `State`: finished jobs become pollable
/// records, unfinished ones re-enqueue under their original ids.
fn replay_journal(contents: &str, state: &mut State) -> std::io::Result<()> {
    // (id, tenant, spec, settled-state) in submit order.
    let mut order: Vec<u64> = Vec::new();
    let mut submitted: HashMap<u64, (String, JobSpec)> = HashMap::new();
    let mut settled: HashMap<u64, JobState> = HashMap::new();
    // job id → idempotency key, rebound into `state.idem` for *all*
    // replayed jobs (settled ones included) so a client retrying a submit
    // from before the crash still dedups to the original id.
    let mut idem_of: HashMap<u64, String> = HashMap::new();

    for line in contents.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // A torn final line (crash mid-append) parses as an error: skip.
        let Ok(v) = json::parse(line) else { continue };
        let (Some(ev), Some(job)) = (event_kind(&v), wire::get_u64(&v, "job")) else { continue };
        match ev {
            "submit" => {
                let Some(tenant) = wire::get_str(&v, "tenant") else { continue };
                let Ok(spec) = JobSpec::from_json(&v) else { continue };
                if let Some(key) = wire::get_str(&v, "idem") {
                    idem_of.insert(job, key.to_string());
                }
                if submitted.insert(job, (tenant.to_string(), spec)).is_none() {
                    order.push(job);
                }
            }
            "done" => {
                let (Some(lnl), Some(alpha), Some(tree)) = (
                    wire::get_u64(&v, "lnl_bits"),
                    wire::get_u64(&v, "alpha_bits"),
                    wire::get_str(&v, "tree"),
                ) else {
                    continue;
                };
                settled.insert(
                    job,
                    JobState::Done(WireResult {
                        log_likelihood: f64::from_bits(lnl),
                        alpha: f64::from_bits(alpha),
                        tree_exact: tree.to_string(),
                        rounds: wire::get_usize(&v, "rounds").unwrap_or(0),
                        moves_applied: wire::get_usize(&v, "moves_applied").unwrap_or(0),
                    }),
                );
            }
            "failed" => {
                let error = wire::get_str(&v, "error").unwrap_or("unknown failure").to_string();
                settled.insert(job, JobState::Failed(error));
            }
            "cancelled" => {
                let reason = wire::get_str(&v, "reason").unwrap_or("cancelled").to_string();
                settled.insert(job, JobState::Cancelled(reason));
            }
            _ => {}
        }
    }

    let now = Instant::now();
    for id in order {
        let (tenant, spec) = submitted.remove(&id).expect("submit recorded");
        state.next_id = state.next_id.max(id + 1);
        state.stats.accepted += 1;
        if let Some(key) = idem_of.remove(&id) {
            state.idem.insert(idem_key(&tenant, &key), id);
        }
        match settled.remove(&id) {
            Some(done) => {
                match done {
                    JobState::Done(_) => state.stats.completed += 1,
                    JobState::Failed(_) => state.stats.failed += 1,
                    JobState::Cancelled(_) => state.stats.cancelled += 1,
                    _ => unreachable!(),
                }
                state.jobs.insert(
                    id,
                    JobRecord { tenant, spec, state: done, submitted_at: now, finished: true },
                );
            }
            None => enqueue(state, id, tenant, spec, now),
        }
    }
    Ok(())
}

fn event_kind(v: &Json) -> Option<&str> {
    wire::get_str(v, "ev")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{JobKind, Preset};
    use phylo::simulate::SimulationConfig;

    fn tiny_alignment(seed: u64) -> PatternAlignment {
        SimulationConfig::new(6, 120, seed).generate().alignment
    }

    fn quick_spec(dataset: &str, seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(dataset, JobKind::Search, seed, Preset::Fast);
        spec.max_spr_rounds = Some(1);
        spec
    }

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("raxml-cell-serve-tests").join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Three tenants, three jobs each, all of tenant a's submitted first:
    /// dispatch must interleave a b c a b c a b c, not drain a's queue.
    #[test]
    fn round_robin_interleaves_tenants() {
        let service = InferenceService::start(ServiceConfig::new(2).paused()).unwrap();
        service.register_dataset("d", tiny_alignment(5));
        let mut ids: HashMap<&str, Vec<u64>> = HashMap::new();
        for tenant in ["a", "a", "a", "b", "b", "b", "c", "c", "c"] {
            let id = service.submit(tenant, &quick_spec("d", 1)).unwrap();
            ids.entry(tenant).or_default().push(id);
        }
        service.resume();
        let report = service.shutdown().unwrap();

        let expect: Vec<u64> =
            (0..3).flat_map(|round| ["a", "b", "c"].map(|t| ids[t][round])).collect();
        assert_eq!(service.dispatch_order(), expect, "round-robin dispatch");
        assert_eq!(report.stats.completed, 9);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.dispatched, 9);
        assert_eq!(report.farm.n_jobs, 9);
        assert_eq!(report.sealed_ok, 9);
        assert_eq!(report.sealed_failed, 0);
    }

    /// Admission control: unknown dataset, per-tenant quota, global queue
    /// bound, and post-shutdown submissions each yield their typed reason.
    #[test]
    fn admission_rejects_with_typed_reasons() {
        let config = ServiceConfig::new(1).paused().with_tenant_quota(2).with_max_queue(3);
        let service = InferenceService::start(config).unwrap();
        service.register_dataset("d", tiny_alignment(6));

        assert_eq!(service.submit("a", &quick_spec("nope", 1)), Err(RejectReason::UnknownDataset));
        service.submit("a", &quick_spec("d", 1)).unwrap();
        service.submit("a", &quick_spec("d", 2)).unwrap();
        assert_eq!(service.submit("a", &quick_spec("d", 3)), Err(RejectReason::QuotaExceeded));
        service.submit("b", &quick_spec("d", 4)).unwrap();
        assert_eq!(
            service.submit("c", &quick_spec("d", 5)),
            Err(RejectReason::QueueFull),
            "global queue bound holds even for an under-quota tenant"
        );

        service.resume();
        let report = service.shutdown().unwrap();
        assert_eq!(report.stats.accepted, 3);
        assert_eq!(report.stats.rejected, 3);
        assert_eq!(report.stats.completed, 3);
        assert_eq!(service.submit("a", &quick_spec("d", 9)), Err(RejectReason::ShuttingDown));
    }

    /// A finished job's exact result bits survive a service restart via the
    /// journal, and the job is not re-run.
    #[test]
    fn journal_restores_finished_jobs_across_restart() {
        let dir = unique_dir("journal-restore");
        let aln = tiny_alignment(7);

        let config = ServiceConfig::new(1).with_state_dir(&dir);
        let service = InferenceService::start(config).unwrap();
        service.register_dataset("d", aln.clone());
        let job = service.submit("a", &quick_spec("d", 3)).unwrap();
        let first = service
            .wait_done(job, Duration::from_secs(300))
            .expect("job finishes")
            .result
            .expect("job succeeded");
        service.shutdown().unwrap();

        let revived =
            InferenceService::start(ServiceConfig::new(1).paused().with_state_dir(&dir)).unwrap();
        revived.register_dataset("d", aln);
        revived.resume();
        let status = revived.status(job).expect("job survived restart");
        let restored = status.result.expect("restored as done");
        assert_eq!(restored.log_likelihood.to_bits(), first.log_likelihood.to_bits());
        assert_eq!(restored.tree_exact, first.tree_exact);
        let report = revived.shutdown().unwrap();
        assert_eq!(report.stats.accepted, 1, "recovered, not re-admitted");
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.dispatched, 0, "finished jobs are not re-run");
    }

    /// A bootstrap job equals the library-level replicate + inference.
    #[test]
    fn bootstrap_job_matches_library_replicate() {
        let aln = tiny_alignment(8);
        let service = InferenceService::start(ServiceConfig::new(2)).unwrap();
        service.register_dataset("d", aln.clone());
        let mut spec = quick_spec("d", 11);
        spec.kind = JobKind::Bootstrap;
        let job = service.submit("t", &spec).unwrap();
        let served = service
            .wait_done(job, Duration::from_secs(300))
            .expect("finishes")
            .result
            .expect("succeeds");
        service.shutdown().unwrap();

        let mut rng = StdRng::seed_from_u64(11);
        let replicate = aln.bootstrap_replicate(&mut rng);
        let direct =
            run_inference(&replicate, &spec.to_request(), InferenceOptions::new()).unwrap().result;
        assert_eq!(served.log_likelihood.to_bits(), direct.log_likelihood.to_bits());
        assert_eq!(served.tree_exact, direct.tree.to_exact_string());
    }
}
