//! The TCP front end: a thread-per-connection accept loop speaking the
//! frame protocol of [`crate::wire`], multiplexed with a plain-HTTP
//! `GET /metrics` endpoint on the same port.
//!
//! Protocol sniffing is unambiguous by construction: a frame starts with a
//! 4-byte big-endian length ≤ [`wire::MAX_FRAME`] (1 MiB), while `b"GET "`
//! read as that length is ~1.2 GiB — so the first four bytes of a
//! connection decide HTTP vs frames with no false positives (see the
//! invariant test in [`crate::wire`]). The shutdown wake sentinel
//! `0xFFFF_FFFF` occupies a third, equally unambiguous region.
//!
//! ## Connection lifecycle hardening
//!
//! Every connection lives under deadlines ([`ServerConfig`]): the protocol
//! sniff must complete within `handshake_timeout` (a slow-loris client that
//! sends three bytes and idles is evicted, not parked forever), each frame
//! read within `frame_read_timeout`, each write within `write_timeout`.
//! Deadline evictions tick `serve_conn_deadline_total`. A bounded
//! connection cap (`max_connections`) turns overload into a typed
//! [`Response::Busy`] frame plus `serve_conn_rejected_total` instead of an
//! unbounded thread pile-up.
//!
//! Every handler thread is tracked in a connection registry, so
//! [`Server::stop`] is a **graceful drain**: it shuts each live socket
//! down, joins every handler under `drain_deadline`, and reports exactly
//! how many threads were joined or (past the hard deadline) leaked —
//! nothing is silently abandoned.
//!
//! With a [`ServeFaultPlan`] installed, each accepted stream is wrapped in
//! a [`FaultyStream`] keyed by the accept counter, so chaos studies inject
//! deterministic wire faults on the server side of the protocol.
//!
//! Thread-per-connection mirrors the paper's PPE-side organisation — a
//! cheap coordinator thread per client, with the heavy lifting on the farm
//! — and keeps the server free of any async runtime dependency.

use crate::fault::{FaultTally, FaultyStream, ServeFaultPlan};
use crate::service::InferenceService;
use crate::wire::{self, Request, Response};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shutdown wake preamble: an impossible frame length (`> MAX_FRAME`)
/// that is also not `b"GET "`, so a handler that ever sniffs it knows the
/// connection is the server's own stop() wake and drops it immediately
/// instead of serving it.
const WAKE_HEAD: [u8; 4] = [0xff, 0xff, 0xff, 0xff];

/// Deadlines and bounds for the connection lifecycle.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The protocol sniff (first 4 bytes) must complete within this.
    pub handshake_timeout: Duration,
    /// Each frame read (including idle time between requests) must complete
    /// within this; an idle or stalled client is evicted past it.
    pub frame_read_timeout: Duration,
    /// Each response write must complete within this.
    pub write_timeout: Duration,
    /// Maximum simultaneous connections (`0` = unbounded); beyond it a
    /// fresh connection receives one [`Response::Busy`] frame and closes.
    pub max_connections: usize,
    /// Hard deadline for [`Server::stop`] to join all handler threads.
    pub drain_deadline: Duration,
    /// Deterministic wire faults injected around every accepted stream.
    pub fault_plan: Option<ServeFaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            handshake_timeout: Duration::from_secs(10),
            frame_read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_connections: 0,
            drain_deadline: Duration::from_secs(5),
            fault_plan: None,
        }
    }
}

impl ServerConfig {
    pub fn with_handshake_timeout(mut self, d: Duration) -> ServerConfig {
        self.handshake_timeout = d;
        self
    }

    pub fn with_frame_read_timeout(mut self, d: Duration) -> ServerConfig {
        self.frame_read_timeout = d;
        self
    }

    pub fn with_write_timeout(mut self, d: Duration) -> ServerConfig {
        self.write_timeout = d;
        self
    }

    pub fn with_max_connections(mut self, n: usize) -> ServerConfig {
        self.max_connections = n;
        self
    }

    pub fn with_drain_deadline(mut self, d: Duration) -> ServerConfig {
        self.drain_deadline = d;
        self
    }

    pub fn with_fault_plan(mut self, plan: ServeFaultPlan) -> ServerConfig {
        self.fault_plan = Some(plan);
        self
    }
}

/// What [`Server::stop`] observed while draining connection threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Handler threads joined within the drain deadline.
    pub joined: usize,
    /// Handler threads still running when the deadline expired (abandoned).
    pub leaked: usize,
}

/// One live connection: the socket handle (for forced shutdown at drain)
/// and the handler thread.
struct ConnEntry {
    stream: TcpStream,
    handle: JoinHandle<()>,
}

/// Registry of live handler threads; the accept loop registers, `stop()`
/// drains.
#[derive(Default)]
struct Registry {
    entries: Mutex<Vec<ConnEntry>>,
}

impl Registry {
    /// Join finished handlers and return the number still active.
    fn reap(&self) -> usize {
        let mut entries = self.entries.lock().expect("conn registry");
        let mut active = Vec::with_capacity(entries.len());
        for entry in entries.drain(..) {
            if entry.handle.is_finished() {
                let _ = entry.handle.join();
            } else {
                active.push(entry);
            }
        }
        *entries = active;
        entries.len()
    }

    fn register(&self, stream: TcpStream, handle: JoinHandle<()>) {
        self.entries.lock().expect("conn registry").push(ConnEntry { stream, handle });
    }

    /// Shut every live socket down, then join all handlers until `deadline`
    /// elapses; whatever survives it is counted leaked, never blocked on.
    fn drain(&self, deadline: Duration) -> DrainReport {
        let mut entries: Vec<ConnEntry> =
            self.entries.lock().expect("conn registry").drain(..).collect();
        for entry in &entries {
            // Unblock parked reads/writes; the handler exits on the error.
            let _ = entry.stream.shutdown(Shutdown::Both);
        }
        let hard = Instant::now() + deadline;
        let mut report = DrainReport::default();
        while !entries.is_empty() {
            let mut still_running = Vec::with_capacity(entries.len());
            for entry in entries.drain(..) {
                if entry.handle.is_finished() {
                    let _ = entry.handle.join();
                    report.joined += 1;
                } else {
                    still_running.push(entry);
                }
            }
            entries = still_running;
            if entries.is_empty() || Instant::now() >= hard {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        report.leaked = entries.len();
        if report.leaked > 0 {
            obs::global().counter("serve_conn_leaked_total").add(report.leaked as u64);
        }
        report
    }
}

/// A running server; dropping it stops the accept loop and drains handler
/// threads (the service itself is owned by the caller and outlives the
/// listener).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    registry: Arc<Registry>,
    drain_deadline: Duration,
    tally: Arc<FaultTally>,
}

/// Everything a handler thread needs, shared once per server.
struct ServerShared {
    service: Arc<InferenceService>,
    config: ServerConfig,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `service` with default deadlines until dropped or
    /// [`stop`](Server::stop)ped.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<InferenceService>,
    ) -> std::io::Result<Server> {
        Server::bind_with(addr, service, ServerConfig::default())
    }

    /// Bind with explicit lifecycle deadlines, connection bounds, and an
    /// optional wire fault plan.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<InferenceService>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::default());
        let tally = Arc::new(FaultTally::default());
        let drain_deadline = config.drain_deadline;
        let plan = config.fault_plan.clone().map(Arc::new);
        let shared = Arc::new(ServerShared { service, config });

        let stop_flag = stop.clone();
        let registry_accept = registry.clone();
        let tally_accept = tally.clone();
        let accept_thread =
            std::thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
                let mut conn_id: u64 = 0;
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let active = registry_accept.reap();
                    let max = shared.config.max_connections;
                    if max > 0 && active >= max {
                        reject_busy(stream, &shared.config);
                        continue;
                    }
                    obs::global().counter("serve_conn_accepted_total").inc();
                    let id = conn_id;
                    conn_id += 1;
                    let Ok(socket) = stream.try_clone() else { continue };
                    let conn = match &plan {
                        None => ConnStream::Plain(stream),
                        Some(plan) => ConnStream::Faulty(FaultyStream::new(
                            stream,
                            plan.clone(),
                            tally_accept.clone(),
                            id,
                        )),
                    };
                    let shared = shared.clone();
                    let spawned = std::thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || handle_connection(conn, &shared));
                    if let Ok(handle) = spawned {
                        registry_accept.register(socket, handle);
                    }
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            registry,
            drain_deadline,
            tally,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wire faults injected so far by this server's fault plan (all zero
    /// when no plan is installed).
    pub fn fault_tally(&self) -> &FaultTally {
        &self.tally
    }

    /// Stop accepting, then **drain**: shut down every live connection,
    /// join every handler thread under the drain deadline, and report what
    /// was joined vs leaked. Idempotent; later calls return an empty
    /// report.
    pub fn stop(&mut self) -> DrainReport {
        if self.stop.swap(true, Ordering::SeqCst) {
            return DrainReport::default();
        }
        let start = Instant::now();
        // The accept loop is parked in `accept()`; a throwaway self-connect
        // wakes it. The wake carries the WAKE_HEAD sentinel so that even if
        // a handler is ever spawned for it, the sniff recognises and drops
        // it instead of serving a phantom connection that races shutdown.
        if let Ok(mut wake) = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)) {
            let _ = wake.write_all(&WAKE_HEAD);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let report = self.registry.drain(self.drain_deadline);
        obs::global().histogram("serve_drain_ns").record_since(start);
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// Send one typed `Busy` frame on a fresh over-cap connection and close.
fn reject_busy(mut stream: TcpStream, config: &ServerConfig) {
    obs::global().counter("serve_conn_rejected_total").inc();
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = wire::write_frame(&mut stream, &Response::Busy.encode());
}

/// A connection's transport: the bare socket, or the socket behind a
/// deterministic fault injector. Deadline control always reaches the real
/// socket underneath.
enum ConnStream {
    Plain(TcpStream),
    Faulty(FaultyStream<TcpStream>),
}

impl ConnStream {
    fn socket(&self) -> &TcpStream {
        match self {
            ConnStream::Plain(s) => s,
            ConnStream::Faulty(f) => f.get_ref(),
        }
    }

    fn set_read_timeout(&self, d: Duration) {
        let _ = self.socket().set_read_timeout(Some(d));
    }

    fn set_write_timeout(&self, d: Duration) {
        let _ = self.socket().set_write_timeout(Some(d));
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Plain(s) => s.read(buf),
            ConnStream::Faulty(f) => f.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Plain(s) => s.write(buf),
            ConnStream::Faulty(f) => f.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ConnStream::Plain(s) => s.flush(),
            ConnStream::Faulty(f) => f.flush(),
        }
    }
}

/// A read/write failure caused by an expired socket deadline (Unix reports
/// `WouldBlock`, Windows `TimedOut`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn handle_connection(conn: ConnStream, shared: &ServerShared) {
    let socket = conn.socket().try_clone().ok();
    drive_connection(conn, shared);
    // The registry holds its own clone of this socket for drain, which
    // keeps the fd open after this thread exits (until the next reap).
    // Shut the connection down explicitly so the peer sees EOF the moment
    // the handler dies, instead of blocking on a half-dead socket.
    if let Some(socket) = socket {
        let _ = socket.shutdown(Shutdown::Both);
    }
}

fn drive_connection(mut conn: ConnStream, shared: &ServerShared) {
    // Sniff the protocol from the first four bytes (frame length prefix vs
    // the start of an HTTP request line) — under the handshake deadline, so
    // a slow-loris client cannot park this thread forever.
    conn.set_read_timeout(shared.config.handshake_timeout);
    let overall = Instant::now() + shared.config.handshake_timeout;
    let mut head = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match conn.read(&mut head[filled..]) {
            Ok(0) => return,
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                obs::global().counter("serve_conn_deadline_total").inc();
                return;
            }
            Err(_) => return,
        }
        // Trickling one byte per timeout window must not extend the
        // handshake indefinitely: the overall deadline still applies.
        if filled < 4 && Instant::now() >= overall {
            obs::global().counter("serve_conn_deadline_total").inc();
            return;
        }
    }
    if head == WAKE_HEAD {
        // stop()'s accept-loop wake: never a real client, drop it.
        return;
    }
    if &head == b"GET " {
        serve_http(conn);
    } else {
        serve_frames(conn, head, shared);
    }
}

/// Serve one HTTP request (the scrape endpoint) and close. Prometheus
/// re-connects per scrape, so connection reuse buys nothing here.
fn serve_http(mut conn: ConnStream) {
    // Read until the end of the request head; the body is irrelevant.
    conn.set_read_timeout(Duration::from_secs(5));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let request_line = String::from_utf8_lossy(&buf);
    let path = request_line.split_whitespace().next().unwrap_or("");
    let (status, body) = if path == "/metrics" {
        ("200 OK", obs::global().to_prometheus_text())
    } else {
        ("404 Not Found", "not found; try GET /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.write_all(response.as_bytes());
}

/// Serve framed requests until the client hangs up or a deadline expires.
/// `head` already holds the first frame's length prefix from the sniff.
fn serve_frames(mut conn: ConnStream, head: [u8; 4], shared: &ServerShared) {
    conn.set_read_timeout(shared.config.frame_read_timeout);
    conn.set_write_timeout(shared.config.write_timeout);
    let mut first = Some(head);
    loop {
        let frame = match read_frame_with_head(&mut conn, first.take()) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e) if is_timeout(&e) => {
                obs::global().counter("serve_conn_deadline_total").inc();
                return;
            }
            Err(_) => {
                // Torn, oversized, or corrupt frame: count it and close —
                // there is no way to resynchronise a length-prefixed stream.
                obs::global().counter("serve_frame_read_errors_total").inc();
                return;
            }
        };
        let response = match Request::parse(&frame) {
            Ok(request) => dispatch(&request, &shared.service),
            Err(message) => {
                obs::global().counter("serve_frame_parse_errors_total").inc();
                Response::Error { message }
            }
        };
        match wire::write_frame(&mut conn, &response.encode()) {
            Ok(()) => {}
            Err(e) if is_timeout(&e) => {
                obs::global().counter("serve_conn_deadline_total").inc();
                return;
            }
            Err(_) => {
                obs::global().counter("serve_frame_write_errors_total").inc();
                return;
            }
        }
    }
}

fn read_frame_with_head(
    stream: &mut impl Read,
    head: Option<[u8; 4]>,
) -> std::io::Result<Option<String>> {
    match head {
        None => wire::read_frame(stream),
        Some(len) => {
            let n = u32::from_be_bytes(len) as usize;
            if n > wire::MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame length {n} exceeds MAX_FRAME"),
                ));
            }
            let mut buf = vec![0u8; n];
            stream.read_exact(&mut buf)?;
            String::from_utf8(buf).map(Some).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("non-UTF-8 frame: {e}"),
                )
            })
        }
    }
}

fn dispatch(request: &Request, service: &InferenceService) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Submit { tenant, spec, idem } => {
            match service.submit_idem(tenant, spec, idem.as_deref()) {
                Ok(job) => Response::Accepted { job },
                Err(reason) => Response::Rejected { reason },
            }
        }
        Request::Status { job } => match service.status(*job) {
            Some(status) => Response::Status(status),
            None => Response::Error { message: format!("unknown job {job}") },
        },
        Request::Cancel { job } => match service.cancel(*job) {
            Some(status) => Response::Status(status),
            None => Response::Error { message: format!("unknown job {job}") },
        },
        Request::Stats => Response::Stats(service.stats().to_wire()),
    }
}
