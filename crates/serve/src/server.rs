//! The TCP front end: a thread-per-connection accept loop speaking the
//! frame protocol of [`crate::wire`], multiplexed with a plain-HTTP
//! `GET /metrics` endpoint on the same port.
//!
//! Protocol sniffing is unambiguous by construction: a frame starts with a
//! 4-byte big-endian length ≤ [`wire::MAX_FRAME`] (1 MiB), while `b"GET "`
//! read as that length is ~1.2 GiB — so the first four bytes of a
//! connection decide HTTP vs frames with no false positives (see the
//! invariant test in [`crate::wire`]).
//!
//! Thread-per-connection mirrors the paper's PPE-side organisation — a
//! cheap coordinator thread per client, with the heavy lifting on the farm
//! — and keeps the server free of any async runtime dependency.

use crate::service::InferenceService;
use crate::wire::{self, Request, Response};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running server; dropping it stops the accept loop (the service itself
/// is owned by the caller and outlives the listener).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `service` until dropped or [`stop`](Server::stop)ped.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<InferenceService>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let accept_thread =
            std::thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let service = service.clone();
                    let _ = std::thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &service));
                }
            })?;
        Ok(Server { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// connection threads finish their current request and exit on the
    /// next client hang-up.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is parked in `accept()`; a throwaway self-connect
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(mut stream: TcpStream, service: &InferenceService) {
    // Sniff the protocol from the first four bytes (frame length prefix vs
    // the start of an HTTP request line).
    let mut head = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut head[filled..]) {
            Ok(0) => return,
            Ok(n) => filled += n,
            Err(_) => return,
        }
    }
    if &head == b"GET " {
        serve_http(stream);
    } else {
        serve_frames(stream, head, service);
    }
}

/// Serve one HTTP request (the scrape endpoint) and close. Prometheus
/// re-connects per scrape, so connection reuse buys nothing here.
fn serve_http(mut stream: TcpStream) {
    // Read until the end of the request head; the body is irrelevant.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let request_line = String::from_utf8_lossy(&buf);
    let path = request_line.split_whitespace().next().unwrap_or("");
    let (status, body) = if path == "/metrics" {
        ("200 OK", obs::global().to_prometheus_text())
    } else {
        ("404 Not Found", "not found; try GET /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Serve framed requests until the client hangs up. `head` already holds
/// the first frame's length prefix from the sniff.
fn serve_frames(mut stream: TcpStream, head: [u8; 4], service: &InferenceService) {
    let mut first = Some(head);
    loop {
        let frame = match read_frame_with_head(&mut stream, first.take()) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(_) => return,
        };
        let response = match Request::parse(&frame) {
            Ok(request) => dispatch(&request, service),
            Err(message) => Response::Error { message },
        };
        if wire::write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

fn read_frame_with_head(
    stream: &mut TcpStream,
    head: Option<[u8; 4]>,
) -> std::io::Result<Option<String>> {
    match head {
        None => wire::read_frame(stream),
        Some(len) => {
            let n = u32::from_be_bytes(len) as usize;
            if n > wire::MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame length {n} exceeds MAX_FRAME"),
                ));
            }
            let mut buf = vec![0u8; n];
            stream.read_exact(&mut buf)?;
            String::from_utf8(buf).map(Some).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("non-UTF-8 frame: {e}"),
                )
            })
        }
    }
}

fn dispatch(request: &Request, service: &InferenceService) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Submit { tenant, spec } => match service.submit(tenant, spec) {
            Ok(job) => Response::Accepted { job },
            Err(reason) => Response::Rejected { reason },
        },
        Request::Status { job } => match service.status(*job) {
            Some(status) => Response::Status(status),
            None => Response::Error { message: format!("unknown job {job}") },
        },
        Request::Stats => Response::Stats(service.stats().to_wire()),
    }
}
