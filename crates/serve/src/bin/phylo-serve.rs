//! `phylo-serve` — run the persistent multi-tenant inference service.
//!
//! ```text
//! phylo-serve [--addr HOST:PORT] [--workers N] [--capacity N] [--quota N]
//!             [--max-queue N] [--max-conns N] [--state-dir DIR] [--no-fsync]
//!             [--synthetic NAME=TAXA,SITES,SEED]...
//! ```
//!
//! Datasets are registered up front with `--synthetic` (repeatable); jobs
//! reference them by name. Scrape `GET /metrics` on the same port for the
//! Prometheus export. The process serves until killed; with `--state-dir`,
//! a restart replays the journal and resumes unfinished jobs.
//! `--max-conns` bounds concurrent connections (extras get a typed `busy`
//! rejection); `--no-fsync` trades journal durability (`sync_data` per
//! append, the default) for OS-managed write-back.

use serve::server::{Server, ServerConfig};
use serve::service::{InferenceService, ServiceConfig, SyncPolicy};
use std::sync::Arc;

fn main() {
    if let Err(message) = run() {
        eprintln!("phylo-serve: {message}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: phylo-serve [--addr HOST:PORT] [--workers N] [--capacity N] \
             [--quota N] [--max-queue N] [--max-conns N] [--state-dir DIR] \
             [--no-fsync] [--synthetic NAME=TAXA,SITES,SEED]..."
        );
        return Ok(());
    }

    let addr = flag_value(&args, "--addr").unwrap_or("127.0.0.1:7654");
    let workers = parse_flag(&args, "--workers")?.unwrap_or(4);
    let mut config = ServiceConfig::new(workers);
    if let Some(capacity) = parse_flag(&args, "--capacity")? {
        config = config.with_farm_capacity(capacity);
    }
    if let Some(quota) = parse_flag(&args, "--quota")? {
        config = config.with_tenant_quota(quota);
    }
    if let Some(max_queue) = parse_flag(&args, "--max-queue")? {
        config = config.with_max_queue(max_queue);
    }
    if let Some(dir) = flag_value(&args, "--state-dir") {
        config = config.with_state_dir(dir);
    }
    if args.iter().any(|a| a == "--no-fsync") {
        config = config.with_sync_policy(SyncPolicy::OsManaged);
    }
    // Recovered jobs must not run before their datasets exist; start
    // paused, register, then resume.
    config = config.paused();

    let service =
        Arc::new(InferenceService::start(config).map_err(|e| format!("starting service: {e}"))?);
    let mut registered = 0usize;
    for (flag, value) in args.iter().zip(args.iter().skip(1)) {
        if flag != "--synthetic" {
            continue;
        }
        let (name, dims) = value
            .split_once('=')
            .ok_or_else(|| format!("--synthetic wants NAME=TAXA,SITES,SEED, got {value:?}"))?;
        let parts: Vec<&str> = dims.split(',').collect();
        let [taxa, sites, seed] = parts.as_slice() else {
            return Err(format!("--synthetic wants NAME=TAXA,SITES,SEED, got {value:?}"));
        };
        let parse = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|_| format!("--synthetic {name}: bad {what} {s:?}"))
        };
        let taxa = parse(taxa, "taxa")? as usize;
        let sites = parse(sites, "sites")? as usize;
        let seed = parse(seed, "seed")?;
        let aln = phylo::simulate::SimulationConfig::new(taxa, sites, seed).generate().alignment;
        service.register_dataset(name, aln);
        eprintln!("registered dataset {name:?}: {taxa} taxa x {sites} sites (seed {seed})");
        registered += 1;
    }
    if registered == 0 {
        eprintln!("note: no --synthetic datasets registered; submissions will be rejected");
    }
    service.resume();

    let mut server_config = ServerConfig::default();
    if let Some(max_conns) = parse_flag(&args, "--max-conns")? {
        server_config = server_config.with_max_connections(max_conns);
    }
    let server = Server::bind_with(addr, service.clone(), server_config)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    eprintln!(
        "phylo-serve listening on {} ({} workers); GET /metrics for Prometheus",
        server.addr(),
        workers
    );

    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag(args: &[String], flag: &str) -> Result<Option<usize>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} wants a non-negative integer, got {v:?}")),
    }
}
