//! # serve — a persistent multi-tenant inference service
//!
//! The paper's PPE/SPE split *is* a serving architecture: a coordinator
//! dispatching likelihood work to a pool of workers. This crate puts a
//! front door on that substrate — the work-stealing
//! [`phylo::farm`](phylo::farm) plus the [`obs`] metrics registry — so the
//! system serves sustained multi-tenant traffic instead of one batch at a
//! time:
//!
//! * **Wire protocol** ([`wire`]): length-prefixed JSON frames, hand-rolled
//!   encode/validate in the workspace's no-serde house style. The one job
//!   description ([`wire::JobSpec`]) maps 1:1 onto the library's unified
//!   [`phylo::search::InferenceRequest`].
//! * **Service core** ([`service`]): per-tenant FIFO queues drained by a
//!   fair round-robin scheduler into one long-lived farm run; admission
//!   control (global queue bound + per-tenant in-flight quotas) backed by
//!   the farm's bounded-submission backpressure; job status polling;
//!   crash-safe jobs via a durable journal plus the
//!   [`phylo::checkpoint`](phylo::checkpoint) tier.
//! * **Server** ([`server`]): a thread-per-connection TCP front end that
//!   multiplexes the frame protocol with a plain-HTTP `GET /metrics`
//!   endpoint serving the [`obs`] Prometheus text exporter. Connections
//!   live under handshake and per-frame deadlines, a bounded connection
//!   cap answers overload with a typed `busy` frame, and `stop()` is a
//!   graceful drain that joins every handler thread.
//! * **Client** ([`client`]): a small blocking client for tests, studies,
//!   and scripting, plus [`client::RetryClient`] — reconnecting, capped
//!   exponential backoff, and exactly-once submits via idempotency keys
//!   that survive server restarts.
//! * **Fault injection** ([`fault`]): deterministic wire-level chaos
//!   (drops, truncation, corruption, stalls) from counter-mode splitmix64
//!   draws, replayable bit-exactly — the service-tier mirror of
//!   `cellsim::fault`, exercised end to end by `bench --bin chaos_study`.
//!
//! ## Quick start
//!
//! ```no_run
//! use serve::service::{InferenceService, ServiceConfig};
//! use serve::server::Server;
//! use serve::wire::{JobKind, JobSpec, Preset};
//! use std::sync::Arc;
//!
//! let aln = phylo::simulate::SimulationConfig::new(8, 400, 7).generate().alignment;
//! let service = Arc::new(InferenceService::start(ServiceConfig::new(4)).unwrap());
//! service.register_dataset("demo", aln);
//! let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
//!
//! let mut client = serve::client::Client::connect(server.addr()).unwrap();
//! let job = client
//!     .submit("tenant-a", &JobSpec::new("demo", JobKind::Search, 1, Preset::Fast))
//!     .unwrap()
//!     .expect("admitted");
//! let status = client.wait_done(job, std::time::Duration::from_secs(600)).unwrap();
//! println!("lnL = {}", status.result.unwrap().log_likelihood);
//! ```

pub mod client;
pub mod fault;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{AddrCell, Client, RetryClient, RetryPolicy};
pub use fault::{FaultTally, FaultyStream, ServeFaultPlan, WireFault};
pub use server::{DrainReport, Server, ServerConfig};
pub use service::{InferenceService, ServiceConfig, ServiceStats, ShutdownReport, SyncPolicy};
pub use wire::{JobKind, JobSpec, Preset, RejectReason};
