//! The wire protocol: length-prefixed JSON frames and the typed messages
//! inside them, hand-rolled (encode *and* validate) in the workspace's
//! no-serde house style.
//!
//! A frame is a 4-byte big-endian length `N` followed by `N` bytes of UTF-8
//! JSON, `N` ≤ [`MAX_FRAME`]. Because `b"GET "` read as a big-endian u32 is
//! ~1.2 GiB — far beyond any legal frame — the server can sniff the first
//! four bytes of a connection and route plain-HTTP `GET /metrics` scrapes
//! and framed JSON over the same port unambiguously.
//!
//! Numbers ride as JSON numbers when they fit `f64` exactly (|v| < 2⁵³) and
//! as decimal strings otherwise, so 64-bit seeds and bit patterns survive
//! the text round trip; [`get_u64`] accepts both spellings.

use obs::json::{self, Json};
use phylo::search::{InferenceRequest, SearchConfig};
use std::io::{ErrorKind, Read, Write};

/// Maximum frame payload (1 MiB) — trees for thousands of taxa fit with
/// room to spare, and a garbage length prefix is rejected before any
/// allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on a clean EOF before the length prefix (the
/// peer hung up between requests); an EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {n} exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))
}

// ---------------------------------------------------------------------------
// JSON writing helpers
// ---------------------------------------------------------------------------

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer (no intermediate tree).
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    pub fn new() -> JsonObj {
        JsonObj { buf: String::from("{"), first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&json_escape(k));
        self.buf.push_str("\":");
    }

    pub fn str(mut self, k: &str, v: &str) -> JsonObj {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&json_escape(v));
        self.buf.push('"');
        self
    }

    pub fn num(mut self, k: &str, v: f64) -> JsonObj {
        self.key(k);
        // `{}` prints the shortest representation that parses back to the
        // same f64, so finite values round-trip exactly.
        if v.is_finite() {
            let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// A u64 as a JSON number when exactly representable, else a string.
    pub fn u64(mut self, k: &str, v: u64) -> JsonObj {
        self.key(k);
        if v < (1u64 << 53) {
            let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{v}"));
        } else {
            let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("\"{v}\""));
        }
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> JsonObj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> JsonObj {
        JsonObj::new()
    }
}

// ---------------------------------------------------------------------------
// JSON reading helpers
// ---------------------------------------------------------------------------

/// A u64 field: accepts both the number and the decimal-string spelling.
pub fn get_u64(v: &Json, key: &str) -> Option<u64> {
    match v.get(key)? {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < (1u64 << 53) as f64 => {
            Some(*n as u64)
        }
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

pub(crate) fn get_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

pub(crate) fn get_bool(v: &Json, key: &str) -> Option<bool> {
    match v.get(key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

pub(crate) fn get_usize(v: &Json, key: &str) -> Option<usize> {
    get_u64(v, key).map(|n| n as usize)
}

// ---------------------------------------------------------------------------
// The unified job description
// ---------------------------------------------------------------------------

/// What kind of job: a plain ML search on the named dataset, or one
/// bootstrap replicate (re-weighted alignment derived from the seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    Search,
    Bootstrap,
}

impl JobKind {
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Search => "search",
            JobKind::Bootstrap => "bootstrap",
        }
    }

    pub fn parse(s: &str) -> Option<JobKind> {
        match s {
            "search" => Some(JobKind::Search),
            "bootstrap" => Some(JobKind::Bootstrap),
            _ => None,
        }
    }
}

/// A named [`SearchConfig`] preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    Fast,
    Standard,
    Thorough,
}

impl Preset {
    pub fn as_str(self) -> &'static str {
        match self {
            Preset::Fast => "fast",
            Preset::Standard => "standard",
            Preset::Thorough => "thorough",
        }
    }

    pub fn parse(s: &str) -> Option<Preset> {
        match s {
            "fast" => Some(Preset::Fast),
            "standard" => Some(Preset::Standard),
            "thorough" => Some(Preset::Thorough),
            _ => None,
        }
    }

    pub fn config(self) -> SearchConfig {
        match self {
            Preset::Fast => SearchConfig::fast(),
            Preset::Standard => SearchConfig::standard(),
            Preset::Thorough => SearchConfig::thorough(),
        }
    }
}

/// One job, as submitted over the wire and persisted in the journal: a
/// dataset reference plus everything needed to rebuild the library-level
/// [`InferenceRequest`] deterministically. Keeping the spec in terms of
/// preset + overrides (rather than a serialized `SearchConfig`) is what
/// makes journal recovery trivially forward-compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Name of a dataset registered with the service.
    pub dataset: String,
    pub kind: JobKind,
    /// Seed for the randomized stepwise addition (and, for
    /// [`JobKind::Bootstrap`], the replicate re-weighting).
    pub seed: u64,
    pub preset: Preset,
    /// Optional overrides applied on top of the preset.
    pub spr_radius: Option<usize>,
    pub max_spr_rounds: Option<usize>,
    /// Snapshot after every SPR round so a service restart resumes the job
    /// bit-identically (requires the service to have a state dir).
    pub checkpoint: bool,
    /// Per-job deadline in milliseconds from admission. A job still queued
    /// when its deadline passes is settled as cancelled at dispatch time
    /// instead of being run; `None` means no deadline.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    pub fn new(dataset: &str, kind: JobKind, seed: u64, preset: Preset) -> JobSpec {
        JobSpec {
            dataset: dataset.to_string(),
            kind,
            seed,
            preset,
            spr_radius: None,
            max_spr_rounds: None,
            checkpoint: false,
            deadline_ms: None,
        }
    }

    /// Request checkpointing for this job.
    pub fn checkpointed(mut self) -> JobSpec {
        self.checkpoint = true;
        self
    }

    /// Attach a per-job deadline (milliseconds from admission).
    pub fn with_deadline_ms(mut self, ms: u64) -> JobSpec {
        self.deadline_ms = Some(ms);
        self
    }

    /// The library-level request this spec denotes.
    pub fn to_request(&self) -> InferenceRequest {
        let mut config = self.preset.config();
        if let Some(r) = self.spr_radius {
            config.spr_radius = r;
        }
        if let Some(r) = self.max_spr_rounds {
            config.max_spr_rounds = r;
        }
        InferenceRequest::new(config, self.seed)
    }

    /// Append this spec's fields onto a JSON object under construction.
    pub fn write_fields(&self, mut obj: JsonObj) -> JsonObj {
        obj = obj
            .str("dataset", &self.dataset)
            .str("kind", self.kind.as_str())
            .u64("seed", self.seed)
            .str("preset", self.preset.as_str());
        if let Some(r) = self.spr_radius {
            obj = obj.u64("spr_radius", r as u64);
        }
        if let Some(r) = self.max_spr_rounds {
            obj = obj.u64("max_spr_rounds", r as u64);
        }
        if let Some(ms) = self.deadline_ms {
            obj = obj.u64("deadline_ms", ms);
        }
        obj.bool("checkpoint", self.checkpoint)
    }

    /// Read a spec back out of a parsed JSON object.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let dataset = get_str(v, "dataset").ok_or("submit: missing string field 'dataset'")?;
        let kind = get_str(v, "kind")
            .and_then(JobKind::parse)
            .ok_or("submit: 'kind' must be \"search\" or \"bootstrap\"")?;
        let seed = get_u64(v, "seed").ok_or("submit: missing u64 field 'seed'")?;
        let preset = match get_str(v, "preset") {
            None => Preset::Fast,
            Some(s) => Preset::parse(s)
                .ok_or_else(|| format!("submit: unknown preset {s:?} (fast|standard|thorough)"))?,
        };
        Ok(JobSpec {
            dataset: dataset.to_string(),
            kind,
            seed,
            preset,
            spr_radius: get_usize(v, "spr_radius"),
            max_spr_rounds: get_usize(v, "max_spr_rounds"),
            checkpoint: get_bool(v, "checkpoint").unwrap_or(false),
            deadline_ms: get_u64(v, "deadline_ms"),
        })
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Ping,
    Submit {
        tenant: String,
        spec: JobSpec,
        /// Client-generated idempotency key: a retried submit carrying the
        /// same key returns the originally admitted job id instead of
        /// double-running the job (the exactly-once retry contract).
        idem: Option<String>,
    },
    Status {
        job: u64,
    },
    /// Best-effort cancellation: a queued job settles as cancelled; a
    /// running or finished job is left untouched. Responds with the job's
    /// post-cancel status.
    Cancel {
        job: u64,
    },
    Stats,
}

impl Request {
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => JsonObj::new().str("op", "ping").finish(),
            Request::Submit { tenant, spec, idem } => {
                let mut obj = JsonObj::new().str("op", "submit").str("tenant", tenant);
                if let Some(key) = idem {
                    obj = obj.str("idem", key);
                }
                spec.write_fields(obj).finish()
            }
            Request::Status { job } => JsonObj::new().str("op", "status").u64("job", *job).finish(),
            Request::Cancel { job } => JsonObj::new().str("op", "cancel").u64("job", *job).finish(),
            Request::Stats => JsonObj::new().str("op", "stats").finish(),
        }
    }

    pub fn parse(text: &str) -> Result<Request, String> {
        let v = json::parse(text).map_err(|e| format!("malformed request JSON: {e}"))?;
        match get_str(&v, "op") {
            Some("ping") => Ok(Request::Ping),
            Some("submit") => {
                let tenant =
                    get_str(&v, "tenant").ok_or("submit: missing string field 'tenant'")?;
                if tenant.is_empty() {
                    return Err("submit: 'tenant' must be non-empty".to_string());
                }
                Ok(Request::Submit {
                    tenant: tenant.to_string(),
                    spec: JobSpec::from_json(&v)?,
                    idem: get_str(&v, "idem").map(str::to_string),
                })
            }
            Some("status") => {
                Ok(Request::Status { job: get_u64(&v, "job").ok_or("status: missing 'job' id")? })
            }
            Some("cancel") => {
                Ok(Request::Cancel { job: get_u64(&v, "job").ok_or("cancel: missing 'job' id")? })
            }
            Some("stats") => Ok(Request::Stats),
            Some(op) => Err(format!("unknown op {op:?}")),
            None => Err("missing 'op' field".to_string()),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Why a submission was turned away at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The service-wide queue bound is reached (the farm's backpressure,
    /// surfaced as an explicit response instead of an ever-growing queue).
    QueueFull,
    /// The tenant already has its quota of admitted-but-unfinished jobs.
    QuotaExceeded,
    /// The named dataset is not registered with the service.
    UnknownDataset,
    /// The service is draining for shutdown.
    ShuttingDown,
}

impl RejectReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::QuotaExceeded => "quota_exceeded",
            RejectReason::UnknownDataset => "unknown_dataset",
            RejectReason::ShuttingDown => "shutting_down",
        }
    }

    pub fn parse(s: &str) -> Option<RejectReason> {
        match s {
            "queue_full" => Some(RejectReason::QueueFull),
            "quota_exceeded" => Some(RejectReason::QuotaExceeded),
            "unknown_dataset" => Some(RejectReason::UnknownDataset),
            "shutting_down" => Some(RejectReason::ShuttingDown),
            _ => None,
        }
    }
}

/// A completed job's payload. Log-likelihood and Γ shape travel as exact
/// bit patterns alongside the human-readable values, and the tree as the
/// arena-exact string, so bit-identity is checkable across the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    pub log_likelihood: f64,
    pub alpha: f64,
    pub tree_exact: String,
    pub rounds: usize,
    pub moves_applied: usize,
}

/// One job's externally visible lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireState {
    Queued,
    Running,
    Done,
    Failed,
    /// Settled without running: cancelled by the client or expired past its
    /// deadline (the reason travels in the status `error` field).
    Cancelled,
}

impl WireState {
    pub fn as_str(self) -> &'static str {
        match self {
            WireState::Queued => "queued",
            WireState::Running => "running",
            WireState::Done => "done",
            WireState::Failed => "failed",
            WireState::Cancelled => "cancelled",
        }
    }

    pub fn parse(s: &str) -> Option<WireState> {
        match s {
            "queued" => Some(WireState::Queued),
            "running" => Some(WireState::Running),
            "done" => Some(WireState::Done),
            "failed" => Some(WireState::Failed),
            "cancelled" => Some(WireState::Cancelled),
            _ => None,
        }
    }

    /// True for the states a job can no longer leave.
    pub fn is_terminal(self) -> bool {
        matches!(self, WireState::Done | WireState::Failed | WireState::Cancelled)
    }
}

/// The status-poll payload.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatusWire {
    pub job: u64,
    pub tenant: String,
    pub state: WireState,
    /// Present iff `state == Done`.
    pub result: Option<WireResult>,
    /// Present iff `state == Failed`.
    pub error: Option<String>,
}

/// Service-wide accounting, as reported by the `stats` op.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsWire {
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub queued: u64,
    pub running: u64,
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    Accepted {
        job: u64,
    },
    Rejected {
        reason: RejectReason,
    },
    Status(JobStatusWire),
    Stats(StatsWire),
    /// The server is at its connection cap: sent once on a fresh connection
    /// in place of any reply, then the connection closes. Clients back off
    /// and reconnect.
    Busy,
    /// The request could not be understood or referenced an unknown job.
    Error {
        message: String,
    },
}

impl Response {
    pub fn encode(&self) -> String {
        match self {
            Response::Pong => JsonObj::new().bool("ok", true).str("reply", "pong").finish(),
            Response::Accepted { job } => {
                JsonObj::new().bool("ok", true).str("reply", "accepted").u64("job", *job).finish()
            }
            Response::Rejected { reason } => JsonObj::new()
                .bool("ok", false)
                .str("reply", "rejected")
                .str("reason", reason.as_str())
                .finish(),
            Response::Status(s) => {
                let mut obj = JsonObj::new()
                    .bool("ok", true)
                    .str("reply", "status")
                    .u64("job", s.job)
                    .str("tenant", &s.tenant)
                    .str("state", s.state.as_str());
                if let Some(r) = &s.result {
                    obj = obj
                        .num("log_likelihood", r.log_likelihood)
                        .u64("lnl_bits", r.log_likelihood.to_bits())
                        .num("alpha", r.alpha)
                        .u64("alpha_bits", r.alpha.to_bits())
                        .str("tree", &r.tree_exact)
                        .u64("rounds", r.rounds as u64)
                        .u64("moves_applied", r.moves_applied as u64);
                }
                if let Some(e) = &s.error {
                    obj = obj.str("error", e);
                }
                obj.finish()
            }
            Response::Stats(s) => JsonObj::new()
                .bool("ok", true)
                .str("reply", "stats")
                .u64("accepted", s.accepted)
                .u64("rejected", s.rejected)
                .u64("completed", s.completed)
                .u64("failed", s.failed)
                .u64("cancelled", s.cancelled)
                .u64("queued", s.queued)
                .u64("running", s.running)
                .finish(),
            Response::Busy => JsonObj::new().bool("ok", false).str("reply", "busy").finish(),
            Response::Error { message } => JsonObj::new()
                .bool("ok", false)
                .str("reply", "error")
                .str("error", message)
                .finish(),
        }
    }

    pub fn parse(text: &str) -> Result<Response, String> {
        let v = json::parse(text).map_err(|e| format!("malformed response JSON: {e}"))?;
        match get_str(&v, "reply") {
            Some("pong") => Ok(Response::Pong),
            Some("accepted") => {
                Ok(Response::Accepted { job: get_u64(&v, "job").ok_or("accepted: missing 'job'")? })
            }
            Some("rejected") => {
                let reason = get_str(&v, "reason")
                    .and_then(RejectReason::parse)
                    .ok_or("rejected: missing or unknown 'reason'")?;
                Ok(Response::Rejected { reason })
            }
            Some("status") => {
                let state = get_str(&v, "state")
                    .and_then(WireState::parse)
                    .ok_or("status: missing or unknown 'state'")?;
                let result = if state == WireState::Done {
                    Some(WireResult {
                        log_likelihood: f64::from_bits(
                            get_u64(&v, "lnl_bits").ok_or("status: done without 'lnl_bits'")?,
                        ),
                        alpha: f64::from_bits(
                            get_u64(&v, "alpha_bits").ok_or("status: done without 'alpha_bits'")?,
                        ),
                        tree_exact: get_str(&v, "tree")
                            .ok_or("status: done without 'tree'")?
                            .to_string(),
                        rounds: get_usize(&v, "rounds").unwrap_or(0),
                        moves_applied: get_usize(&v, "moves_applied").unwrap_or(0),
                    })
                } else {
                    None
                };
                Ok(Response::Status(JobStatusWire {
                    job: get_u64(&v, "job").ok_or("status: missing 'job'")?,
                    tenant: get_str(&v, "tenant").unwrap_or("").to_string(),
                    state,
                    result,
                    error: get_str(&v, "error").map(str::to_string),
                }))
            }
            Some("stats") => Ok(Response::Stats(StatsWire {
                accepted: get_u64(&v, "accepted").unwrap_or(0),
                rejected: get_u64(&v, "rejected").unwrap_or(0),
                completed: get_u64(&v, "completed").unwrap_or(0),
                failed: get_u64(&v, "failed").unwrap_or(0),
                cancelled: get_u64(&v, "cancelled").unwrap_or(0),
                queued: get_u64(&v, "queued").unwrap_or(0),
                running: get_u64(&v, "running").unwrap_or(0),
            })),
            Some("busy") => Ok(Response::Busy),
            Some("error") => Ok(Response::Error {
                message: get_str(&v, "error").unwrap_or("unknown error").to_string(),
            }),
            Some(r) => Err(format!("unknown reply {r:?}")),
            None => Err("missing 'reply' field".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let text = req.encode();
        assert_eq!(Request::parse(&text).unwrap(), req, "encoded: {text}");
    }

    fn round_trip_response(resp: Response) {
        let text = resp.encode();
        assert_eq!(Response::parse(&text).unwrap(), resp, "encoded: {text}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Status { job: 123 });
        round_trip_request(Request::Cancel { job: u64::MAX - 17 });
        let mut spec = JobSpec::new("42_SC", JobKind::Bootstrap, u64::MAX - 3, Preset::Thorough);
        spec.spr_radius = Some(5);
        spec.checkpoint = true;
        spec.deadline_ms = Some(2_500);
        round_trip_request(Request::Submit {
            tenant: "acme \"lab\"\n".to_string(),
            spec: spec.clone(),
            idem: None,
        });
        round_trip_request(Request::Submit {
            tenant: "acme".to_string(),
            spec,
            idem: Some("client-7-seq-\"42\"".to_string()),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::Accepted { job: 7 });
        round_trip_response(Response::Rejected { reason: RejectReason::QueueFull });
        round_trip_response(Response::Busy);
        round_trip_response(Response::Error { message: "nope: \\ \"quoted\"".to_string() });
        round_trip_response(Response::Stats(StatsWire {
            accepted: 10,
            rejected: 2,
            completed: 6,
            failed: 1,
            cancelled: 1,
            queued: 1,
            running: 1,
        }));
        round_trip_response(Response::Status(JobStatusWire {
            job: 11,
            tenant: "t".to_string(),
            state: WireState::Cancelled,
            result: None,
            error: Some("deadline expired".to_string()),
        }));
        round_trip_response(Response::Status(JobStatusWire {
            job: 9,
            tenant: "t".to_string(),
            state: WireState::Done,
            result: Some(WireResult {
                log_likelihood: -12345.6789,
                alpha: 0.4321,
                tree_exact: "((a:1,b:2):0.5,c:3);".to_string(),
                rounds: 3,
                moves_applied: 11,
            }),
            error: None,
        }));
        round_trip_response(Response::Status(JobStatusWire {
            job: 10,
            tenant: "t".to_string(),
            state: WireState::Failed,
            result: None,
            error: Some("boom".to_string()),
        }));
    }

    #[test]
    fn f64_bits_survive_the_text_round_trip() {
        // Bit patterns must survive even when the decimal rendering is ugly.
        for lnl in [-1234.000000000001, -0.1 - 0.2, f64::MIN_POSITIVE, -9.87e-300] {
            let status = Response::Status(JobStatusWire {
                job: 1,
                tenant: "t".to_string(),
                state: WireState::Done,
                result: Some(WireResult {
                    log_likelihood: lnl,
                    alpha: lnl.abs(),
                    tree_exact: String::new(),
                    rounds: 0,
                    moves_applied: 0,
                }),
                error: None,
            });
            let parsed = Response::parse(&status.encode()).unwrap();
            match parsed {
                Response::Status(s) => {
                    let r = s.result.unwrap();
                    assert_eq!(r.log_likelihood.to_bits(), lnl.to_bits());
                    assert_eq!(r.alpha.to_bits(), lnl.abs().to_bits());
                }
                other => panic!("expected status, got {other:?}"),
            }
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"ping\"}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        // A hostile length prefix is rejected before allocation.
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        assert!(read_frame(&mut std::io::Cursor::new(huge)).is_err());
        // "GET " as a length prefix is far beyond MAX_FRAME — the sniffing
        // invariant the server's protocol multiplexer relies on.
        assert!(u32::from_be_bytes(*b"GET ") as usize > MAX_FRAME);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"op\":\"warp\"}").is_err());
        assert!(Request::parse("{\"op\":\"submit\",\"tenant\":\"t\"}").is_err(), "missing spec");
        assert!(Request::parse(
            "{\"op\":\"submit\",\"tenant\":\"\",\"dataset\":\"d\",\"kind\":\"search\",\"seed\":1}"
        )
        .is_err());
    }

    #[test]
    fn spec_overrides_reach_the_search_config() {
        let mut spec = JobSpec::new("d", JobKind::Search, 3, Preset::Standard);
        spec.spr_radius = Some(2);
        spec.max_spr_rounds = Some(1);
        let req = spec.to_request();
        assert_eq!(req.seed, 3);
        assert_eq!(req.config.spr_radius, 2);
        assert_eq!(req.config.max_spr_rounds, 1);
        // Untouched fields keep the preset's values.
        assert_eq!(req.config.branch_smoothings, Preset::Standard.config().branch_smoothings);
    }
}
