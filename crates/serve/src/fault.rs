//! Deterministic wire-level fault injection for the service tier.
//!
//! The simulator already has a gold-standard chaos model in
//! [`cellsim::fault`]: every fault decision is a **pure function** of
//! `(seed, stream, index, salt)` hashed through splitmix64, so no RNG state
//! is carried between draws and two runs under the same plan replay the
//! exact same fault history. This module applies the identical discipline
//! to the TCP front door: a [`ServeFaultPlan`] decides, per connection and
//! per I/O operation, whether to drop the connection, truncate a write
//! mid-frame, corrupt a byte, or stall — and a [`FaultyStream`] wrapper
//! injects those decisions around any `Read + Write` transport.
//!
//! Determinism is the point: a chaos run that loses a job is only
//! debuggable if the same plan replays the same faults bit-exactly.
//! [`ServeFaultPlan::sequence_fingerprint`] collapses the full decision
//! sequence over a site grid into one u64 so studies can assert replay
//! identity cheaply (`chaos_study` does exactly that).
//!
//! Injected faults surface as `io::Error`s of ordinary kinds
//! (`ConnectionReset`, `WouldBlock`-free stalls are plain sleeps), so the
//! code under test cannot tell chaos from a hostile network — which is the
//! property the exactly-once retry machinery must survive.

use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The kinds of wire fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFault {
    /// The connection is torn down before the operation (peer sees a reset).
    ConnDrop,
    /// A write delivers only a prefix of the buffer, then the connection
    /// drops — the peer observes a torn frame.
    Truncate,
    /// One byte of the payload is bit-flipped in transit.
    Corrupt,
    /// The operation stalls for [`ServeFaultPlan::stall`] before
    /// proceeding — long enough to trip a peer's deadline when aggressive.
    Stall,
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireFault::ConnDrop => "conn-drop",
            WireFault::Truncate => "truncate",
            WireFault::Corrupt => "corrupt",
            WireFault::Stall => "stall",
        })
    }
}

/// A deterministic, seed-driven wire fault schedule.
///
/// Rates are per-operation probabilities in `[0, 1]`; each read and each
/// write on a [`FaultyStream`] draws once per category, indexed by
/// `(stream, op)`. [`ServeFaultPlan::none`] injects nothing and leaves the
/// wrapped stream behaviourally identical to the bare transport.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFaultPlan {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Probability a read/write begins on a dead connection.
    pub drop_rate: f64,
    /// Probability a write delivers only a prefix then drops (writes only).
    pub truncate_rate: f64,
    /// Probability one byte of the operation's payload is bit-flipped.
    pub corrupt_rate: f64,
    /// Probability the operation stalls for [`stall`](Self::stall) first.
    pub stall_rate: f64,
    /// Duration of one injected stall.
    pub stall: Duration,
}

impl Default for ServeFaultPlan {
    fn default() -> Self {
        ServeFaultPlan::none()
    }
}

impl ServeFaultPlan {
    /// The inert plan: wrapped streams behave exactly like the bare ones.
    pub fn none() -> ServeFaultPlan {
        ServeFaultPlan {
            seed: 0,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(20),
        }
    }

    /// A plan applying `rate` uniformly to every fault category.
    pub fn uniform(seed: u64, rate: f64) -> ServeFaultPlan {
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} outside [0, 1]");
        ServeFaultPlan {
            seed,
            drop_rate: rate,
            truncate_rate: rate,
            corrupt_rate: rate,
            stall_rate: rate,
            ..ServeFaultPlan::none()
        }
    }

    /// An aggressive mix for stress tests: frequent corruption and stalls,
    /// occasional drops and torn frames. (`chaos_study` uses a custom mix
    /// without corruption, whose silent bit flips belong to the wire fuzz
    /// tests rather than an accounting study.)
    pub fn aggressive(seed: u64) -> ServeFaultPlan {
        ServeFaultPlan {
            seed,
            drop_rate: 0.02,
            truncate_rate: 0.02,
            corrupt_rate: 0.05,
            stall_rate: 0.05,
            stall: Duration::from_millis(5),
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.drop_rate == 0.0
            && self.truncate_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.stall_rate == 0.0
    }

    /// A uniform draw in `[0, 1)` for the given site — identical mixing to
    /// `cellsim::fault`, so the replay guarantees carry over verbatim.
    fn draw(&self, stream: u64, op: u64, salt: u64) -> f64 {
        let mut x = self.seed ^ salt;
        x = splitmix64(x);
        x ^= stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = splitmix64(x);
        x ^= op.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let bits = splitmix64(x);
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fault decision for read operation `op` on `stream`, if any.
    /// Priority: drop > corrupt > stall (a dropped connection cannot also
    /// corrupt). Reads never truncate — a short read is normal TCP.
    pub fn read_fault(&self, stream: u64, op: u64) -> Option<WireFault> {
        if self.draw(stream, op, SALT_READ_DROP) < self.drop_rate {
            return Some(WireFault::ConnDrop);
        }
        if self.draw(stream, op, SALT_READ_CORRUPT) < self.corrupt_rate {
            return Some(WireFault::Corrupt);
        }
        if self.draw(stream, op, SALT_READ_STALL) < self.stall_rate {
            return Some(WireFault::Stall);
        }
        None
    }

    /// Fault decision for write operation `op` on `stream`, if any.
    /// Priority: drop > truncate > corrupt > stall.
    pub fn write_fault(&self, stream: u64, op: u64) -> Option<WireFault> {
        if self.draw(stream, op, SALT_WRITE_DROP) < self.drop_rate {
            return Some(WireFault::ConnDrop);
        }
        if self.draw(stream, op, SALT_WRITE_TRUNC) < self.truncate_rate {
            return Some(WireFault::Truncate);
        }
        if self.draw(stream, op, SALT_WRITE_CORRUPT) < self.corrupt_rate {
            return Some(WireFault::Corrupt);
        }
        if self.draw(stream, op, SALT_WRITE_STALL) < self.stall_rate {
            return Some(WireFault::Stall);
        }
        None
    }

    /// Which byte of an `n`-byte payload a [`WireFault::Corrupt`] flips,
    /// and the bit mask flipped into it.
    pub fn corrupt_site(&self, stream: u64, op: u64, n: usize) -> (usize, u8) {
        let bits = splitmix64(self.seed ^ splitmix64(stream) ^ op ^ SALT_CORRUPT_SITE);
        let pos = if n == 0 { 0 } else { (bits as usize) % n };
        let mask = 1u8 << ((bits >> 32) & 7);
        (pos, mask)
    }

    /// How many bytes of an `n`-byte write a [`WireFault::Truncate`]
    /// delivers before the connection drops (always a strict prefix).
    pub fn truncate_len(&self, stream: u64, op: u64, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let bits = splitmix64(self.seed ^ splitmix64(stream ^ SALT_TRUNC_SITE) ^ op);
        (bits as usize) % n
    }

    /// Collapse the full decision sequence over `streams × ops` sites into
    /// one u64. Two plans with equal parameters produce equal fingerprints;
    /// replaying the same plan twice is therefore provably bit-identical.
    pub fn sequence_fingerprint(&self, streams: u64, ops: u64) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            acc = splitmix64(acc ^ v);
        };
        for s in 0..streams {
            for o in 0..ops {
                mix(fault_code(self.read_fault(s, o)));
                mix(fault_code(self.write_fault(s, o)));
                let (pos, mask) = self.corrupt_site(s, o, 64);
                mix((pos as u64) << 8 | mask as u64);
                mix(self.truncate_len(s, o, 64) as u64);
            }
        }
        acc
    }
}

fn fault_code(f: Option<WireFault>) -> u64 {
    match f {
        None => 0,
        Some(WireFault::ConnDrop) => 1,
        Some(WireFault::Truncate) => 2,
        Some(WireFault::Corrupt) => 3,
        Some(WireFault::Stall) => 4,
    }
}

const SALT_READ_DROP: u64 = 0x3e4d_0001;
const SALT_READ_CORRUPT: u64 = 0x3e4d_0002;
const SALT_READ_STALL: u64 = 0x3e4d_0003;
const SALT_WRITE_DROP: u64 = 0x3e57_0001;
const SALT_WRITE_TRUNC: u64 = 0x3e57_0002;
const SALT_WRITE_CORRUPT: u64 = 0x3e57_0003;
const SALT_WRITE_STALL: u64 = 0x3e57_0004;
const SALT_CORRUPT_SITE: u64 = 0x3e5e_0001;
const SALT_TRUNC_SITE: u64 = 0x3e5e_0002;

/// Shared tally of injected faults, readable while a chaos run is live.
#[derive(Debug, Default)]
pub struct FaultTally {
    pub drops: AtomicU64,
    pub truncations: AtomicU64,
    pub corruptions: AtomicU64,
    pub stalls: AtomicU64,
}

impl FaultTally {
    pub fn total(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
            + self.truncations.load(Ordering::Relaxed)
            + self.corruptions.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
    }
}

/// A `Read + Write` transport with a [`ServeFaultPlan`] injected around
/// every operation. `stream_id` must be stable for the wrapped connection —
/// the server uses its accept counter, clients their tenant index — so the
/// per-connection fault sequence is a pure function of the plan.
pub struct FaultyStream<S> {
    inner: S,
    plan: Arc<ServeFaultPlan>,
    tally: Arc<FaultTally>,
    stream_id: u64,
    reads: u64,
    writes: u64,
    dead: bool,
}

impl<S> FaultyStream<S> {
    pub fn new(
        inner: S,
        plan: Arc<ServeFaultPlan>,
        tally: Arc<FaultTally>,
        stream_id: u64,
    ) -> FaultyStream<S> {
        FaultyStream { inner, plan, tally, stream_id, reads: 0, writes: 0, dead: false }
    }

    /// The wrapped transport (e.g. to set socket deadlines on a
    /// `TcpStream`).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// True once an injected drop or truncation killed the connection.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn killed(&mut self, kind: WireFault) -> std::io::Error {
        self.dead = true;
        match kind {
            WireFault::ConnDrop => self.tally.drops.fetch_add(1, Ordering::Relaxed),
            WireFault::Truncate => self.tally.truncations.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        obs::global().counter("serve_fault_injected_total").inc();
        std::io::Error::new(ErrorKind::ConnectionReset, "injected connection drop")
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(ErrorKind::ConnectionReset, "connection dropped"));
        }
        let op = self.reads;
        self.reads += 1;
        match self.plan.read_fault(self.stream_id, op) {
            Some(WireFault::ConnDrop) => return Err(self.killed(WireFault::ConnDrop)),
            Some(WireFault::Stall) => {
                self.tally.stalls.fetch_add(1, Ordering::Relaxed);
                obs::global().counter("serve_fault_injected_total").inc();
                std::thread::sleep(self.plan.stall);
            }
            Some(WireFault::Corrupt) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let (pos, mask) = self.plan.corrupt_site(self.stream_id, op, n);
                    buf[pos] ^= mask;
                    self.tally.corruptions.fetch_add(1, Ordering::Relaxed);
                    obs::global().counter("serve_fault_injected_total").inc();
                }
                return Ok(n);
            }
            Some(WireFault::Truncate) | None => {}
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(ErrorKind::ConnectionReset, "connection dropped"));
        }
        let op = self.writes;
        self.writes += 1;
        match self.plan.write_fault(self.stream_id, op) {
            Some(WireFault::ConnDrop) => return Err(self.killed(WireFault::ConnDrop)),
            Some(WireFault::Truncate) => {
                let keep = self.plan.truncate_len(self.stream_id, op, buf.len());
                if keep > 0 {
                    // Deliver the torn prefix so the peer sees a mid-frame
                    // cut, then kill the connection.
                    let _ = self.inner.write(&buf[..keep]);
                    let _ = self.inner.flush();
                }
                return Err(self.killed(WireFault::Truncate));
            }
            Some(WireFault::Corrupt) if !buf.is_empty() => {
                let (pos, mask) = self.plan.corrupt_site(self.stream_id, op, buf.len());
                let mut copy = buf.to_vec();
                copy[pos] ^= mask;
                self.tally.corruptions.fetch_add(1, Ordering::Relaxed);
                obs::global().counter("serve_fault_injected_total").inc();
                return self.inner.write(&copy);
            }
            Some(WireFault::Stall) => {
                self.tally.stalls.fetch_add(1, Ordering::Relaxed);
                obs::global().counter("serve_fault_injected_total").inc();
                std::thread::sleep(self.plan.stall);
            }
            // An empty-buffer corrupt draw has no byte to flip.
            Some(WireFault::Corrupt) | None => {}
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The splitmix64 finalizer — the same mixing `cellsim::fault` uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_injects_nothing() {
        let plan = ServeFaultPlan::none();
        assert!(plan.is_inert());
        for s in 0..4u64 {
            for o in 0..200u64 {
                assert_eq!(plan.read_fault(s, o), None);
                assert_eq!(plan.write_fault(s, o), None);
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = ServeFaultPlan::uniform(42, 0.3);
        let b = ServeFaultPlan::uniform(42, 0.3);
        let c = ServeFaultPlan::uniform(43, 0.3);
        assert_eq!(
            a.sequence_fingerprint(8, 256),
            b.sequence_fingerprint(8, 256),
            "same seed must replay identically"
        );
        assert_ne!(
            a.sequence_fingerprint(8, 256),
            c.sequence_fingerprint(8, 256),
            "different seed must diverge"
        );
    }

    #[test]
    fn rates_shape_the_fault_frequency() {
        let low = ServeFaultPlan::uniform(7, 0.01);
        let high = ServeFaultPlan::uniform(7, 0.5);
        let count =
            |p: &ServeFaultPlan| (0..1000u64).filter(|&o| p.write_fault(0, o).is_some()).count();
        assert!(count(&low) < 100, "1% rate fired {} / 1000 times", count(&low));
        assert!(count(&high) > 500, "50% rate fired only {} / 1000 times", count(&high));
    }

    #[test]
    fn inert_wrapper_is_transparent() {
        let plan = Arc::new(ServeFaultPlan::none());
        let tally = Arc::new(FaultTally::default());
        let mut buf = Vec::new();
        let mut s =
            FaultyStream::new(std::io::Cursor::new(&mut buf), plan.clone(), tally.clone(), 0);
        s.write_all(b"hello frames").unwrap();
        drop(s);
        assert_eq!(buf, b"hello frames");
        let mut s = FaultyStream::new(std::io::Cursor::new(buf.clone()), plan, tally.clone(), 0);
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"hello frames");
        assert_eq!(tally.total(), 0);
    }

    #[test]
    fn certain_drop_kills_the_stream_permanently() {
        let plan = Arc::new(ServeFaultPlan { drop_rate: 1.0, ..ServeFaultPlan::none() });
        let tally = Arc::new(FaultTally::default());
        let mut s = FaultyStream::new(std::io::Cursor::new(Vec::new()), plan, tally.clone(), 3);
        assert_eq!(s.write(b"x").unwrap_err().kind(), ErrorKind::ConnectionReset);
        assert!(s.is_dead());
        let mut byte = [0u8];
        assert_eq!(s.read(&mut byte).unwrap_err().kind(), ErrorKind::ConnectionReset);
        assert_eq!(tally.drops.load(Ordering::Relaxed), 1, "death is injected once");
    }

    #[test]
    fn truncation_delivers_a_strict_prefix_then_dies() {
        let plan = Arc::new(ServeFaultPlan { truncate_rate: 1.0, ..ServeFaultPlan::none() });
        let tally = Arc::new(FaultTally::default());
        let mut sink = Vec::new();
        let mut s =
            FaultyStream::new(std::io::Cursor::new(&mut sink), plan.clone(), tally.clone(), 1);
        let payload = vec![0xabu8; 64];
        assert!(s.write_all(&payload).is_err());
        drop(s);
        assert_eq!(sink.len(), plan.truncate_len(1, 0, 64));
        assert!(sink.len() < 64, "must be a strict prefix");
        assert_eq!(tally.truncations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let plan = Arc::new(ServeFaultPlan { corrupt_rate: 1.0, ..ServeFaultPlan::none() });
        let tally = Arc::new(FaultTally::default());
        let mut sink = Vec::new();
        let mut s =
            FaultyStream::new(std::io::Cursor::new(&mut sink), plan.clone(), tally.clone(), 2);
        let payload = vec![0u8; 32];
        s.write_all(&payload).unwrap();
        drop(s);
        assert_eq!(sink.len(), 32);
        let flipped: u32 = sink.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped: {sink:?}");
        let (pos, mask) = plan.corrupt_site(2, 0, 32);
        assert_eq!(sink[pos], mask);
        assert_eq!(tally.corruptions.load(Ordering::Relaxed), 1);
    }
}
