//! A small blocking client for the frame protocol, plus a one-shot HTTP
//! scraper for the `/metrics` endpoint and a reconnecting [`RetryClient`]
//! with exactly-once submit semantics. Used by the integration tests, the
//! `serve_study`/`chaos_study` benchmarks, and scripting.

use crate::wire::{self, JobSpec, JobStatusWire, RejectReason, Request, Response, StatsWire};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One framed connection to the server. Requests are synchronous: write a
/// frame, read the response frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, request: &Request) -> std::io::Result<Response> {
        if let Err(write_err) = wire::write_frame(&mut self.stream, &request.encode()) {
            // A rejected-at-accept connection gets one `busy` frame and an
            // immediate close, so our write may die with EPIPE before we
            // ever look at the socket. The frame is still sitting in the
            // receive buffer — prefer the typed rejection over the raw
            // transport error when it is there.
            if let Ok(Some(frame)) = wire::read_frame(&mut self.stream) {
                if matches!(Response::parse(&frame), Ok(Response::Busy)) {
                    return Err(busy_error());
                }
            }
            return Err(write_err);
        }
        let frame = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server hung up mid-request")
        })?;
        let response = Response::parse(&frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if matches!(response, Response::Busy) {
            // The server wrote one `busy` frame at accept time and closed;
            // surface it as a retryable connection-level error.
            return Err(busy_error());
        }
        Ok(response)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Submit a job: `Ok(Ok(id))` if admitted, `Ok(Err(reason))` if the
    /// service rejected it, `Err` on transport failure.
    pub fn submit(
        &mut self,
        tenant: &str,
        spec: &JobSpec,
    ) -> std::io::Result<Result<u64, RejectReason>> {
        self.submit_idem(tenant, spec, None)
    }

    /// [`submit`](Client::submit) with an optional idempotency key: resend
    /// the same key after a transport failure and the service returns the
    /// original job id instead of admitting a duplicate.
    pub fn submit_idem(
        &mut self,
        tenant: &str,
        spec: &JobSpec,
        idem: Option<&str>,
    ) -> std::io::Result<Result<u64, RejectReason>> {
        let request = Request::Submit {
            tenant: tenant.to_string(),
            spec: spec.clone(),
            idem: idem.map(str::to_string),
        };
        match self.round_trip(&request)? {
            Response::Accepted { job } => Ok(Ok(job)),
            Response::Rejected { reason } => Ok(Err(reason)),
            other => Err(unexpected("accepted/rejected", &other)),
        }
    }

    /// Poll one job's status.
    pub fn status(&mut self, job: u64) -> std::io::Result<JobStatusWire> {
        match self.round_trip(&Request::Status { job })? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, message))
            }
            other => Err(unexpected("status", &other)),
        }
    }

    /// Request best-effort cancellation; returns the job's post-call
    /// status (`Cancelled` only if it was still queued).
    pub fn cancel(&mut self, job: u64) -> std::io::Result<JobStatusWire> {
        match self.round_trip(&Request::Cancel { job })? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, message))
            }
            other => Err(unexpected("status", &other)),
        }
    }

    /// Service-wide counters.
    pub fn stats(&mut self) -> std::io::Result<StatsWire> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Poll until the job reaches a terminal state
    /// (`Done`/`Failed`/`Cancelled`), with capped exponential backoff.
    /// Times out with `ErrorKind::TimedOut`.
    pub fn wait_done(&mut self, job: u64, timeout: Duration) -> std::io::Result<JobStatusWire> {
        let deadline = Instant::now() + timeout;
        let mut pause = Duration::from_millis(1);
        loop {
            let status = self.status(job)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("job {job} still {:?} after {timeout:?}", status.state),
                ));
            }
            std::thread::sleep(pause);
            pause = (pause * 2).min(Duration::from_millis(50));
        }
    }
}

/// A shared, mutable server address — the chaos studies' one-cell service
/// discovery. A killed server restarts on a fresh ephemeral port (std's
/// `TcpListener` does not set `SO_REUSEADDR`, so rebinding the old port can
/// hit `TIME_WAIT`); the restarter publishes the new address here and every
/// [`RetryClient`] picks it up on its next reconnect.
#[derive(Clone, Default)]
pub struct AddrCell {
    inner: Arc<Mutex<Option<SocketAddr>>>,
}

impl AddrCell {
    pub fn new(addr: SocketAddr) -> AddrCell {
        AddrCell { inner: Arc::new(Mutex::new(Some(addr))) }
    }

    /// Publish a new server address; existing connections are unaffected,
    /// reconnects go to the new address.
    pub fn set(&self, addr: SocketAddr) {
        *self.inner.lock().expect("addr cell") = Some(addr);
    }

    pub fn get(&self) -> Option<SocketAddr> {
        *self.inner.lock().expect("addr cell")
    }
}

/// How a [`RetryClient`] paces its reconnect attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per operation before giving up.
    pub max_attempts: usize,
    /// First backoff pause; doubles per failed attempt.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
        }
    }
}

/// A reconnecting client: every operation retries across transport
/// failures with capped exponential backoff, reconnecting through an
/// [`AddrCell`] so it survives a server kill/restart on a new port.
///
/// Submits are **exactly-once**: each logical submit generates one
/// idempotency key (`<prefix>-<counter>`) before the first attempt and
/// resends it verbatim on every retry, so "the frame was truncated — did
/// the server admit my job?" resolves to the original id instead of a
/// duplicate.
pub struct RetryClient {
    addr: AddrCell,
    conn: Option<Client>,
    policy: RetryPolicy,
    key_prefix: String,
    next_key: u64,
}

impl RetryClient {
    /// `key_prefix` must be unique per logical client (e.g. `"c3"`), since
    /// idempotency keys are `<prefix>-<counter>` scoped per tenant.
    pub fn new(addr: AddrCell, key_prefix: &str) -> RetryClient {
        RetryClient {
            addr,
            conn: None,
            policy: RetryPolicy::default(),
            key_prefix: key_prefix.to_string(),
            next_key: 0,
        }
    }

    pub fn with_policy(mut self, policy: RetryPolicy) -> RetryClient {
        self.policy = policy;
        self
    }

    fn conn(&mut self) -> std::io::Result<&mut Client> {
        if self.conn.is_none() {
            let addr = self.addr.get().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotConnected, "no server address published")
            })?;
            self.conn = Some(Client::connect(addr)?);
            obs::global().counter("serve_client_reconnects_total").inc();
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Run `op` with reconnect-and-retry. Any `Err` drops the connection
    /// (its stream state is suspect after a fault) and retries after
    /// backoff, except `NotFound`, which is a real answer, not a fault.
    fn retry<T>(&mut self, op: impl Fn(&mut Client) -> std::io::Result<T>) -> std::io::Result<T> {
        let mut pause = self.policy.base_backoff;
        let mut last_err = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                obs::global().counter("serve_retries_total").inc();
                std::thread::sleep(pause);
                pause = (pause * 2).min(self.policy.max_backoff);
            }
            let outcome = self.conn().and_then(&op);
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(e),
                Err(e) => {
                    self.conn = None;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("retry budget exhausted")))
    }

    pub fn ping(&mut self) -> std::io::Result<()> {
        self.retry(|c| c.ping())
    }

    /// Exactly-once submit: one idempotency key per call, reused across
    /// every retry of that call.
    pub fn submit(
        &mut self,
        tenant: &str,
        spec: &JobSpec,
    ) -> std::io::Result<Result<u64, RejectReason>> {
        let key = format!("{}-{}", self.key_prefix, self.next_key);
        self.next_key += 1;
        let tenant = tenant.to_string();
        let spec = spec.clone();
        self.retry(move |c| c.submit_idem(&tenant, &spec, Some(&key)))
    }

    pub fn status(&mut self, job: u64) -> std::io::Result<JobStatusWire> {
        self.retry(move |c| c.status(job))
    }

    pub fn cancel(&mut self, job: u64) -> std::io::Result<JobStatusWire> {
        self.retry(move |c| c.cancel(job))
    }

    pub fn stats(&mut self) -> std::io::Result<StatsWire> {
        self.retry(|c| c.stats())
    }

    /// Poll (with reconnects) until the job is terminal; each poll gets the
    /// full retry budget, and the overall wait respects `timeout`.
    pub fn wait_done(&mut self, job: u64, timeout: Duration) -> std::io::Result<JobStatusWire> {
        let deadline = Instant::now() + timeout;
        let mut pause = Duration::from_millis(1);
        loop {
            let status = self.status(job)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("job {job} still {:?} after {timeout:?}", status.state),
                ));
            }
            std::thread::sleep(pause);
            pause = (pause * 2).min(Duration::from_millis(50));
        }
    }
}

/// One-shot HTTP `GET /metrics` against the same port; returns the
/// Prometheus text body.
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: serve\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("");
        return Err(std::io::Error::other(format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}

/// The retryable error a typed `busy` rejection maps to.
fn busy_error() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "server at connection capacity")
}

fn unexpected(wanted: &str, got: &Response) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("expected {wanted} reply, got {got:?}"),
    )
}
