//! A small blocking client for the frame protocol, plus a one-shot HTTP
//! scraper for the `/metrics` endpoint. Used by the integration tests, the
//! `serve_study` benchmark, and scripting.

use crate::wire::{
    self, JobSpec, JobStatusWire, RejectReason, Request, Response, StatsWire, WireState,
};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One framed connection to the server. Requests are synchronous: write a
/// frame, read the response frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, request: &Request) -> std::io::Result<Response> {
        wire::write_frame(&mut self.stream, &request.encode())?;
        let frame = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server hung up mid-request")
        })?;
        Response::parse(&frame).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Submit a job: `Ok(Ok(id))` if admitted, `Ok(Err(reason))` if the
    /// service rejected it, `Err` on transport failure.
    pub fn submit(
        &mut self,
        tenant: &str,
        spec: &JobSpec,
    ) -> std::io::Result<Result<u64, RejectReason>> {
        let request = Request::Submit { tenant: tenant.to_string(), spec: spec.clone() };
        match self.round_trip(&request)? {
            Response::Accepted { job } => Ok(Ok(job)),
            Response::Rejected { reason } => Ok(Err(reason)),
            other => Err(unexpected("accepted/rejected", &other)),
        }
    }

    /// Poll one job's status.
    pub fn status(&mut self, job: u64) -> std::io::Result<JobStatusWire> {
        match self.round_trip(&Request::Status { job })? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, message))
            }
            other => Err(unexpected("status", &other)),
        }
    }

    /// Service-wide counters.
    pub fn stats(&mut self) -> std::io::Result<StatsWire> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Poll until the job reaches `Done`/`Failed`, with capped exponential
    /// backoff. Times out with `ErrorKind::TimedOut`.
    pub fn wait_done(&mut self, job: u64, timeout: Duration) -> std::io::Result<JobStatusWire> {
        let deadline = Instant::now() + timeout;
        let mut pause = Duration::from_millis(1);
        loop {
            let status = self.status(job)?;
            if matches!(status.state, WireState::Done | WireState::Failed) {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("job {job} still {:?} after {timeout:?}", status.state),
                ));
            }
            std::thread::sleep(pause);
            pause = (pause * 2).min(Duration::from_millis(50));
        }
    }
}

/// One-shot HTTP `GET /metrics` against the same port; returns the
/// Prometheus text body.
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: serve\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("");
        return Err(std::io::Error::other(format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}

fn unexpected(wanted: &str, got: &Response) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("expected {wanted} reply, got {got:?}"),
    )
}
