//! `phylo-ml` — a command-line interface to the inference engine.
//!
//! ```text
//! phylo-ml simulate --taxa 24 --sites 1200 --seed 7 --out data.phy
//! phylo-ml infer    data.phy --preset standard --seed 1 --out best.nwk
//! phylo-ml analyze  data.phy --inferences 4 --bootstraps 100 --workers 8
//! phylo-ml score    data.phy best.nwk --alpha 0.6
//! ```
//!
//! Formats are auto-detected (`>` ⇒ FASTA, otherwise PHYLIP). All runs are
//! deterministic given `--seed`.

use phylo::bootstrap::BootstrapAnalysis;
use phylo::io::{parse_fasta, parse_newick, parse_phylip, write_phylip};
use phylo::likelihood::engine::LikelihoodEngine;
use phylo::likelihood::LikelihoodConfig;
use phylo::model::{GammaRates, SubstModel};
use phylo::search::{run_inference, InferenceOptions, InferenceRequest, SearchConfig};
use phylo::simulate::SimulationConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("score") => cmd_score(&args[1..]),
        Some("score-protein") => cmd_score_protein(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
phylo-ml — maximum-likelihood phylogenetic inference

USAGE:
  phylo-ml simulate --taxa N --sites N [--seed N] [--alpha F] [--mean-branch F] [--out FILE]
  phylo-ml infer   ALIGNMENT [--preset fast|standard|thorough] [--seed N]
                   [--radius N] [--rounds N] [--alpha F] [--no-alpha-opt]
                   [--parallel] [--out FILE]
  phylo-ml analyze ALIGNMENT [--inferences N] [--bootstraps N] [--workers N]
                   [--preset ...] [--seed N] [--consensus] [--out FILE]
  phylo-ml score   ALIGNMENT TREE.nwk [--alpha F]
  phylo-ml score-protein AA_FASTA TREE.nwk [--matrix PAML.dat] [--optimize-branches]

Alignments may be PHYLIP or FASTA (auto-detected). Output trees are Newick.
";

/// Minimal flag parser: positionals plus `--key value` / `--switch` pairs.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String], switches: &[&str]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    flags.push((name.to_string(), None));
                } else {
                    let value = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
                    flags.push((name.to_string(), Some(value.clone())));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }
}

fn load_alignment(path: &str) -> Result<phylo::alignment::Alignment, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let parsed =
        if text.trim_start().starts_with('>') { parse_fasta(&text) } else { parse_phylip(&text) };
    parsed.map_err(|e| format!("cannot parse {path:?}: {e}"))
}

fn write_out(path: Option<&str>, content: &str) -> Result<(), String> {
    match path {
        Some(p) => {
            std::fs::write(p, content).map_err(|e| format!("cannot write {p:?}: {e}"))?;
            eprintln!("wrote {p}");
            Ok(())
        }
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn search_config(a: &Args) -> Result<SearchConfig, String> {
    let mut cfg = match a.get("preset").unwrap_or("standard") {
        "fast" => SearchConfig::fast(),
        "standard" => SearchConfig::standard(),
        "thorough" => SearchConfig::thorough(),
        other => return Err(format!("unknown preset {other:?} (fast|standard|thorough)")),
    };
    cfg.spr_radius = a.get_parse("radius", cfg.spr_radius)?;
    cfg.max_spr_rounds = a.get_parse("rounds", cfg.max_spr_rounds)?;
    cfg.initial_alpha = a.get_parse("alpha", cfg.initial_alpha)?;
    if a.has("no-alpha-opt") {
        cfg.optimize_alpha = false;
    }
    if a.has("parallel") {
        cfg.likelihood.parallel = true;
    }
    Ok(cfg)
}

fn cmd_simulate(raw: &[String]) -> Result<(), String> {
    let a = Args::parse(raw, &[])?;
    let taxa: usize = a.get_parse("taxa", 16)?;
    let sites: usize = a.get_parse("sites", 1000)?;
    let seed: u64 = a.get_parse("seed", 42)?;
    let alpha: f64 = a.get_parse("alpha", 0.7)?;
    let mean_branch: f64 = a.get_parse("mean-branch", 0.08)?;
    if taxa < 3 {
        return Err("need at least 3 taxa".into());
    }
    let cfg = SimulationConfig { alpha, mean_branch, ..SimulationConfig::new(taxa, sites, seed) };
    let w = cfg.try_generate().map_err(|e| e.to_string())?;
    eprintln!(
        "simulated {taxa} taxa × {sites} sites ({} patterns) under GTR+Γ(α={alpha})",
        w.alignment.n_patterns()
    );
    eprintln!("true tree: {}", w.true_tree.to_newick(w.alignment.taxon_names()));
    write_out(a.get("out"), &write_phylip(&w.raw))
}

fn cmd_infer(raw: &[String]) -> Result<(), String> {
    let a = Args::parse(raw, &["no-alpha-opt", "parallel"])?;
    let path = a.positional.first().ok_or("infer needs an alignment file")?;
    let aln = load_alignment(path)?.compress();
    let cfg = search_config(&a)?;
    let seed: u64 = a.get_parse("seed", 1)?;

    eprintln!(
        "inferring: {} taxa × {} sites ({} patterns), preset {}",
        aln.n_taxa(),
        aln.n_sites(),
        aln.n_patterns(),
        a.get("preset").unwrap_or("standard")
    );
    let t0 = std::time::Instant::now();
    let request = InferenceRequest::new(cfg, seed);
    let result =
        run_inference(&aln, &request, InferenceOptions::new()).map_err(|e| e.to_string())?.result;
    eprintln!(
        "done in {:.2?}: lnL = {:.4}, alpha = {:.4}, {} SPR moves in {} rounds",
        t0.elapsed(),
        result.log_likelihood,
        result.alpha,
        result.moves_applied,
        result.rounds
    );
    write_out(a.get("out"), &result.tree.to_newick(aln.taxon_names()))
}

fn cmd_analyze(raw: &[String]) -> Result<(), String> {
    let a = Args::parse(raw, &["no-alpha-opt", "parallel", "consensus"])?;
    let path = a.positional.first().ok_or("analyze needs an alignment file")?;
    let aln = load_alignment(path)?.compress();
    let analysis = BootstrapAnalysis {
        n_inferences: a.get_parse("inferences", 4)?,
        n_bootstraps: a.get_parse("bootstraps", 100)?,
        n_workers: a.get_parse("workers", 4)?,
        seed: a.get_parse("seed", 42)?,
        search: search_config(&a)?,
    };
    if analysis.n_inferences == 0 {
        return Err("need at least one inference".into());
    }
    eprintln!(
        "analysis: {} inferences + {} bootstraps on {} workers…",
        analysis.n_inferences, analysis.n_bootstraps, analysis.n_workers
    );
    let t0 = std::time::Instant::now();
    let result = analysis.try_run(&aln).map_err(|e| e.to_string())?;
    eprintln!("done in {:.2?}: best lnL = {:.4}", t0.elapsed(), result.best_log_likelihood);
    let names = aln.taxon_names().to_vec();
    if a.has("consensus") {
        // Emit the majority-rule consensus of the replicates instead of the
        // support-annotated best tree.
        write_out(a.get("out"), &result.consensus(0.5).to_newick(&names))
    } else {
        write_out(a.get("out"), &result.best.to_newick_with_support(&names))
    }
}

fn cmd_score_protein(raw: &[String]) -> Result<(), String> {
    use phylo::protein::{
        optimize_branch_lengths, protein_log_likelihood, MultiStateModel, ProteinAlignment,
    };
    let a = Args::parse(raw, &["optimize-branches"])?;
    let aln_path = a.positional.first().ok_or("score-protein needs an AA FASTA file")?;
    let tree_path = a.positional.get(1).ok_or("score-protein needs a Newick tree file")?;

    // Parse AA FASTA by hand (the DNA parser rejects amino-acid letters).
    let text =
        std::fs::read_to_string(aln_path).map_err(|e| format!("cannot read {aln_path:?}: {e}"))?;
    let mut pairs: Vec<(String, String)> = Vec::new();
    for block in text.split('>').filter(|b| !b.trim().is_empty()) {
        let mut lines = block.lines();
        let name = lines
            .next()
            .and_then(|h| h.split_whitespace().next())
            .ok_or("malformed FASTA header")?
            .to_string();
        let seq: String = lines.collect::<Vec<_>>().join("");
        pairs.push((name, seq));
    }
    let aln = ProteinAlignment::from_named_sequences(&pairs).map_err(|e| e.to_string())?;

    let model = match a.get("matrix") {
        Some(path) => {
            let m =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            MultiStateModel::from_paml(&m, None).map_err(|e| e.to_string())?
        }
        None => {
            MultiStateModel::poisson(&aln.empirical_frequencies()).map_err(|e| e.to_string())?
        }
    };

    let tree_text = std::fs::read_to_string(tree_path)
        .map_err(|e| format!("cannot read {tree_path:?}: {e}"))?;
    let mut tree = parse_newick(&tree_text, aln.taxon_names()).map_err(|e| e.to_string())?;

    if a.has("optimize-branches") {
        let lnl = optimize_branch_lengths(&mut tree, &aln, &model, 2);
        println!("lnL = {lnl:.6} (branch lengths optimized)");
        println!("{}", tree.to_newick(aln.taxon_names()));
    } else {
        println!("lnL = {:.6}", protein_log_likelihood(&tree, &aln, &model));
    }
    Ok(())
}

fn cmd_score(raw: &[String]) -> Result<(), String> {
    let a = Args::parse(raw, &[])?;
    let aln_path = a.positional.first().ok_or("score needs an alignment file")?;
    let tree_path = a.positional.get(1).ok_or("score needs a Newick tree file")?;
    let aln = load_alignment(aln_path)?.compress();
    let tree_text = std::fs::read_to_string(tree_path)
        .map_err(|e| format!("cannot read {tree_path:?}: {e}"))?;
    let tree = parse_newick(&tree_text, aln.taxon_names()).map_err(|e| e.to_string())?;
    let alpha: f64 = a.get_parse("alpha", 0.7)?;

    let model = SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).map_err(|e| e.to_string())?;
    let rates = GammaRates::standard(alpha).map_err(|e| e.to_string())?;
    let mut engine = LikelihoodEngine::new(&aln, model, rates, LikelihoodConfig::optimized());
    println!("lnL = {:.6}", engine.log_likelihood(&tree));
    Ok(())
}
