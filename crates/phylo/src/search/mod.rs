//! Maximum-likelihood tree search: randomized stepwise-addition parsimony
//! starting trees, SPR hill climbing, and model parameter optimization —
//! the full RAxML-style inference pipeline (paper §3).

pub mod nni;
pub mod parsimony;
pub mod spr;

pub use nni::{nni_round, NniRoundStats};
pub use parsimony::{parsimony_score, stepwise_addition_tree};
pub use spr::{spr_round, SprRoundStats};

use crate::alignment::PatternAlignment;
use crate::checkpoint::{SearchCheckpoint, SearchCheckpointer};
use crate::error::Result;
use crate::likelihood::engine::LikelihoodEngine;
use crate::likelihood::{LikelihoodConfig, LikelihoodWorkspace, WorkspaceOptions};
use crate::math::brent_minimize;
use crate::model::{GammaRates, SubstModel};
use crate::trace::Trace;
use crate::tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bounds for Γ-shape optimization.
const ALPHA_MIN: f64 = 0.02;
const ALPHA_MAX: f64 = 20.0;
/// Bounds for GTR exchangeability optimization.
const RATE_MIN: f64 = 0.02;
const RATE_MAX: f64 = 50.0;

/// Configuration of a full ML inference.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Kernel/exp/scaling/parallelism switches for the likelihood engine.
    pub likelihood: LikelihoodConfig,
    /// Number of discrete Γ rate categories (RAxML default: 4).
    pub n_rate_categories: usize,
    /// Initial Γ shape.
    pub initial_alpha: f64,
    /// Optimize the Γ shape with Brent's method.
    pub optimize_alpha: bool,
    /// Optimize the five free GTR exchangeabilities.
    pub optimize_exchangeabilities: bool,
    /// SPR rearrangement radius (RAxML's rearrangement setting).
    pub spr_radius: usize,
    /// Maximum SPR improvement rounds.
    pub max_spr_rounds: usize,
    /// Branch-length smoothing passes in the final optimization.
    pub branch_smoothings: usize,
    /// Minimum log-likelihood improvement to accept an SPR move.
    pub epsilon: f64,
    /// Explicit substitution model; `None` uses GTR with empirical base
    /// frequencies and unit exchangeabilities.
    pub model: Option<SubstModel>,
    /// Initial branch length for starting trees.
    pub initial_branch_length: f64,
    /// Workspace arena / traversal-dispatch options for the engine.
    pub workspace: WorkspaceOptions,
}

impl SearchConfig {
    /// Fast settings for tests and demos: small radius, few rounds.
    pub fn fast() -> SearchConfig {
        SearchConfig {
            likelihood: LikelihoodConfig::optimized(),
            n_rate_categories: 4,
            initial_alpha: 0.7,
            optimize_alpha: true,
            optimize_exchangeabilities: false,
            spr_radius: 4,
            max_spr_rounds: 3,
            branch_smoothings: 2,
            epsilon: 1e-3,
            model: None,
            initial_branch_length: 0.1,
            workspace: WorkspaceOptions::default(),
        }
    }

    /// Standard analysis settings (the defaults a user would run).
    pub fn standard() -> SearchConfig {
        SearchConfig {
            spr_radius: 8,
            max_spr_rounds: 10,
            branch_smoothings: 4,
            optimize_exchangeabilities: true,
            ..SearchConfig::fast()
        }
    }

    /// Thorough settings for final published analyses.
    pub fn thorough() -> SearchConfig {
        SearchConfig {
            spr_radius: 15,
            max_spr_rounds: 25,
            branch_smoothings: 8,
            epsilon: 1e-4,
            ..SearchConfig::standard()
        }
    }

    /// Start building a configuration from the [`SearchConfig::standard`]
    /// preset: `SearchConfig::builder().spr_radius(10).build()`.
    pub fn builder() -> SearchConfigBuilder {
        SearchConfig::standard().to_builder()
    }

    /// Turn any configuration (e.g. a preset) into a builder for further
    /// adjustment: `SearchConfig::fast().to_builder().epsilon(1e-4).build()`.
    pub fn to_builder(self) -> SearchConfigBuilder {
        SearchConfigBuilder { config: self }
    }
}

/// Builder for [`SearchConfig`] — the supported way to deviate from the
/// presets without poking fields one by one.
#[derive(Debug, Clone)]
pub struct SearchConfigBuilder {
    config: SearchConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, value: $ty) -> SearchConfigBuilder {
                self.config.$field = value;
                self
            }
        )+
    };
}

impl SearchConfigBuilder {
    builder_setters! {
        /// Kernel/exp/scaling/parallelism switches for the likelihood engine.
        likelihood: LikelihoodConfig,
        /// Number of discrete Γ rate categories.
        n_rate_categories: usize,
        /// Initial Γ shape.
        initial_alpha: f64,
        /// Optimize the Γ shape with Brent's method.
        optimize_alpha: bool,
        /// Optimize the five free GTR exchangeabilities.
        optimize_exchangeabilities: bool,
        /// SPR rearrangement radius.
        spr_radius: usize,
        /// Maximum SPR improvement rounds.
        max_spr_rounds: usize,
        /// Branch-length smoothing passes in the final optimization.
        branch_smoothings: usize,
        /// Minimum log-likelihood improvement to accept an SPR move.
        epsilon: f64,
        /// Initial branch length for starting trees.
        initial_branch_length: f64,
        /// Workspace arena / traversal-dispatch options for the engine.
        workspace: WorkspaceOptions,
    }

    /// Use an explicit substitution model instead of empirical GTR.
    pub fn model(mut self, model: SubstModel) -> SearchConfigBuilder {
        self.config.model = Some(model);
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> SearchConfig {
        self.config
    }
}

/// Result of one ML inference.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best tree found.
    pub tree: Tree,
    /// Its log-likelihood.
    pub log_likelihood: f64,
    /// Parsimony score of the starting tree.
    pub starting_parsimony: f64,
    /// Optimized Γ shape.
    pub alpha: f64,
    /// The substitution model after optimization.
    pub model: SubstModel,
    /// SPR rounds actually run.
    pub rounds: usize,
    /// Total SPR moves applied.
    pub moves_applied: usize,
    /// Kernel trace of the whole inference.
    pub trace: Trace,
}

/// What to infer: the search configuration plus the seed controlling the
/// randomized stepwise-addition order. Distinct seeds reproduce the paper's
/// "multiple inferences on distinct starting trees". This is the one job
/// description shared by the library entry point ([`run_inference`]), the
/// inference farm, and the `serve` job-submission service.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Full search settings (preset or builder-derived).
    pub config: SearchConfig,
    /// Seed for the randomized addition order.
    pub seed: u64,
}

impl InferenceRequest {
    /// A request running `config` with `seed`.
    pub fn new(config: SearchConfig, seed: u64) -> InferenceRequest {
        InferenceRequest { config, seed }
    }

    /// Fingerprint tying a [`SearchCheckpointer`] file to this exact request
    /// on this exact alignment (see [`crate::checkpoint::search_fingerprint`]).
    pub fn fingerprint(&self, aln: &PatternAlignment) -> u64 {
        crate::checkpoint::search_fingerprint(aln, &self.config, self.seed)
    }
}

/// How to execute one inference: the orthogonal execution concerns that the
/// historical `infer_ml_tree{,_traced,_pooled,_checked,_checkpointed}`
/// family hard-wired into separate entry points. All options compose; every
/// combination produces bit-identical trees, log-likelihoods, and Γ shapes
/// (only the kernel [`Trace`] differs across trace/checkpoint settings).
#[derive(Default)]
pub struct InferenceOptions<'a> {
    /// Record the full kernel event trace (needed by the Cell simulator
    /// replay); counters are collected either way.
    pub record_events: bool,
    /// Run the engine on a caller-supplied (typically pooled) workspace
    /// arena instead of a fresh one; it is handed back in the
    /// [`InferenceOutcome`] so steady-state replicates allocate no buffers.
    pub workspace: Option<LikelihoodWorkspace>,
    /// Persist a snapshot after every SPR round and resume from one when
    /// the checkpointer already holds a snapshot of *this* request
    /// (fingerprint-enforced); the resumed run finishes bit-identically.
    pub checkpoint: Option<&'a mut SearchCheckpointer>,
}

impl<'a> InferenceOptions<'a> {
    /// The defaults: no event trace, fresh workspace, no checkpoint.
    pub fn new() -> InferenceOptions<'a> {
        InferenceOptions::default()
    }

    /// Record the full kernel event trace.
    pub fn traced(mut self) -> InferenceOptions<'a> {
        self.record_events = true;
        self
    }

    /// Reuse `workspace` instead of allocating a fresh arena.
    pub fn with_workspace(mut self, workspace: LikelihoodWorkspace) -> InferenceOptions<'a> {
        self.workspace = Some(workspace);
        self
    }

    /// Snapshot to (and resume from) `ckpt`.
    pub fn with_checkpoint(mut self, ckpt: &'a mut SearchCheckpointer) -> InferenceOptions<'a> {
        self.checkpoint = Some(ckpt);
        self
    }
}

/// Result of [`run_inference`]: the search result plus the workspace arena
/// the engine ran on, handed back for reuse by the next job.
#[derive(Debug)]
pub struct InferenceOutcome {
    /// The inference result proper.
    pub result: SearchResult,
    /// The engine's workspace arena (the caller-supplied one if
    /// [`InferenceOptions::workspace`] was set, else the fresh one).
    pub workspace: LikelihoodWorkspace,
}

/// Run one full ML inference: stepwise-addition start, branch and model
/// optimization, SPR hill climbing — the unified entry point behind the
/// deprecated `infer_ml_tree_*` family. Fails with
/// [`crate::error::PhyloError::Numerical`] when the likelihood goes
/// non-finite beyond what forced conservative re-evaluation can repair,
/// [`crate::error::PhyloError::Interrupted`] when a checkpoint abort policy
/// fires, and [`crate::error::PhyloError::Checkpoint`] when resuming against
/// a foreign snapshot.
pub fn run_inference(
    aln: &PatternAlignment,
    request: &InferenceRequest,
    options: InferenceOptions<'_>,
) -> Result<InferenceOutcome> {
    let InferenceOptions { record_events, workspace, checkpoint } = options;
    let workspace = workspace.unwrap_or_default();
    run_search(aln, &request.config, request.seed, record_events, workspace, checkpoint)
        .map(|(result, workspace)| InferenceOutcome { result, workspace })
}

/// Run one full ML inference with the default options.
#[deprecated(since = "0.2.0", note = "use `run_inference(aln, &InferenceRequest, options)`")]
pub fn infer_ml_tree(aln: &PatternAlignment, config: &SearchConfig, seed: u64) -> SearchResult {
    run_inference(aln, &InferenceRequest::new(config.clone(), seed), InferenceOptions::new())
        .expect("un-checkpointed search on finite data cannot fail; use run_inference")
        .result
}

/// As [`infer_ml_tree`], optionally recording the full kernel event trace.
#[deprecated(since = "0.2.0", note = "use `run_inference` with `InferenceOptions::traced()`")]
pub fn infer_ml_tree_traced(
    aln: &PatternAlignment,
    config: &SearchConfig,
    seed: u64,
    record_events: bool,
) -> SearchResult {
    let options = InferenceOptions { record_events, ..InferenceOptions::new() };
    run_inference(aln, &InferenceRequest::new(config.clone(), seed), options)
        .expect("un-checkpointed search on finite data cannot fail; use run_inference")
        .result
}

/// As [`infer_ml_tree_traced`], running the engine on a caller-supplied
/// (typically pooled) workspace arena and handing the arena back.
#[deprecated(since = "0.2.0", note = "use `run_inference` with `InferenceOptions::with_workspace`")]
pub fn infer_ml_tree_pooled(
    aln: &PatternAlignment,
    config: &SearchConfig,
    seed: u64,
    record_events: bool,
    workspace: LikelihoodWorkspace,
) -> (SearchResult, LikelihoodWorkspace) {
    let options = InferenceOptions { record_events, workspace: Some(workspace), checkpoint: None };
    let outcome = run_inference(aln, &InferenceRequest::new(config.clone(), seed), options)
        .expect("un-checkpointed search on finite data cannot fail; use run_inference");
    (outcome.result, outcome.workspace)
}

/// As [`infer_ml_tree`], but returning `Err` instead of panicking on a
/// numerical failure.
#[deprecated(since = "0.2.0", note = "use `run_inference`, which is fallible by construction")]
pub fn infer_ml_tree_checked(
    aln: &PatternAlignment,
    config: &SearchConfig,
    seed: u64,
) -> Result<SearchResult> {
    run_inference(aln, &InferenceRequest::new(config.clone(), seed), InferenceOptions::new())
        .map(|o| o.result)
}

/// As [`infer_ml_tree`], persisting a snapshot to `ckpt` after every SPR
/// round and resuming bit-identically from an existing snapshot.
#[deprecated(
    since = "0.2.0",
    note = "use `run_inference` with `InferenceOptions::with_checkpoint`"
)]
pub fn infer_ml_tree_checkpointed(
    aln: &PatternAlignment,
    config: &SearchConfig,
    seed: u64,
    ckpt: &mut SearchCheckpointer,
) -> Result<SearchResult> {
    let request = InferenceRequest::new(config.clone(), seed);
    run_inference(aln, &request, InferenceOptions::new().with_checkpoint(ckpt)).map(|o| o.result)
}

fn run_search(
    aln: &PatternAlignment,
    config: &SearchConfig,
    seed: u64,
    record_events: bool,
    workspace: LikelihoodWorkspace,
    mut ckpt: Option<&mut SearchCheckpointer>,
) -> Result<(SearchResult, LikelihoodWorkspace)> {
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. Starting tree: randomized stepwise-addition parsimony. Re-run even
    //    when resuming — it is a pure function of the seed, and recomputing
    //    it keeps the checkpoint format down to the genuinely mutable state.
    let mut tree = stepwise_addition_tree(aln, config.initial_branch_length, &mut rng)
        .expect("alignment has >= 3 taxa");
    let starting_parsimony = parsimony_score(&tree, aln);

    // 2. Engine.
    let model = config.model.clone().unwrap_or_else(|| {
        SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).expect("empirical GTR is valid")
    });
    let rates = GammaRates::new(config.initial_alpha, config.n_rate_categories)
        .expect("configured rate model is valid");
    let mut engine = LikelihoodEngine::with_workspace(
        aln,
        model,
        rates,
        config.likelihood,
        config.workspace,
        workspace,
    );
    if record_events {
        engine.enable_event_recording();
    }

    // Resume: overwrite the freshly built state with the snapshot. The
    // exact-slot tree string preserves arena layout, so the resumed SPR
    // scan enumerates candidates in the identical order.
    let mut rounds = 0;
    let mut moves_applied = 0;
    let mut converged = false;
    let mut resumed = false;
    if let Some(ck) = ckpt.as_deref_mut() {
        if let Some(snap) = ck.load()? {
            tree = Tree::from_exact_string(&snap.tree_exact)?;
            engine.set_alpha(f64::from_bits(snap.alpha_bits))?;
            rounds = snap.rounds_done;
            moves_applied = snap.moves_applied;
            converged = snap.last_applied == 0;
            resumed = true;
        }
    }

    // 3. Initial branch lengths + model (already folded into the snapshot
    //    when resuming).
    if !resumed {
        engine.optimize_all_branches(&mut tree, 2);
        if config.optimize_alpha {
            optimize_alpha(&mut engine, &tree);
            engine.optimize_all_branches(&mut tree, 1);
        }
    }

    // 4. SPR hill climbing. `round` stays the absolute round index so the
    //    alternating alpha re-optimization keeps its parity across a resume.
    if !converged {
        let first_round = rounds;
        for round in first_round..config.max_spr_rounds {
            // Mark the round in the kernel trace: everything from the SPR
            // sweep through the post-round branch/alpha polish belongs to it
            // (the observability layer slices per-round workloads this way).
            engine.begin_spr_round(round as u32);
            let stats = spr_round(&mut engine, &mut tree, config.spr_radius, config.epsilon);
            rounds = round + 1;
            moves_applied += stats.applied;
            engine.optimize_all_branches(&mut tree, 1);
            if config.optimize_alpha && round % 2 == 1 {
                optimize_alpha(&mut engine, &tree);
            }
            engine.end_spr_round();
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.save(&SearchCheckpoint {
                    rounds_done: rounds,
                    moves_applied,
                    last_applied: stats.applied,
                    alpha_bits: engine.rates().alpha().to_bits(),
                    tree_exact: tree.to_exact_string(),
                })?;
            }
            if stats.applied == 0 {
                break;
            }
        }
    }

    // 5. Final model + branch polish.
    if config.optimize_exchangeabilities {
        optimize_exchangeabilities(&mut engine, &tree);
        engine.optimize_all_branches(&mut tree, 1);
    }
    if config.optimize_alpha {
        optimize_alpha(&mut engine, &tree);
    }
    // The final smoothing pass determines the reported likelihood: it is the
    // log-likelihood of the returned tree under the returned model.
    let mut lnl = engine.optimize_all_branches(&mut tree, config.branch_smoothings);
    if !lnl.is_finite() {
        // Numerical guard: one forced conservative re-evaluation; a value
        // that is still non-finite escalates to a typed error.
        lnl = engine.try_log_likelihood(&tree)?;
    }

    let alpha = engine.rates().alpha();
    let model = engine.model().clone();
    let trace = engine.take_trace();
    let workspace = engine.into_workspace();
    Ok((
        SearchResult {
            tree,
            log_likelihood: lnl,
            starting_parsimony,
            alpha,
            model,
            rounds,
            moves_applied,
            trace,
        },
        workspace,
    ))
}

/// Optimize the Γ shape parameter with Brent's method; leaves the engine at
/// the optimum and returns the log-likelihood there.
pub fn optimize_alpha(engine: &mut LikelihoodEngine<'_>, tree: &Tree) -> f64 {
    let (best_alpha, neg_lnl) = brent_minimize(
        |a| {
            engine.set_alpha(a).expect("alpha within bounds");
            -engine.log_likelihood(tree)
        },
        ALPHA_MIN,
        ALPHA_MAX,
        1e-3,
        50,
    );
    engine.set_alpha(best_alpha).expect("optimum within bounds");
    -neg_lnl
}

/// One round of coordinate-wise Brent optimization over the five free GTR
/// exchangeabilities (GT stays fixed at 1 as the reference rate).
pub fn optimize_exchangeabilities(engine: &mut LikelihoodEngine<'_>, tree: &Tree) -> f64 {
    let mut lnl = engine.log_likelihood(tree);
    for idx in 0..5 {
        let current = engine.model().exchange()[idx];
        let (best, neg_lnl) = brent_minimize(
            |r| {
                let mut m = engine.model().clone();
                m.set_exchange(idx, r).expect("rate within bounds");
                engine.set_model(m);
                -engine.log_likelihood(tree)
            },
            RATE_MIN,
            RATE_MAX,
            1e-3,
            40,
        );
        // Keep the optimum only if it genuinely improves (Brent may return
        // a boundary point on flat surfaces).
        if -neg_lnl >= lnl {
            let mut m = engine.model().clone();
            m.set_exchange(idx, best).expect("rate within bounds");
            engine.set_model(m);
            lnl = -neg_lnl;
        } else {
            let mut m = engine.model().clone();
            m.set_exchange(idx, current).expect("restoring previous rate");
            engine.set_model(m);
        }
    }
    lnl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartitions::robinson_foulds;
    use crate::simulate::SimulationConfig;

    /// The common case, spelled with the unified entry point.
    fn infer(aln: &PatternAlignment, cfg: &SearchConfig, seed: u64) -> SearchResult {
        run_inference(aln, &InferenceRequest::new(cfg.clone(), seed), InferenceOptions::new())
            .unwrap()
            .result
    }

    #[test]
    fn inference_recovers_true_topology_on_clean_data() {
        let w =
            SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(8, 1200, 42) }.generate();
        let result = infer(&w.alignment, &SearchConfig::fast(), 1);
        assert_eq!(
            robinson_foulds(&result.tree, &w.true_tree),
            0,
            "ML search should recover the generating topology"
        );
        assert!(result.log_likelihood.is_finite());
        result.tree.validate().unwrap();
    }

    #[test]
    fn inference_is_deterministic_given_seed() {
        let w = SimulationConfig::new(7, 300, 11).generate();
        let a = infer(&w.alignment, &SearchConfig::fast(), 5);
        let b = infer(&w.alignment, &SearchConfig::fast(), 5);
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.log_likelihood, b.log_likelihood);
    }

    #[test]
    fn distinct_seeds_explore_distinct_starting_trees() {
        let w = SimulationConfig::new(10, 150, 23).generate();
        let a = infer(&w.alignment, &SearchConfig::fast(), 1);
        let b = infer(&w.alignment, &SearchConfig::fast(), 2);
        // Final trees may coincide; starting parsimony scores usually
        // differ, and likelihoods must both be sane.
        assert!(a.log_likelihood < 0.0 && b.log_likelihood < 0.0);
        let _ = (a.starting_parsimony, b.starting_parsimony);
    }

    #[test]
    fn alpha_optimization_improves_likelihood() {
        let w = SimulationConfig {
            alpha: 0.3, // strong rate heterogeneity in the data
            ..SimulationConfig::new(8, 600, 77)
        }
        .generate();
        let mut no_alpha_cfg = SearchConfig::fast();
        no_alpha_cfg.optimize_alpha = false;
        no_alpha_cfg.initial_alpha = 5.0; // deliberately wrong
        let mut alpha_cfg = no_alpha_cfg.clone();
        alpha_cfg.optimize_alpha = true;
        let without = infer(&w.alignment, &no_alpha_cfg, 3);
        let with = infer(&w.alignment, &alpha_cfg, 3);
        assert!(
            with.log_likelihood > without.log_likelihood,
            "alpha optimization must help on heterogeneous data: {} vs {}",
            with.log_likelihood,
            without.log_likelihood
        );
        assert!(with.alpha < 2.0, "fitted alpha should move toward the truth, got {}", with.alpha);
    }

    #[test]
    fn search_likelihood_beats_starting_tree() {
        let w = SimulationConfig::new(9, 400, 55).generate();
        let cfg = SearchConfig::fast();
        let result = infer(&w.alignment, &cfg, 9);
        // Compare against the unoptimized starting tree's likelihood.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let start = stepwise_addition_tree(&w.alignment, 0.1, &mut rng).unwrap();
        let model = SubstModel::gtr(w.alignment.base_frequencies(), [1.0; 6]).unwrap();
        let mut eng = LikelihoodEngine::new(
            &w.alignment,
            model,
            GammaRates::standard(cfg.initial_alpha).unwrap(),
            cfg.likelihood,
        );
        let start_lnl = eng.log_likelihood(&start);
        assert!(result.log_likelihood > start_lnl);
    }

    #[test]
    fn builder_overrides_presets() {
        let cfg = SearchConfig::builder()
            .spr_radius(11)
            .epsilon(1e-5)
            .optimize_exchangeabilities(false)
            .workspace(WorkspaceOptions::per_node())
            .build();
        assert_eq!(cfg.spr_radius, 11);
        assert_eq!(cfg.epsilon, 1e-5);
        assert!(!cfg.optimize_exchangeabilities);
        assert!(!cfg.workspace.fused_dispatch);
        // Untouched fields keep the standard preset's values.
        let std_cfg = SearchConfig::standard();
        assert_eq!(cfg.max_spr_rounds, std_cfg.max_spr_rounds);
        assert_eq!(cfg.n_rate_categories, std_cfg.n_rate_categories);

        let from_fast = SearchConfig::fast().to_builder().max_spr_rounds(1).build();
        assert_eq!(from_fast.spr_radius, SearchConfig::fast().spr_radius);
        assert_eq!(from_fast.max_spr_rounds, 1);
    }

    /// A recycled workspace arena must not change any inference output.
    #[test]
    fn pooled_inference_is_bit_identical_to_fresh() {
        let w = SimulationConfig::new(7, 300, 11).generate();
        let cfg = SearchConfig::fast();
        let fresh = infer(&w.alignment, &cfg, 5);
        // Warm a workspace on a different seed, then reuse it.
        let warm = run_inference(
            &w.alignment,
            &InferenceRequest::new(cfg.clone(), 6),
            InferenceOptions::new(),
        )
        .unwrap()
        .workspace;
        let pooled = run_inference(
            &w.alignment,
            &InferenceRequest::new(cfg.clone(), 5),
            InferenceOptions::new().with_workspace(warm),
        )
        .unwrap()
        .result;
        assert_eq!(fresh.tree, pooled.tree);
        assert_eq!(fresh.log_likelihood, pooled.log_likelihood);
        assert_eq!(fresh.alpha, pooled.alpha);
    }

    /// Fused descriptor-list dispatch and per-node dispatch drive the whole
    /// search to identical results.
    #[test]
    fn search_agrees_across_dispatch_modes() {
        let w = SimulationConfig::new(6, 200, 21).generate();
        let fused = infer(&w.alignment, &SearchConfig::fast(), 2);
        let per_node_cfg =
            SearchConfig::fast().to_builder().workspace(WorkspaceOptions::per_node()).build();
        let per_node = infer(&w.alignment, &per_node_cfg, 2);
        assert_eq!(fused.tree, per_node.tree);
        assert_eq!(fused.log_likelihood, per_node.log_likelihood);
        assert!(fused.trace.counters().fused_batches > 0);
        assert_eq!(per_node.trace.counters().fused_batches, 0);
    }

    /// Event recording is pure observation: it must not perturb any result.
    #[test]
    fn traced_search_matches_untraced_bit_for_bit() {
        let w = SimulationConfig::new(7, 300, 11).generate();
        let cfg = SearchConfig::fast();
        let plain = infer(&w.alignment, &cfg, 5);
        let traced = run_inference(
            &w.alignment,
            &InferenceRequest::new(cfg.clone(), 5),
            InferenceOptions::new().traced(),
        )
        .unwrap()
        .result;
        assert_eq!(plain.tree, traced.tree);
        assert_eq!(plain.log_likelihood.to_bits(), traced.log_likelihood.to_bits());
        assert_eq!(plain.alpha.to_bits(), traced.alpha.to_bits());
    }

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("raxml-cell-search-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Kill the search after its first SPR round, resume from the on-disk
    /// snapshot, and demand the resumed run lands on the exact same tree,
    /// log-likelihood, and Γ shape as the uninterrupted run.
    #[test]
    fn killed_search_resumes_bit_identically() {
        use crate::checkpoint::{search_fingerprint, SearchCheckpointer};

        let w = SimulationConfig::new(10, 150, 23).generate();
        let cfg = SearchConfig::fast();
        // Pick a starting tree bad enough that the climb needs several
        // rounds — otherwise the kill after round 1 has nothing to skip.
        let (seed, uninterrupted) = (0..32)
            .map(|s| (s, infer(&w.alignment, &cfg, s)))
            .find(|(_, r)| r.rounds >= 2 && r.moves_applied > 0)
            .expect("some stepwise tree needs a multi-round SPR climb");

        let path = ckpt_path("kill-resume.ckpt");
        let fp = search_fingerprint(&w.alignment, &cfg, seed);

        // First attempt dies right after the round-1 snapshot lands.
        let mut dying = SearchCheckpointer::new(&path, fp).abort_after_saves(1);
        let request = InferenceRequest::new(cfg.clone(), seed);
        let err = run_inference(
            &w.alignment,
            &request,
            InferenceOptions::new().with_checkpoint(&mut dying),
        )
        .unwrap_err();
        assert_eq!(err, crate::error::PhyloError::Interrupted { completed: 1 });

        // Second attempt resumes from the snapshot and runs to completion.
        let mut ckpt = SearchCheckpointer::new(&path, fp);
        let resumed = run_inference(
            &w.alignment,
            &request,
            InferenceOptions::new().with_checkpoint(&mut ckpt),
        )
        .unwrap()
        .result;

        assert_eq!(resumed.tree.to_exact_string(), uninterrupted.tree.to_exact_string());
        assert_eq!(resumed.log_likelihood.to_bits(), uninterrupted.log_likelihood.to_bits());
        assert_eq!(resumed.alpha.to_bits(), uninterrupted.alpha.to_bits());
        assert_eq!(resumed.rounds, uninterrupted.rounds);
        assert_eq!(resumed.moves_applied, uninterrupted.moves_applied);
        assert_eq!(resumed.starting_parsimony, uninterrupted.starting_parsimony);
    }

    /// A checkpoint written for one analysis must refuse to resume another.
    #[test]
    fn checkpoint_refuses_a_different_seed() {
        use crate::checkpoint::SearchCheckpointer;

        let w = SimulationConfig::new(7, 200, 13).generate();
        let cfg = SearchConfig::fast();
        let path = ckpt_path("wrong-seed.ckpt");

        let one = InferenceRequest::new(cfg.clone(), 1);
        let mut first = SearchCheckpointer::new(&path, one.fingerprint(&w.alignment));
        run_inference(&w.alignment, &one, InferenceOptions::new().with_checkpoint(&mut first))
            .unwrap();

        // Same file, different seed ⇒ different fingerprint ⇒ typed refusal.
        let two = InferenceRequest::new(cfg.clone(), 2);
        let mut other = SearchCheckpointer::new(&path, two.fingerprint(&w.alignment));
        let err =
            run_inference(&w.alignment, &two, InferenceOptions::new().with_checkpoint(&mut other))
                .unwrap_err();
        assert!(matches!(err, crate::error::PhyloError::Checkpoint { .. }), "{err}");
    }

    #[test]
    fn trace_is_collected() {
        let w = SimulationConfig::new(6, 120, 3).generate();
        let result = run_inference(
            &w.alignment,
            &InferenceRequest::new(SearchConfig::fast(), 1),
            InferenceOptions::new().traced(),
        )
        .unwrap()
        .result;
        let c = result.trace.counters();
        assert!(c.newview_calls > 100, "a search makes many newview calls: {c:?}");
        assert!(c.makenewz_calls > 10);
        assert!(c.evaluate_calls > 10);
        assert!(!result.trace.events().is_empty());
    }
}
