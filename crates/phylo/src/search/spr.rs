//! Lazy SPR (subtree pruning and regrafting) hill climbing — the core of
//! RAxML's rapid hill climbing search (paper §3): subtrees are pruned and
//! re-inserted at all branches within a rearrangement radius; improving
//! moves are applied immediately.
//!
//! "Lazy" is doing real work here, exactly as in RAxML: partial-likelihood
//! vectors are kept valid across candidate insertions through careful
//! orientation bookkeeping, so scoring one candidate costs roughly **one**
//! `newview` (the virtual junction) plus **one** short `makenewz` (a couple
//! of Newton steps on the insertion branch) — not a full tree traversal.
//! This is what gives RAxML its ~2–3 `newview` calls per `makenewz` trace
//! profile that the Cell port's communication analysis (§5.2.6) relies on.

use crate::likelihood::engine::LikelihoodEngine;
use crate::tree::{edge, Edge, NodeId, Tree};

/// Outcome of one SPR improvement round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprRoundStats {
    /// Moves applied this round.
    pub applied: usize,
    /// Candidate regrafts evaluated.
    pub evaluated: usize,
    /// Log-likelihood after the round.
    pub log_likelihood: f64,
}

/// Split the edge `(x, y)` with junction `v` (regraft bookkeeping): partials
/// whose subtree contains the edge become stale; `x`/`y` partials pointing
/// at each other become partials pointing at `v`.
fn note_split(engine: &mut LikelihoodEngine<'_>, tree: &Tree, x: NodeId, y: NodeId, v: NodeId) {
    // Must run while (x, y) is still an edge.
    engine.invalidate_for_branch(tree, x, y);
    engine.remap_orientation(x, y, v);
    engine.remap_orientation(y, x, v);
    engine.clear_orientation(v);
}

/// Merge `(x, v, y)` back into the edge `(x, y)` (prune bookkeeping): the
/// junction's partial dies; `x`/`y` partials pointing at `v` now point at
/// each other. Anything that contained the region was already stale.
fn note_merge(engine: &mut LikelihoodEngine<'_>, x: NodeId, y: NodeId, v: NodeId) {
    engine.clear_orientation(v);
    engine.remap_orientation(x, v, y);
    engine.remap_orientation(y, v, x);
}

/// One full SPR round: every prunable subtree is tried against every target
/// branch within `radius` of its original location; a move is kept when it
/// improves the log-likelihood by more than `epsilon`. Returns round stats.
pub fn spr_round(
    engine: &mut LikelihoodEngine<'_>,
    tree: &mut Tree,
    radius: usize,
    epsilon: f64,
) -> SprRoundStats {
    spr_round_with_mode(engine, tree, radius, epsilon, true)
}

/// [`spr_round`] with the cross-move partial reuse made switchable:
/// `reuse = false` flushes every cached partial before each candidate
/// scoring and each applied-move re-evaluation, forcing a full recompute
/// per candidate. The deterministic kernels make both modes bit-identical
/// in every likelihood and every applied move — the flag exists so the
/// benchmark suite can price the reuse, not to change results.
pub fn spr_round_with_mode(
    engine: &mut LikelihoodEngine<'_>,
    tree: &mut Tree,
    radius: usize,
    epsilon: f64,
    reuse: bool,
) -> SprRoundStats {
    if !reuse {
        engine.invalidate_all();
    }
    let mut current = engine.log_likelihood(tree);
    let mut applied = 0;
    let mut evaluated = 0;

    // Enumerate prunable (subtree root, junction) pairs up front; the tree
    // changes as moves are applied, so re-check adjacency before each prune.
    let candidates: Vec<(NodeId, NodeId)> =
        tree.edges().iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect();

    for (s, v) in candidates {
        // The junction must (still) be an inner node adjacent to s.
        if !tree.adjacent(s, v) || tree.is_tip(v) {
            continue;
        }
        // Keep at least a quartet on the remaining tree.
        let subtree_taxa = tree.subtree_tips(s, v).len();
        if tree.n_taxa() - subtree_taxa < 3 {
            continue;
        }

        let pruned = match tree.prune(s, v) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let (ma, mb) = pruned.merged_edge;
        note_merge(engine, ma, mb, v);
        engine.invalidate_for_branch(tree, ma, mb);

        // Regraft targets: branches within `radius` hops of the original
        // location (both endpoints of the merged edge), excluding the
        // merged edge itself (the identity move). Sorted so candidate
        // order — and thereby tie-breaking — is fully deterministic.
        let mut targets: Vec<Edge> = tree.edges_within_radius(ma, radius, &[]);
        targets.extend(tree.edges_within_radius(mb, radius, &[]));
        targets.sort_unstable();
        targets.dedup();
        targets.retain(|&t| t != edge(ma, mb));

        let mut best: Option<(f64, Edge)> = None;
        for &target in &targets {
            let (x, y) = target;
            let old_len = tree.branch_length(x, y);
            note_split(engine, tree, x, y, pruned.junction);
            if tree.regraft(&pruned, target).is_err() {
                // Roll the bookkeeping back; the edge still exists.
                note_merge(engine, x, y, pruned.junction);
                continue;
            }
            // Lazy scoring, RAxML-style: one junction newview inside the
            // makenewz preparation plus a couple of Newton steps; the
            // sum table reports the likelihood for free.
            if !reuse {
                engine.invalidate_all();
            }
            let (_, lnl) =
                engine.optimize_branch_with_iters(tree, (pruned.junction, pruned.root), 2);
            evaluated += 1;
            if best.is_none_or(|(b, _)| lnl > b) {
                best = Some((lnl, target));
            }
            // Undo: prune again and restore the target edge length exactly.
            // (The insertion-branch length tweaked by the lazy Newton is
            // discarded with the prune; regrafting always reuses the
            // original prune length.)
            tree.prune(pruned.root, pruned.junction).expect("undoing a regraft always succeeds");
            note_merge(engine, x, y, pruned.junction);
            tree.set_branch_length(x, y, old_len);
        }

        match best {
            Some((lnl, target)) if lnl > current + epsilon => {
                let (x, y) = target;
                note_split(engine, tree, x, y, pruned.junction);
                tree.regraft(&pruned, target).expect("best target is still a valid edge");
                // Lazy local optimization of the three branches the move
                // created (RAxML's lazy SPR refinement).
                let v_node = pruned.junction;
                let locals: Vec<Edge> =
                    tree.neighbors_of(v_node).map(|(n, _)| edge(v_node, n)).collect();
                for e in locals {
                    if !reuse {
                        engine.invalidate_all();
                    }
                    engine.optimize_branch(tree, e);
                }
                if !reuse {
                    engine.invalidate_all();
                }
                current = engine.log_likelihood(tree);
                applied += 1;
            }
            _ => {
                // Put the subtree back exactly where it was.
                note_split(engine, tree, ma, mb, pruned.junction);
                tree.undo_prune(&pruned).expect("undo information is consistent");
            }
        }
        debug_assert!(tree.validate().is_ok());
    }

    SprRoundStats { applied, evaluated, log_likelihood: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::PatternAlignment;
    use crate::bipartitions::robinson_foulds;
    use crate::likelihood::LikelihoodConfig;
    use crate::model::{GammaRates, SubstModel};
    use crate::simulate::SimulationConfig;
    use crate::tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(aln: &PatternAlignment) -> LikelihoodEngine<'_> {
        LikelihoodEngine::new(
            aln,
            SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).unwrap(),
            GammaRates::standard(0.8).unwrap(),
            LikelihoodConfig::optimized(),
        )
    }

    #[test]
    fn spr_round_never_decreases_likelihood() {
        let w = SimulationConfig::new(8, 300, 31).generate();
        let mut rng = StdRng::seed_from_u64(8);
        let mut tree = Tree::random(8, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        let before = eng.optimize_all_branches(&mut tree, 2);
        let stats = spr_round(&mut eng, &mut tree, 5, 1e-4);
        assert!(stats.log_likelihood >= before - 1e-6, "{before} -> {}", stats.log_likelihood);
        assert!(stats.evaluated > 0);
        tree.validate().unwrap();
    }

    /// The lazy orientation bookkeeping must leave the engine's caches in a
    /// state indistinguishable from a cold start: after a round, a fresh
    /// engine must assign the same likelihood to the same tree.
    #[test]
    fn lazy_bookkeeping_is_exact() {
        for seed in [3u64, 5, 9, 13] {
            let w = SimulationConfig::new(9, 250, seed).generate();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree = Tree::random(9, 0.1, &mut rng).unwrap();
            let mut eng = engine(&w.alignment);
            eng.optimize_all_branches(&mut tree, 1);
            let stats = spr_round(&mut eng, &mut tree, 4, 1e-4);
            // Warm engine (incremental caches) vs cold engine (full
            // recompute) on the identical final tree.
            let warm = eng.log_likelihood(&tree);
            let mut cold = engine(&w.alignment);
            let reference = cold.log_likelihood(&tree);
            assert!(
                (warm - reference).abs() < 1e-8,
                "seed {seed}: warm {warm} vs cold {reference} (round lnl {})",
                stats.log_likelihood
            );
        }
    }

    /// Candidate scoring must be cheap: roughly one newview per candidate,
    /// not a full traversal (this is what makes the SPR "lazy").
    #[test]
    fn candidate_scoring_is_lazy() {
        let w = SimulationConfig::new(12, 400, 21).generate();
        let mut rng = StdRng::seed_from_u64(4);
        let mut tree = Tree::random(12, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        eng.optimize_all_branches(&mut tree, 2);
        let nv_before = eng.trace().counters().newview_calls;
        let stats = spr_round(&mut eng, &mut tree, 4, 1e9); // epsilon so big nothing applies
        let nv_after = eng.trace().counters().newview_calls;
        let per_candidate = (nv_after - nv_before) as f64 / stats.evaluated.max(1) as f64;
        assert!(
            per_candidate < 6.0,
            "expected ~1–3 newviews per candidate, got {per_candidate:.1}"
        );
    }

    #[test]
    fn spr_matches_or_beats_the_true_tree_from_a_random_start() {
        // The ML tree on finite data need not equal the generating topology,
        // but a correct hill climb from a random start must reach at least
        // the (branch-optimized) true tree's likelihood and land close to it
        // topologically.
        let w =
            SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(7, 2000, 19) }.generate();
        let mut true_tree = w.true_tree.clone();
        let mut eng = engine(&w.alignment);
        let true_lnl = eng.optimize_all_branches(&mut true_tree, 4);

        let mut rng = StdRng::seed_from_u64(3);
        let mut tree = Tree::random(7, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        eng.optimize_all_branches(&mut tree, 2);
        let mut lnl = f64::NEG_INFINITY;
        for _ in 0..6 {
            let stats = spr_round(&mut eng, &mut tree, 6, 1e-4);
            lnl = eng.optimize_all_branches(&mut tree, 1);
            if stats.applied == 0 {
                break;
            }
        }
        assert!(
            lnl >= true_lnl - 1e-3,
            "search must reach the truth's likelihood: {lnl} vs {true_lnl}"
        );
        assert!(
            robinson_foulds(&tree, &w.true_tree) <= 2,
            "found tree should be within one split of the truth"
        );
    }

    #[test]
    fn no_moves_on_an_already_optimal_tree() {
        let w =
            SimulationConfig { mean_branch: 0.15, ..SimulationConfig::new(6, 3000, 5) }.generate();
        let mut tree = w.true_tree.clone();
        let mut eng = engine(&w.alignment);
        eng.optimize_all_branches(&mut tree, 3);
        let stats = spr_round(&mut eng, &mut tree, 4, 1e-3);
        assert_eq!(
            stats.applied, 0,
            "the true tree on overwhelming data should be a local optimum"
        );
        assert_eq!(robinson_foulds(&tree, &w.true_tree), 0, "tree must be unchanged");
    }

    /// Reuse and full-recompute modes are the same search, priced
    /// differently: identical moves, identical evaluation counts, and the
    /// final likelihood equal to the bit.
    #[test]
    fn reuse_and_full_recompute_modes_are_bit_identical() {
        for seed in [6u64, 17, 29] {
            let w = SimulationConfig::new(9, 300, seed).generate();
            let mut rng = StdRng::seed_from_u64(seed);
            let start = Tree::random(9, 0.1, &mut rng).unwrap();

            let mut t_reuse = start.clone();
            let mut eng = engine(&w.alignment);
            eng.optimize_all_branches(&mut t_reuse, 1);
            let s_reuse = spr_round_with_mode(&mut eng, &mut t_reuse, 4, 1e-4, true);

            let mut t_full = start;
            let mut eng = engine(&w.alignment);
            eng.optimize_all_branches(&mut t_full, 1);
            let s_full = spr_round_with_mode(&mut eng, &mut t_full, 4, 1e-4, false);

            assert_eq!(s_reuse.applied, s_full.applied, "seed {seed}");
            assert_eq!(s_reuse.evaluated, s_full.evaluated, "seed {seed}");
            assert_eq!(
                s_reuse.log_likelihood.to_bits(),
                s_full.log_likelihood.to_bits(),
                "seed {seed}: {} vs {}",
                s_reuse.log_likelihood,
                s_full.log_likelihood
            );
            assert_eq!(t_reuse, t_full, "seed {seed}: topologies differ");
        }
    }

    #[test]
    fn radius_zero_evaluates_nothing() {
        let w = SimulationConfig::new(6, 200, 2).generate();
        let mut rng = StdRng::seed_from_u64(1);
        let mut tree = Tree::random(6, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        let stats = spr_round(&mut eng, &mut tree, 0, 1e-4);
        assert_eq!(stats.evaluated, 0);
        assert_eq!(stats.applied, 0);
    }
}
