//! Maximum parsimony: Fitch scoring and randomized stepwise addition.
//!
//! RAxML starts every inference from a distinct "random stepwise addition
//! sequence Maximum Parsimony tree" (paper §1, §3.1): taxa are inserted in
//! random order, each at the position minimizing the Fitch parsimony score.
//! The randomized order is what makes multiple inferences explore different
//! regions of tree space.

use crate::alignment::PatternAlignment;
use crate::error::Result;
use crate::tree::{NodeId, Tree};
use rand::seq::SliceRandom;
use rand::Rng;

/// Weighted Fitch parsimony score of a tree (number of state changes,
/// weighted by pattern multiplicities). Ambiguity codes participate
/// naturally: tip state sets are the 4-bit codes themselves.
pub fn parsimony_score(tree: &Tree, aln: &PatternAlignment) -> f64 {
    let (u, v) = tree.edges()[0];
    let mut score = 0.0;
    let su = fitch_sets(tree, aln, u, v, &mut score);
    let sv = fitch_sets(tree, aln, v, u, &mut score);
    for (i, w) in aln.weights().iter().enumerate() {
        if su[i] & sv[i] == 0 {
            score += w;
        }
    }
    score
}

/// Fitch state sets of the subtree at `node` seen from `parent`, with the
/// weighted change count accumulated into `score`. Iterative post-order so
/// large trees cannot overflow the stack.
fn fitch_sets(
    tree: &Tree,
    aln: &PatternAlignment,
    node: NodeId,
    parent: NodeId,
    score: &mut f64,
) -> Vec<u8> {
    if tree.is_tip(node) {
        return aln.tip_row(node).to_vec();
    }
    // Post-order over the subtree.
    let mut order: Vec<(NodeId, NodeId)> = Vec::new();
    let mut stack = vec![(node, parent)];
    while let Some((n, p)) = stack.pop() {
        if tree.is_tip(n) {
            continue;
        }
        order.push((n, p));
        for (c, _) in tree.other_neighbors(n, p) {
            stack.push((c, n));
        }
    }
    let mut sets: Vec<Option<Vec<u8>>> = vec![None; tree.n_nodes()];
    let weights = aln.weights();
    for &(n, p) in order.iter().rev() {
        let [(a, _), (b, _)] = tree.other_neighbors(n, p);
        let sa = if tree.is_tip(a) {
            aln.tip_row(a)
        } else {
            sets[a].as_deref().expect("post-order guarantees children first")
        };
        let sb = if tree.is_tip(b) {
            aln.tip_row(b)
        } else {
            sets[b].as_deref().expect("post-order guarantees children first")
        };
        let mut out = vec![0u8; sa.len()];
        for i in 0..sa.len() {
            let inter = sa[i] & sb[i];
            if inter == 0 {
                *score += weights[i];
                out[i] = sa[i] | sb[i];
            } else {
                out[i] = inter;
            }
        }
        sets[n] = Some(out);
    }
    sets[node].take().expect("root of the traversal was computed")
}

/// Build a starting tree by randomized stepwise addition under parsimony.
/// Each taxon (in random order) is inserted on the branch minimizing the
/// resulting Fitch score. All branch lengths are set to `initial_len`.
pub fn stepwise_addition_tree<R: Rng>(
    aln: &PatternAlignment,
    initial_len: f64,
    rng: &mut R,
) -> Result<Tree> {
    let n = aln.n_taxa();
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);

    let mut tree = Tree::initial_triplet_of(n, [order[0], order[1], order[2]], initial_len)?;
    for &tip in &order[3..] {
        let mut best: Option<(f64, (NodeId, NodeId))> = None;
        for edge in tree.edges() {
            let mut candidate = tree.clone();
            candidate.add_taxon_on_edge(tip, edge, initial_len)?;
            let score = parsimony_score(&candidate, aln);
            // Strict improvement keeps the first-best edge, making ties
            // deterministic given the (random) addition order.
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, edge));
            }
        }
        let (_, edge) = best.expect("a tree always has at least one edge");
        tree.add_taxon_on_edge(tip, edge, initial_len)?;
    }
    // Normalize branch lengths for the ML phase.
    for (a, b) in tree.edges() {
        tree.set_branch_length(a, b, initial_len);
    }
    debug_assert!(tree.validate().is_ok());
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::bipartitions::robinson_foulds;
    use crate::io::newick::parse_newick;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn identical_sequences_score_zero() {
        let aln = Alignment::from_named_sequences(&[
            ("t0", "ACGT"),
            ("t1", "ACGT"),
            ("t2", "ACGT"),
            ("t3", "ACGT"),
        ])
        .unwrap()
        .compress();
        let t = parse_newick("((t0,t1),(t2,t3));", &names(4)).unwrap();
        assert_eq!(parsimony_score(&t, &aln), 0.0);
    }

    #[test]
    fn hand_computed_score() {
        // One variable column A/A/C/C: on ((t0,t1),(t2,t3)) it needs exactly
        // one change; on ((t0,t2),(t1,t3)) it needs two.
        let aln =
            Alignment::from_named_sequences(&[("t0", "A"), ("t1", "A"), ("t2", "C"), ("t3", "C")])
                .unwrap()
                .compress();
        let good = parse_newick("((t0,t1),(t2,t3));", &names(4)).unwrap();
        let bad = parse_newick("((t0,t2),(t1,t3));", &names(4)).unwrap();
        assert_eq!(parsimony_score(&good, &aln), 1.0);
        assert_eq!(parsimony_score(&bad, &aln), 2.0);
    }

    #[test]
    fn weights_multiply_scores() {
        // Two identical informative columns = twice the single-column score.
        let one =
            Alignment::from_named_sequences(&[("t0", "A"), ("t1", "A"), ("t2", "C"), ("t3", "C")])
                .unwrap()
                .compress();
        let two = Alignment::from_named_sequences(&[
            ("t0", "AA"),
            ("t1", "AA"),
            ("t2", "CC"),
            ("t3", "CC"),
        ])
        .unwrap()
        .compress();
        let t = parse_newick("((t0,t1),(t2,t3));", &names(4)).unwrap();
        assert_eq!(parsimony_score(&t, &two), 2.0 * parsimony_score(&t, &one));
    }

    #[test]
    fn ambiguity_codes_reduce_changes() {
        // R = {A,G}: compatible with both A and G sides, no change needed.
        let aln =
            Alignment::from_named_sequences(&[("t0", "A"), ("t1", "R"), ("t2", "G"), ("t3", "G")])
                .unwrap()
                .compress();
        let t = parse_newick("((t0,t1),(t2,t3));", &names(4)).unwrap();
        assert_eq!(parsimony_score(&t, &aln), 1.0, "A→G transition once, R free");
    }

    #[test]
    fn score_is_rooting_invariant() {
        let w = crate::simulate::SimulationConfig::new(9, 200, 13).generate();
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tree::random(9, 0.1, &mut rng).unwrap();
        // parsimony_score roots at edges()[0]; compare against explicit
        // re-rooting by scoring structurally-identical trees built from
        // different edge orders.
        let base = parsimony_score(&t, &w.alignment);
        let list: Vec<(NodeId, NodeId, f64)> =
            t.edges().into_iter().rev().map(|(a, b)| (a, b, t.branch_length(a, b))).collect();
        let t2 = Tree::from_edges(9, &list).unwrap();
        assert_eq!(parsimony_score(&t2, &w.alignment), base);
    }

    #[test]
    fn stepwise_addition_recovers_easy_topology() {
        // Strong signal: stepwise MP should recover the true tree exactly.
        let w = crate::simulate::SimulationConfig {
            mean_branch: 0.15,
            ..crate::simulate::SimulationConfig::new(8, 1500, 99)
        }
        .generate();
        let mut rng = StdRng::seed_from_u64(1);
        let t = stepwise_addition_tree(&w.alignment, 0.1, &mut rng).unwrap();
        t.validate().unwrap();
        assert_eq!(
            robinson_foulds(&t, &w.true_tree),
            0,
            "parsimony should recover the true tree on clean data"
        );
    }

    #[test]
    fn stepwise_addition_beats_random_trees() {
        let w = crate::simulate::SimulationConfig::new(12, 400, 21).generate();
        let mut rng = StdRng::seed_from_u64(2);
        let mp = stepwise_addition_tree(&w.alignment, 0.1, &mut rng).unwrap();
        let mp_score = parsimony_score(&mp, &w.alignment);
        for _ in 0..5 {
            let random = Tree::random(12, 0.1, &mut rng).unwrap();
            assert!(
                mp_score <= parsimony_score(&random, &w.alignment),
                "stepwise tree must not lose to a random tree"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_addition_orders() {
        let w = crate::simulate::SimulationConfig::new(10, 60, 5).generate();
        let mut r1 = StdRng::seed_from_u64(100);
        let mut r2 = StdRng::seed_from_u64(200);
        let t1 = stepwise_addition_tree(&w.alignment, 0.1, &mut r1).unwrap();
        let t2 = stepwise_addition_tree(&w.alignment, 0.1, &mut r2).unwrap();
        // Not guaranteed to differ topologically, but the probability that
        // ten-taxon noisy data gives identical trees for two random orders
        // AND identical scores is essentially zero if the orders differ.
        let _ = (t1, t2); // structural smoke; determinism is tested below
    }

    #[test]
    fn stepwise_addition_is_deterministic_given_seed() {
        let w = crate::simulate::SimulationConfig::new(10, 120, 5).generate();
        let t1 = stepwise_addition_tree(&w.alignment, 0.1, &mut StdRng::seed_from_u64(7)).unwrap();
        let t2 = stepwise_addition_tree(&w.alignment, 0.1, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(t1, t2);
    }
}
