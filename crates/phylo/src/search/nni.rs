//! Nearest-neighbor-interchange hill climbing — the cheaper, smaller-radius
//! alternative to SPR. PHYML-style searches (cited by the paper as a RAxML
//! competitor) are NNI-based; RAxML uses NNIs implicitly as the radius-1
//! subset of its SPR moves. Provided as a standalone refinement pass and as
//! a baseline against which the SPR search can be compared.

use crate::likelihood::engine::LikelihoodEngine;
use crate::tree::{Edge, Tree};

/// Outcome of one NNI improvement round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NniRoundStats {
    /// Interchanges applied.
    pub applied: usize,
    /// Interchanges evaluated (2 per internal edge).
    pub evaluated: usize,
    /// Log-likelihood after the round.
    pub log_likelihood: f64,
}

/// One NNI round: for every internal edge, try both interchanges; keep an
/// interchange when it improves the log-likelihood by more than `epsilon`
/// (after re-optimizing the central branch).
pub fn nni_round(
    engine: &mut LikelihoodEngine<'_>,
    tree: &mut Tree,
    epsilon: f64,
) -> NniRoundStats {
    let mut current = engine.log_likelihood(tree);
    let mut applied = 0;
    let mut evaluated = 0;

    let internal: Vec<Edge> =
        tree.edges().into_iter().filter(|&(a, b)| !tree.is_tip(a) && !tree.is_tip(b)).collect();

    for (u, v) in internal {
        if !tree.adjacent(u, v) || tree.is_tip(u) || tree.is_tip(v) {
            continue; // an earlier interchange may have rearranged this region
        }
        let mut best: Option<(f64, Tree)> = None;
        for swap in 0..2 {
            let mut candidate = tree.clone();
            if candidate.nni(u, v, swap).is_err() {
                continue;
            }
            engine.invalidate_all();
            let (_, lnl) = engine.optimize_branch_with_iters(&mut candidate, (u, v), 4);
            evaluated += 1;
            if lnl > current + epsilon && best.as_ref().is_none_or(|(b, _)| lnl > *b) {
                best = Some((lnl, candidate));
            }
        }
        if let Some((lnl, better)) = best {
            *tree = better;
            current = lnl;
            applied += 1;
        }
        engine.invalidate_all();
    }
    // Leave the caches consistent with the final tree and report its exact
    // likelihood.
    current = engine.log_likelihood(tree);
    NniRoundStats { applied, evaluated, log_likelihood: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::LikelihoodConfig;
    use crate::model::{GammaRates, SubstModel};
    use crate::search::spr::spr_round;
    use crate::simulate::SimulationConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(aln: &crate::alignment::PatternAlignment) -> LikelihoodEngine<'_> {
        LikelihoodEngine::new(
            aln,
            SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).unwrap(),
            GammaRates::standard(0.8).unwrap(),
            LikelihoodConfig::optimized(),
        )
    }

    #[test]
    fn nni_round_never_decreases_likelihood() {
        let w = SimulationConfig::new(9, 350, 44).generate();
        let mut rng = StdRng::seed_from_u64(2);
        let mut tree = Tree::random(9, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        let before = eng.optimize_all_branches(&mut tree, 2);
        let stats = nni_round(&mut eng, &mut tree, 1e-4);
        assert!(stats.log_likelihood >= before - 1e-6);
        assert!(stats.evaluated > 0);
        tree.validate().unwrap();
    }

    #[test]
    fn nni_improves_a_random_start() {
        let w =
            SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(8, 1000, 3) }.generate();
        let mut rng = StdRng::seed_from_u64(5);
        let mut tree = Tree::random(8, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        let start = eng.optimize_all_branches(&mut tree, 2);
        let mut last = start;
        for _ in 0..8 {
            let stats = nni_round(&mut eng, &mut tree, 1e-4);
            eng.optimize_all_branches(&mut tree, 1);
            if stats.applied == 0 {
                break;
            }
            last = stats.log_likelihood;
        }
        assert!(last > start, "NNI must improve a random start: {start} -> {last}");
    }

    #[test]
    fn spr_explores_at_least_as_well_as_nni() {
        // SPR's move set strictly contains NNI's, so from the same start
        // an SPR round followed by smoothing should do at least as well as
        // an NNI round from the same state.
        let w = SimulationConfig::new(9, 600, 71).generate();
        let mut rng = StdRng::seed_from_u64(9);
        let start = Tree::random(9, 0.1, &mut rng).unwrap();

        let mut t_nni = start.clone();
        let mut eng = engine(&w.alignment);
        eng.optimize_all_branches(&mut t_nni, 2);
        for _ in 0..6 {
            if nni_round(&mut eng, &mut t_nni, 1e-4).applied == 0 {
                break;
            }
            eng.optimize_all_branches(&mut t_nni, 1);
        }
        let nni_lnl = eng.optimize_all_branches(&mut t_nni, 2);

        let mut t_spr = start;
        let mut eng = engine(&w.alignment);
        eng.optimize_all_branches(&mut t_spr, 2);
        for _ in 0..6 {
            if spr_round(&mut eng, &mut t_spr, 6, 1e-4).applied == 0 {
                break;
            }
            eng.optimize_all_branches(&mut t_spr, 1);
        }
        let spr_lnl = eng.optimize_all_branches(&mut t_spr, 2);

        assert!(
            spr_lnl >= nni_lnl - 0.5,
            "SPR should not lose clearly to NNI: {spr_lnl} vs {nni_lnl}"
        );
    }
}
