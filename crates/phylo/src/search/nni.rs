//! Nearest-neighbor-interchange hill climbing — the cheaper, smaller-radius
//! alternative to SPR. PHYML-style searches (cited by the paper as a RAxML
//! competitor) are NNI-based; RAxML uses NNIs implicitly as the radius-1
//! subset of its SPR moves. Provided as a standalone refinement pass and as
//! a baseline against which the SPR search can be compared.
//!
//! Like [`crate::search::spr`], candidate moves are applied and reverted
//! *in place* with targeted cache bookkeeping: an interchange across the
//! edge `(u, v)` only stales partials whose subtree spans that edge, so
//! everything strictly inside the four swapped subtrees stays cached. The
//! interchange itself is an involution ([`Tree::nni`] with the same
//! arguments undoes it exactly, slots and lengths included), which makes
//! the revert free of clones.

use crate::error::Result;
use crate::likelihood::engine::LikelihoodEngine;
use crate::tree::{Edge, NodeId, Tree};

/// Outcome of one NNI improvement round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NniRoundStats {
    /// Interchanges applied.
    pub applied: usize,
    /// Interchanges evaluated (2 per internal edge).
    pub evaluated: usize,
    /// Log-likelihood after the round.
    pub log_likelihood: f64,
}

/// Apply the interchange `swap` across the internal edge `(u, v)` with
/// exact cache bookkeeping, mirroring the SPR round's `note_split` /
/// `note_merge` scheme:
///
/// * partials whose subtree contains the edge go stale
///   ([`LikelihoodEngine::invalidate_for_branch`], pre-swap, while the
///   adjacency is still the old one);
/// * the moved subtree roots keep their partials — `a`'s partial "toward
///   `u`" summarizes the same subtree "toward `v`" after the swap (and
///   symmetrically for `c`), so they are remapped, not recomputed;
/// * `u` and `v` themselves change composition in every direction and are
///   dropped.
///
/// Calling this again with the same arguments reverts the interchange
/// (topology, slot order and branch lengths), because [`Tree::nni`] is an
/// involution and the orientation edits mirror themselves.
fn apply_nni(
    engine: &mut LikelihoodEngine<'_>,
    tree: &mut Tree,
    u: NodeId,
    v: NodeId,
    swap: usize,
) -> Result<()> {
    if tree.is_tip(u) || tree.is_tip(v) || !tree.adjacent(u, v) {
        // Delegate to Tree::nni for the typed error; nothing was touched.
        return tree.nni(u, v, swap);
    }
    let [(a, _), _] = tree.other_neighbors(u, v);
    let (c, _) = tree.other_neighbors(v, u)[swap.min(1)];
    engine.invalidate_for_branch(tree, u, v);
    tree.nni(u, v, swap)?;
    engine.remap_orientation(a, u, v);
    engine.remap_orientation(c, v, u);
    engine.clear_orientation(u);
    engine.clear_orientation(v);
    Ok(())
}

/// One NNI round: for every internal edge, try both interchanges; keep an
/// interchange when it improves the log-likelihood by more than `epsilon`
/// (after re-optimizing the central branch).
pub fn nni_round(
    engine: &mut LikelihoodEngine<'_>,
    tree: &mut Tree,
    epsilon: f64,
) -> NniRoundStats {
    let mut scratch = Vec::new();
    nni_round_with_scratch(engine, tree, epsilon, &mut scratch)
}

/// [`nni_round`] with a caller-owned edge buffer: once the buffer and the
/// engine workspace have warmed up, a round allocates nothing — candidates
/// are applied and reverted in place instead of cloning the tree.
pub fn nni_round_with_scratch(
    engine: &mut LikelihoodEngine<'_>,
    tree: &mut Tree,
    epsilon: f64,
    edges_scratch: &mut Vec<Edge>,
) -> NniRoundStats {
    let mut current = engine.log_likelihood(tree);
    let mut applied = 0;
    let mut evaluated = 0;

    tree.edges_into(edges_scratch);
    for i in 0..edges_scratch.len() {
        let (u, v) = edges_scratch[i];
        // An earlier interchange may have rearranged this region; only
        // still-existing internal edges are eligible.
        if tree.is_tip(u) || tree.is_tip(v) || !tree.adjacent(u, v) {
            continue;
        }
        let original_len = tree.branch_length(u, v);
        // (log-likelihood, swap index, optimized central branch length).
        let mut best: Option<(f64, usize, f64)> = None;
        for swap in 0..2 {
            if apply_nni(engine, tree, u, v, swap).is_err() {
                continue;
            }
            let (len, lnl) = engine.optimize_branch_with_iters(tree, (u, v), 4);
            evaluated += 1;
            // Revert: same interchange again (involution), then restore the
            // central branch length the lazy Newton adjusted. Everything
            // spanning the edge was already invalidated by the revert.
            apply_nni(engine, tree, u, v, swap).expect("NNI revert is the same interchange");
            tree.set_branch_length(u, v, original_len);
            if lnl > current + epsilon && best.is_none_or(|(b, _, _)| lnl > b) {
                best = Some((lnl, swap, len));
            }
        }
        if let Some((lnl, swap, len)) = best {
            apply_nni(engine, tree, u, v, swap).expect("winning interchange still applies");
            // Newton is deterministic, so installing the length it found
            // during scoring reproduces the scored state exactly without a
            // second optimization pass.
            tree.set_branch_length(u, v, len);
            current = lnl;
            applied += 1;
        }
    }
    // Leave the caches consistent with the final tree and report its exact
    // likelihood.
    current = engine.log_likelihood(tree);
    NniRoundStats { applied, evaluated, log_likelihood: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::LikelihoodConfig;
    use crate::model::{GammaRates, SubstModel};
    use crate::search::spr::spr_round;
    use crate::simulate::SimulationConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(aln: &crate::alignment::PatternAlignment) -> LikelihoodEngine<'_> {
        LikelihoodEngine::new(
            aln,
            SubstModel::gtr(aln.base_frequencies(), [1.0; 6]).unwrap(),
            GammaRates::standard(0.8).unwrap(),
            LikelihoodConfig::optimized(),
        )
    }

    /// The previous implementation of `nni_round`, kept verbatim as the
    /// behavioral reference: every candidate is scored on a full clone of
    /// the tree and the engine cache is flushed wholesale around each
    /// evaluation. Numerically this is the ground truth the incremental
    /// version must reproduce bit-for-bit.
    fn nni_round_clone_and_flush(
        engine: &mut LikelihoodEngine<'_>,
        tree: &mut Tree,
        epsilon: f64,
    ) -> NniRoundStats {
        let mut current = engine.log_likelihood(tree);
        let mut applied = 0;
        let mut evaluated = 0;
        let internal: Vec<Edge> =
            tree.edges().into_iter().filter(|&(a, b)| !tree.is_tip(a) && !tree.is_tip(b)).collect();
        for (u, v) in internal {
            if !tree.adjacent(u, v) || tree.is_tip(u) || tree.is_tip(v) {
                continue;
            }
            let mut best: Option<(f64, Tree)> = None;
            for swap in 0..2 {
                let mut candidate = tree.clone();
                if candidate.nni(u, v, swap).is_err() {
                    continue;
                }
                engine.invalidate_all();
                let (_, lnl) = engine.optimize_branch_with_iters(&mut candidate, (u, v), 4);
                evaluated += 1;
                if lnl > current + epsilon && best.as_ref().is_none_or(|(b, _)| lnl > *b) {
                    best = Some((lnl, candidate));
                }
            }
            if let Some((lnl, better)) = best {
                *tree = better;
                current = lnl;
                applied += 1;
            }
            engine.invalidate_all();
        }
        current = engine.log_likelihood(tree);
        NniRoundStats { applied, evaluated, log_likelihood: current }
    }

    /// Regression for the full-cache-flush bug: the targeted-invalidation,
    /// in-place round must reproduce the clone-and-flush round exactly —
    /// same interchanges applied, same candidates evaluated, and the final
    /// log-likelihood identical to the bit — across several seeds,
    /// including rounds that apply nothing and rounds that apply several
    /// interchanges.
    #[test]
    fn incremental_round_is_bit_identical_to_clone_and_flush() {
        for seed in [2u64, 7, 19, 33] {
            let w = SimulationConfig::new(10, 400, seed).generate();
            let mut rng = StdRng::seed_from_u64(seed);
            let start = Tree::random(10, 0.1, &mut rng).unwrap();

            let mut t_ref = start.clone();
            let mut eng_ref = engine(&w.alignment);
            eng_ref.optimize_all_branches(&mut t_ref, 2);
            let s_ref = nni_round_clone_and_flush(&mut eng_ref, &mut t_ref, 1e-4);

            let mut t_new = start;
            let mut eng_new = engine(&w.alignment);
            eng_new.optimize_all_branches(&mut t_new, 2);
            let s_new = nni_round(&mut eng_new, &mut t_new, 1e-4);

            assert_eq!(s_new.applied, s_ref.applied, "seed {seed}: applied counts differ");
            assert_eq!(s_new.evaluated, s_ref.evaluated, "seed {seed}: evaluated counts differ");
            assert_eq!(
                s_new.log_likelihood.to_bits(),
                s_ref.log_likelihood.to_bits(),
                "seed {seed}: final lnL differs: {} vs {}",
                s_new.log_likelihood,
                s_ref.log_likelihood
            );
            assert_eq!(t_new, t_ref, "seed {seed}: final topologies differ");
            for (a, b) in t_new.edges() {
                assert_eq!(
                    t_new.branch_length(a, b).to_bits(),
                    t_ref.branch_length(a, b).to_bits(),
                    "seed {seed}: branch ({a}, {b}) differs"
                );
            }
        }
    }

    /// The in-place apply/revert must leave the engine cache in a state
    /// indistinguishable from a cold start (the NNI analogue of the SPR
    /// `lazy_bookkeeping_is_exact` test).
    #[test]
    fn nni_bookkeeping_is_exact() {
        for seed in [4u64, 11, 23] {
            let w = SimulationConfig::new(9, 250, seed).generate();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree = Tree::random(9, 0.1, &mut rng).unwrap();
            let mut eng = engine(&w.alignment);
            eng.optimize_all_branches(&mut tree, 1);
            let stats = nni_round(&mut eng, &mut tree, 1e-4);
            let warm = eng.log_likelihood(&tree);
            let mut cold = engine(&w.alignment);
            let reference = cold.log_likelihood(&tree);
            assert!(
                (warm - reference).abs() < 1e-8,
                "seed {seed}: warm {warm} vs cold {reference} (round lnl {})",
                stats.log_likelihood
            );
        }
    }

    #[test]
    fn nni_round_never_decreases_likelihood() {
        let w = SimulationConfig::new(9, 350, 44).generate();
        let mut rng = StdRng::seed_from_u64(2);
        let mut tree = Tree::random(9, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        let before = eng.optimize_all_branches(&mut tree, 2);
        let stats = nni_round(&mut eng, &mut tree, 1e-4);
        assert!(stats.log_likelihood >= before - 1e-6);
        assert!(stats.evaluated > 0);
        tree.validate().unwrap();
    }

    #[test]
    fn nni_improves_a_random_start() {
        let w =
            SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(8, 1000, 3) }.generate();
        let mut rng = StdRng::seed_from_u64(5);
        let mut tree = Tree::random(8, 0.1, &mut rng).unwrap();
        let mut eng = engine(&w.alignment);
        let start = eng.optimize_all_branches(&mut tree, 2);
        let mut last = start;
        for _ in 0..8 {
            let stats = nni_round(&mut eng, &mut tree, 1e-4);
            eng.optimize_all_branches(&mut tree, 1);
            if stats.applied == 0 {
                break;
            }
            last = stats.log_likelihood;
        }
        assert!(last > start, "NNI must improve a random start: {start} -> {last}");
    }

    #[test]
    fn spr_explores_at_least_as_well_as_nni() {
        // SPR's move set strictly contains NNI's, so from the same start
        // an SPR round followed by smoothing should do at least as well as
        // an NNI round from the same state.
        let w = SimulationConfig::new(9, 600, 71).generate();
        let mut rng = StdRng::seed_from_u64(9);
        let start = Tree::random(9, 0.1, &mut rng).unwrap();

        let mut t_nni = start.clone();
        let mut eng = engine(&w.alignment);
        eng.optimize_all_branches(&mut t_nni, 2);
        for _ in 0..6 {
            if nni_round(&mut eng, &mut t_nni, 1e-4).applied == 0 {
                break;
            }
            eng.optimize_all_branches(&mut t_nni, 1);
        }
        let nni_lnl = eng.optimize_all_branches(&mut t_nni, 2);

        let mut t_spr = start;
        let mut eng = engine(&w.alignment);
        eng.optimize_all_branches(&mut t_spr, 2);
        for _ in 0..6 {
            if spr_round(&mut eng, &mut t_spr, 6, 1e-4).applied == 0 {
                break;
            }
            eng.optimize_all_branches(&mut t_spr, 1);
        }
        let spr_lnl = eng.optimize_all_branches(&mut t_spr, 2);

        assert!(
            spr_lnl >= nni_lnl - 0.5,
            "SPR should not lose clearly to NNI: {spr_lnl} vs {nni_lnl}"
        );
    }
}
