//! Rate-heterogeneity models: discrete Γ and per-site CAT categories
//! (Stamatakis 2006, "Phylogenetic models of rate heterogeneity" — cited by
//! the paper in §5.2.5: the small `newview` loop runs once per "distinct
//! rate category of the CAT or Γ models").

use crate::error::{PhyloError, Result};
use crate::math::discrete_gamma_rates;

/// Discrete Γ-distributed rates across sites (Yang 1994): `n` equal-weight
/// categories, each site averages over all categories.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaRates {
    alpha: f64,
    rates: Vec<f64>,
}

impl GammaRates {
    /// Create `n_categories` discrete Γ rates with shape `alpha`.
    pub fn new(alpha: f64, n_categories: usize) -> Result<GammaRates> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(PhyloError::InvalidParameter {
                name: "alpha",
                value: alpha,
                reason: "gamma shape must be positive and finite",
            });
        }
        if n_categories == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "n_categories",
                value: 0.0,
                reason: "need at least one rate category",
            });
        }
        Ok(GammaRates { alpha, rates: discrete_gamma_rates(alpha, n_categories) })
    }

    /// The standard 4-category Γ used by RAxML (and the paper's workload).
    pub fn standard(alpha: f64) -> Result<GammaRates> {
        GammaRates::new(alpha, 4)
    }

    /// A single-category model (no rate heterogeneity).
    pub fn homogeneous() -> GammaRates {
        GammaRates { alpha: f64::INFINITY, rates: vec![1.0] }
    }

    /// The shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The category rate multipliers (ascending, mean 1).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.rates.len()
    }

    /// Update the shape parameter in place, keeping the category count.
    pub fn set_alpha(&mut self, alpha: f64) -> Result<()> {
        let updated = GammaRates::new(alpha, self.rates.len())?;
        *self = updated;
        Ok(())
    }
}

/// Per-site rate categories (the CAT approximation): every site pattern is
/// assigned to one of `c` rate categories; a site evaluates under its single
/// category rate instead of averaging over Γ categories. This trades
/// statistical rigor for a ~4× smaller likelihood workload — the trade
/// RAxML's CAT mode makes for large datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct CatRates {
    /// Rate multiplier of each category.
    category_rates: Vec<f64>,
    /// Category index of each site pattern.
    pattern_category: Vec<usize>,
}

impl CatRates {
    /// All patterns in a single rate-1 category.
    pub fn uniform(n_patterns: usize) -> CatRates {
        CatRates { category_rates: vec![1.0], pattern_category: vec![0; n_patterns] }
    }

    /// Build from explicit per-pattern rates, clustering them into at most
    /// `max_categories` categories by quantile bucketing (RAxML clusters
    /// individually optimized per-site rates the same way).
    pub fn from_pattern_rates(pattern_rates: &[f64], max_categories: usize) -> Result<CatRates> {
        if pattern_rates.is_empty() {
            return Err(PhyloError::EmptyAlignment);
        }
        if max_categories == 0 {
            return Err(PhyloError::InvalidParameter {
                name: "max_categories",
                value: 0.0,
                reason: "need at least one category",
            });
        }
        for &r in pattern_rates {
            if !r.is_finite() || r <= 0.0 {
                return Err(PhyloError::InvalidParameter {
                    name: "pattern rate",
                    value: r,
                    reason: "per-site rates must be positive and finite",
                });
            }
        }
        // Sort the distinct rates and cut into quantile buckets.
        let mut sorted: Vec<f64> = pattern_rates.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let k = max_categories.min(sorted.len());
        let mut cuts = Vec::with_capacity(k + 1);
        for i in 0..=k {
            cuts.push(sorted[(i * (sorted.len() - 1)) / k.max(1)]);
        }
        // Category rate = mean of member rates; assignment by bucket.
        let bucket_of = |r: f64| -> usize {
            let mut b = 0;
            while b + 1 < k && r > cuts[b + 1] {
                b += 1;
            }
            b
        };
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        let mut pattern_category = Vec::with_capacity(pattern_rates.len());
        for &r in pattern_rates {
            let b = bucket_of(r);
            sums[b] += r;
            counts[b] += 1;
            pattern_category.push(b);
        }
        // Drop empty buckets, remapping indices.
        let mut remap = vec![usize::MAX; k];
        let mut category_rates = Vec::new();
        for b in 0..k {
            if counts[b] > 0 {
                remap[b] = category_rates.len();
                category_rates.push(sums[b] / counts[b] as f64);
            }
        }
        for c in &mut pattern_category {
            *c = remap[*c];
        }
        Ok(CatRates { category_rates, pattern_category })
    }

    /// Rate multiplier of each category.
    pub fn category_rates(&self) -> &[f64] {
        &self.category_rates
    }

    /// Category of each pattern.
    pub fn pattern_category(&self) -> &[usize] {
        &self.pattern_category
    }

    /// Rate of a given pattern.
    #[inline]
    pub fn rate_of(&self, pattern: usize) -> f64 {
        self.category_rates[self.pattern_category[pattern]]
    }

    /// Number of categories actually in use.
    pub fn n_categories(&self) -> usize {
        self.category_rates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_rates_basic() {
        let g = GammaRates::standard(0.5).unwrap();
        assert_eq!(g.n_categories(), 4);
        assert_eq!(g.alpha(), 0.5);
        let mean: f64 = g.rates().iter().sum::<f64>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gamma_rejects_bad_alpha() {
        assert!(GammaRates::standard(0.0).is_err());
        assert!(GammaRates::standard(-1.0).is_err());
        assert!(GammaRates::standard(f64::NAN).is_err());
        assert!(GammaRates::new(1.0, 0).is_err());
    }

    #[test]
    fn homogeneous_is_single_unit_rate() {
        let g = GammaRates::homogeneous();
        assert_eq!(g.rates(), &[1.0]);
        assert_eq!(g.n_categories(), 1);
    }

    #[test]
    fn set_alpha_updates_rates() {
        let mut g = GammaRates::standard(1.0).unwrap();
        let before = g.rates().to_vec();
        g.set_alpha(0.2).unwrap();
        assert_ne!(g.rates(), &before[..]);
        assert_eq!(g.alpha(), 0.2);
        // Smaller alpha → more spread.
        assert!(g.rates()[0] < before[0]);
        assert!(g.rates()[3] > before[3]);
    }

    #[test]
    fn cat_uniform() {
        let c = CatRates::uniform(10);
        assert_eq!(c.n_categories(), 1);
        assert_eq!(c.rate_of(7), 1.0);
    }

    #[test]
    fn cat_clustering_respects_max_categories() {
        let rates: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
        let c = CatRates::from_pattern_rates(&rates, 8).unwrap();
        assert!(c.n_categories() <= 8);
        assert_eq!(c.pattern_category().len(), 100);
        // Category rates must be increasing in bucket order.
        for w in c.category_rates().windows(2) {
            assert!(w[0] < w[1]);
        }
        // Every pattern's category rate is "close" to its own rate.
        for (p, &r) in rates.iter().enumerate() {
            let cr = c.rate_of(p);
            assert!((cr - r).abs() < 2.0, "pattern {p}: rate {r} vs category {cr}");
        }
    }

    #[test]
    fn cat_identical_rates_collapse_to_one_category() {
        let c = CatRates::from_pattern_rates(&[1.5; 20], 4).unwrap();
        assert_eq!(c.n_categories(), 1);
        assert!((c.category_rates()[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cat_rejects_invalid() {
        assert!(CatRates::from_pattern_rates(&[], 4).is_err());
        assert!(CatRates::from_pattern_rates(&[1.0], 0).is_err());
        assert!(CatRates::from_pattern_rates(&[1.0, -2.0], 4).is_err());
        assert!(CatRates::from_pattern_rates(&[1.0, f64::NAN], 4).is_err());
    }
}
