//! Time-reversible nucleotide substitution models.
//!
//! The General Time-Reversible (GTR) model is parameterized by base
//! frequencies `π` and six symmetric exchangeabilities `r`. The instantaneous
//! rate matrix `Q` (with `Q_ij = r_ij π_j` for `i ≠ j`) is normalized to one
//! expected substitution per unit time and decomposed via a similarity
//! transform into a *symmetric* eigenproblem:
//!
//! ```text
//! B = D^{1/2} Q D^{-1/2}   with D = diag(π)   (B symmetric)
//! B = V Λ Vᵀ  ⇒  P(t) = e^{Qt} = D^{-1/2} V e^{Λt} Vᵀ D^{1/2}
//! ```
//!
//! `newview`'s "small loop" (paper §5.2.5, 4–25 iterations, 36 FLOPs each)
//! is exactly the reconstruction of the per-rate-category `P(r·t)` from this
//! decomposition — one `exp` per eigenvalue per category, the calls §5.2.2
//! replaces with the SDK exponential.

pub mod rates;

pub use rates::{CatRates, GammaRates};

use crate::alphabet::STATES;
use crate::error::{PhyloError, Result};
use crate::math::{fast_exp, jacobi_eigen};

/// Which exponential implementation `P(t)` reconstruction uses — the paper's
/// §5.2.2 optimization surfaced as a runtime switch so both variants can be
/// benchmarked and priced by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpImpl {
    /// The platform libm `exp` (the paper's unoptimized starting point).
    Libm,
    /// The Cell-SDK-style numerical exp ([`crate::math::fast_exp`]).
    #[default]
    Sdk,
}

impl ExpImpl {
    #[inline]
    pub fn eval(self, x: f64) -> f64 {
        match self {
            ExpImpl::Libm => x.exp(),
            ExpImpl::Sdk => fast_exp(x),
        }
    }
}

/// Eigendecomposition of a normalized reversible rate matrix, cached for
/// fast `P(t)` reconstruction.
#[derive(Debug, Clone)]
pub struct ModelEigen {
    /// Eigenvalues of `Q` (all ≤ 0; the largest is 0 for the stationary mode).
    pub values: [f64; STATES],
    /// `U = D^{-1/2} V`, row-major: `u[i][k]`.
    pub u: [[f64; STATES]; STATES],
    /// `W = Vᵀ D^{1/2}`, row-major: `w[k][j]`.
    pub w: [[f64; STATES]; STATES],
}

/// A reversible nucleotide substitution model (GTR and its special cases).
#[derive(Debug, Clone)]
pub struct SubstModel {
    freqs: [f64; STATES],
    /// Exchangeabilities in order AC, AG, AT, CG, CT, GT.
    exchange: [f64; 6],
    eigen: ModelEigen,
}

/// Order of the exchangeability parameters.
pub const EXCHANGE_NAMES: [&str; 6] = ["AC", "AG", "AT", "CG", "CT", "GT"];

impl SubstModel {
    /// General Time-Reversible model with explicit frequencies and
    /// exchangeabilities (order AC, AG, AT, CG, CT, GT; GT is conventionally
    /// fixed to 1 during optimization).
    pub fn gtr(freqs: [f64; STATES], exchange: [f64; 6]) -> Result<SubstModel> {
        validate_freqs(&freqs)?;
        for (i, &r) in exchange.iter().enumerate() {
            if !r.is_finite() || r <= 0.0 {
                return Err(PhyloError::InvalidParameter {
                    name: EXCHANGE_NAMES[i],
                    value: r,
                    reason: "exchangeability must be positive and finite",
                });
            }
        }
        let eigen = decompose(&freqs, &exchange);
        Ok(SubstModel { freqs, exchange, eigen })
    }

    /// Jukes–Cantor: equal frequencies, equal exchangeabilities.
    pub fn jc69() -> SubstModel {
        SubstModel::gtr([0.25; 4], [1.0; 6]).expect("JC69 parameters are valid")
    }

    /// HKY85: arbitrary frequencies, one transition/transversion ratio κ
    /// (transitions are A↔G and C↔T).
    pub fn hky85(freqs: [f64; STATES], kappa: f64) -> Result<SubstModel> {
        if !kappa.is_finite() || kappa <= 0.0 {
            return Err(PhyloError::InvalidParameter {
                name: "kappa",
                value: kappa,
                reason: "transition/transversion ratio must be positive",
            });
        }
        //           AC   AG     AT   CG   CT     GT
        SubstModel::gtr(freqs, [1.0, kappa, 1.0, 1.0, kappa, 1.0])
    }

    /// Stationary base frequencies.
    pub fn freqs(&self) -> &[f64; STATES] {
        &self.freqs
    }

    /// Exchangeabilities (AC, AG, AT, CG, CT, GT).
    pub fn exchange(&self) -> &[f64; 6] {
        &self.exchange
    }

    /// The cached eigendecomposition.
    pub fn eigen(&self) -> &ModelEigen {
        &self.eigen
    }

    /// Replace one exchangeability and refresh the decomposition (used by
    /// the model optimizer).
    pub fn set_exchange(&mut self, index: usize, value: f64) -> Result<()> {
        if !value.is_finite() || value <= 0.0 {
            return Err(PhyloError::InvalidParameter {
                name: EXCHANGE_NAMES[index],
                value,
                reason: "exchangeability must be positive and finite",
            });
        }
        self.exchange[index] = value;
        self.eigen = decompose(&self.freqs, &self.exchange);
        Ok(())
    }

    /// Transition probability matrix `P(t)` for branch length `t` scaled by
    /// `rate` (the rate-category multiplier), using the configured exp.
    ///
    /// Returns a row-major matrix: `p[from][to]`.
    pub fn transition_matrix(&self, t: f64, rate: f64, exp_impl: ExpImpl) -> [[f64; 4]; 4] {
        let e = &self.eigen;
        let mut exps = [0.0; STATES];
        for k in 0..STATES {
            exps[k] = exp_impl.eval(e.values[k] * rate * t);
        }
        let mut p = [[0.0; STATES]; STATES];
        for i in 0..STATES {
            for j in 0..STATES {
                let mut acc = 0.0;
                for k in 0..STATES {
                    acc += e.u[i][k] * exps[k] * e.w[k][j];
                }
                // Clamp tiny negative values from round-off: probabilities
                // feed into logarithms downstream.
                p[i][j] = acc.max(0.0);
            }
        }
        p
    }

    /// Transform a conditional-likelihood 4-vector into the eigenbasis
    /// weighted by `D^{1/2}` (i.e. `W·x`). Two such transforms multiplied
    /// componentwise give the `makenewz` sum table: the per-site likelihood
    /// at a branch is `Σ_k (W x_p)_k (W x_q)_k e^{λ_k r t}`.
    #[inline]
    pub fn w_transform(&self, x: &[f64; STATES]) -> [f64; STATES] {
        let w = &self.eigen.w;
        let mut out = [0.0; STATES];
        for k in 0..STATES {
            out[k] = w[k][0] * x[0] + w[k][1] * x[1] + w[k][2] * x[2] + w[k][3] * x[3];
        }
        out
    }
}

fn validate_freqs(freqs: &[f64; STATES]) -> Result<()> {
    let sum: f64 = freqs.iter().sum();
    for &f in freqs {
        if !f.is_finite() || f <= 0.0 {
            return Err(PhyloError::InvalidParameter {
                name: "base frequency",
                value: f,
                reason: "frequencies must be positive",
            });
        }
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(PhyloError::InvalidParameter {
            name: "base frequencies",
            value: sum,
            reason: "frequencies must sum to 1",
        });
    }
    Ok(())
}

/// Build the normalized rate matrix, symmetrize, and decompose.
fn decompose(freqs: &[f64; STATES], exchange: &[f64; 6]) -> ModelEigen {
    // Assemble the symmetric exchangeability matrix r[i][j].
    let mut r = [[0.0; STATES]; STATES];
    let order = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    for (idx, &(i, j)) in order.iter().enumerate() {
        r[i][j] = exchange[idx];
        r[j][i] = exchange[idx];
    }

    // Q_ij = r_ij π_j (i ≠ j), diagonal = −row sum.
    let mut q = [[0.0; STATES]; STATES];
    for i in 0..STATES {
        let mut row = 0.0;
        for j in 0..STATES {
            if i != j {
                q[i][j] = r[i][j] * freqs[j];
                row += q[i][j];
            }
        }
        q[i][i] = -row;
    }

    // Normalize to one expected substitution per unit time:
    // μ = −Σ_i π_i Q_ii.
    let mu: f64 = -(0..STATES).map(|i| freqs[i] * q[i][i]).sum::<f64>();
    for row in &mut q {
        for x in row.iter_mut() {
            *x /= mu;
        }
    }

    // Symmetrize: B_ij = √(π_i) Q_ij / √(π_j); eigendecompose B.
    let sqrt_pi: Vec<f64> = freqs.iter().map(|&f| f.sqrt()).collect();
    let mut b = vec![0.0; STATES * STATES];
    for i in 0..STATES {
        for j in 0..STATES {
            b[i * STATES + j] = sqrt_pi[i] * q[i][j] / sqrt_pi[j];
        }
    }
    // Enforce exact symmetry against round-off before the Jacobi sweep.
    for i in 0..STATES {
        for j in (i + 1)..STATES {
            let m = 0.5 * (b[i * STATES + j] + b[j * STATES + i]);
            b[i * STATES + j] = m;
            b[j * STATES + i] = m;
        }
    }
    let eig = jacobi_eigen(&b, STATES);

    let mut values = [0.0; STATES];
    let mut u = [[0.0; STATES]; STATES];
    let mut w = [[0.0; STATES]; STATES];
    for k in 0..STATES {
        values[k] = eig.values[k];
        let v = eig.vector(k);
        for i in 0..STATES {
            u[i][k] = v[i] / sqrt_pi[i];
            w[k][i] = v[i] * sqrt_pi[i];
        }
    }
    ModelEigen { values, u, w }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_gtr() -> SubstModel {
        SubstModel::gtr([0.3, 0.2, 0.25, 0.25], [1.2, 3.1, 0.8, 0.9, 3.4, 1.0]).unwrap()
    }

    fn mat_mul(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
        let mut c = [[0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    c[i][j] += a[i][k] * b[k][j];
                }
            }
        }
        c
    }

    #[test]
    fn rows_sum_to_one() {
        let m = example_gtr();
        for &t in &[0.0, 0.01, 0.1, 1.0, 10.0] {
            let p = m.transition_matrix(t, 1.0, ExpImpl::Libm);
            for (i, row) in p.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-10, "t={t}, row {i}: sum {s}");
            }
        }
    }

    #[test]
    fn identity_at_zero() {
        let p = example_gtr().transition_matrix(0.0, 1.0, ExpImpl::Sdk);
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((p[i][j] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn converges_to_stationary() {
        let m = example_gtr();
        let p = m.transition_matrix(500.0, 1.0, ExpImpl::Libm);
        for row in &p {
            for j in 0..4 {
                assert!((row[j] - m.freqs()[j]).abs() < 1e-8, "{row:?} vs {:?}", m.freqs());
            }
        }
    }

    #[test]
    fn detailed_balance() {
        // Reversibility: π_i P_ij(t) = π_j P_ji(t).
        let m = example_gtr();
        let p = m.transition_matrix(0.37, 1.0, ExpImpl::Libm);
        for i in 0..4 {
            for j in 0..4 {
                let lhs = m.freqs()[i] * p[i][j];
                let rhs = m.freqs()[j] * p[j][i];
                assert!((lhs - rhs).abs() < 1e-12, "({i},{j}): {lhs} vs {rhs}");
            }
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        // P(s + t) = P(s) · P(t).
        let m = example_gtr();
        let p_s = m.transition_matrix(0.2, 1.0, ExpImpl::Libm);
        let p_t = m.transition_matrix(0.5, 1.0, ExpImpl::Libm);
        let p_st = m.transition_matrix(0.7, 1.0, ExpImpl::Libm);
        let prod = mat_mul(&p_s, &p_t);
        for i in 0..4 {
            for j in 0..4 {
                assert!((prod[i][j] - p_st[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rate_scales_time() {
        let m = example_gtr();
        let a = m.transition_matrix(0.3, 2.0, ExpImpl::Libm);
        let b = m.transition_matrix(0.6, 1.0, ExpImpl::Libm);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[i][j] - b[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn normalized_to_one_substitution_per_unit_time() {
        // d/dt Σ_i π_i P_ii(t) at t = 0 should be −1 (unit substitution rate).
        let m = example_gtr();
        let h = 1e-6;
        let p = m.transition_matrix(h, 1.0, ExpImpl::Libm);
        let diag: f64 = (0..4).map(|i| m.freqs()[i] * p[i][i]).sum();
        let deriv = (diag - 1.0) / h;
        assert!((deriv + 1.0).abs() < 1e-4, "derivative {deriv}");
    }

    #[test]
    fn eigenvalues_nonpositive_with_one_zero() {
        let m = example_gtr();
        let vals = m.eigen().values;
        assert!(vals.iter().all(|&v| v < 1e-10), "{vals:?}");
        assert!(vals.iter().any(|&v| v.abs() < 1e-10), "{vals:?}");
    }

    #[test]
    fn sdk_exp_matches_libm_transition_matrices() {
        let m = example_gtr();
        for &t in &[0.001, 0.05, 0.9, 4.0] {
            let a = m.transition_matrix(t, 0.7, ExpImpl::Libm);
            let b = m.transition_matrix(t, 0.7, ExpImpl::Sdk);
            for i in 0..4 {
                for j in 0..4 {
                    assert!((a[i][j] - b[i][j]).abs() < 1e-12, "t={t}, ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn jc69_closed_form() {
        // JC69: P_ii(t) = 1/4 + 3/4 e^{-4t/3}, P_ij = 1/4 − 1/4 e^{-4t/3}.
        let m = SubstModel::jc69();
        for &t in &[0.05, 0.3, 1.0] {
            let p = m.transition_matrix(t, 1.0, ExpImpl::Libm);
            let e = (-4.0 * t / 3.0f64).exp();
            for i in 0..4 {
                for j in 0..4 {
                    let expected = if i == j { 0.25 + 0.75 * e } else { 0.25 - 0.25 * e };
                    assert!((p[i][j] - expected).abs() < 1e-12, "t={t} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn hky_transitions_exceed_transversions() {
        let m = SubstModel::hky85([0.25; 4], 4.0).unwrap();
        let p = m.transition_matrix(0.2, 1.0, ExpImpl::Libm);
        // A→G (transition) should exceed A→C (transversion).
        assert!(p[0][2] > p[0][1]);
        // C→T transition exceeds C→G transversion.
        assert!(p[1][3] > p[1][2]);
    }

    #[test]
    fn w_transform_reconstructs_branch_likelihood() {
        // Σ_k (W x)_k (W y)_k e^{λ_k t} must equal xᵀ D P(t) y.
        let m = example_gtr();
        let x = [0.9, 0.05, 0.03, 0.02];
        let y = [0.1, 0.2, 0.3, 0.4];
        let t = 0.42;
        let wx = m.w_transform(&x);
        let wy = m.w_transform(&y);
        let via_eigen: f64 = (0..4).map(|k| wx[k] * wy[k] * (m.eigen().values[k] * t).exp()).sum();
        let p = m.transition_matrix(t, 1.0, ExpImpl::Libm);
        let mut direct = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                direct += m.freqs()[i] * x[i] * p[i][j] * y[j];
            }
        }
        assert!((via_eigen - direct).abs() < 1e-12, "{via_eigen} vs {direct}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SubstModel::gtr([0.5, 0.5, 0.1, 0.1], [1.0; 6]).is_err());
        assert!(SubstModel::gtr([0.25; 4], [1.0, -1.0, 1.0, 1.0, 1.0, 1.0]).is_err());
        assert!(SubstModel::gtr([0.25, 0.25, 0.25, 0.0], [1.0; 6]).is_err());
        assert!(SubstModel::hky85([0.25; 4], 0.0).is_err());
        let mut m = SubstModel::jc69();
        assert!(m.set_exchange(0, f64::NAN).is_err());
        assert!(m.set_exchange(1, 2.0).is_ok());
        assert_eq!(m.exchange()[1], 2.0);
    }
}
