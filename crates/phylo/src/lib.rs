//! # phylo — maximum-likelihood phylogenetic inference
//!
//! A from-scratch Rust implementation of an RAxML-class maximum-likelihood
//! (ML) phylogenetic tree inference engine, built as the application substrate
//! for reproducing *"RAxML-Cell: Parallel Phylogenetic Tree Inference on the
//! Cell Broadband Engine"* (Blagojevic et al., IPPS 2007).
//!
//! The crate provides everything a real phylogenetic analysis needs:
//!
//! * **Data**: DNA alignments with IUPAC ambiguity codes, site-pattern
//!   compression, FASTA/PHYLIP/Newick I/O ([`alphabet`], [`alignment`],
//!   [`io`]).
//! * **Models**: time-reversible nucleotide substitution models (JC69, HKY85,
//!   GTR) with Γ-distributed and CAT rate heterogeneity ([`model`]).
//! * **Likelihood**: the three kernels the paper offloads to the Cell SPEs —
//!   `newview` (partial likelihood vectors, four case-specialized paths),
//!   `evaluate` (log-likelihood at a branch), and `makenewz` (Newton–Raphson
//!   branch-length optimization) — each in scalar and 2-lane vectorized form
//!   ([`likelihood`]).
//! * **Search**: randomized stepwise-addition parsimony starting trees and
//!   SPR-based rapid hill climbing ([`search`]).
//! * **Analyses**: multiple inferences, non-parametric bootstrapping, and
//!   bipartition support values ([`bootstrap`]).
//! * **Parallelism**: rayon loop-level parallelism over site patterns (the
//!   RAxML-OMP analogue) with bit-reproducible reductions ([`parallel`]),
//!   and a work-stealing inference farm for embarrassingly parallel
//!   replicates — bounded submission, deterministic result order, typed
//!   per-job failures ([`farm`]).
//! * **Instrumentation**: a kernel-invocation trace ([`trace`]) consumed by
//!   the `cellsim` crate to replay workloads on the simulated Cell.
//! * **Workloads**: a sequence-evolution simulator generating the `42_SC`
//!   equivalent dataset used throughout the paper ([`simulate`]).
//! * **Proteins**: 20-state amino-acid likelihoods — the Poisson model,
//!   PAML-format empirical matrices, and a general-N evaluator
//!   ([`protein`]).
//!
//! ## Quick start
//!
//! ```
//! use phylo::prelude::*;
//!
//! // Generate a small synthetic dataset (8 taxa, 300 sites).
//! let workload = phylo::simulate::SimulationConfig::new(8, 300, 42).generate();
//! let alignment = workload.alignment;
//!
//! // Infer a maximum-likelihood tree.
//! let request = InferenceRequest::new(SearchConfig::fast(), 1);
//! let result = run_inference(&alignment, &request, InferenceOptions::new()).unwrap().result;
//! assert!(result.log_likelihood.is_finite());
//! println!("best tree: {}", result.tree.to_newick(&alignment.taxon_names()));
//! ```

// Indexed loops over the 4-state arrays mirror the kernel mathematics
// (states, rate categories, eigenvalues); iterator adaptors would obscure
// the correspondence with the paper's loop structure.
#![allow(clippy::needless_range_loop)]

pub mod alignment;
pub mod alphabet;
pub mod bipartitions;
pub mod bootstrap;
pub mod checkpoint;
pub mod error;
pub mod farm;
pub mod io;
pub mod likelihood;
pub mod math;
pub mod model;
pub mod parallel;
pub mod protein;
pub mod search;
pub mod simulate;
pub mod trace;
pub mod tree;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::alignment::{Alignment, PatternAlignment};
    pub use crate::alphabet::{encode_base, DnaCode};
    pub use crate::bipartitions::robinson_foulds;
    pub use crate::bootstrap::{
        AnalysisResult, BootstrapAnalysis, BootstrapCheckpointPolicy, SupportTree,
    };
    pub use crate::checkpoint::{BootstrapStore, SearchCheckpointer};
    pub use crate::error::PhyloError;
    pub use crate::farm::{
        run_batch, run_farm, FarmConfig, FarmError, FarmEvent, FarmFaultPlan, FarmObserver,
        FarmOutcome, FarmStats,
    };
    pub use crate::io::{parse_fasta, parse_newick, parse_phylip, write_phylip};
    pub use crate::likelihood::engine::LikelihoodEngine;
    pub use crate::likelihood::{
        LikelihoodConfig, LikelihoodWorkspace, TraversalOps, WorkspaceOptions, WorkspacePool,
    };
    pub use crate::model::{GammaRates, SubstModel};
    pub use crate::search::{
        run_inference, InferenceOptions, InferenceOutcome, InferenceRequest, SearchConfig,
        SearchConfigBuilder, SearchResult,
    };
    // Deprecated variant family, re-exported so existing downstream `use
    // phylo::prelude::*` code keeps compiling during the migration window.
    #[allow(deprecated)]
    pub use crate::search::{
        infer_ml_tree, infer_ml_tree_checked, infer_ml_tree_checkpointed, infer_ml_tree_pooled,
        infer_ml_tree_traced,
    };
    pub use crate::simulate::SimulationConfig;
    pub use crate::trace::Trace;
    pub use crate::tree::{NodeId, Tree};
}
