//! Multiple sequence alignments and site-pattern compression.
//!
//! ML implementations never iterate over raw alignment columns: identical
//! columns ("site patterns") contribute identical per-site likelihoods, so
//! they are collapsed into one pattern with an integer weight. For the
//! paper's `42_SC` input (42 taxa × 1167 sites) this yields ~250 distinct
//! patterns — the trip count of the big `newview` loop the paper vectorizes.

use crate::alphabet::{decode_base, encode_sequence, DnaCode};
use crate::error::{PhyloError, Result};
use rand::Rng;
use std::collections::HashMap;

/// An uncompressed multiple sequence alignment (taxon-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    names: Vec<String>,
    /// `rows[t][site]` is the encoded base of taxon `t` at column `site`.
    rows: Vec<Vec<DnaCode>>,
    n_sites: usize,
}

impl Alignment {
    /// Build an alignment from (name, sequence-string) pairs.
    pub fn from_named_sequences<S: AsRef<str>, T: AsRef<str>>(
        pairs: &[(S, T)],
    ) -> Result<Alignment> {
        if pairs.is_empty() {
            return Err(PhyloError::TooFewTaxa { found: 0, required: 1 });
        }
        let mut names = Vec::with_capacity(pairs.len());
        let mut rows = Vec::with_capacity(pairs.len());
        let mut seen = HashMap::new();
        let n_sites = pairs[0].1.as_ref().chars().count();
        for (name, seq) in pairs {
            let name = name.as_ref().to_string();
            if seen.insert(name.clone(), ()).is_some() {
                return Err(PhyloError::DuplicateTaxon(name));
            }
            let row = encode_sequence(&name, seq.as_ref())?;
            if row.len() != n_sites {
                return Err(PhyloError::RaggedAlignment {
                    taxon: name,
                    expected: n_sites,
                    found: row.len(),
                });
            }
            names.push(name);
            rows.push(row);
        }
        if n_sites == 0 {
            return Err(PhyloError::EmptyAlignment);
        }
        Ok(Alignment { names, rows, n_sites })
    }

    /// Build directly from already-encoded rows.
    pub fn from_encoded(names: Vec<String>, rows: Vec<Vec<DnaCode>>) -> Result<Alignment> {
        if names.len() != rows.len() || names.is_empty() {
            return Err(PhyloError::TooFewTaxa { found: names.len().min(rows.len()), required: 1 });
        }
        let n_sites = rows[0].len();
        if n_sites == 0 {
            return Err(PhyloError::EmptyAlignment);
        }
        for (name, row) in names.iter().zip(&rows) {
            if row.len() != n_sites {
                return Err(PhyloError::RaggedAlignment {
                    taxon: name.clone(),
                    expected: n_sites,
                    found: row.len(),
                });
            }
        }
        let mut seen = HashMap::new();
        for name in &names {
            if seen.insert(name.clone(), ()).is_some() {
                return Err(PhyloError::DuplicateTaxon(name.clone()));
            }
        }
        Ok(Alignment { names, rows, n_sites })
    }

    /// Number of taxa (rows).
    pub fn n_taxa(&self) -> usize {
        self.names.len()
    }

    /// Number of columns (sites).
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Taxon names in row order.
    pub fn taxon_names(&self) -> &[String] {
        &self.names
    }

    /// Encoded row of one taxon.
    pub fn row(&self, taxon: usize) -> &[DnaCode] {
        &self.rows[taxon]
    }

    /// The decoded sequence string of one taxon.
    pub fn sequence_string(&self, taxon: usize) -> String {
        self.rows[taxon].iter().map(|&c| decode_base(c)).collect()
    }

    /// One alignment column as a taxon-ordered vector.
    pub fn column(&self, site: usize) -> Vec<DnaCode> {
        self.rows.iter().map(|r| r[site]).collect()
    }

    /// Empirical base frequencies (A, C, G, T), counting ambiguity codes
    /// fractionally and ignoring full gaps.
    pub fn empirical_base_frequencies(&self) -> [f64; 4] {
        let mut counts = [0.0f64; 4];
        for row in &self.rows {
            for &code in row {
                let n = code.count_ones() as f64;
                if n == 4.0 {
                    continue; // gap/N carries no information
                }
                for s in 0..4 {
                    if code & (1 << s) != 0 {
                        counts[s] += 1.0 / n;
                    }
                }
            }
        }
        let total: f64 = counts.iter().sum();
        if total == 0.0 {
            return [0.25; 4];
        }
        // Guard against zero frequencies, which break reversible models.
        let mut freqs = [0.0; 4];
        for s in 0..4 {
            freqs[s] = (counts[s] / total).max(1e-6);
        }
        let norm: f64 = freqs.iter().sum();
        for f in &mut freqs {
            *f /= norm;
        }
        freqs
    }

    /// Compress identical columns into weighted site patterns.
    pub fn compress(&self) -> PatternAlignment {
        let mut index: HashMap<Vec<DnaCode>, usize> = HashMap::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut site_to_pattern = Vec::with_capacity(self.n_sites);
        let mut patterns_cols: Vec<Vec<DnaCode>> = Vec::new();
        for site in 0..self.n_sites {
            let col = self.column(site);
            let id = *index.entry(col.clone()).or_insert_with(|| {
                patterns_cols.push(col);
                weights.push(0.0);
                weights.len() - 1
            });
            weights[id] += 1.0;
            site_to_pattern.push(id);
        }
        // Re-layout taxon-major for kernel access.
        let n_patterns = patterns_cols.len();
        let mut tips = vec![vec![0u8; n_patterns]; self.n_taxa()];
        for (p, col) in patterns_cols.iter().enumerate() {
            for (t, &code) in col.iter().enumerate() {
                tips[t][p] = code;
            }
        }
        PatternAlignment {
            names: self.names.clone(),
            tips,
            weights,
            site_to_pattern,
            n_sites: self.n_sites,
            base_frequencies: self.empirical_base_frequencies(),
        }
    }
}

/// A pattern-compressed alignment: the form consumed by the likelihood
/// kernels. Column weights may be re-weighted for bootstrapping (the
/// paper's §3.1: "a certain amount of columns is re-weighted").
#[derive(Debug, Clone, PartialEq)]
pub struct PatternAlignment {
    names: Vec<String>,
    /// `tips[t][p]` is the encoded base of taxon `t` at pattern `p`.
    tips: Vec<Vec<DnaCode>>,
    /// Pattern weights; initially the column multiplicities.
    weights: Vec<f64>,
    /// Maps each original column to its pattern.
    site_to_pattern: Vec<usize>,
    n_sites: usize,
    base_frequencies: [f64; 4],
}

impl PatternAlignment {
    /// Number of distinct site patterns.
    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }

    /// Number of original alignment columns.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.names.len()
    }

    /// Taxon names in row order.
    pub fn taxon_names(&self) -> &[String] {
        &self.names
    }

    /// Encoded pattern row for one taxon.
    pub fn tip_row(&self, taxon: usize) -> &[DnaCode] {
        &self.tips[taxon]
    }

    /// Current pattern weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of pattern weights (= effective number of sites).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Pattern index of each original column.
    pub fn site_to_pattern(&self) -> &[usize] {
        &self.site_to_pattern
    }

    /// Empirical base frequencies carried over from the raw alignment.
    pub fn base_frequencies(&self) -> [f64; 4] {
        self.base_frequencies
    }

    /// Replace the pattern weights (used by bootstrapping). The weight
    /// vector must have one entry per pattern.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.n_patterns(), "weight vector length mismatch");
        self.weights = weights;
    }

    /// Draw non-parametric bootstrap weights: `n_sites` columns are sampled
    /// with replacement from the original alignment and mapped onto
    /// patterns. Returns a weight vector summing to `n_sites`.
    pub fn bootstrap_weights<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let mut weights = vec![0.0; self.n_patterns()];
        for _ in 0..self.n_sites {
            let col = rng.gen_range(0..self.n_sites);
            weights[self.site_to_pattern[col]] += 1.0;
        }
        weights
    }

    /// A copy of this alignment with bootstrap-resampled weights.
    pub fn bootstrap_replicate<R: Rng>(&self, rng: &mut R) -> PatternAlignment {
        let mut rep = self.clone();
        rep.weights = self.bootstrap_weights(rng);
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Alignment {
        Alignment::from_named_sequences(&[
            ("t1", "ACGTACGT"),
            ("t2", "ACGTACGA"),
            ("t3", "ACGAACGA"),
        ])
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let a = toy();
        assert_eq!(a.n_taxa(), 3);
        assert_eq!(a.n_sites(), 8);
        assert_eq!(a.taxon_names(), &["t1", "t2", "t3"]);
    }

    #[test]
    fn ragged_rejected() {
        let err = Alignment::from_named_sequences(&[("a", "ACGT"), ("b", "ACG")]).unwrap_err();
        assert!(matches!(err, PhyloError::RaggedAlignment { .. }));
    }

    #[test]
    fn duplicate_taxon_rejected() {
        let err = Alignment::from_named_sequences(&[("a", "ACGT"), ("a", "ACGT")]).unwrap_err();
        assert_eq!(err, PhyloError::DuplicateTaxon("a".into()));
    }

    #[test]
    fn empty_rejected() {
        let err = Alignment::from_named_sequences(&[("a", ""), ("b", "")]).unwrap_err();
        assert_eq!(err, PhyloError::EmptyAlignment);
    }

    #[test]
    fn compression_preserves_total_weight_and_columns() {
        let a = toy();
        let p = a.compress();
        assert_eq!(p.total_weight(), a.n_sites() as f64);
        // Reconstruct every column through the pattern map.
        for site in 0..a.n_sites() {
            let pat = p.site_to_pattern()[site];
            for taxon in 0..a.n_taxa() {
                assert_eq!(p.tip_row(taxon)[pat], a.row(taxon)[site]);
            }
        }
    }

    #[test]
    fn identical_columns_collapse() {
        // Columns: A/A, A/A, C/C -> 2 patterns.
        let a = Alignment::from_named_sequences(&[("x", "AAC"), ("y", "AAC")]).unwrap();
        let p = a.compress();
        assert_eq!(p.n_patterns(), 2);
        let mut w = p.weights().to_vec();
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(w, vec![1.0, 2.0]);
    }

    #[test]
    fn base_frequencies_sum_to_one_and_reflect_content() {
        let a = Alignment::from_named_sequences(&[("x", "AAAA"), ("y", "AAAC")]).unwrap();
        let f = a.empirical_base_frequencies();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(f[0] > f[1], "A must dominate: {f:?}");
        assert!(f[2] > 0.0 && f[3] > 0.0, "frequencies are kept positive");
    }

    #[test]
    fn gaps_do_not_bias_frequencies() {
        let a = Alignment::from_named_sequences(&[("x", "AC--"), ("y", "AC-N")]).unwrap();
        let f = a.empirical_base_frequencies();
        assert!((f[0] - f[1]).abs() < 1e-12, "A and C appear equally often: {f:?}");
    }

    #[test]
    fn bootstrap_weights_sum_to_site_count() {
        let p = toy().compress();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let w = p.bootstrap_weights(&mut rng);
            assert_eq!(w.iter().sum::<f64>(), p.n_sites() as f64);
            assert_eq!(w.len(), p.n_patterns());
        }
    }

    #[test]
    fn bootstrap_replicate_differs_but_shares_patterns() {
        let p = toy().compress();
        let mut rng = StdRng::seed_from_u64(3);
        let rep = p.bootstrap_replicate(&mut rng);
        assert_eq!(rep.n_patterns(), p.n_patterns());
        assert_eq!(rep.tip_row(0), p.tip_row(0));
    }

    #[test]
    fn sequence_string_round_trip() {
        let a = toy();
        assert_eq!(a.sequence_string(0), "ACGTACGT");
    }
}
