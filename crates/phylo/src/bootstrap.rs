//! Full analyses: multiple inferences + non-parametric bootstrapping under a
//! thread master–worker (the paper's §3.1 MPI scheme, in-process).
//!
//! A "publishable" reconstruction runs 20–200 distinct inferences on the
//! original alignment (to find the best-known ML tree) plus 100–1,000
//! bootstrap replicates on re-weighted alignments (to attach confidence
//! values to the tree's branches). All of these are independent — the
//! embarrassing parallelism the Cell port schedules across SPEs.

use crate::alignment::PatternAlignment;
use crate::bipartitions::split_support;
use crate::likelihood::WorkspacePool;
use crate::parallel::run_master_worker;
use crate::search::{infer_ml_tree_pooled, SearchConfig, SearchResult};
use crate::trace::Trace;
use crate::tree::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Configuration of a complete analysis.
#[derive(Debug, Clone)]
pub struct BootstrapAnalysis {
    /// Distinct inferences on the original alignment.
    pub n_inferences: usize,
    /// Bootstrap replicates on re-weighted alignments.
    pub n_bootstraps: usize,
    /// Worker threads (the MPI "workers" of the paper).
    pub n_workers: usize,
    /// Master seed; every job derives its own deterministic seed.
    pub seed: u64,
    /// Per-inference search settings.
    pub search: SearchConfig,
}

/// The best tree with per-internal-edge bootstrap support.
#[derive(Debug, Clone)]
pub struct SupportTree {
    /// The best-scoring ML tree.
    pub tree: Tree,
    /// Support fraction (0–1) for each internal edge.
    pub support: Vec<((NodeId, NodeId), f64)>,
}

impl SupportTree {
    /// Support of a given internal edge, if it is one.
    pub fn support_of(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.support
            .iter()
            .find(|((x, y), _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|&(_, s)| s)
    }

    /// Newick string with bootstrap support values as internal node labels
    /// (the standard `(...)support:length` convention, support in percent).
    pub fn to_newick_with_support(&self, names: &[String]) -> String {
        let tree = &self.tree;
        let root = names.len(); // first inner node
        let mut s = String::new();
        s.push('(');
        let kids: Vec<(NodeId, f64)> = tree.neighbors_of(root).collect();
        for (i, &(child, len)) in kids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            self.write_rec(child, root, len, names, &mut s);
        }
        s.push_str(");");
        s
    }

    fn write_rec(
        &self,
        node: NodeId,
        parent: NodeId,
        len: f64,
        names: &[String],
        out: &mut String,
    ) {
        if self.tree.is_tip(node) {
            let _ = write!(out, "{}:{:.9}", names[node], len);
            return;
        }
        out.push('(');
        let mut first = true;
        for (child, clen) in self.tree.neighbors_of(node) {
            if child == parent {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            self.write_rec(child, node, clen, names, out);
        }
        out.push(')');
        if let Some(sup) = self.support_of(node, parent) {
            let _ = write!(out, "{:.0}", sup * 100.0);
        }
        let _ = write!(out, ":{:.9}", len);
    }
}

/// Result of a complete analysis.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Best tree over all inferences, with support values.
    pub best: SupportTree,
    /// Log-likelihood of the best tree.
    pub best_log_likelihood: f64,
    /// Log-likelihoods of every inference, in job order.
    pub inference_log_likelihoods: Vec<f64>,
    /// Final trees of the bootstrap replicates.
    pub bootstrap_trees: Vec<Tree>,
    /// Merged kernel trace over all jobs.
    pub trace: Trace,
}

impl AnalysisResult {
    /// Majority-rule consensus of the bootstrap replicate trees (the other
    /// standard way — besides support values on the best tree — to
    /// summarize a bootstrap analysis).
    pub fn consensus(&self, threshold: f64) -> crate::bipartitions::Consensus {
        crate::bipartitions::majority_rule_consensus(&self.bootstrap_trees, threshold)
    }
}

enum Job {
    Inference { seed: u64 },
    Bootstrap { seed: u64 },
}

impl BootstrapAnalysis {
    /// Sensible defaults for a quick analysis.
    pub fn quick(seed: u64) -> BootstrapAnalysis {
        BootstrapAnalysis {
            n_inferences: 3,
            n_bootstraps: 10,
            n_workers: 4,
            seed,
            search: SearchConfig::fast(),
        }
    }

    /// Run the full analysis on an alignment.
    pub fn run(&self, aln: &PatternAlignment) -> AnalysisResult {
        assert!(self.n_inferences >= 1, "need at least one inference to pick a best tree");
        let mut jobs = Vec::with_capacity(self.n_inferences + self.n_bootstraps);
        for i in 0..self.n_inferences {
            jobs.push(Job::Inference { seed: self.seed.wrapping_add(i as u64) });
        }
        for i in 0..self.n_bootstraps {
            jobs.push(Job::Bootstrap {
                seed: self.seed.wrapping_add(0x1000_0000).wrapping_add(i as u64),
            });
        }

        // Each worker checks a workspace arena out of the pool per job and
        // returns it afterwards: `n_workers` arenas serve all replicates, so
        // steady-state jobs reuse the previous job's buffers instead of
        // reallocating every partial vector (results are bit-identical).
        let search = &self.search;
        let pool = WorkspacePool::new();
        let results: Vec<SearchResult> = run_master_worker(jobs, self.n_workers, |_, job| {
            let ws = pool.checkout();
            let (result, ws) = match job {
                Job::Inference { seed } => infer_ml_tree_pooled(aln, search, seed, false, ws),
                Job::Bootstrap { seed } => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let replicate = aln.bootstrap_replicate(&mut rng);
                    infer_ml_tree_pooled(&replicate, search, seed, false, ws)
                }
            };
            pool.checkin(ws);
            result
        });

        let (inferences, bootstraps) = results.split_at(self.n_inferences);
        let best_idx = inferences
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.log_likelihood.partial_cmp(&b.log_likelihood).expect("lnl is never NaN")
            })
            .map(|(i, _)| i)
            .expect("at least one inference");
        let best_tree = inferences[best_idx].tree.clone();
        let bootstrap_trees: Vec<Tree> = bootstraps.iter().map(|r| r.tree.clone()).collect();
        let support = split_support(&best_tree, &bootstrap_trees);

        let mut trace = Trace::counters_only();
        for r in &results {
            trace.merge(&r.trace);
        }

        AnalysisResult {
            best: SupportTree { tree: best_tree, support },
            best_log_likelihood: inferences[best_idx].log_likelihood,
            inference_log_likelihoods: inferences.iter().map(|r| r.log_likelihood).collect(),
            bootstrap_trees,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartitions::robinson_foulds;
    use crate::simulate::SimulationConfig;

    fn quick_analysis(
        n_taxa: usize,
        n_sites: usize,
        seed: u64,
    ) -> (AnalysisResult, crate::simulate::SimulatedWorkload) {
        let w =
            SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(n_taxa, n_sites, seed) }
                .generate();
        let analysis = BootstrapAnalysis {
            n_inferences: 2,
            n_bootstraps: 6,
            n_workers: 3,
            seed: 7,
            search: SearchConfig::fast(),
        };
        (analysis.run(&w.alignment), w)
    }

    #[test]
    fn analysis_produces_consistent_result() {
        let (result, w) = quick_analysis(6, 800, 3);
        assert_eq!(result.inference_log_likelihoods.len(), 2);
        assert_eq!(result.bootstrap_trees.len(), 6);
        assert!(result.best_log_likelihood < 0.0);
        assert!(result.inference_log_likelihoods.iter().all(|&l| l <= result.best_log_likelihood));
        result.best.tree.validate().unwrap();
        // n − 3 internal edges get support values.
        assert_eq!(result.best.support.len(), 6 - 3);
        // Clean data: the best tree should be at most one split away from
        // the truth (the ML tree on finite data can legitimately differ)
        // and reasonably supported.
        assert!(robinson_foulds(&result.best.tree, &w.true_tree) <= 2);
        let mean_support: f64 = result.best.support.iter().map(|&(_, s)| s).sum::<f64>()
            / result.best.support.len() as f64;
        assert!(mean_support > 0.5, "clean data should be well supported: {mean_support}");
    }

    #[test]
    fn support_values_are_probabilities() {
        let (result, _) = quick_analysis(6, 300, 5);
        for &(_, s) in &result.best.support {
            assert!((0.0..=1.0).contains(&s), "support {s} out of range");
        }
    }

    #[test]
    fn newick_with_support_is_parseable_shape() {
        let (result, w) = quick_analysis(6, 300, 1);
        let names = w.alignment.taxon_names().to_vec();
        let nwk = result.best.to_newick_with_support(&names);
        assert!(nwk.ends_with(");"));
        for name in &names {
            assert!(nwk.contains(name.as_str()));
        }
        // Internal labels appear as ")<digits>:".
        assert!(
            nwk.contains(")1") || nwk.contains(")0") || nwk.contains(")8") || nwk.contains(")9"),
            "expected support labels in {nwk}"
        );
    }

    #[test]
    fn consensus_agrees_with_support_values() {
        let (result, _) = quick_analysis(6, 800, 3);
        let consensus = result.consensus(0.5);
        // Every consensus clade's support must match a well-supported split
        // of the best tree or reflect genuine replicate variation; at
        // minimum the counts are consistent: a fully resolved consensus has
        // n − 3 clades.
        assert!(consensus.n_clades() <= 6 - 3);
        for (taxa, f) in consensus.clades() {
            assert!(*f > 0.5 && *f <= 1.0);
            assert!(taxa.len() >= 2 && taxa.len() <= 4);
        }
        // High-support splits on the best tree (>50%) appear in the
        // consensus (they are, by definition, majority splits of the
        // replicates).
        let majority_on_best = result.best.support.iter().filter(|&&(_, s)| s > 0.5).count();
        assert!(consensus.n_clades() >= majority_on_best.min(6 - 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = quick_analysis(6, 200, 13);
        let (b, _) = quick_analysis(6, 200, 13);
        assert_eq!(a.best_log_likelihood, b.best_log_likelihood);
        assert_eq!(a.best.tree, b.best.tree);
        assert_eq!(a.inference_log_likelihoods, b.inference_log_likelihoods);
    }

    #[test]
    fn trace_aggregates_all_jobs() {
        let (result, _) = quick_analysis(6, 200, 17);
        // 8 jobs, each a full search: plenty of kernel calls.
        assert!(result.trace.counters().newview_calls > 500);
        assert!(result.trace.counters().makenewz_calls > 50);
    }
}
