//! Full analyses: multiple inferences + non-parametric bootstrapping on the
//! work-stealing inference farm (the paper's §3.1 MPI scheme, in-process).
//!
//! A "publishable" reconstruction runs 20–200 distinct inferences on the
//! original alignment (to find the best-known ML tree) plus 100–1,000
//! bootstrap replicates on re-weighted alignments (to attach confidence
//! values to the tree's branches). All of these are independent — the
//! embarrassing parallelism the Cell port schedules across SPEs. The farm
//! gives each worker a private [`crate::likelihood::LikelihoodWorkspace`]
//! shard (zero-allocation steady state) and seals results in job order,
//! which is what lets checkpointed runs append every completed job to the
//! store as it finishes.

use crate::alignment::PatternAlignment;
use crate::bipartitions::split_support;
use crate::checkpoint::{search_fingerprint, BootstrapStore, Fingerprint};
use crate::error::{PhyloError, Result};
use crate::farm::{run_farm, FarmConfig};
use crate::likelihood::LikelihoodWorkspace;
use crate::search::{
    run_inference, InferenceOptions, InferenceRequest, SearchConfig, SearchResult,
};
use crate::trace::Trace;
use crate::tree::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Configuration of a complete analysis.
#[derive(Debug, Clone)]
pub struct BootstrapAnalysis {
    /// Distinct inferences on the original alignment.
    pub n_inferences: usize,
    /// Bootstrap replicates on re-weighted alignments.
    pub n_bootstraps: usize,
    /// Worker threads (the MPI "workers" of the paper).
    pub n_workers: usize,
    /// Master seed; every job derives its own deterministic seed.
    pub seed: u64,
    /// Per-inference search settings.
    pub search: SearchConfig,
}

/// The best tree with per-internal-edge bootstrap support.
#[derive(Debug, Clone)]
pub struct SupportTree {
    /// The best-scoring ML tree.
    pub tree: Tree,
    /// Support fraction (0–1) for each internal edge.
    pub support: Vec<((NodeId, NodeId), f64)>,
}

impl SupportTree {
    /// Support of a given internal edge, if it is one.
    pub fn support_of(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.support
            .iter()
            .find(|((x, y), _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|&(_, s)| s)
    }

    /// Newick string with bootstrap support values as internal node labels
    /// (the standard `(...)support:length` convention, support in percent).
    pub fn to_newick_with_support(&self, names: &[String]) -> String {
        let tree = &self.tree;
        let root = names.len(); // first inner node
        let mut s = String::new();
        s.push('(');
        let kids: Vec<(NodeId, f64)> = tree.neighbors_of(root).collect();
        for (i, &(child, len)) in kids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            self.write_rec(child, root, len, names, &mut s);
        }
        s.push_str(");");
        s
    }

    fn write_rec(
        &self,
        node: NodeId,
        parent: NodeId,
        len: f64,
        names: &[String],
        out: &mut String,
    ) {
        if self.tree.is_tip(node) {
            let _ = write!(out, "{}:{:.9}", names[node], len);
            return;
        }
        out.push('(');
        let mut first = true;
        for (child, clen) in self.tree.neighbors_of(node) {
            if child == parent {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            self.write_rec(child, node, clen, names, out);
        }
        out.push(')');
        if let Some(sup) = self.support_of(node, parent) {
            let _ = write!(out, "{:.0}", sup * 100.0);
        }
        let _ = write!(out, ":{:.9}", len);
    }
}

/// Result of a complete analysis.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Best tree over all inferences, with support values.
    pub best: SupportTree,
    /// Log-likelihood of the best tree.
    pub best_log_likelihood: f64,
    /// Log-likelihoods of every inference, in job order.
    pub inference_log_likelihoods: Vec<f64>,
    /// Final trees of the bootstrap replicates.
    pub bootstrap_trees: Vec<Tree>,
    /// Merged kernel trace over all jobs.
    pub trace: Trace,
}

impl AnalysisResult {
    /// Majority-rule consensus of the bootstrap replicate trees (the other
    /// standard way — besides support values on the best tree — to
    /// summarize a bootstrap analysis).
    pub fn consensus(&self, threshold: f64) -> crate::bipartitions::Consensus {
        crate::bipartitions::majority_rule_consensus(&self.bootstrap_trees, threshold)
    }
}

enum Job {
    Inference { seed: u64 },
    Bootstrap { seed: u64 },
}

/// Where and how an analysis persists progress; see
/// [`BootstrapAnalysis::run_with_checkpoint`].
#[derive(Debug, Clone)]
pub struct BootstrapCheckpointPolicy {
    /// The append-only [`BootstrapStore`] file.
    pub path: PathBuf,
    /// Jobs dispatched per farm wave. Within a wave every completed job is
    /// appended to the store as the farm seals it in job order, so a kill
    /// loses at most the unsealed tail of one wave.
    pub chunk_size: usize,
    /// Testing hook: return [`PhyloError::Interrupted`] after this many
    /// waves (with their results already on disk) — models a mid-analysis
    /// kill without a real signal.
    pub abort_after_chunks: Option<usize>,
}

impl BootstrapCheckpointPolicy {
    /// Checkpoint to `path` after every `chunk_size` completed jobs.
    pub fn new(path: impl Into<PathBuf>, chunk_size: usize) -> BootstrapCheckpointPolicy {
        assert!(chunk_size >= 1, "chunk size must be at least 1");
        BootstrapCheckpointPolicy { path: path.into(), chunk_size, abort_after_chunks: None }
    }

    /// Abort (with progress safely on disk) after `n` waves.
    pub fn abort_after_chunks(mut self, n: usize) -> BootstrapCheckpointPolicy {
        self.abort_after_chunks = Some(n);
        self
    }
}

impl BootstrapAnalysis {
    /// Sensible defaults for a quick analysis.
    pub fn quick(seed: u64) -> BootstrapAnalysis {
        BootstrapAnalysis {
            n_inferences: 3,
            n_bootstraps: 10,
            n_workers: 4,
            seed,
            search: SearchConfig::fast(),
        }
    }

    /// Total jobs (inferences + bootstraps).
    fn n_jobs(&self) -> usize {
        self.n_inferences + self.n_bootstraps
    }

    /// The job at position `index` in the analysis's fixed job list. The
    /// seed derivation is per-job and independent of execution order, which
    /// is what lets a checkpointed run execute the list in chunks and still
    /// land bit-identically on [`BootstrapAnalysis::run`]'s results.
    fn job_for(&self, index: usize) -> Job {
        if index < self.n_inferences {
            Job::Inference { seed: self.seed.wrapping_add(index as u64) }
        } else {
            let i = (index - self.n_inferences) as u64;
            Job::Bootstrap { seed: self.seed.wrapping_add(0x1000_0000).wrapping_add(i) }
        }
    }

    /// Dispatch jobs `start..end` to the inference farm and return their
    /// results in job order. `on_result` fires once per completed job, in
    /// strict job order, as the farm seals it — the per-job checkpoint
    /// hook. A failed job (panic in a search) becomes
    /// [`PhyloError::Farm`]; results sealed before it are already through
    /// `on_result` (a prefix, so an append-only store stays resumable).
    fn run_jobs(
        &self,
        aln: &PatternAlignment,
        start: usize,
        end: usize,
        mut on_result: impl FnMut(&SearchResult) -> Result<()>,
    ) -> Result<Vec<SearchResult>> {
        let jobs: Vec<Job> = (start..end).map(|i| self.job_for(i)).collect();
        // Each farm worker owns one workspace arena for its whole lifetime:
        // `n_workers` arenas serve all replicates, so steady-state jobs
        // reuse the previous job's buffers instead of reallocating every
        // partial vector (results are bit-identical either way).
        let search = &self.search;
        let config = FarmConfig::new(self.n_workers.min((end - start).max(1)));
        let mut seal_err: Option<PhyloError> = None;
        let mut sealing_stopped = false;
        let outcome = run_farm(
            &config,
            jobs,
            |_worker| LikelihoodWorkspace::new(),
            |ws: &mut LikelihoodWorkspace, _, job| {
                let owned = std::mem::take(ws);
                let outcome = match job {
                    Job::Inference { seed } => run_inference(
                        aln,
                        &InferenceRequest::new(search.clone(), seed),
                        InferenceOptions::new().with_workspace(owned),
                    ),
                    Job::Bootstrap { seed } => {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let replicate = aln.bootstrap_replicate(&mut rng);
                        run_inference(
                            &replicate,
                            &InferenceRequest::new(search.clone(), seed),
                            InferenceOptions::new().with_workspace(owned),
                        )
                    }
                };
                let outcome = outcome.expect("un-checkpointed search on finite data cannot fail");
                *ws = outcome.workspace;
                outcome.result
            },
            None,
            |_, sealed| {
                // Stop at the first failure or append error so the results
                // passed downstream stay an uninterrupted job-order prefix.
                if sealing_stopped {
                    return;
                }
                match sealed {
                    Ok(r) => {
                        if let Err(e) = on_result(r) {
                            seal_err = Some(e);
                            sealing_stopped = true;
                        }
                    }
                    Err(_) => sealing_stopped = true,
                }
            },
        );
        if let Some(e) = seal_err {
            return Err(e);
        }
        outcome
            .results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map_err(|fe| PhyloError::Farm { job: start + i, message: fe.to_string() })
            })
            .collect()
    }

    /// Assemble the final [`AnalysisResult`] from per-job (log-likelihood,
    /// tree) pairs in job order, plus whatever trace was gathered.
    fn assemble(&self, per_job: Vec<(f64, Tree)>, trace: Trace) -> AnalysisResult {
        let (inferences, bootstraps) = per_job.split_at(self.n_inferences);
        let best_idx = inferences
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.0.partial_cmp(&b.0).expect("lnl is never NaN"))
            .map(|(i, _)| i)
            .expect("at least one inference");
        let best_tree = inferences[best_idx].1.clone();
        let bootstrap_trees: Vec<Tree> = bootstraps.iter().map(|(_, t)| t.clone()).collect();
        let support = split_support(&best_tree, &bootstrap_trees);
        AnalysisResult {
            best: SupportTree { tree: best_tree, support },
            best_log_likelihood: inferences[best_idx].0,
            inference_log_likelihoods: inferences.iter().map(|(l, _)| *l).collect(),
            bootstrap_trees,
            trace,
        }
    }

    /// Run the full analysis on an alignment, panicking if any job fails
    /// (see [`BootstrapAnalysis::try_run`] for the fallible form).
    #[deprecated(since = "0.2.0", note = "use `try_run`, which reports failures as `PhyloError`")]
    pub fn run(&self, aln: &PatternAlignment) -> AnalysisResult {
        self.try_run(aln).unwrap_or_else(|e| panic!("bootstrap analysis failed: {e}"))
    }

    /// Run the full analysis on an alignment. A job that panics inside the
    /// farm surfaces as [`PhyloError::Farm`] naming the failed job, without
    /// discarding the other jobs' completed work inside the farm.
    pub fn try_run(&self, aln: &PatternAlignment) -> Result<AnalysisResult> {
        assert!(self.n_inferences >= 1, "need at least one inference to pick a best tree");
        let results = self.run_jobs(aln, 0, self.n_jobs(), |_| Ok(()))?;
        let mut trace = Trace::counters_only();
        for r in &results {
            trace.merge(&r.trace);
        }
        let per_job = results.into_iter().map(|r| (r.log_likelihood, r.tree)).collect();
        Ok(self.assemble(per_job, trace))
    }

    /// Fingerprint tying a [`BootstrapStore`] to this exact analysis on this
    /// exact alignment.
    pub fn fingerprint(&self, aln: &PatternAlignment) -> u64 {
        let mut fp = Fingerprint::new();
        fp.push_u64(search_fingerprint(aln, &self.search, self.seed))
            .push_u64(self.n_inferences as u64)
            .push_u64(self.n_bootstraps as u64);
        fp.finish()
    }

    /// As [`BootstrapAnalysis::run`], persisting every completed job to an
    /// append-only store and resuming from it when one already exists.
    ///
    /// Job seeds are derived from the job index, never from execution
    /// order, so a run killed partway and resumed — even with a different
    /// `chunk_size` or worker count — produces trees and log-likelihoods
    /// bit-identical to an uninterrupted [`BootstrapAnalysis::run`]. The
    /// one exception is [`AnalysisResult::trace`]: it only counts kernels
    /// the *current* process executed (jobs restored from disk are not
    /// re-run, so their kernel work is genuinely absent).
    pub fn run_with_checkpoint(
        &self,
        aln: &PatternAlignment,
        policy: &BootstrapCheckpointPolicy,
    ) -> Result<AnalysisResult> {
        assert!(self.n_inferences >= 1, "need at least one inference to pick a best tree");
        let total = self.n_jobs();
        let mut store = BootstrapStore::open(&policy.path, self.fingerprint(aln), total)?;

        let mut trace = Trace::counters_only();
        let mut chunks = 0;
        while store.completed() < total {
            let start = store.completed();
            let end = (start + policy.chunk_size).min(total);
            // The farm seals results in job order, so each completed job is
            // appended to the store as soon as it (and all jobs before it)
            // finished — a kill mid-wave loses only unsealed work.
            let results = self.run_jobs(aln, start, end, |result| {
                store.append(result.log_likelihood, &result.tree.to_exact_string())
            })?;
            for result in &results {
                trace.merge(&result.trace);
            }
            chunks += 1;
            if let Some(limit) = policy.abort_after_chunks {
                if chunks >= limit && store.completed() < total {
                    return Err(PhyloError::Interrupted { completed: store.completed() });
                }
            }
        }

        let per_job = store
            .records()
            .iter()
            .map(|rec| Ok((rec.log_likelihood, Tree::from_exact_string(&rec.tree_exact)?)))
            .collect::<Result<Vec<(f64, Tree)>>>()?;
        Ok(self.assemble(per_job, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartitions::robinson_foulds;
    use crate::simulate::SimulationConfig;

    fn quick_analysis(
        n_taxa: usize,
        n_sites: usize,
        seed: u64,
    ) -> (AnalysisResult, crate::simulate::SimulatedWorkload) {
        let w =
            SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(n_taxa, n_sites, seed) }
                .generate();
        let analysis = BootstrapAnalysis {
            n_inferences: 2,
            n_bootstraps: 6,
            n_workers: 3,
            seed: 7,
            search: SearchConfig::fast(),
        };
        (analysis.try_run(&w.alignment).unwrap(), w)
    }

    #[test]
    fn analysis_produces_consistent_result() {
        let (result, w) = quick_analysis(6, 800, 3);
        assert_eq!(result.inference_log_likelihoods.len(), 2);
        assert_eq!(result.bootstrap_trees.len(), 6);
        assert!(result.best_log_likelihood < 0.0);
        assert!(result.inference_log_likelihoods.iter().all(|&l| l <= result.best_log_likelihood));
        result.best.tree.validate().unwrap();
        // n − 3 internal edges get support values.
        assert_eq!(result.best.support.len(), 6 - 3);
        // Clean data: the best tree should be at most one split away from
        // the truth (the ML tree on finite data can legitimately differ)
        // and reasonably supported.
        assert!(robinson_foulds(&result.best.tree, &w.true_tree) <= 2);
        let mean_support: f64 = result.best.support.iter().map(|&(_, s)| s).sum::<f64>()
            / result.best.support.len() as f64;
        assert!(mean_support > 0.5, "clean data should be well supported: {mean_support}");
    }

    #[test]
    fn support_values_are_probabilities() {
        let (result, _) = quick_analysis(6, 300, 5);
        for &(_, s) in &result.best.support {
            assert!((0.0..=1.0).contains(&s), "support {s} out of range");
        }
    }

    #[test]
    fn newick_with_support_is_parseable_shape() {
        let (result, w) = quick_analysis(6, 300, 1);
        let names = w.alignment.taxon_names().to_vec();
        let nwk = result.best.to_newick_with_support(&names);
        assert!(nwk.ends_with(");"));
        for name in &names {
            assert!(nwk.contains(name.as_str()));
        }
        // Internal labels appear as ")<digits>:".
        assert!(
            nwk.contains(")1") || nwk.contains(")0") || nwk.contains(")8") || nwk.contains(")9"),
            "expected support labels in {nwk}"
        );
    }

    #[test]
    fn consensus_agrees_with_support_values() {
        let (result, _) = quick_analysis(6, 800, 3);
        let consensus = result.consensus(0.5);
        // Every consensus clade's support must match a well-supported split
        // of the best tree or reflect genuine replicate variation; at
        // minimum the counts are consistent: a fully resolved consensus has
        // n − 3 clades.
        assert!(consensus.n_clades() <= 6 - 3);
        for (taxa, f) in consensus.clades() {
            assert!(*f > 0.5 && *f <= 1.0);
            assert!(taxa.len() >= 2 && taxa.len() <= 4);
        }
        // High-support splits on the best tree (>50%) appear in the
        // consensus (they are, by definition, majority splits of the
        // replicates).
        let majority_on_best = result.best.support.iter().filter(|&&(_, s)| s > 0.5).count();
        assert!(consensus.n_clades() >= majority_on_best.min(6 - 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = quick_analysis(6, 200, 13);
        let (b, _) = quick_analysis(6, 200, 13);
        assert_eq!(a.best_log_likelihood, b.best_log_likelihood);
        assert_eq!(a.best.tree, b.best.tree);
        assert_eq!(a.inference_log_likelihoods, b.inference_log_likelihoods);
    }

    /// A bootstrap analysis killed mid-run and resumed from its store must
    /// reproduce the uninterrupted analysis bit-for-bit: same best tree,
    /// same per-job log-likelihoods, same replicate trees.
    #[test]
    fn killed_analysis_resumes_bit_identically() {
        let w =
            SimulationConfig { mean_branch: 0.12, ..SimulationConfig::new(6, 200, 3) }.generate();
        let analysis = BootstrapAnalysis {
            n_inferences: 2,
            n_bootstraps: 6,
            n_workers: 3,
            seed: 7,
            search: SearchConfig::fast(),
        };
        let reference = analysis.try_run(&w.alignment).unwrap();

        let dir = std::env::temp_dir().join("raxml-cell-bootstrap-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kill-resume.ckpt");
        let _ = std::fs::remove_file(&path);

        // First attempt dies after one 3-job wave (progress on disk).
        let dying = BootstrapCheckpointPolicy::new(&path, 3).abort_after_chunks(1);
        let err = analysis.run_with_checkpoint(&w.alignment, &dying).unwrap_err();
        assert_eq!(err, PhyloError::Interrupted { completed: 3 });

        // Resume with a *different* chunk size: job seeds depend only on the
        // job index, so chunking must not matter.
        let policy = BootstrapCheckpointPolicy::new(&path, 2);
        let resumed = analysis.run_with_checkpoint(&w.alignment, &policy).unwrap();

        assert_eq!(resumed.best.tree.to_exact_string(), reference.best.tree.to_exact_string());
        assert_eq!(resumed.best_log_likelihood.to_bits(), reference.best_log_likelihood.to_bits());
        assert_eq!(
            resumed.inference_log_likelihoods.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            reference.inference_log_likelihoods.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(resumed.bootstrap_trees.len(), reference.bootstrap_trees.len());
        for (a, b) in resumed.bootstrap_trees.iter().zip(&reference.bootstrap_trees) {
            assert_eq!(a.to_exact_string(), b.to_exact_string());
        }
        assert_eq!(resumed.best.support, reference.best.support);

        // A third invocation finds everything done and re-runs nothing: the
        // trace is empty, the results unchanged.
        let again = analysis.run_with_checkpoint(&w.alignment, &policy).unwrap();
        assert_eq!(again.trace.counters().newview_calls, 0);
        assert_eq!(again.best_log_likelihood.to_bits(), reference.best_log_likelihood.to_bits());
    }

    /// The store refuses to resume an analysis with different parameters.
    #[test]
    fn checkpoint_refuses_a_different_analysis() {
        let w = SimulationConfig::new(6, 120, 9).generate();
        let analysis = BootstrapAnalysis {
            n_inferences: 1,
            n_bootstraps: 2,
            n_workers: 2,
            seed: 1,
            search: SearchConfig::fast(),
        };
        let dir = std::env::temp_dir().join("raxml-cell-bootstrap-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.ckpt");
        let _ = std::fs::remove_file(&path);

        let policy = BootstrapCheckpointPolicy::new(&path, 2);
        analysis.run_with_checkpoint(&w.alignment, &policy).unwrap();

        let mut other = analysis.clone();
        other.seed = 2;
        let err = other.run_with_checkpoint(&w.alignment, &policy).unwrap_err();
        assert!(matches!(err, PhyloError::Checkpoint { .. }), "{err}");
    }

    #[test]
    fn trace_aggregates_all_jobs() {
        let (result, _) = quick_analysis(6, 200, 17);
        // 8 jobs, each a full search: plenty of kernel calls.
        assert!(result.trace.counters().newview_calls > 500);
        assert!(result.trace.counters().makenewz_calls > 50);
    }
}
