//! FASTA parsing and writing.

use crate::alignment::Alignment;
use crate::error::{PhyloError, Result};

/// Parse a FASTA-formatted multiple sequence alignment. Headers are taken up
/// to the first whitespace; sequences may span multiple lines.
pub fn parse_fasta(text: &str) -> Result<Alignment> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut current: Option<(String, String)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(done) = current.take() {
                pairs.push(done);
            }
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err(PhyloError::Parse {
                    format: "FASTA",
                    line: lineno + 1,
                    message: "empty sequence header".into(),
                });
            }
            current = Some((name, String::new()));
        } else {
            match current.as_mut() {
                Some((_, seq)) => seq.push_str(line),
                None => {
                    return Err(PhyloError::Parse {
                        format: "FASTA",
                        line: lineno + 1,
                        message: "sequence data before the first '>' header".into(),
                    })
                }
            }
        }
    }
    if let Some(done) = current.take() {
        pairs.push(done);
    }
    if pairs.is_empty() {
        return Err(PhyloError::Parse {
            format: "FASTA",
            line: 0,
            message: "no sequences found".into(),
        });
    }
    Alignment::from_named_sequences(&pairs)
}

/// Write an alignment as FASTA, wrapping sequence lines at 70 columns.
pub fn write_fasta(aln: &Alignment) -> String {
    let mut out = String::new();
    for (i, name) in aln.taxon_names().iter().enumerate() {
        out.push('>');
        out.push_str(name);
        out.push('\n');
        let seq = aln.sequence_string(i);
        for chunk in seq.as_bytes().chunks(70) {
            out.push_str(std::str::from_utf8(chunk).expect("sequences are ASCII"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let aln = parse_fasta(">a\nACGT\n>b\nACGA\n").unwrap();
        assert_eq!(aln.n_taxa(), 2);
        assert_eq!(aln.n_sites(), 4);
        assert_eq!(aln.taxon_names(), &["a", "b"]);
    }

    #[test]
    fn multiline_sequences_and_header_comments() {
        let aln = parse_fasta(">seq1 some description\nAC\nGT\n>seq2\nAC\nGA\n").unwrap();
        assert_eq!(aln.taxon_names(), &["seq1", "seq2"]);
        assert_eq!(aln.sequence_string(0), "ACGT");
    }

    #[test]
    fn round_trip() {
        let w = crate::simulate::SimulationConfig::new(6, 150, 3).generate();
        let text = write_fasta(&w.raw);
        let back = parse_fasta(&text).unwrap();
        assert_eq!(back, w.raw);
    }

    #[test]
    fn errors() {
        assert!(matches!(parse_fasta(""), Err(PhyloError::Parse { .. })));
        assert!(matches!(parse_fasta("ACGT\n"), Err(PhyloError::Parse { .. })));
        assert!(matches!(parse_fasta(">\nACGT\n"), Err(PhyloError::Parse { .. })));
        assert!(matches!(
            parse_fasta(">a\nACGT\n>b\nACG\n"),
            Err(PhyloError::RaggedAlignment { .. })
        ));
        assert!(matches!(
            parse_fasta(">a\nAZGT\n>b\nACGT\n"),
            Err(PhyloError::InvalidCharacter { .. })
        ));
    }
}
