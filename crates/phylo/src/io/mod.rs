//! Sequence and tree interchange formats: FASTA, PHYLIP (the format of the
//! paper's `42_SC` input) and Newick.

pub mod fasta;
pub mod newick;
pub mod phylip;

pub use fasta::{parse_fasta, write_fasta};
pub use newick::{parse_newick, write_newick};
pub use phylip::{parse_phylip, write_phylip};
