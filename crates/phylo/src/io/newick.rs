//! Newick tree parsing and writing.
//!
//! Trees are unrooted internally; rooted (binary-root) Newick inputs are
//! unrooted on the fly, matching how RAxML treats its starting trees.

use crate::error::{PhyloError, Result};
use crate::tree::{NodeId, Tree};
use std::collections::HashMap;

/// Default branch length for Newick inputs that omit lengths.
const DEFAULT_LEN: f64 = 0.1;

#[derive(Debug)]
enum Ast {
    Leaf { name: String, len: f64 },
    Inner { children: Vec<Ast>, len: f64 },
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> PhyloError {
        // Report character offset as the "line" surrogate: Newick is
        // conventionally one line.
        PhyloError::Parse { format: "Newick", line: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_node(&mut self) -> Result<Ast> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut children = vec![self.parse_node()?];
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        children.push(self.parse_node()?);
                    }
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(self.err(format!(
                            "expected ',' or ')' in subtree, found {:?}",
                            other.map(|b| b as char)
                        )))
                    }
                }
            }
            let _label = self.parse_label(); // inner labels (support) ignored
            let len = self.parse_length()?;
            Ok(Ast::Inner { children, len })
        } else {
            let name = self.parse_label();
            if name.is_empty() {
                return Err(self.err("expected a taxon label"));
            }
            let len = self.parse_length()?;
            Ok(Ast::Leaf { name, len })
        }
    }

    fn parse_label(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'(' | b')' | b',' | b':' | b';' | b' ' | b'\t' | b'\n' | b'\r') {
                break;
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn parse_length(&mut self) -> Result<f64> {
        self.skip_ws();
        if self.peek() != Some(b':') {
            return Ok(DEFAULT_LEN);
        }
        self.pos += 1;
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        s.parse::<f64>().map_err(|_| self.err(format!("invalid branch length {s:?}")))
    }
}

/// Parse a Newick string into a [`Tree`]. `names` fixes the taxon-index
/// mapping (tip `i` of the tree corresponds to `names[i]`, exactly as in the
/// alignment the tree will be scored against). The tree must be strictly
/// binary (a degree-2 root is unrooted automatically).
pub fn parse_newick(text: &str, names: &[String]) -> Result<Tree> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let mut root = parser.parse_node()?;
    parser.skip_ws();
    if parser.peek() == Some(b';') {
        parser.pos += 1;
    }
    parser.skip_ws();
    if parser.peek().is_some() {
        return Err(parser.err("trailing characters after ';'"));
    }

    // Unroot a binary root: absorb the rooting by merging its two children.
    loop {
        match root {
            Ast::Inner { ref mut children, .. } if children.len() == 2 => {
                let b = children.pop().unwrap();
                let a = children.pop().unwrap();
                // Attach the shallower side under the deeper side's node,
                // with the two root branch lengths summed.
                let (mut base, other) = match (a, b) {
                    (Ast::Inner { children, len }, other) => (Ast::Inner { children, len }, other),
                    (other, Ast::Inner { children, len }) => (Ast::Inner { children, len }, other),
                    (Ast::Leaf { .. }, Ast::Leaf { .. }) => {
                        return Err(PhyloError::TooFewTaxa { found: 2, required: 3 })
                    }
                };
                let base_len = match &base {
                    Ast::Inner { len, .. } => *len,
                    _ => unreachable!(),
                };
                let other = match other {
                    Ast::Leaf { name, len } => Ast::Leaf { name, len: len + base_len },
                    Ast::Inner { children, len } => Ast::Inner { children, len: len + base_len },
                };
                if let Ast::Inner { children, .. } = &mut base {
                    children.push(other);
                }
                root = base;
            }
            _ => break,
        }
    }

    let n_taxa = names.len();
    let name_to_id: HashMap<&str, usize> =
        names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();

    // Flatten the AST into an edge list.
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    let mut next_inner = n_taxa;
    let mut seen_tips = vec![false; n_taxa];

    fn build(
        ast: &Ast,
        name_to_id: &HashMap<&str, usize>,
        next_inner: &mut usize,
        edges: &mut Vec<(NodeId, NodeId, f64)>,
        seen: &mut [bool],
        is_root: bool,
    ) -> Result<(NodeId, f64)> {
        match ast {
            Ast::Leaf { name, len } => {
                let &id = name_to_id.get(name.as_str()).ok_or_else(|| PhyloError::Parse {
                    format: "Newick",
                    line: 0,
                    message: format!("unknown taxon {name:?}"),
                })?;
                if seen[id] {
                    return Err(PhyloError::DuplicateTaxon(name.clone()));
                }
                seen[id] = true;
                Ok((id, *len))
            }
            Ast::Inner { children, len } => {
                let expected = if is_root { 3 } else { 2 };
                if children.len() != expected {
                    return Err(PhyloError::Parse {
                        format: "Newick",
                        line: 0,
                        message: format!(
                            "non-binary node with {} children (expected {expected})",
                            children.len()
                        ),
                    });
                }
                let id = *next_inner;
                *next_inner += 1;
                for child in children {
                    let (cid, clen) = build(child, name_to_id, next_inner, edges, seen, false)?;
                    edges.push((id, cid, clen));
                }
                Ok((id, *len))
            }
        }
    }

    match &root {
        Ast::Leaf { .. } => return Err(PhyloError::TooFewTaxa { found: 1, required: 3 }),
        Ast::Inner { .. } => {
            build(&root, &name_to_id, &mut next_inner, &mut edges, &mut seen_tips, true)?;
        }
    }
    if let Some(missing) = seen_tips.iter().position(|&s| !s) {
        return Err(PhyloError::Parse {
            format: "Newick",
            line: 0,
            message: format!("taxon {:?} missing from the tree", names[missing]),
        });
    }
    Tree::from_edges(n_taxa, &edges)
}

/// Serialize a tree to Newick (delegates to [`Tree::to_newick`]).
pub fn write_newick(tree: &Tree, names: &[String]) -> String {
    tree.to_newick(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartitions::robinson_foulds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn parse_trifurcating() {
        let t = parse_newick("(t0:0.1,t1:0.2,t2:0.3);", &names(3)).unwrap();
        t.validate().unwrap();
        assert_eq!(t.edges().len(), 3);
        let inner = t.neighbors_of(0).next().unwrap().0;
        assert!((t.branch_length(0, inner) - 0.1).abs() < 1e-12);
        assert!((t.branch_length(2, inner) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn parse_rooted_binary_and_unroot() {
        let t = parse_newick("((t0:0.1,t1:0.2):0.05,(t2:0.3,t3:0.4):0.15);", &names(4)).unwrap();
        t.validate().unwrap();
        assert_eq!(t.edges().len(), 5);
        // The two root-adjacent branch lengths merge: 0.05 + 0.15 = 0.2.
        let internal: Vec<_> =
            t.edges().into_iter().filter(|&(a, b)| !t.is_tip(a) && !t.is_tip(b)).collect();
        assert_eq!(internal.len(), 1);
        let (a, b) = internal[0];
        assert!((t.branch_length(a, b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn lengths_default_when_missing() {
        let t = parse_newick("(t0,t1,(t2,t3));", &names(4)).unwrap();
        t.validate().unwrap();
    }

    #[test]
    fn round_trip_random_trees() {
        let mut rng = StdRng::seed_from_u64(5);
        let names = names(17);
        for _ in 0..5 {
            let t = crate::tree::Tree::random(17, 0.1, &mut rng).unwrap();
            let text = write_newick(&t, &names);
            let back = parse_newick(&text, &names).unwrap();
            assert_eq!(robinson_foulds(&t, &back), 0, "topology must round-trip: {text}");
            // Branch lengths round-trip through the 9-decimal formatting:
            // compare total tree lengths (node ids of inner nodes may differ).
            assert!((t.total_length() - back.total_length()).abs() < 1e-6);
        }
    }

    #[test]
    fn errors() {
        let n = names(3);
        assert!(parse_newick("", &n).is_err());
        assert!(parse_newick("(t0,t1,t2); junk", &n).is_err());
        assert!(parse_newick("(t0,t1,unknown);", &n).is_err());
        assert!(parse_newick("(t0,t1,t0);", &n).is_err());
        assert!(parse_newick("(t0:x,t1,t2);", &n).is_err());
        // Multifurcation beyond the root trifurcation.
        assert!(parse_newick("((t0,t1,t2,t3),t4,t5);", &names(6)).is_err());
        // Missing taxon.
        assert!(parse_newick("(t0,t1,(t2,t2));", &names(4)).is_err());
    }

    #[test]
    fn support_labels_are_ignored() {
        let t = parse_newick("((t0:0.1,t1:0.2)0.95:0.05,t2:0.3,t3:0.1);", &names(4)).unwrap();
        t.validate().unwrap();
    }
}
