//! Relaxed sequential PHYLIP parsing and writing — the input format of
//! RAxML (the paper's `42_SC` file is a PHYLIP alignment of 42 sequences of
//! length 1167).

use crate::alignment::Alignment;
use crate::error::{PhyloError, Result};

/// Parse a relaxed sequential PHYLIP file: a header line `n_taxa n_sites`,
/// then one record per taxon — a name token followed by sequence characters,
/// which may continue across lines until `n_sites` characters are read.
pub fn parse_phylip(text: &str) -> Result<Alignment> {
    let mut lines = text.lines().enumerate();

    // Header.
    let (hline, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or(PhyloError::Parse { format: "PHYLIP", line: 0, message: "empty input".into() })?;
    let mut it = header.split_whitespace();
    let n_taxa: usize = it.next().and_then(|t| t.parse().ok()).ok_or(PhyloError::Parse {
        format: "PHYLIP",
        line: hline + 1,
        message: "header must start with the taxon count".into(),
    })?;
    let n_sites: usize = it.next().and_then(|t| t.parse().ok()).ok_or(PhyloError::Parse {
        format: "PHYLIP",
        line: hline + 1,
        message: "header must contain the site count".into(),
    })?;

    let mut pairs: Vec<(String, String)> = Vec::with_capacity(n_taxa);
    let mut current: Option<(String, String)> = None;
    let mut last_line = hline;
    for (lineno, line) in lines {
        last_line = lineno;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match current.as_mut() {
            None => {
                // New record: first token is the name.
                let mut parts = line.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or("").to_string();
                let seq: String =
                    parts.next().unwrap_or("").chars().filter(|c| !c.is_whitespace()).collect();
                current = Some((name, seq));
            }
            Some((_, seq)) => {
                seq.extend(line.chars().filter(|c| !c.is_whitespace()));
            }
        }
        if let Some((_, seq)) = current.as_ref() {
            if seq.len() >= n_sites {
                if seq.len() > n_sites {
                    return Err(PhyloError::Parse {
                        format: "PHYLIP",
                        line: lineno + 1,
                        message: format!("sequence longer than the declared {n_sites} sites"),
                    });
                }
                pairs.push(current.take().unwrap());
            }
        }
        if pairs.len() == n_taxa {
            break;
        }
    }
    if let Some((name, seq)) = current {
        return Err(PhyloError::Parse {
            format: "PHYLIP",
            line: last_line + 1,
            message: format!(
                "taxon {name:?} has only {} of the declared {n_sites} sites",
                seq.len()
            ),
        });
    }
    if pairs.len() != n_taxa {
        return Err(PhyloError::Parse {
            format: "PHYLIP",
            line: last_line + 1,
            message: format!("found {} of the declared {n_taxa} taxa", pairs.len()),
        });
    }
    Alignment::from_named_sequences(&pairs)
}

/// Write an alignment in relaxed sequential PHYLIP format.
pub fn write_phylip(aln: &Alignment) -> String {
    let width = aln.taxon_names().iter().map(|n| n.len()).max().unwrap_or(0) + 2;
    let mut out = format!("{} {}\n", aln.n_taxa(), aln.n_sites());
    for (i, name) in aln.taxon_names().iter().enumerate() {
        out.push_str(name);
        for _ in name.len()..width {
            out.push(' ');
        }
        out.push_str(&aln.sequence_string(i));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let aln = parse_phylip("2 4\nalpha ACGT\nbeta  ACGA\n").unwrap();
        assert_eq!(aln.n_taxa(), 2);
        assert_eq!(aln.n_sites(), 4);
        assert_eq!(aln.taxon_names(), &["alpha", "beta"]);
    }

    #[test]
    fn multiline_records() {
        let aln = parse_phylip("2 8\nalpha ACGT\nACGT\nbeta ACGAACGA\n").unwrap();
        assert_eq!(aln.sequence_string(0), "ACGTACGT");
        assert_eq!(aln.sequence_string(1), "ACGAACGA");
    }

    #[test]
    fn round_trip() {
        let w = crate::simulate::SimulationConfig::new(7, 90, 11).generate();
        let text = write_phylip(&w.raw);
        let back = parse_phylip(&text).unwrap();
        assert_eq!(back, w.raw);
    }

    #[test]
    fn header_errors() {
        assert!(parse_phylip("").is_err());
        assert!(parse_phylip("x y\n").is_err());
        assert!(parse_phylip("2\n").is_err());
    }

    #[test]
    fn truncated_inputs_rejected() {
        // Missing taxa.
        assert!(parse_phylip("3 4\na ACGT\nb ACGT\n").is_err());
        // Short sequence.
        assert!(parse_phylip("2 4\na ACG\n").is_err());
        // Long sequence.
        assert!(parse_phylip("2 4\na ACGTT\nb ACGT\n").is_err());
    }
}
