//! Error type shared across the crate.

use std::fmt;

/// Errors produced while parsing inputs or validating analysis parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyloError {
    /// A sequence character was not a recognized IUPAC nucleotide code.
    InvalidCharacter { taxon: String, position: usize, ch: char },
    /// Sequences in one alignment have differing lengths.
    RaggedAlignment { taxon: String, expected: usize, found: usize },
    /// Two taxa share the same name.
    DuplicateTaxon(String),
    /// The alignment is empty or too small for the requested analysis.
    TooFewTaxa { found: usize, required: usize },
    /// The alignment has zero columns.
    EmptyAlignment,
    /// A FASTA/PHYLIP/Newick input could not be parsed.
    Parse { format: &'static str, line: usize, message: String },
    /// A model parameter was out of its valid domain.
    InvalidParameter { name: &'static str, value: f64, reason: &'static str },
    /// A tree operation referenced a node that does not exist or has the
    /// wrong degree.
    TreeStructure(String),
}

impl fmt::Display for PhyloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyloError::InvalidCharacter { taxon, position, ch } => write!(
                f,
                "invalid nucleotide character {ch:?} at position {position} in taxon {taxon:?}"
            ),
            PhyloError::RaggedAlignment { taxon, expected, found } => {
                write!(f, "taxon {taxon:?} has {found} sites but the alignment has {expected}")
            }
            PhyloError::DuplicateTaxon(name) => write!(f, "duplicate taxon name {name:?}"),
            PhyloError::TooFewTaxa { found, required } => {
                write!(f, "alignment has {found} taxa but at least {required} are required")
            }
            PhyloError::EmptyAlignment => write!(f, "alignment has no columns"),
            PhyloError::Parse { format, line, message } => {
                write!(f, "{format} parse error at line {line}: {message}")
            }
            PhyloError::InvalidParameter { name, value, reason } => {
                write!(f, "invalid value {value} for parameter {name}: {reason}")
            }
            PhyloError::TreeStructure(msg) => write!(f, "tree structure error: {msg}"),
        }
    }
}

impl std::error::Error for PhyloError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PhyloError>;
