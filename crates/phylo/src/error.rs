//! Error type shared across the crate.

use std::fmt;

/// Errors produced while parsing inputs or validating analysis parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyloError {
    /// A sequence character was not a recognized IUPAC nucleotide code.
    InvalidCharacter { taxon: String, position: usize, ch: char },
    /// Sequences in one alignment have differing lengths.
    RaggedAlignment { taxon: String, expected: usize, found: usize },
    /// Two taxa share the same name.
    DuplicateTaxon(String),
    /// The alignment is empty or too small for the requested analysis.
    TooFewTaxa { found: usize, required: usize },
    /// The alignment has zero columns.
    EmptyAlignment,
    /// A FASTA/PHYLIP/Newick input could not be parsed.
    Parse { format: &'static str, line: usize, message: String },
    /// A model parameter was out of its valid domain.
    InvalidParameter { name: &'static str, value: f64, reason: &'static str },
    /// A tree operation referenced a node that does not exist or has the
    /// wrong degree.
    TreeStructure(String),
    /// A file could not be read or written (the OS error is flattened to a
    /// string so the enum stays `Clone + PartialEq`).
    Io { path: String, message: String },
    /// A checkpoint file was missing a section, version-mismatched, or was
    /// written for a different analysis (fingerprint mismatch).
    Checkpoint { path: String, message: String },
    /// The likelihood engine produced a non-finite value that even a forced
    /// conservative re-evaluation could not repair.
    Numerical { context: &'static str, value: f64 },
    /// An analysis was interrupted (e.g. by an abort policy) after
    /// completing `completed` units of work; progress is on disk and the
    /// run can be resumed from its checkpoint.
    Interrupted { completed: usize },
    /// A farm job failed (panicked, hit an injected fault, or lost every
    /// worker); `job` is the submission index, `message` the rendered
    /// [`crate::farm::FarmError`].
    Farm { job: usize, message: String },
}

impl fmt::Display for PhyloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyloError::InvalidCharacter { taxon, position, ch } => write!(
                f,
                "invalid nucleotide character {ch:?} at position {position} in taxon {taxon:?}"
            ),
            PhyloError::RaggedAlignment { taxon, expected, found } => {
                write!(f, "taxon {taxon:?} has {found} sites but the alignment has {expected}")
            }
            PhyloError::DuplicateTaxon(name) => write!(f, "duplicate taxon name {name:?}"),
            PhyloError::TooFewTaxa { found, required } => {
                write!(f, "alignment has {found} taxa but at least {required} are required")
            }
            PhyloError::EmptyAlignment => write!(f, "alignment has no columns"),
            PhyloError::Parse { format, line, message } => {
                write!(f, "{format} parse error at line {line}: {message}")
            }
            PhyloError::InvalidParameter { name, value, reason } => {
                write!(f, "invalid value {value} for parameter {name}: {reason}")
            }
            PhyloError::TreeStructure(msg) => write!(f, "tree structure error: {msg}"),
            PhyloError::Io { path, message } => write!(f, "cannot access {path}: {message}"),
            PhyloError::Checkpoint { path, message } => {
                write!(f, "invalid checkpoint {path}: {message}")
            }
            PhyloError::Numerical { context, value } => {
                write!(f, "non-finite likelihood in {context} ({value}) survived forced rescaling")
            }
            PhyloError::Interrupted { completed } => {
                write!(f, "analysis interrupted after {completed} completed units; resumable from checkpoint")
            }
            PhyloError::Farm { job, message } => {
                write!(f, "inference farm job {job} failed: {message}")
            }
        }
    }
}

impl std::error::Error for PhyloError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PhyloError>;
