//! Brent's method for 1-D function minimization, used to optimize the Γ
//! shape parameter and GTR exchangeabilities (RAxML optimizes model
//! parameters one dimension at a time with Brent).

/// Minimize `f` on `[a, b]` with Brent's method (golden section + parabolic
/// interpolation). Returns `(x_min, f(x_min))`.
///
/// `tol` is the relative x-tolerance; a good general-purpose value is 1e-6.
pub fn brent_minimize<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> (f64, f64) {
    assert!(a < b, "invalid bracket [{a}, {b}]");
    const GOLD: f64 = 0.381_966_011_250_105; // (3 − √5)/2
    const EPS: f64 = 1e-12;

    let (mut lo, mut hi) = (a, b);
    let mut x = lo + GOLD * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..max_iter {
        let m = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + EPS;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (hi - lo) {
            break;
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q_ = (x - v) * (fx - fw);
            let mut p = (x - v) * q_ - (x - w) * r;
            let mut q2 = 2.0 * (q_ - r);
            if q2 > 0.0 {
                p = -p;
            }
            q2 = q2.abs();
            let e_old = e;
            e = d;
            // Accept the parabolic step only if it falls inside the bracket
            // and improves on the previous-previous step length.
            if p.abs() < (0.5 * q2 * e_old).abs() && p > q2 * (lo - x) && p < q2 * (hi - x) {
                d = p / q2;
                let u = x + d;
                if (u - lo) < tol2 || (hi - u) < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { hi - x } else { lo - x };
            d = GOLD * e;
        }
        let u = if d.abs() >= tol1 { x + d } else { x + if d > 0.0 { tol1 } else { -tol1 } };
        let fu = f(u);
        if fu <= fx {
            if u < x {
                hi = x;
            } else {
                lo = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    (x, fx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let (x, fx) = brent_minimize(|x| (x - 3.0) * (x - 3.0) + 2.0, 0.0, 10.0, 1e-10, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
        assert!((fx - 2.0).abs() < 1e-10);
    }

    #[test]
    fn asymmetric_function() {
        // f(x) = x + 1/x has its minimum at x = 1 on (0, ∞).
        let (x, _) = brent_minimize(|x| x + 1.0 / x, 0.01, 50.0, 1e-10, 200);
        assert!((x - 1.0).abs() < 1e-5, "x = {x}");
    }

    #[test]
    fn minimum_at_boundary() {
        // Monotone decreasing: minimum approached at the right edge.
        let (x, _) = brent_minimize(|x| -x, 0.0, 1.0, 1e-8, 200);
        assert!(x > 0.99, "x = {x}");
    }

    #[test]
    fn nonsmooth_function() {
        let (x, _) = brent_minimize(|x: f64| (x - 2.5).abs(), 0.0, 10.0, 1e-9, 300);
        assert!((x - 2.5).abs() < 1e-5, "x = {x}");
    }

    #[test]
    fn counts_evaluations_reasonably() {
        let mut evals = 0;
        let _ = brent_minimize(
            |x| {
                evals += 1;
                (x - 0.7).powi(2)
            },
            0.0,
            1.0,
            1e-8,
            200,
        );
        assert!(evals < 60, "Brent should converge quickly, used {evals} evals");
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_inverted_bracket() {
        brent_minimize(|x| x, 1.0, 0.0, 1e-8, 10);
    }
}
