//! A Cell-SDK-style numerical exponential.
//!
//! Paper §5.2.2: the libm `exp()` consumed 50% of the naive offloaded
//! `newview()` time; replacing it with the SDK's numerical-method `exp`
//! (from `exp.h`, Cell SDK 1.1) cut total execution time by 37–41%. We
//! implement the same style of routine — range reduction to `x = k·ln2 + r`
//! followed by a degree-6 minimax polynomial for `e^r` and an exponent-bits
//! reconstruction of `2^k` — so that (a) the host benchmarks can compare
//! libm vs. "SDK" exp like the paper did, and (b) the simulator's cost model
//! has a concrete operation to price.
//!
//! Accuracy: ~2 ulp over the range used by likelihood computations
//! (arguments are `λ·r·t ∈ [−60, 0]` for eigenvalues λ, rates r, branch
//! lengths t), verified by tests against `f64::exp`.

/// ln(2) split into a high part (exact in double) and a low correction,
/// Cody–Waite style, so `x − k·ln2` stays accurate for large |x|.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
const LOG2_E: f64 = std::f64::consts::LOG2_E;

/// Fast `e^x` via range reduction + polynomial, mirroring the Cell SDK
/// `expd2` approach. Handles the full finite range with overflow/underflow
/// saturation; NaN propagates.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 709.0 {
        return f64::INFINITY;
    }
    if x < -745.0 {
        return 0.0;
    }

    // k = round(x / ln2); r = x − k·ln2 ∈ [−ln2/2, ln2/2].
    let k = (x * LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;

    // e^r by a degree-13 Taylor polynomial with Horner evaluation. On
    // |r| ≤ ln2/2 ≈ 0.3466 the truncation error is r¹⁴/14! < 1e-18
    // relative — below double round-off.
    const C: [f64; 14] = [
        1.0,
        1.0,
        1.0 / 2.0,
        1.0 / 6.0,
        1.0 / 24.0,
        1.0 / 120.0,
        1.0 / 720.0,
        1.0 / 5040.0,
        1.0 / 40320.0,
        1.0 / 362880.0,
        1.0 / 3628800.0,
        1.0 / 39916800.0,
        1.0 / 479001600.0,
        1.0 / 6227020800.0,
    ];
    let mut p = C[13];
    for &c in C[..13].iter().rev() {
        p = p * r + c;
    }

    // 2^k by direct exponent construction (the bit trick the SPE code uses
    // in place of `ldexp`). k is in [-1075, 1024] here.
    let ki = k as i64;
    let two_k = if ki >= -1022 {
        f64::from_bits(((ki + 1023) as u64) << 52)
    } else {
        // Subnormal range: build 2^(k+64) and scale down by 2^-64.
        f64::from_bits(((ki + 64 + 1023) as u64) << 52) * 5.421010862427522e-20
    };
    p * two_k
}

/// Vectorized 2-lane fast exp, matching the SPE's 128-bit (2 × f64) vector
/// width. This is the form the simulator prices as one "SDK exp" vector op.
#[inline]
pub fn fast_exp2(x: [f64; 2]) -> [f64; 2] {
    [fast_exp(x[0]), fast_exp(x[1])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_in_likelihood_range() {
        // Likelihood arguments: eigenvalue × rate × branch length, always ≤ 0
        // and rarely below −60.
        let mut worst = 0.0f64;
        let mut x = -60.0;
        while x <= 0.0 {
            let got = fast_exp(x);
            let want = x.exp();
            let rel = if want == 0.0 { got.abs() } else { ((got - want) / want).abs() };
            worst = worst.max(rel);
            x += 0.001;
        }
        assert!(worst < 1e-14, "worst relative error {worst}");
    }

    #[test]
    fn matches_libm_on_positive_range() {
        let mut x = 0.0;
        while x <= 50.0 {
            let got = fast_exp(x);
            let want = x.exp();
            assert!(((got - want) / want).abs() < 1e-14, "x = {x}");
            x += 0.37;
        }
    }

    #[test]
    fn special_values() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert!(fast_exp(f64::NAN).is_nan());
        assert_eq!(fast_exp(1000.0), f64::INFINITY);
        assert_eq!(fast_exp(-1000.0), 0.0);
    }

    #[test]
    fn near_overflow_boundary() {
        for &x in &[700.0, 708.0, 709.0] {
            let rel = ((fast_exp(x) - x.exp()) / x.exp()).abs();
            assert!(rel < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn deep_underflow_is_graceful() {
        // Subnormal results keep a few digits; mostly we need "no panic,
        // non-negative, monotone" behaviour here.
        let a = fast_exp(-730.0);
        let b = fast_exp(-740.0);
        assert!(a > b && b >= 0.0);
        let rel = ((a - (-730.0f64).exp()) / (-730.0f64).exp()).abs();
        assert!(rel < 1e-9, "rel = {rel}");
    }

    #[test]
    fn two_lane_matches_scalar() {
        let r = fast_exp2([-1.5, -30.25]);
        assert_eq!(r[0], fast_exp(-1.5));
        assert_eq!(r[1], fast_exp(-30.25));
    }
}
