//! Gamma-family special functions and the discrete-Γ rate heterogeneity
//! categories (Yang 1994), as used by RAxML's Γ model (paper §5.2.5: the
//! small `newview` loop computes per-category transition matrices "for each
//! distinct rate category of the CAT or Γ models").

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
/// Accurate to ~1e-13 relative for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g = 7, from the canonical Lanczos table.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes `gammp`).
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_lower requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_gamma_lower requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Series representation of P(a, x), valid (fast-converging) for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_ga).exp()
}

/// Continued-fraction representation of Q(a, x) = 1 − P(a, x), for x ≥ a + 1.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let ln_ga = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_ga).exp() * h
}

/// Inverse of the regularized lower incomplete gamma: finds `x` such that
/// `P(a, x) = p`. Newton iteration seeded with the Wilson–Hilferty
/// approximation.
pub fn inv_reg_gamma(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_reg_gamma requires a > 0");
    assert!((0.0..1.0).contains(&p), "inv_reg_gamma requires 0 <= p < 1, got {p}");
    if p == 0.0 {
        return 0.0;
    }

    // Wilson–Hilferty starting point via the normal quantile.
    let z = inv_std_normal(p);
    let g = 1.0 - 1.0 / (9.0 * a);
    let mut x = a * (g + z * (1.0 / (9.0 * a)).sqrt()).powi(3);
    if !x.is_finite() || x <= 0.0 {
        x = a.max(1e-8);
    }

    let ln_ga = ln_gamma(a);
    for _ in 0..100 {
        let f = reg_gamma_lower(a, x) - p;
        // dP/dx = x^{a-1} e^{-x} / Γ(a)
        let dfdx = ((a - 1.0) * x.ln() - x - ln_ga).exp();
        if dfdx <= 0.0 || !dfdx.is_finite() {
            break;
        }
        let step = f / dfdx;
        let mut x_new = x - step;
        if x_new <= 0.0 {
            x_new = x / 2.0; // damp instead of leaving the domain
        }
        if (x_new - x).abs() < 1e-14 * x.max(1.0) {
            x = x_new;
            break;
        }
        x = x_new;
    }
    // Bisection fallback polish if Newton stalled away from the root.
    if (reg_gamma_lower(a, x) - p).abs() > 1e-8 {
        let (mut lo, mut hi) = (0.0f64, x.max(1.0));
        while reg_gamma_lower(a, hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if reg_gamma_lower(a, mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        x = 0.5 * (lo + hi);
    }
    x
}

/// Inverse standard normal CDF (Acklam's rational approximation, ~1e-9).
fn inv_std_normal(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inv_std_normal(1.0 - p)
    }
}

/// Discrete-Γ rate categories (Yang 1994, "mean" method): `k` equal-weight
/// categories of a Gamma(α, rate α) distribution (mean 1), each represented
/// by its conditional mean. Returns `k` rates with mean exactly normalized
/// to 1.
pub fn discrete_gamma_rates(alpha: f64, k: usize) -> Vec<f64> {
    assert!(alpha > 0.0, "gamma shape must be positive, got {alpha}");
    assert!(k >= 1, "need at least one category");
    if k == 1 {
        return vec![1.0];
    }
    // Category boundaries: quantiles of Gamma(α, rate α). For the rate
    // parameterization, quantile(p) of Gamma(α, β) = invP(α, p) / β.
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0.0);
    for i in 1..k {
        bounds.push(inv_reg_gamma(alpha, i as f64 / k as f64) / alpha);
    }
    bounds.push(f64::INFINITY);

    // Conditional mean over [z_i, z_{i+1}] of Gamma(α, β=α):
    //   mean_i = k · (P(α+1, β·z_{i+1}) − P(α+1, β·z_i)) · (α/β)
    // and α/β = 1 here.
    let mut rates = Vec::with_capacity(k);
    for i in 0..k {
        let lo =
            if bounds[i] == 0.0 { 0.0 } else { reg_gamma_lower(alpha + 1.0, alpha * bounds[i]) };
        let hi = if bounds[i + 1].is_infinite() {
            1.0
        } else {
            reg_gamma_lower(alpha + 1.0, alpha * bounds[i + 1])
        };
        rates.push(k as f64 * (hi - lo));
    }
    // Normalize: the construction already gives mean 1 analytically; the
    // explicit renormalization removes residual numerical drift so the
    // likelihood model sees an exactly mean-1 rate distribution.
    let mean: f64 = rates.iter().sum::<f64>() / k as f64;
    for r in &mut rates {
        *r /= mean;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(3)=2, Γ(4)=6, Γ(0.5)=√π.
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(3.0) - 2.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(4.0) - 6.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn reg_gamma_lower_matches_exponential() {
        // For a = 1, P(1, x) = 1 − e^{−x}.
        for &x in &[0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let expected = 1.0 - f64::exp(-x);
            assert!((reg_gamma_lower(1.0, x) - expected).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn reg_gamma_lower_is_monotone_cdf() {
        for &a in &[0.2, 0.7, 1.0, 2.5, 10.0] {
            let mut prev = 0.0;
            for i in 1..100 {
                let x = i as f64 * 0.3;
                let p = reg_gamma_lower(a, x);
                assert!((0.0..=1.0).contains(&p));
                assert!(p >= prev - 1e-14, "a={a} x={x}");
                prev = p;
            }
            assert!(reg_gamma_lower(a, 200.0) > 1.0 - 1e-10);
        }
    }

    #[test]
    fn inverse_round_trips() {
        for &a in &[0.1, 0.5, 1.0, 2.0, 7.3] {
            for i in 1..20 {
                let p = i as f64 / 20.0;
                let x = inv_reg_gamma(a, p);
                let back = reg_gamma_lower(a, x);
                assert!((back - p).abs() < 1e-8, "a={a} p={p}: x={x}, P={back}");
            }
        }
    }

    #[test]
    fn normal_quantile_symmetry() {
        assert!((inv_std_normal(0.5)).abs() < 1e-9);
        assert!((inv_std_normal(0.975) - 1.959964).abs() < 1e-4);
        assert!((inv_std_normal(0.025) + inv_std_normal(0.975)).abs() < 1e-9);
    }

    #[test]
    fn discrete_gamma_mean_is_one() {
        for &alpha in &[0.05, 0.3, 0.5, 1.0, 2.0, 10.0, 100.0] {
            for &k in &[2usize, 4, 8] {
                let rates = discrete_gamma_rates(alpha, k);
                assert_eq!(rates.len(), k);
                let mean: f64 = rates.iter().sum::<f64>() / k as f64;
                assert!((mean - 1.0).abs() < 1e-10, "alpha={alpha}, k={k}: mean={mean}");
                for w in rates.windows(2) {
                    assert!(w[0] < w[1], "rates must be strictly increasing: {rates:?}");
                }
                assert!(rates[0] > 0.0);
            }
        }
    }

    #[test]
    fn discrete_gamma_against_numerical_integration() {
        // Verify category means against direct Simpson integration of the
        // Gamma(α, rate α) density over the category bounds.
        let alpha = 0.5f64;
        let k = 4;
        let rates = discrete_gamma_rates(alpha, k);

        let density = |x: f64| -> f64 {
            if x <= 0.0 {
                return 0.0;
            }
            ((alpha - 1.0) * x.ln() + alpha * alpha.ln() - alpha * x - ln_gamma(alpha)).exp()
        };
        let mut bounds = vec![0.0];
        for i in 1..k {
            bounds.push(inv_reg_gamma(alpha, i as f64 / k as f64) / alpha);
        }
        bounds.push(60.0); // effectively infinity for α = 0.5

        for c in 0..k {
            // ∫ x f(x) dx over the category, times k (category weight 1/k).
            let (lo, hi) = (bounds[c].max(1e-12), bounds[c + 1]);
            let n = 200_000;
            let h = (hi - lo) / n as f64;
            let mut integral = 0.0;
            for i in 0..n {
                let x0 = lo + i as f64 * h;
                let x1 = x0 + h;
                let xm = 0.5 * (x0 + x1);
                integral +=
                    h / 6.0 * (x0 * density(x0) + 4.0 * xm * density(xm) + x1 * density(x1));
            }
            let expected = k as f64 * integral;
            assert!(
                (rates[c] - expected).abs() < 1e-3,
                "category {c}: got {}, numerical {}",
                rates[c],
                expected
            );
        }
    }

    #[test]
    fn discrete_gamma_limits() {
        // α → large: rates concentrate near 1.
        let rates = discrete_gamma_rates(500.0, 4);
        for r in &rates {
            assert!((r - 1.0).abs() < 0.1, "rates {rates:?}");
        }
        // Small α: extreme spread.
        let rates = discrete_gamma_rates(0.05, 4);
        assert!(rates[0] < 1e-6);
        assert!(rates[3] > 3.0);
        // Single category degenerates to rate 1.
        assert_eq!(discrete_gamma_rates(0.5, 1), vec![1.0]);
    }
}
