//! Jacobi eigendecomposition for small symmetric matrices.
//!
//! Time-reversible substitution models reduce to a symmetric eigenproblem
//! (see [`crate::model`]); for 4×4 nucleotide matrices the classic cyclic
//! Jacobi sweep converges in a handful of iterations and is numerically
//! robust, which is what matters here — the decomposition is done once per
//! model update while `P(t)` reconstruction runs millions of times.

/// Result of a symmetric eigendecomposition: `a = V · diag(values) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Column-major eigenvectors: `vectors[j*n + i]` is component `i` of
    /// eigenvector `j` (paired with `values[j]`).
    pub vectors: Vec<f64>,
    /// Matrix dimension.
    pub n: usize,
}

impl SymmetricEigen {
    /// Eigenvector `j` as a slice.
    pub fn vector(&self, j: usize) -> &[f64] {
        &self.vectors[j * self.n..(j + 1) * self.n]
    }

    /// Reconstruct the original matrix (row-major), for testing.
    pub fn reconstruct(&self) -> Vec<f64> {
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for k in 0..n {
            let v = self.vector(k);
            let lam = self.values[k];
            for i in 0..n {
                for j in 0..n {
                    out[i * n + j] += lam * v[i] * v[j];
                }
            }
        }
        out
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix given in row-major
/// order. Panics if the matrix is not square or not (numerically) symmetric.
pub fn jacobi_eigen(a: &[f64], n: usize) -> SymmetricEigen {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    let scale = a.iter().fold(0.0f64, |m, &x| m.max(x.abs())).max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a[i * n + j] - a[j * n + i]).abs() <= 1e-9 * scale,
                "matrix must be symmetric (a[{i}][{j}]={} vs a[{j}][{i}]={})",
                a[i * n + j],
                a[j * n + i]
            );
        }
    }

    let mut m = a.to_vec();
    // v starts as identity; accumulates rotations (column j = eigenvector j).
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    const MAX_SWEEPS: usize = 64;
    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| m[i * n + j] * m[i * n + j])
            .sum();
        if off.sqrt() <= 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                // tan of the rotation angle, choosing the smaller rotation.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, θ): m ← Gᵀ m G.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort ascending by eigenvalue.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|j| {
            let val = m[j * n + j];
            let vec: Vec<f64> = (0..n).map(|i| v[i * n + j]).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let values = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Vec::with_capacity(n * n);
    for (_, vec) in &pairs {
        vectors.extend_from_slice(vec);
    }
    SymmetricEigen { values, vectors, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = [3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let e = jacobi_eigen(&a, 3);
        assert_close(&e.values, &[1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let e = jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2);
        assert_close(&e.values, &[1.0, 3.0], 1e-12);
        // Eigenvector for λ=1 is (1,-1)/√2 up to sign.
        let v = e.vector(0);
        assert!((v[0] + v[1]).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_round_trip_4x4() {
        let a = [
            4.0, 1.0, 0.5, 0.2, //
            1.0, 3.0, 0.3, 0.1, //
            0.5, 0.3, 2.0, 0.4, //
            0.2, 0.1, 0.4, 1.0,
        ];
        let e = jacobi_eigen(&a, 4);
        assert_close(&e.reconstruct(), &a, 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = [
            4.0, 1.0, 0.5, 0.2, //
            1.0, 3.0, 0.3, 0.1, //
            0.5, 0.3, 2.0, 0.4, //
            0.2, 0.1, 0.4, 1.0,
        ];
        let e = jacobi_eigen(&a, 4);
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = e.vector(i).iter().zip(e.vector(j)).map(|(x, y)| x * y).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-10, "({i},{j}): {dot}");
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = [
            1.0, 0.7, 0.2, 0.1, //
            0.7, 5.0, 0.9, 0.3, //
            0.2, 0.9, 2.5, 0.6, //
            0.1, 0.3, 0.6, 7.0,
        ];
        let e = jacobi_eigen(&a, 4);
        let trace: f64 = (0..4).map(|i| a[i * 4 + i]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric() {
        jacobi_eigen(&[1.0, 2.0, 3.0, 4.0], 2);
    }

    #[test]
    fn values_sorted_ascending() {
        let a = [
            9.0, 0.1, 0.2, 0.3, //
            0.1, 1.0, 0.4, 0.5, //
            0.2, 0.4, 5.0, 0.6, //
            0.3, 0.5, 0.6, 3.0,
        ];
        let e = jacobi_eigen(&a, 4);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
