//! Numerical building blocks: a symmetric eigensolver, gamma-family special
//! functions, a Cell-SDK-style fast exponential, and 1-D optimization.

pub mod brent;
pub mod eigen;
pub mod fastexp;
pub mod gamma;

pub use brent::brent_minimize;
pub use eigen::jacobi_eigen;
pub use fastexp::fast_exp;
pub use gamma::{discrete_gamma_rates, inv_reg_gamma, ln_gamma, reg_gamma_lower};
