//! Sequence-evolution simulation: generates synthetic DNA alignments by
//! evolving sequences along a random tree under GTR+Γ.
//!
//! The paper benchmarks everything on the `42_SC` input — 42 organisms,
//! 1167 nucleotides, ~250 distinct data patterns (§5.2). We do not have that
//! file, so [`SimulationConfig::aln42`] produces a deterministic equivalent:
//! same dimensions and a comparable pattern count, which is what drives the
//! kernel trip counts and memory traffic the Cell study measures.

use crate::alignment::{Alignment, PatternAlignment};
use crate::alphabet::code_of_state;
use crate::error::Result;
use crate::math::discrete_gamma_rates;
use crate::model::{ExpImpl, SubstModel};
use crate::tree::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a simulated dataset.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of taxa.
    pub n_taxa: usize,
    /// Alignment length in sites.
    pub n_sites: usize,
    /// RNG seed — simulations are fully deterministic given the config.
    pub seed: u64,
    /// Substitution model sequences evolve under.
    pub model: SubstModel,
    /// Γ shape for among-site rate variation (4 discrete categories).
    pub alpha: f64,
    /// Mean branch length of the random true tree (controls divergence and
    /// thereby the distinct-pattern count).
    pub mean_branch: f64,
    /// Evolve on this explicit tree instead of a random one (its taxon
    /// count must equal `n_taxa`; branch lengths are used as-is).
    pub tree: Option<Tree>,
}

/// A generated workload: the true tree and the alignment evolved on it.
#[derive(Debug, Clone)]
pub struct SimulatedWorkload {
    /// The raw (uncompressed) alignment.
    pub raw: Alignment,
    /// The pattern-compressed alignment the engine consumes.
    pub alignment: PatternAlignment,
    /// The tree the sequences actually evolved on.
    pub true_tree: Tree,
}

impl SimulationConfig {
    /// A reasonable default configuration (GTR with mild rate bias, Γ 0.7).
    pub fn new(n_taxa: usize, n_sites: usize, seed: u64) -> SimulationConfig {
        SimulationConfig {
            n_taxa,
            n_sites,
            seed,
            model: SubstModel::gtr([0.30, 0.18, 0.24, 0.28], [1.4, 4.2, 0.9, 1.1, 4.8, 1.0])
                .expect("default simulation model is valid"),
            alpha: 0.7,
            mean_branch: 0.08,
            tree: None,
        }
    }

    /// The `42_SC`-equivalent dataset: 42 taxa × 1167 sites, divergence
    /// tuned so the compressed alignment lands near the paper's ~250
    /// distinct patterns. Deterministic (fixed seed).
    pub fn aln42() -> SimulationConfig {
        SimulationConfig {
            // Divergence tuned low: 42_SC compresses 1167 columns into ~250
            // patterns, i.e. most columns repeat. With mean branch 0.004
            // and strong rate heterogeneity (α = 0.25) the generated
            // alignment compresses to 240 patterns. See tests.
            mean_branch: 0.004,
            alpha: 0.25,
            ..SimulationConfig::new(42, 1167, 0x42_5C)
        }
    }

    /// Generate the workload.
    pub fn generate(&self) -> SimulatedWorkload {
        self.try_generate().expect("simulation configuration is valid")
    }

    /// Generate, surfacing configuration errors.
    pub fn try_generate(&self) -> Result<SimulatedWorkload> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let tree = match &self.tree {
            Some(t) => {
                if t.n_taxa() != self.n_taxa {
                    return Err(crate::error::PhyloError::TreeStructure(format!(
                        "explicit tree has {} taxa, config says {}",
                        t.n_taxa(),
                        self.n_taxa
                    )));
                }
                t.clone()
            }
            None => Tree::random(self.n_taxa, self.mean_branch, &mut rng)?,
        };

        // Per-site rate categories (4-category discrete Γ).
        let cat_rates = discrete_gamma_rates(self.alpha, 4);
        let site_cats: Vec<usize> =
            (0..self.n_sites).map(|_| rng.gen_range(0..cat_rates.len())).collect();

        // Per-branch, per-category transition matrices, cached.
        let freqs = *self.model.freqs();
        let pmat = |len: f64, cat: usize| -> [[f64; 4]; 4] {
            self.model.transition_matrix(len, cat_rates[cat], ExpImpl::Sdk)
        };

        // Evolve: root the tree at the first inner node, draw the root
        // sequence from the stationary distribution, then walk down.
        let root: NodeId = self.n_taxa;
        let mut states: Vec<Vec<u8>> = vec![Vec::new(); tree.n_nodes()];
        states[root] = (0..self.n_sites).map(|_| sample_state(&freqs, &mut rng)).collect();

        // DFS from the root.
        let mut stack: Vec<(NodeId, NodeId)> =
            tree.neighbors_of(root).map(|(child, _)| (child, root)).collect();
        while let Some((node, parent)) = stack.pop() {
            let len = tree.branch_length(node, parent);
            // Transition matrices for this branch, one per category.
            let mats: Vec<[[f64; 4]; 4]> = (0..cat_rates.len()).map(|c| pmat(len, c)).collect();
            let child_seq: Vec<u8> = (0..self.n_sites)
                .map(|site| {
                    let from = states[parent][site] as usize;
                    sample_row(&mats[site_cats[site]][from], &mut rng)
                })
                .collect();
            states[node] = child_seq;
            for (next, _) in tree.neighbors_of(node) {
                if next != parent {
                    stack.push((next, node));
                }
            }
        }

        // Collect tip sequences into an alignment.
        let names: Vec<String> = (0..self.n_taxa).map(|i| format!("SC{i:03}")).collect();
        let rows: Vec<Vec<u8>> = (0..self.n_taxa)
            .map(|t| states[t].iter().map(|&s| code_of_state(s as usize)).collect())
            .collect();
        let raw = Alignment::from_encoded(names, rows)?;
        let alignment = raw.compress();
        Ok(SimulatedWorkload { raw, alignment, true_tree: tree })
    }
}

fn sample_state<R: Rng>(probs: &[f64; 4], rng: &mut R) -> u8 {
    sample_row(probs, rng)
}

fn sample_row<R: Rng>(row: &[f64; 4], rng: &mut R) -> u8 {
    let total: f64 = row.iter().sum();
    let mut u: f64 = rng.gen::<f64>() * total;
    for (s, &p) in row.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return s as u8;
        }
    }
    3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = SimulationConfig::new(8, 120, 5).generate();
        let b = SimulationConfig::new(8, 120, 5).generate();
        assert_eq!(a.raw, b.raw);
        assert_eq!(a.true_tree, b.true_tree);
        let c = SimulationConfig::new(8, 120, 6).generate();
        assert_ne!(a.raw, c.raw, "different seed must change the data");
    }

    #[test]
    fn dimensions_match_config() {
        let w = SimulationConfig::new(11, 333, 1).generate();
        assert_eq!(w.raw.n_taxa(), 11);
        assert_eq!(w.raw.n_sites(), 333);
        assert_eq!(w.alignment.n_taxa(), 11);
        assert_eq!(w.alignment.total_weight(), 333.0);
        w.true_tree.validate().unwrap();
    }

    #[test]
    fn aln42_matches_paper_dimensions() {
        let w = SimulationConfig::aln42().generate();
        assert_eq!(w.raw.n_taxa(), 42);
        assert_eq!(w.raw.n_sites(), 1167);
        // Paper: "the number of distinct data patterns ... is on the order
        // of 250". Accept a generous band around that.
        let p = w.alignment.n_patterns();
        assert!((180..=350).contains(&p), "pattern count {p} outside the 42_SC-like band");
    }

    #[test]
    fn explicit_tree_is_used_verbatim() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let tree = crate::tree::Tree::random(7, 0.15, &mut rng).unwrap();
        let cfg = SimulationConfig { tree: Some(tree.clone()), ..SimulationConfig::new(7, 100, 3) };
        let w = cfg.generate();
        assert_eq!(w.true_tree, tree);
        // Taxon-count mismatch is rejected.
        let bad = SimulationConfig { tree: Some(tree), ..SimulationConfig::new(9, 100, 3) };
        assert!(bad.try_generate().is_err());
    }

    #[test]
    fn higher_divergence_creates_more_patterns() {
        let low = SimulationConfig { mean_branch: 0.01, ..SimulationConfig::new(12, 400, 3) };
        let high = SimulationConfig { mean_branch: 0.5, ..SimulationConfig::new(12, 400, 3) };
        assert!(high.generate().alignment.n_patterns() > low.generate().alignment.n_patterns());
    }

    #[test]
    fn base_composition_tracks_model() {
        // With strongly skewed frequencies the generated data must skew too.
        let model = SubstModel::gtr([0.7, 0.1, 0.1, 0.1], [1.0; 6]).unwrap();
        let cfg = SimulationConfig { model, ..SimulationConfig::new(6, 2000, 9) };
        let w = cfg.generate();
        let f = w.raw.empirical_base_frequencies();
        assert!(f[0] > 0.5, "A should dominate, got {f:?}");
    }

    #[test]
    fn sample_row_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            counts[sample_row(&[0.5, 0.3, 0.15, 0.05], &mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        let f0 = counts[0] as f64 / 20_000.0;
        assert!((f0 - 0.5).abs() < 0.02, "f0 = {f0}");
    }
}
