//! Bipartitions (splits), Robinson–Foulds distances and bootstrap support.
//!
//! Every internal branch of an unrooted tree splits the taxa into two sets;
//! the multiset of such splits characterizes the topology. Bootstrap support
//! (paper §3.1) is the fraction of replicate trees containing each split of
//! the best-known tree.

use crate::tree::{NodeId, Tree};
use std::collections::HashSet;

/// A taxon bipartition in canonical form: the side *not* containing taxon 0,
/// encoded as a fixed-width bitset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bipartition {
    bits: Vec<u64>,
    n_taxa: usize,
}

impl Bipartition {
    /// Build from the set of taxa on one side of a split. Canonicalizes by
    /// complementing if the set contains taxon 0.
    pub fn from_side(side: &[NodeId], n_taxa: usize) -> Bipartition {
        let words = n_taxa.div_ceil(64);
        let mut bits = vec![0u64; words];
        for &t in side {
            assert!(t < n_taxa, "taxon {t} out of range");
            bits[t / 64] |= 1 << (t % 64);
        }
        let mut bp = Bipartition { bits, n_taxa };
        if bp.contains(0) {
            bp = bp.complement();
        }
        bp
    }

    /// True if the canonical side contains the taxon.
    pub fn contains(&self, taxon: usize) -> bool {
        self.bits[taxon / 64] & (1 << (taxon % 64)) != 0
    }

    /// Number of taxa on the canonical side.
    pub fn side_size(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if this split is trivial (separates ≤1 taxon).
    pub fn is_trivial(&self) -> bool {
        let k = self.side_size();
        k <= 1 || k >= self.n_taxa - 1
    }

    fn complement(&self) -> Bipartition {
        let mut bits: Vec<u64> = self.bits.iter().map(|w| !w).collect();
        // Clear padding bits beyond n_taxa.
        let tail = self.n_taxa % 64;
        if tail != 0 {
            let last = bits.len() - 1;
            bits[last] &= (1u64 << tail) - 1;
        }
        Bipartition { bits, n_taxa: self.n_taxa }
    }
}

/// All non-trivial bipartitions of a tree, keyed for set operations, along
/// with the internal edge that induces each.
pub fn tree_bipartitions_with_edges(tree: &Tree) -> Vec<(Bipartition, (NodeId, NodeId))> {
    let n = tree.n_taxa();
    tree.edges()
        .into_iter()
        .filter(|&(a, b)| !tree.is_tip(a) && !tree.is_tip(b))
        .map(|(a, b)| {
            let side = tree.subtree_tips(a, b);
            (Bipartition::from_side(&side, n), (a, b))
        })
        .filter(|(bp, _)| !bp.is_trivial())
        .collect()
}

/// All non-trivial bipartitions of a tree.
pub fn tree_bipartitions(tree: &Tree) -> HashSet<Bipartition> {
    tree_bipartitions_with_edges(tree).into_iter().map(|(bp, _)| bp).collect()
}

/// The Robinson–Foulds distance: size of the symmetric difference of the
/// two trees' non-trivial split sets. Zero iff the topologies are equal.
pub fn robinson_foulds(a: &Tree, b: &Tree) -> usize {
    assert_eq!(a.n_taxa(), b.n_taxa(), "trees must be over the same taxa");
    let sa = tree_bipartitions(a);
    let sb = tree_bipartitions(b);
    sa.symmetric_difference(&sb).count()
}

/// Normalized RF distance in [0, 1] (divided by the maximum 2(n−3)).
pub fn robinson_foulds_normalized(a: &Tree, b: &Tree) -> f64 {
    let max = 2 * (a.n_taxa().saturating_sub(3));
    if max == 0 {
        return 0.0;
    }
    robinson_foulds(a, b) as f64 / max as f64
}

/// For each internal edge of `reference`, the fraction of `replicates`
/// whose topology contains the corresponding split.
pub fn split_support(reference: &Tree, replicates: &[Tree]) -> Vec<((NodeId, NodeId), f64)> {
    let ref_splits = tree_bipartitions_with_edges(reference);
    let rep_sets: Vec<HashSet<Bipartition>> = replicates.iter().map(tree_bipartitions).collect();
    ref_splits
        .into_iter()
        .map(|(bp, edge)| {
            let count = rep_sets.iter().filter(|s| s.contains(&bp)).count();
            let frac = if rep_sets.is_empty() { 0.0 } else { count as f64 / rep_sets.len() as f64 };
            (edge, frac)
        })
        .collect()
}

/// A majority-rule consensus tree: clades supported by more than the
/// threshold fraction of replicate trees. Generally multifurcating, so it
/// is its own type rather than a (strictly binary) [`Tree`].
#[derive(Debug, Clone)]
pub struct Consensus {
    n_taxa: usize,
    /// Accepted clades (taxon index sets, never containing taxon 0 — the
    /// canonical orientation) with their support fractions, sorted by size
    /// ascending.
    clades: Vec<(Vec<usize>, f64)>,
}

/// Majority-rule consensus of a set of replicate trees: keeps every
/// non-trivial split occurring in more than `threshold` of the trees
/// (`threshold = 0.5` is the classic majority rule; any value ≥ 0.5
/// guarantees the accepted splits are pairwise compatible).
pub fn majority_rule_consensus(trees: &[Tree], threshold: f64) -> Consensus {
    assert!(!trees.is_empty(), "need at least one tree");
    assert!(threshold >= 0.5, "thresholds below 0.5 can accept incompatible splits");
    let n_taxa = trees[0].n_taxa();
    let mut counts: std::collections::HashMap<Bipartition, usize> =
        std::collections::HashMap::new();
    for t in trees {
        assert_eq!(t.n_taxa(), n_taxa, "trees must cover the same taxa");
        for bp in tree_bipartitions(t) {
            *counts.entry(bp).or_insert(0) += 1;
        }
    }
    let total = trees.len() as f64;
    let mut clades: Vec<(Vec<usize>, f64)> = counts
        .into_iter()
        .filter(|(_, c)| *c as f64 / total > threshold)
        .map(|(bp, c)| {
            let taxa: Vec<usize> = (0..n_taxa).filter(|&t| bp.contains(t)).collect();
            (taxa, c as f64 / total)
        })
        .collect();
    clades.sort_by_key(|(taxa, _)| taxa.len());
    Consensus { n_taxa, clades }
}

impl Consensus {
    /// Number of resolved internal clades (n − 3 means fully resolved).
    pub fn n_clades(&self) -> usize {
        self.clades.len()
    }

    /// Accepted clades with their support fractions.
    pub fn clades(&self) -> &[(Vec<usize>, f64)] {
        &self.clades
    }

    /// Fully resolved consensus = a binary tree's worth of clades.
    pub fn is_fully_resolved(&self) -> bool {
        self.n_clades() == self.n_taxa.saturating_sub(3)
    }

    /// Render as (possibly multifurcating) Newick with percent support
    /// labels on internal nodes.
    pub fn to_newick(&self, names: &[String]) -> String {
        assert_eq!(names.len(), self.n_taxa);
        // parent[i] = index of the smallest accepted clade strictly
        // containing clade i (clades are size-sorted, so scan upward).
        let k = self.clades.len();
        let contains = |outer: &[usize], inner: &[usize]| -> bool {
            // Both sorted ascending.
            let mut it = outer.iter();
            inner.iter().all(|t| it.by_ref().any(|o| o == t))
        };
        let mut parent = vec![usize::MAX; k];
        for i in 0..k {
            for j in (i + 1)..k {
                if self.clades[j].0.len() > self.clades[i].0.len()
                    && contains(&self.clades[j].0, &self.clades[i].0)
                {
                    parent[i] = j;
                    break;
                }
            }
        }
        // Taxon t's host: the smallest clade containing it (or the root).
        let mut taxon_host = vec![usize::MAX; self.n_taxa];
        for t in 1..self.n_taxa {
            for (i, (taxa, _)) in self.clades.iter().enumerate() {
                if taxa.binary_search(&t).is_ok() {
                    taxon_host[t] = i;
                    break;
                }
            }
        }

        fn write_clade(
            c: &Consensus,
            idx: usize, // usize::MAX = root
            parent: &[usize],
            taxon_host: &[usize],
            names: &[String],
            out: &mut String,
        ) {
            out.push('(');
            let mut first = true;
            let sep = |out: &mut String, first: &mut bool| {
                if !*first {
                    out.push(',');
                }
                *first = false;
            };
            // Child clades.
            for i in 0..c.clades.len() {
                if parent[i] == idx {
                    sep(out, &mut first);
                    write_clade(c, i, parent, taxon_host, names, out);
                }
            }
            // Taxa hosted directly here (taxon 0 lives at the root).
            for t in 0..c.n_taxa {
                let here = if t == 0 { idx == usize::MAX } else { taxon_host[t] == idx };
                if here {
                    sep(out, &mut first);
                    out.push_str(&names[t]);
                }
            }
            out.push(')');
            if idx != usize::MAX {
                let _ =
                    std::fmt::Write::write_fmt(out, format_args!("{:.0}", c.clades[idx].1 * 100.0));
            }
        }

        let mut out = String::new();
        write_clade(self, usize::MAX, &parent, &taxon_host, names, &mut out);
        out.push(';');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::newick::parse_newick;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    fn tree(nwk: &str, n: usize) -> Tree {
        parse_newick(nwk, &names(n)).unwrap()
    }

    #[test]
    fn canonical_form_excludes_taxon_zero() {
        let a = Bipartition::from_side(&[0, 1], 5);
        let b = Bipartition::from_side(&[2, 3, 4], 5);
        assert_eq!(a, b, "complementary sides are the same split");
        assert!(!a.contains(0));
    }

    #[test]
    fn trivial_splits() {
        assert!(Bipartition::from_side(&[1], 5).is_trivial());
        assert!(Bipartition::from_side(&[1, 2, 3, 4], 5).is_trivial());
        assert!(!Bipartition::from_side(&[1, 2], 5).is_trivial());
    }

    #[test]
    fn split_count_matches_internal_edges() {
        // An unrooted binary tree over n taxa has n − 3 internal edges.
        let mut rng = StdRng::seed_from_u64(1);
        for n in [4usize, 7, 12, 25] {
            let t = Tree::random(n, 0.1, &mut rng).unwrap();
            assert_eq!(tree_bipartitions(&t).len(), n - 3, "n = {n}");
        }
    }

    #[test]
    fn rf_zero_for_identical_topologies() {
        let a = tree("((t0,t1),(t2,t3),t4);", 5);
        // Same topology, different branch lengths & rotation.
        let b = tree("((t3:0.9,t2:0.8),(t1:0.7,t0:0.6),t4:0.5);", 5);
        assert_eq!(robinson_foulds(&a, &b), 0);
    }

    #[test]
    fn rf_detects_differences() {
        let a = tree("((t0,t1),(t2,t3),t4);", 5);
        let b = tree("((t0,t2),(t1,t3),t4);", 5);
        assert_eq!(robinson_foulds(&a, &b), 4, "both splits differ");
        assert!((robinson_foulds_normalized(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rf_axioms_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let a = Tree::random(10, 0.1, &mut rng).unwrap();
            let b = Tree::random(10, 0.1, &mut rng).unwrap();
            let c = Tree::random(10, 0.1, &mut rng).unwrap();
            assert_eq!(robinson_foulds(&a, &a), 0);
            assert_eq!(robinson_foulds(&a, &b), robinson_foulds(&b, &a));
            // Triangle inequality (RF is a metric).
            assert!(robinson_foulds(&a, &c) <= robinson_foulds(&a, &b) + robinson_foulds(&b, &c));
        }
    }

    #[test]
    fn support_counts_replicates() {
        let reference = tree("((t0,t1),(t2,t3),t4);", 5);
        let same = tree("((t0,t1),(t2,t3),t4);", 5);
        let half = tree("((t0,t1),(t2,t4),t3);", 5); // shares the {t0,t1} split only
        let support = split_support(&reference, &[same, half]);
        assert_eq!(support.len(), 2);
        let mut fracs: Vec<f64> = support.iter().map(|&(_, f)| f).collect();
        fracs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(fracs, vec![0.5, 1.0]);
    }

    #[test]
    fn support_empty_replicates() {
        let reference = tree("((t0,t1),(t2,t3),t4);", 5);
        let support = split_support(&reference, &[]);
        assert!(support.iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn consensus_of_identical_trees_is_that_topology() {
        let t = tree("((t0,t1),(t2,t3),t4);", 5);
        let c = majority_rule_consensus(&[t.clone(), t.clone(), t.clone()], 0.5);
        assert_eq!(c.n_clades(), 2);
        assert!(c.is_fully_resolved());
        assert!(c.clades().iter().all(|&(_, f)| f == 1.0));
        let names: Vec<String> = (0..5).map(|i| format!("t{i}")).collect();
        let nwk = c.to_newick(&names);
        // The consensus newick must contain both clades with 100 support.
        assert_eq!(nwk.matches("100").count(), 2, "{nwk}");
        for n in &names {
            assert!(nwk.contains(n.as_str()), "{nwk}");
        }
        assert!(nwk.ends_with(';'));
    }

    #[test]
    fn consensus_majority_rule() {
        // Two trees agree on {t2,t3}; the third differs everywhere else.
        let a = tree("((t0,t1),(t2,t3),t4);", 5);
        let b = tree("((t0,t4),(t2,t3),t1);", 5);
        let c3 = tree("((t0,t2),(t1,t4),t3);", 5);
        let c = majority_rule_consensus(&[a, b, c3], 0.5);
        assert_eq!(c.n_clades(), 1, "only {{t2,t3}} is in a 2/3 majority");
        assert!(!c.is_fully_resolved());
        let (taxa, f) = &c.clades()[0];
        assert_eq!(taxa, &vec![2, 3]);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn consensus_of_incompatible_trees_is_a_star() {
        let a = tree("((t0,t1),(t2,t3),t4);", 5);
        let b = tree("((t0,t2),(t1,t3),t4);", 5);
        let c = majority_rule_consensus(&[a, b], 0.5);
        assert_eq!(c.n_clades(), 0, "nothing reaches a strict majority");
        let names: Vec<String> = (0..5).map(|i| format!("t{i}")).collect();
        let nwk = c.to_newick(&names);
        assert_eq!(nwk.matches(',').count(), 4, "star tree: {nwk}");
    }

    #[test]
    fn consensus_nests_clades() {
        // Trees agreeing on nested clades {t3,t4} ⊂ {t2,t3,t4}.
        let t = tree("((t0,t1),(t2,(t3,t4)),t5);", 6);
        let c = majority_rule_consensus(&[t.clone(), t], 0.5);
        assert_eq!(c.n_clades(), 3);
        let names: Vec<String> = (0..6).map(|i| format!("t{i}")).collect();
        let nwk = c.to_newick(&names);
        // The consensus newick of identical inputs parses back to the same
        // topology (it is binary here).
        let back = parse_newick(&nwk, &names).unwrap();
        assert_eq!(robinson_foulds(&back, &tree("((t0,t1),(t2,(t3,t4)),t5);", 6)), 0, "{nwk}");
    }

    #[test]
    fn large_taxon_sets_cross_word_boundary() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tree::random(130, 0.1, &mut rng).unwrap();
        let splits = tree_bipartitions(&t);
        assert_eq!(splits.len(), 127);
        assert_eq!(robinson_foulds(&t, &t), 0);
    }
}
