//! DNA alphabet with IUPAC ambiguity codes.
//!
//! Nucleotides are encoded RAxML-style as 4-bit sets over the state order
//! `A, C, G, T` (indices 0..4). Bit `i` set means state `i` is compatible
//! with the observed character. Ambiguity codes are unions; gaps and `N`
//! are the full set `0b1111`.

use crate::error::PhyloError;

/// Number of nucleotide states.
pub const STATES: usize = 4;

/// A 4-bit nucleotide state set (`0b0001` = A, `0b0010` = C, `0b0100` = G,
/// `0b1000` = T; ambiguity codes are unions, `0b1111` is a gap/unknown).
pub type DnaCode = u8;

/// The fully ambiguous code (gap, `N`, `?`, `X`).
pub const GAP: DnaCode = 0b1111;

/// State index → canonical uppercase character.
pub const STATE_CHARS: [char; STATES] = ['A', 'C', 'G', 'T'];

/// Encode one IUPAC nucleotide character into its 4-bit state set.
///
/// Accepts upper- and lowercase letters, `-`, `.`, `?` (treated as gaps).
pub fn encode_base(ch: char) -> Option<DnaCode> {
    Some(match ch.to_ascii_uppercase() {
        'A' => 0b0001,
        'C' => 0b0010,
        'G' => 0b0100,
        'T' | 'U' => 0b1000,
        'M' => 0b0011, // A or C
        'R' => 0b0101, // A or G
        'W' => 0b1001, // A or T
        'S' => 0b0110, // C or G
        'Y' => 0b1010, // C or T
        'K' => 0b1100, // G or T
        'V' => 0b0111, // A, C or G
        'H' => 0b1011, // A, C or T
        'D' => 0b1101, // A, G or T
        'B' => 0b1110, // C, G or T
        'N' | 'X' | '?' | '-' | '.' | 'O' => GAP,
        _ => return None,
    })
}

/// Decode a 4-bit state set back into its canonical IUPAC character.
pub fn decode_base(code: DnaCode) -> char {
    match code & GAP {
        0b0001 => 'A',
        0b0010 => 'C',
        0b0100 => 'G',
        0b1000 => 'T',
        0b0011 => 'M',
        0b0101 => 'R',
        0b1001 => 'W',
        0b0110 => 'S',
        0b1010 => 'Y',
        0b1100 => 'K',
        0b0111 => 'V',
        0b1011 => 'H',
        0b1101 => 'D',
        0b1110 => 'B',
        0b1111 => 'N',
        _ => '-', // 0b0000: impossible for valid data
    }
}

/// Encode a whole sequence, reporting the first invalid character.
pub fn encode_sequence(taxon: &str, seq: &str) -> Result<Vec<DnaCode>, PhyloError> {
    seq.chars()
        .enumerate()
        .map(|(i, ch)| {
            encode_base(ch).ok_or(PhyloError::InvalidCharacter {
                taxon: taxon.to_string(),
                position: i,
                ch,
            })
        })
        .collect()
}

/// The 16-row tip likelihood table: row `code` holds the conditional
/// likelihood of each of the four states given the observed state set
/// (1.0 if the state is in the set, 0.0 otherwise).
///
/// This is the lookup RAxML uses in the tip-specialized `newview` paths:
/// a leaf contributes a fixed 4-vector per site, independent of rate
/// category or branch length.
pub const TIP_LIKELIHOODS: [[f64; STATES]; 16] = {
    let mut table = [[0.0; STATES]; 16];
    let mut code = 0;
    while code < 16 {
        let mut s = 0;
        while s < STATES {
            if code & (1 << s) != 0 {
                table[code][s] = 1.0;
            }
            s += 1;
        }
        code += 1;
    }
    table
};

/// Returns true if the code denotes exactly one state (an unambiguous base).
#[inline]
pub fn is_unambiguous(code: DnaCode) -> bool {
    code.count_ones() == 1
}

/// Index of the single state of an unambiguous code.
#[inline]
pub fn state_index(code: DnaCode) -> Option<usize> {
    is_unambiguous(code).then(|| code.trailing_zeros() as usize)
}

/// Code representing exactly one state.
#[inline]
pub fn code_of_state(state: usize) -> DnaCode {
    debug_assert!(state < STATES);
    1 << state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_canonical_bases() {
        assert_eq!(encode_base('A'), Some(0b0001));
        assert_eq!(encode_base('c'), Some(0b0010));
        assert_eq!(encode_base('G'), Some(0b0100));
        assert_eq!(encode_base('t'), Some(0b1000));
        assert_eq!(encode_base('U'), Some(0b1000));
    }

    #[test]
    fn encode_gaps_and_unknowns() {
        for ch in ['N', 'n', '-', '.', '?', 'X'] {
            assert_eq!(encode_base(ch), Some(GAP), "char {ch:?}");
        }
    }

    #[test]
    fn reject_invalid_characters() {
        for ch in ['Z', '1', '*', ' ', 'e', 'f'] {
            assert_eq!(encode_base(ch), None, "char {ch:?}");
        }
    }

    #[test]
    fn decode_round_trips_all_codes() {
        for code in 1..=15u8 {
            let ch = decode_base(code);
            assert_eq!(encode_base(ch), Some(code), "code {code:#06b}");
        }
    }

    #[test]
    fn ambiguity_codes_are_unions() {
        let r = encode_base('R').unwrap();
        assert_eq!(r, encode_base('A').unwrap() | encode_base('G').unwrap());
        let y = encode_base('Y').unwrap();
        assert_eq!(y, encode_base('C').unwrap() | encode_base('T').unwrap());
        let v = encode_base('V').unwrap();
        assert_eq!(v, 0b0111);
    }

    #[test]
    fn tip_likelihood_table_matches_bits() {
        for code in 0..16usize {
            for s in 0..STATES {
                let expected = if code & (1 << s) != 0 { 1.0 } else { 0.0 };
                assert_eq!(TIP_LIKELIHOODS[code][s], expected);
            }
        }
    }

    #[test]
    fn unambiguous_state_indices() {
        assert_eq!(state_index(0b0001), Some(0));
        assert_eq!(state_index(0b0010), Some(1));
        assert_eq!(state_index(0b0100), Some(2));
        assert_eq!(state_index(0b1000), Some(3));
        assert_eq!(state_index(0b0011), None);
        assert_eq!(state_index(GAP), None);
        for s in 0..STATES {
            assert_eq!(state_index(code_of_state(s)), Some(s));
        }
    }

    #[test]
    fn encode_sequence_reports_position() {
        let err = encode_sequence("tax1", "ACGZ").unwrap_err();
        assert_eq!(
            err,
            PhyloError::InvalidCharacter { taxon: "tax1".into(), position: 3, ch: 'Z' }
        );
        assert_eq!(encode_sequence("t", "ACGT").unwrap(), vec![1, 2, 4, 8]);
    }
}
