//! Kernel-invocation instrumentation.
//!
//! The paper's §5.2 profiles RAxML with gprofile and finds 98.77% of runtime
//! in three functions (`newview` 76.8%, `makenewz` 19.16%, `evaluate` 2.37%).
//! We instrument the same three kernels directly: every invocation is
//! counted, and optionally recorded as a [`KernelEvent`] carrying the
//! quantities the Cell simulator needs to price the invocation (pattern
//! count, rate categories, `exp` calls, scaling checks, DMA-relevant sizes,
//! nesting).

/// Which high-level kernel an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// `newview`, both children are tips (cheapest specialized path).
    NewviewTipTip,
    /// `newview`, exactly one child is a tip.
    NewviewTipInner,
    /// `newview`, both children are inner nodes (full path).
    NewviewInnerInner,
    /// `evaluate`: log-likelihood summation at a branch.
    Evaluate,
    /// `makenewz`: Newton–Raphson branch-length optimization.
    Makenewz,
}

impl KernelOp {
    /// True for any of the three `newview` variants.
    pub fn is_newview(self) -> bool {
        matches!(
            self,
            KernelOp::NewviewTipTip | KernelOp::NewviewTipInner | KernelOp::NewviewInnerInner
        )
    }
}

/// The caller context of a kernel invocation. With only `newview` offloaded
/// (paper Tables 1–6) every invocation pays a PPE↔SPE round trip; with all
/// three functions offloaded (Table 7) `newview` calls *nested* inside
/// `makenewz`/`evaluate` stay on the SPE and need no communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallParent {
    /// Invoked directly by the search code (tree traversal).
    Search,
    /// Invoked while serving an `evaluate`.
    Evaluate,
    /// Invoked while serving a `makenewz`.
    Makenewz,
}

/// One kernel invocation with everything the cost model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelEvent {
    pub op: KernelOp,
    pub parent: CallParent,
    /// Site patterns processed.
    pub patterns: u32,
    /// Rate categories.
    pub rates: u32,
    /// Calls to `exp()` (transition-matrix reconstruction; for `makenewz`
    /// this accumulates over Newton iterations).
    pub exp_calls: u32,
    /// Scaling-threshold conditionals executed (the paper's §5.2.3 branch).
    pub scaling_checks: u32,
    /// Conditionals that actually fired (rare; the paper notes "negligible
    /// time is spent in the body").
    pub scalings: u32,
    /// Newton iterations (`makenewz` only, 0 otherwise).
    pub newton_iters: u32,
    /// Number of *inner-node* partial-likelihood operands streamed through
    /// DMA (0–2 for newview inputs; +1 for the output vector).
    pub inner_operands: u32,
}

impl KernelEvent {
    /// Bytes of likelihood-vector traffic between main memory and SPE local
    /// store for this invocation: each inner operand (in or out) is
    /// `patterns × rates × 4 states × 8 bytes`.
    pub fn dma_bytes(&self) -> u64 {
        let vector = self.patterns as u64 * self.rates as u64 * 4 * 8;
        vector * self.inner_operands as u64
    }

    /// Double-precision FLOPs of the main likelihood loops, from the
    /// per-iteration operation counts of the scalar kernels (the paper
    /// reports ≈44 FLOPs per large-loop iteration for the inner-inner path).
    pub fn flops(&self) -> u64 {
        let per_iter = match self.op {
            KernelOp::NewviewTipTip => 4,      // 4 multiplies
            KernelOp::NewviewTipInner => 24,   // one mat-vec + elementwise product
            KernelOp::NewviewInnerInner => 44, // two mat-vecs + product
            // mat-vec + π-weighted dot product.
            KernelOp::Evaluate => 28,
            // Sum-table build (two W-transforms + product ≈ 60 FLOPs) plus
            // 24 FLOPs per Newton iteration (three 4-term dot products).
            KernelOp::Makenewz => 60 + 24 * self.newton_iters.max(1) as u64,
        };
        self.patterns as u64 * self.rates as u64 * per_iter
    }
}

/// Aggregate counters, always collected (cheap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    pub newview_calls: u64,
    pub newview_tip_tip: u64,
    pub newview_tip_inner: u64,
    pub newview_inner_inner: u64,
    pub newview_nested: u64,
    pub evaluate_calls: u64,
    pub makenewz_calls: u64,
    pub newton_iters: u64,
    pub exp_calls: u64,
    pub scaling_checks: u64,
    pub scalings: u64,
    pub patterns_processed: u64,
    /// Fused traversal batches executed (one per compiled
    /// [`crate::likelihood::TraversalOps`] list with at least one op).
    pub fused_batches: u64,
    /// Total `newview` descriptors executed through fused batches.
    pub fused_ops: u64,
}

/// One SPR round's slice of the event stream: the half-open range
/// `[begin, end)` of kernel-invocation indices issued while the round ran.
/// Indices count *invocations* (`newview` + `evaluate` + `makenewz`), so
/// they are meaningful on a counters-only trace too; on a recording trace
/// they index directly into [`Trace::events`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundMark {
    /// SPR round number (0-based).
    pub round: u32,
    /// Index of the first invocation issued in this round.
    pub begin: usize,
    /// One past the last invocation issued in this round.
    pub end: usize,
}

/// Collects kernel events and aggregate counters during likelihood
/// computation.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    counters: TraceCounters,
    events: Vec<KernelEvent>,
    record_events: bool,
    rounds: Vec<RoundMark>,
    open_round: Option<RoundMark>,
}

impl Trace {
    /// A trace that only keeps aggregate counters.
    pub fn counters_only() -> Trace {
        Trace::default()
    }

    /// A trace that records every kernel invocation (needed for cellsim
    /// replay).
    pub fn recording() -> Trace {
        Trace { record_events: true, ..Trace::default() }
    }

    /// Whether full events are being recorded.
    pub fn is_recording(&self) -> bool {
        self.record_events
    }

    /// Record one kernel invocation.
    pub fn push(&mut self, ev: KernelEvent) {
        let c = &mut self.counters;
        match ev.op {
            KernelOp::NewviewTipTip => {
                c.newview_calls += 1;
                c.newview_tip_tip += 1;
            }
            KernelOp::NewviewTipInner => {
                c.newview_calls += 1;
                c.newview_tip_inner += 1;
            }
            KernelOp::NewviewInnerInner => {
                c.newview_calls += 1;
                c.newview_inner_inner += 1;
            }
            KernelOp::Evaluate => c.evaluate_calls += 1,
            KernelOp::Makenewz => c.makenewz_calls += 1,
        }
        if ev.op.is_newview() && ev.parent != CallParent::Search {
            c.newview_nested += 1;
        }
        c.newton_iters += ev.newton_iters as u64;
        c.exp_calls += ev.exp_calls as u64;
        c.scaling_checks += ev.scaling_checks as u64;
        c.scalings += ev.scalings as u64;
        c.patterns_processed += ev.patterns as u64;
        if self.record_events {
            self.events.push(ev);
        }
    }

    /// Record one fused traversal batch of `n_ops` `newview` descriptors.
    /// The per-op [`KernelEvent`]s are still pushed individually (their
    /// shape is what the cost model prices); this counter captures how many
    /// of them were dispatched as a single descriptor-list execution.
    pub fn record_fused_batch(&mut self, n_ops: u64) {
        self.counters.fused_batches += 1;
        self.counters.fused_ops += n_ops;
    }

    /// Aggregate counters.
    pub fn counters(&self) -> &TraceCounters {
        &self.counters
    }

    /// Recorded events (empty unless constructed with [`Trace::recording`]).
    pub fn events(&self) -> &[KernelEvent] {
        &self.events
    }

    /// Consume the trace, returning its events.
    pub fn into_events(self) -> Vec<KernelEvent> {
        self.events
    }

    /// Total kernel invocations recorded so far (newview + evaluate +
    /// makenewz). Equals `events().len()` when recording.
    pub fn invocation_count(&self) -> usize {
        (self.counters.newview_calls + self.counters.evaluate_calls + self.counters.makenewz_calls)
            as usize
    }

    /// Open a round mark: invocations from here until
    /// [`Trace::end_spr_round`] belong to SPR round `round`. An
    /// already-open round is closed first.
    pub fn begin_spr_round(&mut self, round: u32) {
        self.end_spr_round();
        let at = self.invocation_count();
        self.open_round = Some(RoundMark { round, begin: at, end: at });
    }

    /// Close the open round mark, if any, recording its invocation range.
    pub fn end_spr_round(&mut self) {
        if let Some(mut mark) = self.open_round.take() {
            mark.end = self.invocation_count();
            self.rounds.push(mark);
        }
    }

    /// Completed SPR round marks, in order.
    pub fn rounds(&self) -> &[RoundMark] {
        &self.rounds
    }

    /// The recorded events of one completed round (empty unless recording).
    pub fn events_for_round(&self, mark: &RoundMark) -> &[KernelEvent] {
        let begin = mark.begin.min(self.events.len());
        let end = mark.end.min(self.events.len());
        &self.events[begin..end]
    }

    /// Merge another trace's counters (and events, if both record) into this
    /// one — used when joining per-thread traces. Round marks carry over
    /// with their invocation indices shifted past this trace's existing
    /// invocations.
    pub fn merge(&mut self, other: &Trace) {
        let shift = self.invocation_count();
        for mark in &other.rounds {
            self.rounds.push(RoundMark {
                round: mark.round,
                begin: mark.begin + shift,
                end: mark.end + shift,
            });
        }
        let a = &mut self.counters;
        let b = other.counters;
        a.newview_calls += b.newview_calls;
        a.newview_tip_tip += b.newview_tip_tip;
        a.newview_tip_inner += b.newview_tip_inner;
        a.newview_inner_inner += b.newview_inner_inner;
        a.newview_nested += b.newview_nested;
        a.evaluate_calls += b.evaluate_calls;
        a.makenewz_calls += b.makenewz_calls;
        a.newton_iters += b.newton_iters;
        a.exp_calls += b.exp_calls;
        a.scaling_checks += b.scaling_checks;
        a.scalings += b.scalings;
        a.patterns_processed += b.patterns_processed;
        a.fused_batches += b.fused_batches;
        a.fused_ops += b.fused_ops;
        if self.record_events {
            self.events.extend_from_slice(&other.events);
        }
    }

    /// Reset counters, events, and round marks.
    pub fn clear(&mut self) {
        self.counters = TraceCounters::default();
        self.events.clear();
        self.rounds.clear();
        self.open_round = None;
    }

    /// Fraction of `newview` invocations that were nested inside `evaluate`
    /// or `makenewz` (drives the Table 7 communication savings).
    pub fn nested_fraction(&self) -> f64 {
        if self.counters.newview_calls == 0 {
            return 0.0;
        }
        self.counters.newview_nested as f64 / self.counters.newview_calls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: KernelOp, parent: CallParent) -> KernelEvent {
        KernelEvent {
            op,
            parent,
            patterns: 100,
            rates: 4,
            exp_calls: 16,
            scaling_checks: 400,
            scalings: 2,
            newton_iters: if op == KernelOp::Makenewz { 5 } else { 0 },
            inner_operands: 3,
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::counters_only();
        t.push(ev(KernelOp::NewviewTipTip, CallParent::Search));
        t.push(ev(KernelOp::NewviewInnerInner, CallParent::Makenewz));
        t.push(ev(KernelOp::Makenewz, CallParent::Search));
        let c = t.counters();
        assert_eq!(c.newview_calls, 2);
        assert_eq!(c.newview_tip_tip, 1);
        assert_eq!(c.newview_inner_inner, 1);
        assert_eq!(c.newview_nested, 1);
        assert_eq!(c.makenewz_calls, 1);
        assert_eq!(c.newton_iters, 5);
        assert_eq!(c.exp_calls, 48);
        assert_eq!(c.patterns_processed, 300);
        assert!(t.events().is_empty(), "counters_only must not store events");
    }

    #[test]
    fn recording_stores_events() {
        let mut t = Trace::recording();
        t.push(ev(KernelOp::Evaluate, CallParent::Search));
        t.push(ev(KernelOp::NewviewTipInner, CallParent::Evaluate));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].parent, CallParent::Evaluate);
    }

    #[test]
    fn nested_fraction() {
        let mut t = Trace::counters_only();
        assert_eq!(t.nested_fraction(), 0.0);
        t.push(ev(KernelOp::NewviewTipTip, CallParent::Search));
        t.push(ev(KernelOp::NewviewTipTip, CallParent::Makenewz));
        t.push(ev(KernelOp::NewviewTipTip, CallParent::Evaluate));
        t.push(ev(KernelOp::NewviewTipTip, CallParent::Evaluate));
        assert_eq!(t.nested_fraction(), 0.75);
    }

    #[test]
    fn merge_combines() {
        let mut a = Trace::recording();
        a.push(ev(KernelOp::NewviewTipTip, CallParent::Search));
        let mut b = Trace::recording();
        b.push(ev(KernelOp::Makenewz, CallParent::Search));
        b.push(ev(KernelOp::Evaluate, CallParent::Search));
        a.merge(&b);
        assert_eq!(a.counters().newview_calls, 1);
        assert_eq!(a.counters().makenewz_calls, 1);
        assert_eq!(a.counters().evaluate_calls, 1);
        assert_eq!(a.events().len(), 3);
    }

    #[test]
    fn dma_bytes_and_flops() {
        let e = ev(KernelOp::NewviewInnerInner, CallParent::Search);
        // 100 patterns × 4 rates × 4 states × 8 bytes × 3 operands.
        assert_eq!(e.dma_bytes(), 100 * 4 * 4 * 8 * 3);
        assert_eq!(e.flops(), 100 * 4 * 44);
        let m = ev(KernelOp::Makenewz, CallParent::Search);
        assert_eq!(m.flops(), 100 * 4 * (60 + 24 * 5));
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::recording();
        t.push(ev(KernelOp::Evaluate, CallParent::Search));
        t.begin_spr_round(0);
        t.clear();
        assert_eq!(t.counters(), &TraceCounters::default());
        assert!(t.events().is_empty());
        assert!(t.rounds().is_empty());
        assert!(t.is_recording(), "recording mode survives clear");
        // The open round died with clear(): ending now records nothing.
        t.end_spr_round();
        assert!(t.rounds().is_empty());
    }

    #[test]
    fn round_marks_slice_the_event_stream() {
        let mut t = Trace::recording();
        t.push(ev(KernelOp::NewviewTipTip, CallParent::Search)); // pre-round
        t.begin_spr_round(0);
        t.push(ev(KernelOp::Evaluate, CallParent::Search));
        t.push(ev(KernelOp::Makenewz, CallParent::Search));
        // Starting round 1 implicitly closes round 0.
        t.begin_spr_round(1);
        t.push(ev(KernelOp::NewviewInnerInner, CallParent::Search));
        t.end_spr_round();
        t.end_spr_round(); // idempotent

        assert_eq!(t.rounds().len(), 2);
        assert_eq!(t.rounds()[0], RoundMark { round: 0, begin: 1, end: 3 });
        assert_eq!(t.rounds()[1], RoundMark { round: 1, begin: 3, end: 4 });
        let r0 = t.events_for_round(&t.rounds()[0]);
        assert_eq!(r0.len(), 2);
        assert_eq!(r0[0].op, KernelOp::Evaluate);
        let r1 = t.events_for_round(&t.rounds()[1]);
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].op, KernelOp::NewviewInnerInner);
    }

    #[test]
    fn round_marks_work_without_event_recording() {
        // Counters-only traces still mark rounds by invocation index.
        let mut t = Trace::counters_only();
        t.begin_spr_round(0);
        t.push(ev(KernelOp::Evaluate, CallParent::Search));
        t.end_spr_round();
        assert_eq!(t.rounds(), &[RoundMark { round: 0, begin: 0, end: 1 }]);
        // No events stored, so the slice is empty but in bounds.
        assert!(t.events_for_round(&t.rounds()[0]).is_empty());
    }

    #[test]
    fn merge_shifts_round_marks() {
        let mut a = Trace::recording();
        a.push(ev(KernelOp::NewviewTipTip, CallParent::Search));
        let mut b = Trace::recording();
        b.begin_spr_round(0);
        b.push(ev(KernelOp::Makenewz, CallParent::Search));
        b.end_spr_round();
        a.merge(&b);
        assert_eq!(a.rounds(), &[RoundMark { round: 0, begin: 1, end: 2 }]);
        assert_eq!(a.events_for_round(&a.rounds()[0])[0].op, KernelOp::Makenewz);
    }
}
