//! On-disk checkpoints for long-running analyses.
//!
//! Two artifacts live here:
//!
//! * [`SearchCheckpointer`] — whole-file snapshots of an SPR hill climb,
//!   rewritten atomically (temp file + rename) after every improvement
//!   round. A killed search resumes from the last completed round and
//!   finishes **bit-identically** to an uninterrupted run, because the
//!   deterministic prefix (stepwise-addition start, engine construction)
//!   is recomputed from the seed and only the mutable state (tree, Γ
//!   shape, round counters) is restored from disk.
//! * [`BootstrapStore`] — an append-only log of completed bootstrap /
//!   inference jobs. Each record is one line; a crash mid-write leaves at
//!   most one malformed trailing record, which is dropped on reload (the
//!   job simply re-runs).
//!
//! Both formats are plain text, versioned by a header line, and guarded by
//! an FNV-1a fingerprint of the analysis inputs so a checkpoint written
//! for one alignment/seed/configuration can never silently resume
//! another. Floating-point state is stored as `f64::to_bits` hex — exact,
//! locale-proof, round-trip safe.

use crate::alignment::PatternAlignment;
use crate::error::{PhyloError, Result};
use crate::search::SearchConfig;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

/// Wall-clock telemetry for durable writes: snapshot/append latency
/// histograms (fsync included, so these are the honest numbers) and byte
/// counters. Resolved from the global [`obs`] registry once per process;
/// with the registry disabled each write pays one atomic load and no
/// clock reads.
struct CkptMetrics {
    write_ns: obs::Histogram,
    write_bytes: obs::Counter,
    append_ns: obs::Histogram,
    append_bytes: obs::Counter,
}

fn ckpt_metrics() -> Option<&'static CkptMetrics> {
    let reg = obs::global();
    if !reg.is_enabled() {
        return None;
    }
    static CELL: OnceLock<CkptMetrics> = OnceLock::new();
    Some(CELL.get_or_init(|| CkptMetrics {
        write_ns: reg.histogram("checkpoint_write_ns"),
        write_bytes: reg.counter("checkpoint_bytes_total"),
        append_ns: reg.histogram("bootstrap_append_ns"),
        append_bytes: reg.counter("bootstrap_append_bytes_total"),
    }))
}

/// File-format version; bumped on any incompatible layout change.
const VERSION: u32 = 1;

/// Magic first token of every checkpoint file.
const MAGIC: &str = "#RAXML-CELL-CHECKPOINT";

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Incremental FNV-1a-64 hash over the inputs that define an analysis.
///
/// Not cryptographic — it only needs to make accidental cross-analysis
/// resumes (wrong alignment, wrong seed, changed search radius) fail loudly
/// instead of producing silently wrong trees.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fingerprint {
        Fingerprint(Fingerprint::OFFSET)
    }

    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Fingerprint {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Fingerprint::PRIME);
        }
        self
    }

    pub fn push_u64(&mut self, v: u64) -> &mut Fingerprint {
        self.push_bytes(&v.to_le_bytes())
    }

    pub fn push_str(&mut self, s: &str) -> &mut Fingerprint {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

/// Fingerprint of one ML search: alignment shape and taxa, the seed, and
/// every [`SearchConfig`] knob that alters the search trajectory.
pub fn search_fingerprint(aln: &PatternAlignment, config: &SearchConfig, seed: u64) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_u64(aln.n_taxa() as u64)
        .push_u64(aln.n_sites() as u64)
        .push_u64(aln.n_patterns() as u64);
    for name in aln.taxon_names() {
        fp.push_str(name);
    }
    fp.push_u64(seed)
        .push_u64(config.spr_radius as u64)
        .push_u64(config.max_spr_rounds as u64)
        .push_u64(config.epsilon.to_bits())
        .push_u64(config.n_rate_categories as u64)
        .push_u64(config.initial_alpha.to_bits())
        .push_u64(config.initial_branch_length.to_bits())
        .push_u64(u64::from(config.optimize_alpha));
    fp.finish()
}

// ---------------------------------------------------------------------------
// I/O helpers
// ---------------------------------------------------------------------------

fn io_err(path: &Path, e: std::io::Error) -> PhyloError {
    PhyloError::Io { path: path.display().to_string(), message: e.to_string() }
}

fn bad(path: &Path, message: impl Into<String>) -> PhyloError {
    PhyloError::Checkpoint { path: path.display().to_string(), message: message.into() }
}

/// Write `contents` to `path` atomically: write a sibling temp file, flush,
/// then rename over the target. A crash mid-write leaves the previous
/// checkpoint intact.
fn atomic_write(path: &Path, contents: &str) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(contents.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

fn parse_hex_u64(path: &Path, field: &str, text: &str) -> Result<u64> {
    u64::from_str_radix(text, 16).map_err(|_| bad(path, format!("bad {field} value {text:?}")))
}

fn parse_usize(path: &Path, field: &str, text: &str) -> Result<usize> {
    text.parse().map_err(|_| bad(path, format!("bad {field} value {text:?}")))
}

/// Validate `#RAXML-CELL-CHECKPOINT v<N> <kind>` and the following
/// `fingerprint <hex>` line; returns the remaining lines iterator.
fn check_header<'a>(
    path: &Path,
    lines: &mut impl Iterator<Item = &'a str>,
    kind: &str,
    fingerprint: u64,
) -> Result<()> {
    let header = lines.next().ok_or_else(|| bad(path, "empty file"))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(MAGIC) {
        return Err(bad(path, "not a checkpoint file (bad magic)"));
    }
    let version = parts.next().unwrap_or("");
    if version != format!("v{VERSION}") {
        return Err(bad(path, format!("unsupported version {version:?} (expected v{VERSION})")));
    }
    let found_kind = parts.next().unwrap_or("");
    if found_kind != kind {
        return Err(bad(path, format!("checkpoint kind {found_kind:?} is not {kind:?}")));
    }
    let fp_line = lines.next().ok_or_else(|| bad(path, "missing fingerprint line"))?;
    let fp_hex = fp_line
        .strip_prefix("fingerprint ")
        .ok_or_else(|| bad(path, "missing fingerprint line"))?;
    let found = parse_hex_u64(path, "fingerprint", fp_hex)?;
    if found != fingerprint {
        return Err(bad(
            path,
            format!(
                "fingerprint mismatch ({found:016x} on disk, {fingerprint:016x} expected): \
                 checkpoint belongs to a different analysis"
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Search checkpoints
// ---------------------------------------------------------------------------

/// Mutable state of an SPR hill climb after a completed round — everything
/// the search cannot re-derive from its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// SPR rounds completed so far.
    pub rounds_done: usize,
    /// Total SPR moves applied so far.
    pub moves_applied: usize,
    /// Moves applied in the *last* round (0 ⇒ the climb has converged and
    /// a resume skips straight to the final polish).
    pub last_applied: usize,
    /// Γ shape, bit-exact.
    pub alpha_bits: u64,
    /// The tree in [`crate::tree::Tree::to_exact_string`] form (slot order
    /// and branch-length bits preserved, so the resumed SPR scan visits
    /// candidates in the identical order).
    pub tree_exact: String,
}

/// Writes/reads [`SearchCheckpoint`] snapshots and optionally simulates a
/// mid-run kill for tests via [`SearchCheckpointer::abort_after_saves`].
#[derive(Debug)]
pub struct SearchCheckpointer {
    path: PathBuf,
    fingerprint: u64,
    abort_after_saves: Option<usize>,
    saves: usize,
}

impl SearchCheckpointer {
    /// A checkpointer for the search identified by `fingerprint` (from
    /// [`search_fingerprint`]), persisting to `path`.
    pub fn new(path: impl Into<PathBuf>, fingerprint: u64) -> SearchCheckpointer {
        SearchCheckpointer { path: path.into(), fingerprint, abort_after_saves: None, saves: 0 }
    }

    /// Abort the search with [`PhyloError::Interrupted`] after `n` snapshots
    /// have been written *in this process* — the snapshot is on disk first,
    /// so this models a kill between rounds without needing a real signal.
    pub fn abort_after_saves(mut self, n: usize) -> SearchCheckpointer {
        self.abort_after_saves = Some(n);
        self
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load the snapshot, if any. `Ok(None)` means no checkpoint exists
    /// (fresh start); a present-but-foreign or corrupt file is an error —
    /// silently ignoring it would discard real progress.
    pub fn load(&self) -> Result<Option<SearchCheckpoint>> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&self.path, e)),
        };
        let path = &self.path;
        let mut lines = text.lines();
        check_header(path, &mut lines, "search", self.fingerprint)?;
        let mut field = |name: &str| -> Result<String> {
            let line = lines.next().ok_or_else(|| bad(path, format!("missing {name} line")))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| bad(path, format!("missing {name} line")))
        };
        let rounds_done = parse_usize(path, "rounds", &field("rounds")?)?;
        let moves_applied = parse_usize(path, "moves", &field("moves")?)?;
        let last_applied = parse_usize(path, "last-applied", &field("last-applied")?)?;
        let alpha_bits = parse_hex_u64(path, "alpha", &field("alpha")?)?;
        if lines.next() != Some("tree") {
            return Err(bad(path, "missing tree section"));
        }
        let tree_exact: String = {
            let mut s = String::new();
            for line in lines {
                s.push_str(line);
                s.push('\n');
            }
            s
        };
        // Validate eagerly so a truncated tree fails at load, not mid-search.
        crate::tree::Tree::from_exact_string(&tree_exact)
            .map_err(|e| bad(path, format!("unreadable tree section: {e}")))?;
        Ok(Some(SearchCheckpoint {
            rounds_done,
            moves_applied,
            last_applied,
            alpha_bits,
            tree_exact,
        }))
    }

    /// Atomically persist `snap`, then enforce the abort policy.
    pub fn save(&mut self, snap: &SearchCheckpoint) -> Result<()> {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC} v{VERSION} search");
        let _ = writeln!(out, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(out, "rounds {}", snap.rounds_done);
        let _ = writeln!(out, "moves {}", snap.moves_applied);
        let _ = writeln!(out, "last-applied {}", snap.last_applied);
        let _ = writeln!(out, "alpha {:016x}", snap.alpha_bits);
        let _ = writeln!(out, "tree");
        out.push_str(&snap.tree_exact);
        let metrics = ckpt_metrics();
        let t0 = metrics.map(|_| Instant::now());
        atomic_write(&self.path, &out)?;
        if let (Some(m), Some(t0)) = (metrics, t0) {
            m.write_ns.record(t0.elapsed().as_nanos() as u64);
            m.write_bytes.add(out.len() as u64);
        }
        self.saves += 1;
        if let Some(limit) = self.abort_after_saves {
            if self.saves >= limit {
                return Err(PhyloError::Interrupted { completed: snap.rounds_done });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bootstrap job store
// ---------------------------------------------------------------------------

/// One completed master–worker job: its index in the analysis job list,
/// its final log-likelihood (bit-exact), and its tree in exact form.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    pub index: usize,
    pub log_likelihood: f64,
    pub tree_exact: String,
}

/// Append-only log of completed bootstrap-analysis jobs.
///
/// Records must arrive contiguously from index 0 — the analysis driver
/// completes jobs in chunks and appends each chunk in order, so "how far
/// did we get" is simply the record count. On open, a malformed or
/// truncated trailing record (a crash mid-append) is discarded and the
/// file is rewritten to the clean prefix.
#[derive(Debug)]
pub struct BootstrapStore {
    path: PathBuf,
    fingerprint: u64,
    total: usize,
    records: Vec<JobRecord>,
}

impl BootstrapStore {
    /// Open (or create) the store for an analysis of `total` jobs with the
    /// given fingerprint. An existing file for a *different* analysis is an
    /// error; a missing file starts empty.
    pub fn open(
        path: impl Into<PathBuf>,
        fingerprint: u64,
        total: usize,
    ) -> Result<BootstrapStore> {
        let path = path.into();
        let mut store = BootstrapStore { path, fingerprint, total, records: Vec::new() };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                store.rewrite()?;
                return Ok(store);
            }
            Err(e) => return Err(io_err(&store.path, e)),
        };
        let path = store.path.clone();
        let mut lines = text.lines();
        check_header(&path, &mut lines, "bootstrap", fingerprint)?;
        let total_line = lines.next().ok_or_else(|| bad(&path, "missing total line"))?;
        let found_total = total_line
            .strip_prefix("total ")
            .ok_or_else(|| bad(&path, "missing total line"))
            .and_then(|t| parse_usize(&path, "total", t))?;
        if found_total != total {
            return Err(bad(
                &path,
                format!("job count mismatch ({found_total} on disk, {total} expected)"),
            ));
        }
        let mut truncated = false;
        for line in lines {
            match parse_record(line, store.records.len()) {
                Some(rec) => store.records.push(rec),
                // First bad/out-of-order record: everything after it is the
                // debris of a crash mid-append. Drop it and stop.
                None => {
                    truncated = true;
                    break;
                }
            }
        }
        if store.records.len() > total {
            return Err(bad(&path, "more records than jobs"));
        }
        if truncated {
            store.rewrite()?;
        }
        Ok(store)
    }

    /// Number of jobs completed and persisted.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Total jobs in the analysis this store belongs to.
    pub fn total(&self) -> usize {
        self.total
    }

    /// All persisted records, in job order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Append one completed job. Jobs must be appended in index order with
    /// no gaps (enforced), matching the chunked driver.
    pub fn append(&mut self, log_likelihood: f64, tree_exact: &str) -> Result<()> {
        let index = self.records.len();
        assert!(index < self.total, "appending job {index} to a store of {} jobs", self.total);
        let line = record_line(index, log_likelihood, tree_exact);
        let metrics = ckpt_metrics();
        let t0 = metrics.map(|_| Instant::now());
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        f.write_all(line.as_bytes()).map_err(|e| io_err(&self.path, e))?;
        f.sync_all().map_err(|e| io_err(&self.path, e))?;
        if let (Some(m), Some(t0)) = (metrics, t0) {
            m.append_ns.record(t0.elapsed().as_nanos() as u64);
            m.append_bytes.add(line.len() as u64);
        }
        self.records.push(JobRecord { index, log_likelihood, tree_exact: tree_exact.to_owned() });
        Ok(())
    }

    /// Rewrite the whole file from the in-memory state (header + clean
    /// records) — used on creation and after dropping crash debris.
    fn rewrite(&self) -> Result<()> {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC} v{VERSION} bootstrap");
        let _ = writeln!(out, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(out, "total {}", self.total);
        for rec in &self.records {
            out.push_str(&record_line(rec.index, rec.log_likelihood, &rec.tree_exact));
        }
        atomic_write(&self.path, &out)
    }
}

/// `job <idx> <lnl_bits> <tree with '\n' → '|'>` on a single line, so a
/// torn append can damage at most the final line.
fn record_line(index: usize, log_likelihood: f64, tree_exact: &str) -> String {
    format!(
        "job {index} {:016x} {}\n",
        log_likelihood.to_bits(),
        tree_exact.trim_end_matches('\n').replace('\n', "|")
    )
}

/// Parse one record line; `None` on any damage or if the index is not the
/// expected next one.
fn parse_record(line: &str, expected_index: usize) -> Option<JobRecord> {
    let rest = line.strip_prefix("job ")?;
    let mut parts = rest.splitn(3, ' ');
    let index: usize = parts.next()?.parse().ok()?;
    if index != expected_index {
        return None;
    }
    let bits = u64::from_str_radix(parts.next()?, 16).ok()?;
    let tree_flat = parts.next()?;
    let mut tree_exact = tree_flat.replace('|', "\n");
    tree_exact.push('\n');
    // Damaged tree text ⇒ damaged record.
    crate::tree::Tree::from_exact_string(&tree_exact).ok()?;
    Some(JobRecord { index, log_likelihood: f64::from_bits(bits), tree_exact })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::SimulationConfig;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("raxml-cell-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_tree_exact() -> String {
        let w = SimulationConfig::new(5, 40, 3).generate();
        w.true_tree.to_exact_string()
    }

    #[test]
    fn fingerprint_separates_analyses() {
        let w = SimulationConfig::new(6, 100, 1).generate();
        let cfg = SearchConfig::fast();
        let base = search_fingerprint(&w.alignment, &cfg, 5);
        assert_eq!(base, search_fingerprint(&w.alignment, &cfg, 5), "deterministic");
        assert_ne!(base, search_fingerprint(&w.alignment, &cfg, 6), "seed matters");
        let mut wide = cfg.clone();
        wide.spr_radius += 1;
        assert_ne!(base, search_fingerprint(&w.alignment, &wide, 5), "radius matters");
        let other = SimulationConfig::new(7, 100, 1).generate();
        assert_ne!(base, search_fingerprint(&other.alignment, &cfg, 5), "alignment matters");
    }

    #[test]
    fn search_checkpoint_round_trips() {
        let path = tmp("search-roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut ck = SearchCheckpointer::new(&path, 0xdead_beef);
        assert_eq!(ck.load().unwrap(), None, "no file yet");

        let snap = SearchCheckpoint {
            rounds_done: 2,
            moves_applied: 7,
            last_applied: 3,
            alpha_bits: 0.8317_f64.to_bits(),
            tree_exact: sample_tree_exact(),
        };
        ck.save(&snap).unwrap();
        let loaded = ck.load().unwrap().unwrap();
        assert_eq!(loaded, snap);

        // A later snapshot replaces the earlier one.
        let snap2 = SearchCheckpoint { rounds_done: 3, last_applied: 0, ..snap.clone() };
        ck.save(&snap2).unwrap();
        assert_eq!(ck.load().unwrap().unwrap(), snap2);
    }

    #[test]
    fn search_checkpoint_rejects_foreign_and_corrupt_files() {
        let path = tmp("search-foreign.ckpt");
        let _ = std::fs::remove_file(&path);
        let snap = SearchCheckpoint {
            rounds_done: 1,
            moves_applied: 1,
            last_applied: 1,
            alpha_bits: 1.0_f64.to_bits(),
            tree_exact: sample_tree_exact(),
        };
        SearchCheckpointer::new(&path, 111).save(&snap).unwrap();

        // Wrong fingerprint: refuse, loudly.
        let err = SearchCheckpointer::new(&path, 222).load().unwrap_err();
        assert!(matches!(err, PhyloError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("fingerprint mismatch"));

        // Truncated tree section: refuse.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 20;
        std::fs::write(&path, &text[..cut]).unwrap();
        let err = SearchCheckpointer::new(&path, 111).load().unwrap_err();
        assert!(matches!(err, PhyloError::Checkpoint { .. }), "{err}");

        // Not a checkpoint at all.
        std::fs::write(&path, "totally unrelated\n").unwrap();
        let err = SearchCheckpointer::new(&path, 111).load().unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn abort_policy_interrupts_after_the_snapshot_lands() {
        let path = tmp("search-abort.ckpt");
        let _ = std::fs::remove_file(&path);
        let mut ck = SearchCheckpointer::new(&path, 9).abort_after_saves(2);
        let snap = SearchCheckpoint {
            rounds_done: 1,
            moves_applied: 2,
            last_applied: 2,
            alpha_bits: 0.5_f64.to_bits(),
            tree_exact: sample_tree_exact(),
        };
        ck.save(&snap).unwrap();
        let snap2 = SearchCheckpoint { rounds_done: 2, ..snap.clone() };
        let err = ck.save(&snap2).unwrap_err();
        assert_eq!(err, PhyloError::Interrupted { completed: 2 });
        // The snapshot that triggered the abort is on disk.
        let loaded = SearchCheckpointer::new(&path, 9).load().unwrap().unwrap();
        assert_eq!(loaded, snap2);
    }

    #[test]
    fn bootstrap_store_appends_and_reloads() {
        let path = tmp("bootstrap-append.ckpt");
        let _ = std::fs::remove_file(&path);
        let tree = sample_tree_exact();
        {
            let mut store = BootstrapStore::open(&path, 42, 4).unwrap();
            assert_eq!(store.completed(), 0);
            store.append(-123.456, &tree).unwrap();
            store.append(-99.5, &tree).unwrap();
        }
        let store = BootstrapStore::open(&path, 42, 4).unwrap();
        assert_eq!(store.completed(), 2);
        assert_eq!(store.records()[0].log_likelihood, -123.456);
        assert_eq!(store.records()[1].log_likelihood, -99.5);
        assert_eq!(store.records()[0].tree_exact, tree);

        // Foreign fingerprint or job count: refuse.
        assert!(BootstrapStore::open(&path, 43, 4).is_err());
        assert!(BootstrapStore::open(&path, 42, 5).is_err());
    }

    #[test]
    fn bootstrap_store_drops_a_torn_trailing_record() {
        let path = tmp("bootstrap-torn.ckpt");
        let _ = std::fs::remove_file(&path);
        let tree = sample_tree_exact();
        {
            let mut store = BootstrapStore::open(&path, 7, 3).unwrap();
            store.append(-10.0, &tree).unwrap();
            store.append(-20.0, &tree).unwrap();
        }
        // Simulate a crash mid-append: chop the final record in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 30;
        std::fs::write(&path, &text[..cut]).unwrap();

        let store = BootstrapStore::open(&path, 7, 3).unwrap();
        assert_eq!(store.completed(), 1, "torn record dropped, clean prefix kept");
        assert_eq!(store.records()[0].log_likelihood, -10.0);
        // And the file was healed: reopening sees the same clean state.
        let again = BootstrapStore::open(&path, 7, 3).unwrap();
        assert_eq!(again.completed(), 1);
    }
}
