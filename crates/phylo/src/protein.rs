//! Amino-acid (protein) likelihood support.
//!
//! RAxML infers trees from "multiple alignments of DNA or AA sequences"
//! (paper §3); the paper's evaluation is DNA (`42_SC`), so the optimized
//! 4-state kernels live in [`crate::likelihood`]. This module provides the
//! 20-state side: the AA alphabet with ambiguity codes, runtime-sized
//! reversible substitution models (the parameter-free Poisson model plus a
//! parser for standard PAML-format empirical matrices such as WAG/LG/JTT,
//! which ship as data files with those publications), and a general-N
//! Felsenstein evaluator with underflow scaling and Brent branch-length
//! optimization.
//!
//! The evaluator is deliberately simple (no case-specialized kernels, no
//! SIMD): it is the *correct* general-state path, structured like the DNA
//! engine's naive reference. Porting the paper's SPE optimizations to 20
//! states would follow exactly the same recipe as the DNA kernels.

use crate::error::{PhyloError, Result};
use crate::math::{brent_minimize, jacobi_eigen};
use crate::tree::{NodeId, Tree};
use std::collections::HashMap;

/// Number of amino-acid states.
pub const AA_STATES: usize = 20;

/// Canonical amino-acid order used by PAML matrices:
/// A R N D C Q E G H I L K M F P S T W Y V.
pub const AA_CHARS: [char; AA_STATES] = [
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'Y',
    'V',
];

/// Encode one amino-acid character into its state-possibility vector
/// (1.0 = compatible). Handles the IUPAC ambiguity codes B (N/D), Z (Q/E),
/// J (I/L), and X/gap (anything).
pub fn encode_aa(ch: char) -> Option<[f64; AA_STATES]> {
    let mut v = [0.0; AA_STATES];
    let up = ch.to_ascii_uppercase();
    if let Some(idx) = AA_CHARS.iter().position(|&c| c == up) {
        v[idx] = 1.0;
        return Some(v);
    }
    let set: &[char] = match up {
        'B' => &['N', 'D'],
        'Z' => &['Q', 'E'],
        'J' => &['I', 'L'],
        'X' | '?' | '-' | '.' | '*' => {
            return Some([1.0; AA_STATES]);
        }
        _ => return None,
    };
    for c in set {
        let idx = AA_CHARS.iter().position(|x| x == c).expect("ambiguity set is canonical");
        v[idx] = 1.0;
    }
    Some(v)
}

/// A pattern-compressed protein alignment.
#[derive(Debug, Clone)]
pub struct ProteinAlignment {
    names: Vec<String>,
    /// `tips[taxon][pattern]` = state-possibility vector.
    tips: Vec<Vec<[f64; AA_STATES]>>,
    weights: Vec<f64>,
    n_sites: usize,
}

impl ProteinAlignment {
    /// Build from (name, sequence) pairs, compressing identical columns.
    pub fn from_named_sequences<S: AsRef<str>, T: AsRef<str>>(
        pairs: &[(S, T)],
    ) -> Result<ProteinAlignment> {
        if pairs.len() < 3 {
            return Err(PhyloError::TooFewTaxa { found: pairs.len(), required: 3 });
        }
        let n_sites = pairs[0].1.as_ref().chars().count();
        if n_sites == 0 {
            return Err(PhyloError::EmptyAlignment);
        }
        let mut names = Vec::new();
        let mut rows: Vec<Vec<char>> = Vec::new();
        for (name, seq) in pairs {
            let name = name.as_ref().to_string();
            if names.contains(&name) {
                return Err(PhyloError::DuplicateTaxon(name));
            }
            let chars: Vec<char> = seq.as_ref().chars().collect();
            if chars.len() != n_sites {
                return Err(PhyloError::RaggedAlignment {
                    taxon: name,
                    expected: n_sites,
                    found: chars.len(),
                });
            }
            for (pos, &ch) in chars.iter().enumerate() {
                if encode_aa(ch).is_none() {
                    return Err(PhyloError::InvalidCharacter { taxon: name, position: pos, ch });
                }
            }
            names.push(name);
            rows.push(chars);
        }
        // Column compression on the character level.
        let mut index: HashMap<Vec<char>, usize> = HashMap::new();
        let mut weights = Vec::new();
        let mut patterns: Vec<Vec<char>> = Vec::new();
        for site in 0..n_sites {
            let col: Vec<char> = rows.iter().map(|r| r[site]).collect();
            let id = *index.entry(col.clone()).or_insert_with(|| {
                patterns.push(col);
                weights.push(0.0);
                weights.len() - 1
            });
            weights[id] += 1.0;
        }
        let tips: Vec<Vec<[f64; AA_STATES]>> = (0..names.len())
            .map(|t| {
                patterns.iter().map(|col| encode_aa(col[t]).expect("validated above")).collect()
            })
            .collect();
        Ok(ProteinAlignment { names, tips, weights, n_sites })
    }

    pub fn n_taxa(&self) -> usize {
        self.names.len()
    }

    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }

    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    pub fn taxon_names(&self) -> &[String] {
        &self.names
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Empirical amino-acid frequencies (ambiguity spread fractionally,
    /// gaps ignored, kept strictly positive).
    pub fn empirical_frequencies(&self) -> Vec<f64> {
        let mut counts = [0.0f64; AA_STATES];
        for t in 0..self.n_taxa() {
            for (p, vec) in self.tips[t].iter().enumerate() {
                let n: f64 = vec.iter().sum();
                if n >= AA_STATES as f64 {
                    continue; // gap/X
                }
                for (s, &x) in vec.iter().enumerate() {
                    counts[s] += x / n * self.weights[p];
                }
            }
        }
        let total: f64 = counts.iter().sum();
        let mut freqs: Vec<f64> =
            counts.iter().map(|&c| (c / total.max(1e-12)).max(1e-6)).collect();
        let norm: f64 = freqs.iter().sum();
        for f in &mut freqs {
            *f /= norm;
        }
        freqs
    }
}

/// A reversible substitution model over `n` states (runtime-sized).
#[derive(Debug, Clone)]
pub struct MultiStateModel {
    n: usize,
    freqs: Vec<f64>,
    /// Eigenvalues of the normalized rate matrix.
    values: Vec<f64>,
    /// `U = D^{-1/2} V` (row-major n×n).
    u: Vec<f64>,
    /// `W = Vᵀ D^{1/2}` (row-major n×n).
    w: Vec<f64>,
}

impl MultiStateModel {
    /// Build from symmetric exchangeabilities (`exchange[i][j]`, only the
    /// `i < j` entries are read) and stationary frequencies.
    pub fn from_exchangeabilities(exchange: &[Vec<f64>], freqs: &[f64]) -> Result<MultiStateModel> {
        let n = freqs.len();
        if exchange.len() != n {
            return Err(PhyloError::InvalidParameter {
                name: "exchangeabilities",
                value: exchange.len() as f64,
                reason: "matrix dimension must match the frequency vector",
            });
        }
        let fsum: f64 = freqs.iter().sum();
        for &f in freqs {
            if !f.is_finite() || f <= 0.0 {
                return Err(PhyloError::InvalidParameter {
                    name: "frequency",
                    value: f,
                    reason: "frequencies must be positive",
                });
            }
        }
        if (fsum - 1.0).abs() > 1e-4 {
            return Err(PhyloError::InvalidParameter {
                name: "frequencies",
                value: fsum,
                reason: "frequencies must sum to 1",
            });
        }

        // Q_ij = r_ij π_j, diagonal = −row sum; normalize to unit rate.
        let mut q = vec![0.0; n * n];
        for i in 0..n {
            let mut row = 0.0;
            for j in 0..n {
                if i != j {
                    let r = if i < j { exchange[i][j] } else { exchange[j][i] };
                    if !r.is_finite() || r < 0.0 {
                        return Err(PhyloError::InvalidParameter {
                            name: "exchangeability",
                            value: r,
                            reason: "exchangeabilities must be non-negative and finite",
                        });
                    }
                    q[i * n + j] = r * freqs[j];
                    row += q[i * n + j];
                }
            }
            q[i * n + i] = -row;
        }
        let mu: f64 = -(0..n).map(|i| freqs[i] * q[i * n + i]).sum::<f64>();
        if mu <= 0.0 {
            return Err(PhyloError::InvalidParameter {
                name: "rate matrix",
                value: mu,
                reason: "the model permits no substitutions",
            });
        }
        for x in &mut q {
            *x /= mu;
        }

        // Symmetrize and decompose.
        let sqrt_pi: Vec<f64> = freqs.iter().map(|f| f.sqrt()).collect();
        let mut b = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                b[i * n + j] = sqrt_pi[i] * q[i * n + j] / sqrt_pi[j];
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let m = 0.5 * (b[i * n + j] + b[j * n + i]);
                b[i * n + j] = m;
                b[j * n + i] = m;
            }
        }
        let eig = jacobi_eigen(&b, n);
        let mut u = vec![0.0; n * n];
        let mut w = vec![0.0; n * n];
        for k in 0..n {
            let v = eig.vector(k);
            for i in 0..n {
                u[i * n + k] = v[i] / sqrt_pi[i];
                w[k * n + i] = v[i] * sqrt_pi[i];
            }
        }
        Ok(MultiStateModel { n, freqs: freqs.to_vec(), values: eig.values, u, w })
    }

    /// The Poisson (equal-rates) protein model with the given frequencies —
    /// the 20-state analogue of Jukes–Cantor.
    pub fn poisson(freqs: &[f64]) -> Result<MultiStateModel> {
        let n = freqs.len();
        let exchange = vec![vec![1.0; n]; n];
        MultiStateModel::from_exchangeabilities(&exchange, freqs)
    }

    /// Parse a PAML-format empirical AA matrix (the `.dat` layout used by
    /// WAG, LG, JTT, Dayhoff…): 19 lines of lower-triangle exchangeabilities
    /// followed by a line (or lines) of 20 frequencies. Pass
    /// `use_file_freqs = false` to substitute your own frequencies.
    pub fn from_paml(text: &str, override_freqs: Option<&[f64]>) -> Result<MultiStateModel> {
        let numbers: Vec<f64> =
            text.split_whitespace().filter_map(|t| t.parse::<f64>().ok()).collect();
        let need = 190 + AA_STATES;
        if numbers.len() < need {
            return Err(PhyloError::Parse {
                format: "PAML",
                line: 0,
                message: format!(
                    "expected ≥{need} numbers (190 exchangeabilities + 20 frequencies), found {}",
                    numbers.len()
                ),
            });
        }
        let mut exchange = vec![vec![0.0; AA_STATES]; AA_STATES];
        let mut it = numbers.iter();
        // Lower triangle row by row: row i has i entries (i = 1..19).
        for i in 1..AA_STATES {
            for j in 0..i {
                let r = *it.next().expect("length checked");
                exchange[j][i] = r; // store upper triangle (i < j reads)
            }
        }
        let file_freqs: Vec<f64> = it.by_ref().take(AA_STATES).copied().collect();
        let freqs: Vec<f64> = match override_freqs {
            Some(f) => f.to_vec(),
            None => {
                let total: f64 = file_freqs.iter().sum();
                file_freqs.iter().map(|f| f / total).collect()
            }
        };
        MultiStateModel::from_exchangeabilities(&exchange, &freqs)
    }

    pub fn n_states(&self) -> usize {
        self.n
    }

    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Transition matrix `P(t)` (row-major `n×n`).
    pub fn transition_matrix(&self, t: f64) -> Vec<f64> {
        let n = self.n;
        let exps: Vec<f64> = self.values.iter().map(|&l| (l * t).exp()).collect();
        let mut p = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.u[i * n + k] * exps[k] * self.w[k * n + j];
                }
                p[i * n + j] = acc.max(0.0);
            }
        }
        p
    }
}

/// Underflow-scaling threshold, shared with the DNA engine.
use crate::likelihood::{LN_SCALE, SCALE_MULTIPLIER, SCALE_THRESHOLD};

/// Log-likelihood of a tree for a protein alignment under a multi-state
/// model: general-N Felsenstein pruning with per-pattern underflow scaling.
pub fn protein_log_likelihood(tree: &Tree, aln: &ProteinAlignment, model: &MultiStateModel) -> f64 {
    let n = model.n_states();
    let n_patterns = aln.n_patterns();
    let (root_u, root_v) = tree.edges()[0];

    // Iterative post-order over both root-side subtrees.
    // partial[node] = (values per pattern × state, scale counts per pattern)
    let mut partials: Vec<Option<(Vec<f64>, Vec<u32>)>> = vec![None; tree.n_nodes()];

    let compute_subtree =
        |root: NodeId, away: NodeId, partials: &mut Vec<Option<(Vec<f64>, Vec<u32>)>>| {
            let mut order: Vec<(NodeId, NodeId)> = Vec::new();
            let mut stack = vec![(root, away)];
            while let Some((node, parent)) = stack.pop() {
                if tree.is_tip(node) {
                    continue;
                }
                order.push((node, parent));
                for (c, _) in tree.other_neighbors(node, parent) {
                    stack.push((c, node));
                }
            }
            for &(node, parent) in order.iter().rev() {
                let mut x = vec![1.0; n_patterns * n];
                let mut scale = vec![0u32; n_patterns];
                for (child, len) in tree.neighbors_of(node) {
                    if child == parent {
                        continue;
                    }
                    let p = model.transition_matrix(len);
                    for i in 0..n_patterns {
                        let child_vec: &[f64] = if tree.is_tip(child) {
                            &aln.tips[child][i]
                        } else {
                            let (cx, cs) = partials[child].as_ref().expect("post-order");
                            scale[i] += cs[i];
                            &cx[i * n..(i + 1) * n]
                        };
                        for s in 0..n {
                            let mut acc = 0.0;
                            for t2 in 0..n {
                                acc += p[s * n + t2] * child_vec[t2];
                            }
                            x[i * n + s] *= acc;
                        }
                    }
                }
                // Underflow scaling, exactly as in the DNA engine.
                for i in 0..n_patterns {
                    let quad = &mut x[i * n..(i + 1) * n];
                    if quad.iter().all(|&v| v.abs() < SCALE_THRESHOLD) {
                        for v in quad.iter_mut() {
                            *v *= SCALE_MULTIPLIER;
                        }
                        scale[i] += 1;
                    }
                }
                partials[node] = Some((x, scale));
            }
        };
    compute_subtree(root_u, root_v, &mut partials);
    compute_subtree(root_v, root_u, &mut partials);

    let p = model.transition_matrix(tree.branch_length(root_u, root_v));
    let mut lnl = 0.0;
    for i in 0..n_patterns {
        let (xu, su): (&[f64], u32) = if tree.is_tip(root_u) {
            (&aln.tips[root_u][i], 0)
        } else {
            let (x, s) = partials[root_u].as_ref().unwrap();
            (&x[i * n..(i + 1) * n], s[i])
        };
        let (xv, sv): (&[f64], u32) = if tree.is_tip(root_v) {
            (&aln.tips[root_v][i], 0)
        } else {
            let (x, s) = partials[root_v].as_ref().unwrap();
            (&x[i * n..(i + 1) * n], s[i])
        };
        let mut site = 0.0;
        for s in 0..n {
            let mut acc = 0.0;
            for t2 in 0..n {
                acc += p[s * n + t2] * xv[t2];
            }
            site += model.freqs()[s] * xu[s] * acc;
        }
        lnl += aln.weights()[i] * (site.max(1e-300).ln() + (su + sv) as f64 * LN_SCALE);
    }
    lnl
}

/// Optimize every branch length by Brent's method (one or more sweeps).
/// Returns the final log-likelihood. Slower than the DNA engine's Newton
/// sum-table, but fully general.
pub fn optimize_branch_lengths(
    tree: &mut Tree,
    aln: &ProteinAlignment,
    model: &MultiStateModel,
    sweeps: usize,
) -> f64 {
    for _ in 0..sweeps {
        for (a, b) in tree.edges() {
            let (best, _) = brent_minimize(
                |len| {
                    tree.set_branch_length(a, b, len);
                    -protein_log_likelihood(tree, aln, model)
                },
                crate::tree::MIN_BRANCH,
                2.0,
                1e-4,
                30,
            );
            tree.set_branch_length(a, b, best);
        }
    }
    protein_log_likelihood(tree, aln, model)
}

/// Simulate protein sequences by evolving along `tree` under `model`.
/// Returns (names, sequences); fully deterministic given the seed.
pub fn simulate_protein(
    tree: &Tree,
    model: &MultiStateModel,
    n_sites: usize,
    seed: u64,
) -> Vec<(String, String)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = model.n_states();
    assert_eq!(n, AA_STATES, "protein simulation is 20-state");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_taxa = tree.n_taxa();
    let root: NodeId = n_taxa; // first inner node

    let sample = |probs: &[f64], rng: &mut StdRng| -> usize {
        let total: f64 = probs.iter().sum();
        let mut u: f64 = rng.gen::<f64>() * total;
        for (s, &p) in probs.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return s;
            }
        }
        probs.len() - 1
    };

    let mut states: Vec<Vec<usize>> = vec![Vec::new(); tree.n_nodes()];
    states[root] = (0..n_sites).map(|_| sample(model.freqs(), &mut rng)).collect();
    let mut stack: Vec<(NodeId, NodeId)> =
        tree.neighbors_of(root).map(|(c, _)| (c, root)).collect();
    while let Some((node, parent)) = stack.pop() {
        let p = model.transition_matrix(tree.branch_length(node, parent));
        let seq: Vec<usize> = (0..n_sites)
            .map(|site| {
                let from = states[parent][site];
                sample(&p[from * n..(from + 1) * n], &mut rng)
            })
            .collect();
        states[node] = seq;
        for (next, _) in tree.neighbors_of(node) {
            if next != parent {
                stack.push((next, node));
            }
        }
    }
    (0..n_taxa)
        .map(|t| {
            let seq: String = states[t].iter().map(|&s| AA_CHARS[s]).collect();
            (format!("AA{t:03}"), seq)
        })
        .collect()
}

/// A small NNI hill-climbing search under a protein model with multiple
/// random restarts (NNI's move set is small enough that single starts get
/// stuck in local optima). General-state and therefore slow — intended for
/// modest taxon counts.
pub fn protein_nni_search(
    aln: &ProteinAlignment,
    model: &MultiStateModel,
    seed: u64,
    max_rounds: usize,
    n_starts: usize,
) -> (Tree, f64) {
    assert!(n_starts >= 1);
    let mut best: Option<(Tree, f64)> = None;
    for s in 0..n_starts as u64 {
        let (tree, lnl) = nni_climb(aln, model, seed.wrapping_add(s), max_rounds);
        if best.as_ref().is_none_or(|(_, b)| lnl > *b) {
            best = Some((tree, lnl));
        }
    }
    best.expect("at least one start")
}

fn nni_climb(
    aln: &ProteinAlignment,
    model: &MultiStateModel,
    seed: u64,
    max_rounds: usize,
) -> (Tree, f64) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = Tree::random(aln.n_taxa(), 0.2, &mut rng).expect("alignment has ≥ 3 taxa");
    let mut lnl = optimize_branch_lengths(&mut tree, aln, model, 1);

    for _ in 0..max_rounds {
        let mut improved = false;
        let internal: Vec<(NodeId, NodeId)> =
            tree.edges().into_iter().filter(|&(a, b)| !tree.is_tip(a) && !tree.is_tip(b)).collect();
        for (u, v) in internal {
            if !tree.adjacent(u, v) {
                continue;
            }
            for swap in 0..2 {
                let mut candidate = tree.clone();
                if candidate.nni(u, v, swap).is_err() {
                    continue;
                }
                let cand_lnl = optimize_branch_lengths(&mut candidate, aln, model, 1);
                if cand_lnl > lnl + 1e-6 {
                    tree = candidate;
                    lnl = cand_lnl;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (tree, lnl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_alignment() -> ProteinAlignment {
        ProteinAlignment::from_named_sequences(&[
            ("t0", "ARNDCQEGHILKMFPSTWYV"),
            ("t1", "ARNDCQEGHILKMFPSTWYA"),
            ("t2", "ARNDCQEGHILKMFPSTWAA"),
            ("t3", "ARNDCQEGHILKMFPSAAAA"),
        ])
        .unwrap()
    }

    #[test]
    fn aa_encoding() {
        let a = encode_aa('A').unwrap();
        assert_eq!(a[0], 1.0);
        assert_eq!(a.iter().sum::<f64>(), 1.0);
        let b = encode_aa('B').unwrap();
        assert_eq!(b.iter().sum::<f64>(), 2.0, "B = N or D");
        assert_eq!(b[2] + b[3], 2.0);
        let x = encode_aa('X').unwrap();
        assert_eq!(x.iter().sum::<f64>(), 20.0);
        assert!(encode_aa('O').is_none());
        assert!(encode_aa('1').is_none());
    }

    #[test]
    fn alignment_compression() {
        let aln = toy_alignment();
        assert_eq!(aln.n_taxa(), 4);
        assert_eq!(aln.n_sites(), 20);
        assert!(aln.n_patterns() <= 20);
        assert_eq!(aln.weights().iter().sum::<f64>(), 20.0);
        let f = aln.empirical_frequencies();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f[0] > f[5], "A is enriched in the toy data");
    }

    #[test]
    fn poisson_transition_matrix_closed_form() {
        // Equal-frequency Poisson: P_ii(t) = 1/20 + (19/20)e^{−20t/19},
        // P_ij(t) = 1/20 − (1/20)e^{−20t/19} (unit-rate normalization).
        let freqs = vec![1.0 / 20.0; 20];
        let m = MultiStateModel::poisson(&freqs).unwrap();
        for &t in &[0.05, 0.3, 1.0] {
            let p = m.transition_matrix(t);
            let e = (-20.0 * t / 19.0f64).exp();
            for i in 0..20 {
                for j in 0..20 {
                    let expected = if i == j { 0.05 + 0.95 * e } else { 0.05 - 0.05 * e };
                    assert!(
                        (p[i * 20 + j] - expected).abs() < 1e-10,
                        "t={t} ({i},{j}): {} vs {expected}",
                        p[i * 20 + j]
                    );
                }
            }
        }
    }

    #[test]
    fn transition_matrices_are_stochastic_and_reversible() {
        let aln = toy_alignment();
        let freqs = aln.empirical_frequencies();
        let m = MultiStateModel::poisson(&freqs).unwrap();
        let p = m.transition_matrix(0.37);
        for i in 0..20 {
            let row: f64 = p[i * 20..(i + 1) * 20].iter().sum();
            assert!((row - 1.0).abs() < 1e-9, "row {i}: {row}");
            for j in 0..20 {
                let bal = freqs[i] * p[i * 20 + j] - freqs[j] * p[j * 20 + i];
                assert!(bal.abs() < 1e-10);
            }
        }
    }

    #[test]
    fn paml_parser_round_trips_a_synthetic_matrix() {
        // Build a synthetic PAML text: lower triangle r_ij = i + j (1-based
        // flavor), then uniform frequencies.
        let mut text = String::new();
        for i in 1..20 {
            for j in 0..i {
                text.push_str(&format!("{} ", (i + j + 1) as f64));
            }
            text.push('\n');
        }
        text.push('\n');
        for _ in 0..20 {
            text.push_str("0.05 ");
        }
        let m = MultiStateModel::from_paml(&text, None).unwrap();
        assert_eq!(m.n_states(), 20);
        // Spot-check: the model built from the same exchangeabilities
        // directly must produce the identical transition matrix.
        let mut exchange = vec![vec![0.0; 20]; 20];
        for i in 1..20usize {
            for j in 0..i {
                exchange[j][i] = (i + j + 1) as f64;
            }
        }
        let direct = MultiStateModel::from_exchangeabilities(&exchange, &[0.05; 20]).unwrap();
        let a = m.transition_matrix(0.2);
        let b = direct.transition_matrix(0.2);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        // Truncated files are rejected.
        assert!(MultiStateModel::from_paml("1 2 3", None).is_err());
    }

    #[test]
    fn likelihood_three_taxon_closed_form() {
        // Poisson model, 3 taxa, single column A/R/N:
        // L = Σ_s π_s P(t0)[s][A] P(t1)[s][R] P(t2)[s][N].
        let aln =
            ProteinAlignment::from_named_sequences(&[("a", "A"), ("b", "R"), ("c", "N")]).unwrap();
        let freqs = vec![0.05; 20];
        let m = MultiStateModel::poisson(&freqs).unwrap();
        let tree = Tree::initial_triplet(3, 0.2).unwrap();
        let lnl = protein_log_likelihood(&tree, &aln, &m);

        let e = (-20.0 * 0.2 / 19.0f64).exp();
        let same = 0.05 + 0.95 * e;
        let diff = 0.05 - 0.05 * e;
        // Root = A, R or N contributes same·diff²; the other 17 states diff³.
        let site = 3.0 * 0.05 * same * diff * diff + 17.0 * 0.05 * diff * diff * diff;
        assert!((lnl - site.ln()).abs() < 1e-10, "{lnl} vs {}", site.ln());
    }

    #[test]
    fn likelihood_is_rooting_invariant() {
        let aln = toy_alignment();
        let m = MultiStateModel::poisson(&aln.empirical_frequencies()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tree::random(4, 0.2, &mut rng).unwrap();
        // Evaluate with different edge orders by rebuilding from reversed
        // edge lists (the evaluator roots at edges()[0]).
        let lnl1 = protein_log_likelihood(&t, &aln, &m);
        let list: Vec<(NodeId, NodeId, f64)> =
            t.edges().into_iter().rev().map(|(a, b)| (a, b, t.branch_length(a, b))).collect();
        let t2 = Tree::from_edges(4, &list).unwrap();
        let lnl2 = protein_log_likelihood(&t2, &aln, &m);
        assert!((lnl1 - lnl2).abs() < 1e-9, "{lnl1} vs {lnl2}");
    }

    #[test]
    fn branch_optimization_improves_likelihood() {
        let aln = toy_alignment();
        let m = MultiStateModel::poisson(&aln.empirical_frequencies()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut tree = Tree::random(4, 0.5, &mut rng).unwrap();
        let before = protein_log_likelihood(&tree, &aln, &m);
        let after = optimize_branch_lengths(&mut tree, &aln, &m, 2);
        assert!(after >= before - 1e-9, "{before} -> {after}");
        assert!(after > before + 0.01, "expected a real improvement");
    }

    #[test]
    fn ambiguity_codes_flow_through_likelihood() {
        let aln =
            ProteinAlignment::from_named_sequences(&[("a", "ABX"), ("b", "AZJ"), ("c", "A-N")])
                .unwrap();
        let m = MultiStateModel::poisson(&[0.05; 20]).unwrap();
        let tree = Tree::initial_triplet(3, 0.3).unwrap();
        let lnl = protein_log_likelihood(&tree, &aln, &m);
        assert!(lnl.is_finite() && lnl < 0.0);
    }

    #[test]
    fn simulation_round_trips_composition() {
        let mut rng = StdRng::seed_from_u64(7);
        let tree = Tree::random(6, 0.1, &mut rng).unwrap();
        let m = MultiStateModel::poisson(&[0.05; 20]).unwrap();
        let pairs = simulate_protein(&tree, &m, 400, 11);
        assert_eq!(pairs.len(), 6);
        let aln = ProteinAlignment::from_named_sequences(&pairs).unwrap();
        assert_eq!(aln.n_sites(), 400);
        // Uniform model ⇒ roughly uniform composition.
        let f = aln.empirical_frequencies();
        for &x in &f {
            assert!((0.01..0.12).contains(&x), "{f:?}");
        }
        // Determinism.
        let again = simulate_protein(&tree, &m, 400, 11);
        assert_eq!(pairs, again);
    }

    #[test]
    fn nni_search_recovers_an_easy_protein_topology() {
        // Strong signal: 5 taxa, clear internal branches. Kept small — the
        // general-N evaluator is the slow path and this runs in debug CI.
        let mut quartet = Tree::initial_triplet(5, 0.15).unwrap();
        let e = quartet.edges();
        quartet.add_taxon_on_edge(3, e[0], 0.15).unwrap();
        let e = quartet.edges();
        quartet.add_taxon_on_edge(4, e[2], 0.15).unwrap();
        let m = MultiStateModel::poisson(&[0.05; 20]).unwrap();
        let pairs = simulate_protein(&quartet, &m, 250, 4);
        let aln = ProteinAlignment::from_named_sequences(&pairs).unwrap();
        let (found, lnl) = protein_nni_search(&aln, &m, 1, 5, 3);
        assert!(lnl.is_finite());
        // The found tree must score at least as well as the truth.
        let mut truth = quartet.clone();
        let true_lnl = optimize_branch_lengths(&mut truth, &aln, &m, 2);
        assert!(lnl >= true_lnl - 0.5, "search {lnl} must reach the truth's likelihood {true_lnl}");
        assert!(
            crate::bipartitions::robinson_foulds(&found, &quartet) <= 2,
            "found topology should be (nearly) the truth"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(ProteinAlignment::from_named_sequences(&[("a", "AR"), ("b", "AR")]).is_err());
        assert!(ProteinAlignment::from_named_sequences(&[("a", "AR"), ("b", "A"), ("c", "AR")])
            .is_err());
        assert!(ProteinAlignment::from_named_sequences(&[("a", "A1"), ("b", "AR"), ("c", "AR")])
            .is_err());
        assert!(MultiStateModel::poisson(&[0.5, 0.6]).is_err(), "freqs must sum to 1");
    }
}
