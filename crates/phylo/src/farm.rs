//! The task-tier inference farm: a batched, shardable work-stealing engine
//! for embarrassingly parallel phylogenetic jobs (bootstraps, multiple
//! inferences, workload captures).
//!
//! This replaces the single-mutex master–worker of [`crate::parallel`] as
//! the §3.1 task-level layer. Design points:
//!
//! * **Per-worker deques, stealing from the back.** Each worker owns a
//!   deque; the master distributes jobs round-robin, owners pop from the
//!   front, idle workers steal from the back of a victim's deque. The
//!   deques are individually mutex-striped (the contention profile of a
//!   Chase-Lev deque without its unsafe memory reclamation): a worker in
//!   steady state only touches its own lock, and thieves touch a victim's
//!   lock once per steal instead of every dispatch contending on one
//!   global queue.
//! * **Bounded submission with backpressure.** [`FarmConfig::bounded`]
//!   caps the number of in-flight (submitted but not completed) jobs; the
//!   feeding thread blocks until completions free capacity, so a lazy job
//!   iterator of any length runs in bounded memory.
//! * **Deterministic job→result ordering.** Results land in submission
//!   order regardless of which worker ran which job or how work was
//!   stolen; the in-order seal callback fires for job *i* only after jobs
//!   `0..i` have sealed, which is what lets an append-only
//!   [`crate::checkpoint::BootstrapStore`] persist every completed job
//!   without reordering records.
//! * **Per-worker reusable shards.** Each worker owns a mutable shard
//!   (e.g. a [`crate::likelihood::LikelihoodWorkspace`]) created once at
//!   spawn and threaded through every job it runs, so steady-state jobs
//!   reuse the previous job's buffers — the arena-recycling contract of
//!   the zero-allocation hot path, without a shared pool lock per job.
//! * **Panic isolation.** A job that panics becomes a typed
//!   [`FarmError::JobPanicked`] entry carrying the original payload
//!   message; the farm keeps draining and every other job's result
//!   survives. Worker deaths (from the injectable [`FarmFaultPlan`])
//!   likewise degrade per-job instead of wedging the farm.
//! * **Observability.** A [`FarmObserver`] receives start/complete/steal/
//!   death events with nanosecond timestamps; the `raxml-cell` crate
//!   bridges these into the `cellsim` trace log so farm-tier runs export
//!   the same Chrome-trace/JSONL artifacts as the simulator. Independently,
//!   every run records wall-clock telemetry into the process-wide
//!   [`obs`] metrics registry: per-worker queue-wait / run / seal-lag
//!   latency histograms (`farm_queue_wait_ns_w<i>`, `farm_job_run_ns_w<i>`,
//!   `farm_seal_lag_ns_w<i>`) and exactly-once job/steal/backpressure/death
//!   counters (`farm_*_total`) that stay coherent with [`FarmStats`] by
//!   construction — counters tick where the stats tick. With the registry
//!   disabled (the default) each record is one branch and zero heap
//!   operations.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// How a farm run is shaped: worker count, submission bound, fault plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmConfig {
    /// Worker threads (each with its own deque and shard).
    pub n_workers: usize,
    /// Maximum in-flight (submitted, not yet completed) jobs; `0` means
    /// unbounded. The feeding thread blocks when the bound is reached.
    pub capacity: usize,
    /// Deterministic fault injection for tests.
    pub fault: FarmFaultPlan,
}

impl FarmConfig {
    /// An unbounded farm with `n_workers` workers and no faults.
    pub fn new(n_workers: usize) -> FarmConfig {
        FarmConfig { n_workers, capacity: 0, fault: FarmFaultPlan::none() }
    }

    /// Cap in-flight jobs at `capacity` (backpressure on submission).
    pub fn bounded(mut self, capacity: usize) -> FarmConfig {
        self.capacity = capacity;
        self
    }

    /// Attach a fault plan.
    pub fn with_fault(mut self, fault: FarmFaultPlan) -> FarmConfig {
        self.fault = fault;
        self
    }
}

/// Injectable failures, in the spirit of `cellsim::fault::FaultPlan`:
/// deterministic, declared up front, replayable. Used by the robustness
/// tests to prove the farm's accounting survives losing workers and jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmFaultPlan {
    /// `(worker, n)`: worker dies after completing `n` jobs.
    deaths: Vec<(usize, usize)>,
    /// Jobs whose execution is replaced by an injected failure.
    failed_jobs: Vec<usize>,
}

impl FarmFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FarmFaultPlan {
        FarmFaultPlan::default()
    }

    /// Kill `worker` after it has completed `completed_jobs` jobs (0 kills
    /// it before it runs anything). Its queued jobs are stolen by the
    /// survivors; if every worker dies, the remainder surface as
    /// [`FarmError::WorkerLost`].
    pub fn kill_worker_after(mut self, worker: usize, completed_jobs: usize) -> FarmFaultPlan {
        self.deaths.push((worker, completed_jobs));
        self
    }

    /// Replace job `job`'s execution with a typed
    /// [`FarmError::InjectedFault`].
    pub fn fail_job(mut self, job: usize) -> FarmFaultPlan {
        self.failed_jobs.push(job);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.deaths.is_empty() && self.failed_jobs.is_empty()
    }

    fn death_after(&self, worker: usize) -> Option<usize> {
        self.deaths.iter().find(|&&(w, _)| w == worker).map(|&(_, n)| n)
    }

    fn injects_fault(&self, job: usize) -> bool {
        self.failed_jobs.contains(&job)
    }
}

/// Why one job produced no result. The farm never turns one bad job into a
/// farm-wide panic: every failure is a per-slot typed entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// The job's closure panicked; `message` is the original payload.
    JobPanicked { job: usize, worker: usize, message: String },
    /// The fault plan replaced this job's execution with a failure.
    InjectedFault { job: usize, worker: usize },
    /// Every worker died before this job could run.
    WorkerLost { job: usize },
}

impl FarmError {
    /// The submission index of the failed job.
    pub fn job(&self) -> usize {
        match *self {
            FarmError::JobPanicked { job, .. }
            | FarmError::InjectedFault { job, .. }
            | FarmError::WorkerLost { job } => job,
        }
    }
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::JobPanicked { job, worker, message } => {
                write!(f, "job {job} panicked on worker {worker}: {message}")
            }
            FarmError::InjectedFault { job, worker } => {
                write!(f, "job {job} hit an injected fault on worker {worker}")
            }
            FarmError::WorkerLost { job } => {
                write!(f, "job {job} was queued but every worker died before running it")
            }
        }
    }
}

impl std::error::Error for FarmError {}

/// One farm-tier occurrence, timestamped in nanoseconds since the farm
/// started. Events from one worker arrive in that worker's program order;
/// interleaving across workers follows real execution and is therefore not
/// deterministic (results are — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FarmEvent {
    /// Worker `worker` began executing job `job`.
    JobStarted { at_nanos: u64, worker: usize, job: usize },
    /// Worker `worker` finished job `job` (`ok` = produced a result).
    JobCompleted { at_nanos: u64, worker: usize, job: usize, ok: bool },
    /// `thief` stole job `job` from the back of `victim`'s deque.
    JobStolen { at_nanos: u64, thief: usize, victim: usize, job: usize },
    /// A fault-plan death: `worker` stopped pulling work.
    WorkerDied { at_nanos: u64, worker: usize },
}

/// Receives [`FarmEvent`]s on the feeding thread while the farm drains.
pub trait FarmObserver {
    fn on_event(&mut self, event: FarmEvent);
}

impl<F: FnMut(FarmEvent)> FarmObserver for F {
    fn on_event(&mut self, event: FarmEvent) {
        self(event)
    }
}

/// Aggregate accounting of one farm run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Jobs submitted (== `results.len()` of the outcome).
    pub n_jobs: usize,
    /// Jobs that produced a [`FarmError`] instead of a result.
    pub n_failed: usize,
    /// Successful steals.
    pub steals: u64,
    /// Peak submitted-but-not-completed jobs (≤ `capacity` when bounded).
    pub max_in_flight: usize,
    /// Jobs completed per worker (stolen jobs count for the thief).
    pub per_worker_jobs: Vec<usize>,
    /// Workers killed by the fault plan.
    pub workers_died: usize,
    /// Wall time of the whole run.
    pub elapsed_nanos: u64,
}

impl FarmStats {
    /// Completed jobs per wall second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            return 0.0;
        }
        self.n_jobs as f64 / (self.elapsed_nanos as f64 / 1e9)
    }
}

/// Everything a farm run produced: one result slot per submitted job, in
/// submission order, plus the run's accounting.
#[derive(Debug)]
pub struct FarmOutcome<R> {
    /// `results[i]` is job `i`'s result or its typed failure.
    pub results: Vec<Result<R, FarmError>>,
    pub stats: FarmStats,
}

impl<R> FarmOutcome<R> {
    /// All results, or the first failure (by job order).
    pub fn into_results(self) -> Result<Vec<R>, FarmError> {
        self.results.into_iter().collect()
    }

    /// The first failure in job order, if any.
    pub fn first_error(&self) -> Option<&FarmError> {
        self.results.iter().find_map(|r| r.as_ref().err())
    }
}

/// Render a panic payload as text (shared with
/// [`crate::parallel::run_master_worker`]'s propagation path).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

/// The farm's wall-clock telemetry handles, resolved from the global
/// [`obs`] registry once per run. Only built when the registry is enabled
/// at farm start, so a disabled registry costs the farm exactly one
/// `is_enabled` load — no handle registration, no name formatting, and no
/// per-job recording.
struct FarmMetrics {
    /// `farm_queue_wait_ns_w<i>`: push-to-claim latency, recorded by the
    /// worker that ran the job (thieves record into their own histogram).
    queue_wait: Vec<obs::Histogram>,
    /// `farm_job_run_ns_w<i>`: job execution wall time per worker.
    run: Vec<obs::Histogram>,
    /// `farm_seal_lag_ns_w<i>`: completion-to-seal latency per worker —
    /// how long a finished job waited for its in-order turn.
    seal_lag: Vec<obs::Histogram>,
    /// Tick exactly where [`FarmStats`] ticks, so the registry and the
    /// stats can never disagree.
    jobs: obs::Counter,
    failed: obs::Counter,
    steals: obs::Counter,
    backpressure: obs::Counter,
    deaths: obs::Counter,
}

impl FarmMetrics {
    fn new(n_workers: usize) -> Option<FarmMetrics> {
        let reg = obs::global();
        if !reg.is_enabled() {
            return None;
        }
        Some(FarmMetrics {
            queue_wait: (0..n_workers)
                .map(|i| reg.histogram(&format!("farm_queue_wait_ns_w{i}")))
                .collect(),
            run: (0..n_workers).map(|i| reg.histogram(&format!("farm_job_run_ns_w{i}"))).collect(),
            seal_lag: (0..n_workers)
                .map(|i| reg.histogram(&format!("farm_seal_lag_ns_w{i}")))
                .collect(),
            jobs: reg.counter("farm_jobs_total"),
            failed: reg.counter("farm_jobs_failed_total"),
            steals: reg.counter("farm_steals_total"),
            backpressure: reg.counter("farm_backpressure_waits_total"),
            deaths: reg.counter("farm_workers_died_total"),
        })
    }
}

/// A job's landed outcome plus the provenance the seal loop needs to
/// record seal lag: when it completed and which worker ran it
/// (`usize::MAX` for jobs written off as [`FarmError::WorkerLost`]).
struct Slot<R> {
    result: Result<R, FarmError>,
    completed_at: u64,
    worker: usize,
}

impl<R> Slot<R> {
    fn lost(job: usize, at_nanos: u64) -> Slot<R> {
        Slot {
            result: Err(FarmError::WorkerLost { job }),
            completed_at: at_nanos,
            worker: usize::MAX,
        }
    }
}

/// A completed job on its way back to the feeding thread.
struct Completion<R> {
    job: usize,
    worker: usize,
    at_nanos: u64,
    result: Result<R, FarmError>,
}

/// Worker→master mail. Events and completions share one queue so the
/// observer sees a worker's `JobStarted` before its `JobCompleted`.
enum Mail<R> {
    Event(FarmEvent),
    Done(Completion<R>),
}

/// Counters shared between the feeder and the workers.
struct Inner<R> {
    /// Jobs currently sitting unclaimed in some deque.
    queued: usize,
    submitted: usize,
    completed: usize,
    /// No more submissions will arrive.
    closed: bool,
    /// Workers not yet killed by the fault plan.
    live_workers: usize,
    mail: Vec<Mail<R>>,
}

struct Shared<J, R> {
    /// `(job index, job, enqueued_at nanos)` — the timestamp feeds the
    /// queue-wait histogram.
    deques: Vec<Mutex<VecDeque<(usize, J, u64)>>>,
    inner: Mutex<Inner<R>>,
    /// Workers wait here for work (or close).
    work_cv: Condvar,
    /// The feeder waits here for completions (capacity or final drain).
    done_cv: Condvar,
}

impl<J, R> Shared<J, R> {
    fn new(n_workers: usize) -> Shared<J, R> {
        Shared {
            deques: (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            inner: Mutex::new(Inner {
                queued: 0,
                submitted: 0,
                completed: 0,
                closed: false,
                live_workers: n_workers,
                mail: Vec::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }
}

fn nanos(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Claim a job: own deque front first, then a steal sweep over the other
/// deques' backs. Returns `None` once the farm is closed and drained.
#[allow(clippy::type_complexity)]
fn next_job<J, R>(shared: &Shared<J, R>, id: usize) -> Option<(usize, J, u64, Option<usize>)> {
    let n = shared.deques.len();
    loop {
        let own = shared.deques[id].lock().expect("farm deque").pop_front();
        if let Some((idx, job, enq)) = own {
            shared.inner.lock().expect("farm state").queued -= 1;
            return Some((idx, job, enq, None));
        }
        for k in 1..n {
            let victim = (id + k) % n;
            let stolen = shared.deques[victim].lock().expect("farm deque").pop_back();
            if let Some((idx, job, enq)) = stolen {
                shared.inner.lock().expect("farm state").queued -= 1;
                return Some((idx, job, enq, Some(victim)));
            }
        }
        let inner = shared.inner.lock().expect("farm state");
        if inner.queued > 0 {
            // A job is in flight between the feeder's counter bump and its
            // deque push (or another thief beat us) — re-sweep.
            drop(inner);
            std::thread::yield_now();
            continue;
        }
        if inner.closed {
            return None;
        }
        let _reacquired = shared.work_cv.wait(inner).expect("farm state");
    }
}

fn worker_loop<J, R, W, F>(
    shared: &Shared<J, R>,
    id: usize,
    mut shard: W,
    work: &F,
    fault: &FarmFaultPlan,
    epoch: Instant,
    metrics: Option<&FarmMetrics>,
) where
    J: Send,
    R: Send,
    F: Fn(&mut W, usize, J) -> R + Sync,
{
    let quota = fault.death_after(id);
    let mut done_here = 0usize;
    loop {
        if quota == Some(done_here) {
            let mut inner = shared.inner.lock().expect("farm state");
            inner.live_workers -= 1;
            inner
                .mail
                .push(Mail::Event(FarmEvent::WorkerDied { at_nanos: nanos(epoch), worker: id }));
            drop(inner);
            shared.done_cv.notify_all();
            return;
        }
        let Some((idx, job, enqueued_at, stolen_from)) = next_job(shared, id) else {
            return;
        };
        let started = nanos(epoch);
        let result = if fault.injects_fault(idx) {
            Err(FarmError::InjectedFault { job: idx, worker: id })
        } else {
            catch_unwind(AssertUnwindSafe(|| work(&mut shard, idx, job))).map_err(|payload| {
                FarmError::JobPanicked {
                    job: idx,
                    worker: id,
                    message: panic_message(payload.as_ref()),
                }
            })
        };
        done_here += 1;
        let ok = result.is_ok();
        let finished = nanos(epoch);
        if let Some(m) = metrics {
            m.queue_wait[id].record(started.saturating_sub(enqueued_at));
            m.run[id].record(finished.saturating_sub(started));
        }
        let mut inner = shared.inner.lock().expect("farm state");
        if let Some(victim) = stolen_from {
            inner.mail.push(Mail::Event(FarmEvent::JobStolen {
                at_nanos: started,
                thief: id,
                victim,
                job: idx,
            }));
        }
        inner.mail.push(Mail::Event(FarmEvent::JobStarted {
            at_nanos: started,
            worker: id,
            job: idx,
        }));
        inner.completed += 1;
        inner.mail.push(Mail::Done(Completion {
            job: idx,
            worker: id,
            at_nanos: finished,
            result,
        }));
        inner.mail.push(Mail::Event(FarmEvent::JobCompleted {
            at_nanos: finished,
            worker: id,
            job: idx,
            ok,
        }));
        drop(inner);
        shared.done_cv.notify_all();
    }
}

fn ensure_slot<R>(results: &mut Vec<Option<Slot<R>>>, job: usize) {
    if results.len() <= job {
        results.resize_with(job + 1, || None);
    }
}

/// Flush the in-order prefix of sealed results through `on_sealed`. This is
/// the exactly-once point of the farm, so the registry's job counters tick
/// here — they agree with [`FarmStats`] by construction, not by auditing.
fn seal_ready<R, S>(
    results: &[Option<Slot<R>>],
    sealed: &mut usize,
    metrics: Option<&FarmMetrics>,
    epoch: Instant,
    on_sealed: &mut S,
) where
    S: FnMut(usize, &Result<R, FarmError>),
{
    while *sealed < results.len() {
        match &results[*sealed] {
            Some(slot) => {
                if let Some(m) = metrics {
                    m.jobs.inc();
                    if slot.result.is_err() {
                        m.failed.inc();
                    }
                    if slot.worker != usize::MAX {
                        m.seal_lag[slot.worker]
                            .record(nanos(epoch).saturating_sub(slot.completed_at));
                    }
                }
                on_sealed(*sealed, &slot.result);
                *sealed += 1;
            }
            None => break,
        }
    }
}

/// Drain worker mail on the feeding thread: forward events to the
/// observer, land completions in their slots, advance the in-order seal.
#[allow(clippy::too_many_arguments)]
fn drain_mail<R, S>(
    inner: &mut Inner<R>,
    results: &mut Vec<Option<Slot<R>>>,
    sealed: &mut usize,
    stats: &mut FarmStats,
    metrics: Option<&FarmMetrics>,
    epoch: Instant,
    observer: &mut Option<&mut dyn FarmObserver>,
    on_sealed: &mut S,
) where
    S: FnMut(usize, &Result<R, FarmError>),
{
    for mail in inner.mail.drain(..) {
        match mail {
            Mail::Event(ev) => {
                match ev {
                    FarmEvent::JobStolen { .. } => {
                        stats.steals += 1;
                        if let Some(m) = metrics {
                            m.steals.inc();
                        }
                    }
                    FarmEvent::WorkerDied { .. } => {
                        stats.workers_died += 1;
                        if let Some(m) = metrics {
                            m.deaths.inc();
                        }
                    }
                    _ => {}
                }
                if let Some(obs) = observer.as_deref_mut() {
                    obs.on_event(ev);
                }
            }
            Mail::Done(c) => {
                stats.per_worker_jobs[c.worker] += 1;
                if c.result.is_err() {
                    stats.n_failed += 1;
                }
                ensure_slot(results, c.job);
                results[c.job] =
                    Some(Slot { result: c.result, completed_at: c.at_nanos, worker: c.worker });
            }
        }
    }
    seal_ready(results, sealed, metrics, epoch, on_sealed);
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Run `jobs` through a work-stealing farm. The full entry point; see
/// [`run_batch`] for the common no-hooks case.
///
/// * `make_shard(worker)` builds each worker's reusable mutable state.
/// * `work(&mut shard, job_index, job)` executes one job on a worker.
/// * `observer`, if present, receives [`FarmEvent`]s on this thread.
/// * `on_sealed(i, result)` fires exactly once per job, in strict
///   submission order (job `i` seals only after `0..i` have), on this
///   thread — the checkpoint-append hook.
///
/// Returns one result slot per job, in submission order. The call only
/// panics on misuse (`n_workers == 0`); job failures are data.
pub fn run_farm<J, R, W, MkW, F, S>(
    config: &FarmConfig,
    jobs: impl IntoIterator<Item = J>,
    mut make_shard: MkW,
    work: F,
    mut observer: Option<&mut dyn FarmObserver>,
    mut on_sealed: S,
) -> FarmOutcome<R>
where
    J: Send,
    R: Send,
    W: Send,
    MkW: FnMut(usize) -> W,
    F: Fn(&mut W, usize, J) -> R + Sync,
    S: FnMut(usize, &Result<R, FarmError>),
{
    assert!(config.n_workers >= 1, "farm needs at least one worker");
    let n_workers = config.n_workers;
    let epoch = Instant::now();
    let shared: Shared<J, R> = Shared::new(n_workers);
    let shards: Vec<W> = (0..n_workers).map(&mut make_shard).collect();
    let metrics = FarmMetrics::new(n_workers);
    let metrics = metrics.as_ref();

    let mut results: Vec<Option<Slot<R>>> = Vec::new();
    let mut sealed = 0usize;
    let mut stats = FarmStats { per_worker_jobs: vec![0; n_workers], ..FarmStats::default() };

    std::thread::scope(|s| {
        for (id, shard) in shards.into_iter().enumerate() {
            let shared = &shared;
            let work = &work;
            let fault = &config.fault;
            s.spawn(move || worker_loop(shared, id, shard, work, fault, epoch, metrics));
        }

        // Feed with backpressure.
        let mut farm_dead = false;
        for (idx, job) in jobs.into_iter().enumerate() {
            if !farm_dead {
                let mut inner = shared.inner.lock().expect("farm state");
                loop {
                    drain_mail(
                        &mut inner,
                        &mut results,
                        &mut sealed,
                        &mut stats,
                        metrics,
                        epoch,
                        &mut observer,
                        &mut on_sealed,
                    );
                    if inner.live_workers == 0 {
                        farm_dead = true;
                        break;
                    }
                    let in_flight = inner.submitted - inner.completed;
                    if config.capacity == 0 || in_flight < config.capacity {
                        inner.submitted += 1;
                        inner.queued += 1;
                        stats.max_in_flight =
                            stats.max_in_flight.max(inner.submitted - inner.completed);
                        break;
                    }
                    if let Some(m) = metrics {
                        m.backpressure.inc();
                    }
                    inner = shared.done_cv.wait(inner).expect("farm state");
                }
                if !farm_dead {
                    drop(inner);
                    shared.deques[idx % n_workers].lock().expect("farm deque").push_back((
                        idx,
                        job,
                        nanos(epoch),
                    ));
                    shared.work_cv.notify_one();
                    continue;
                }
            }
            // No worker left to run this job.
            ensure_slot(&mut results, idx);
            results[idx] = Some(Slot::lost(idx, nanos(epoch)));
            stats.n_failed += 1;
        }

        shared.inner.lock().expect("farm state").closed = true;
        shared.work_cv.notify_all();

        // Drain until every submitted job has a completion (or the jobs
        // stranded by a total worker loss are written off).
        let mut inner = shared.inner.lock().expect("farm state");
        loop {
            drain_mail(
                &mut inner,
                &mut results,
                &mut sealed,
                &mut stats,
                metrics,
                epoch,
                &mut observer,
                &mut on_sealed,
            );
            if inner.completed >= inner.submitted {
                break;
            }
            if inner.live_workers == 0 {
                drop(inner);
                for deque in &shared.deques {
                    for (idx, _job, _enq) in deque.lock().expect("farm deque").drain(..) {
                        ensure_slot(&mut results, idx);
                        results[idx] = Some(Slot::lost(idx, nanos(epoch)));
                        stats.n_failed += 1;
                    }
                }
                inner = shared.inner.lock().expect("farm state");
                inner.completed = inner.submitted;
                inner.queued = 0;
                continue;
            }
            inner = shared.done_cv.wait(inner).expect("farm state");
        }
        drop(inner);
    });

    // The drain loop exits on the last completion, but a worker can still
    // push mail after that (its fault-plan death races the master's final
    // drain). All workers have joined here, so one more drain under the
    // lock is guaranteed to observe everything; it also flushes the seal.
    drain_mail(
        &mut shared.inner.lock().expect("farm state"),
        &mut results,
        &mut sealed,
        &mut stats,
        metrics,
        epoch,
        &mut observer,
        &mut on_sealed,
    );
    stats.elapsed_nanos = nanos(epoch);
    stats.n_jobs = results.len();
    let results: Vec<Result<R, FarmError>> = results
        .into_iter()
        .map(|slot| slot.expect("every job sealed exactly once").result)
        .collect();
    FarmOutcome { results, stats }
}

/// The common case: a materialized job list, stateless workers, no hooks.
/// The farm analogue of [`crate::parallel::run_master_worker`], returning
/// typed per-job failures instead of propagating panics.
pub fn run_batch<J, R, F>(jobs: Vec<J>, n_workers: usize, work: F) -> FarmOutcome<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let config = FarmConfig::new(n_workers);
    run_farm(&config, jobs, |_| (), |(), idx, job| work(idx, job), None, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_preserves_submission_order() {
        let outcome = run_batch((0..100u64).collect(), 4, |_, j| j * j);
        assert_eq!(outcome.results.len(), 100);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), (i * i) as u64);
        }
        assert_eq!(outcome.stats.n_jobs, 100);
        assert_eq!(outcome.stats.n_failed, 0);
        assert_eq!(outcome.stats.per_worker_jobs.iter().sum::<usize>(), 100);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let outcome = run_batch(vec![(); 257], 8, |_, ()| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(outcome.results.len(), 257);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn single_worker_runs_in_submission_order() {
        let outcome = run_batch(vec![1, 2, 3], 1, |idx, j| (idx, j));
        let values: Vec<_> = outcome.into_results().unwrap();
        assert_eq!(values, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let outcome = run_batch(vec![7], 16, |_, j: i32| j + 1);
        assert_eq!(outcome.into_results().unwrap(), vec![8]);
    }

    #[test]
    fn empty_job_list() {
        let outcome = run_batch(Vec::<u32>::new(), 4, |_, j| j);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.n_jobs, 0);
    }

    #[test]
    fn panicking_job_is_isolated_with_original_message() {
        let outcome = run_batch((0..50u32).collect(), 4, |_, j| {
            if j == 17 {
                panic!("job seventeen exploded");
            }
            j * 2
        });
        assert_eq!(outcome.results.len(), 50);
        assert_eq!(outcome.stats.n_failed, 1);
        for (i, r) in outcome.results.iter().enumerate() {
            if i == 17 {
                match r {
                    Err(FarmError::JobPanicked { job: 17, message, .. }) => {
                        assert!(message.contains("seventeen exploded"), "{message}");
                    }
                    other => panic!("expected JobPanicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
            }
        }
        assert_eq!(outcome.first_error().unwrap().job(), 17);
    }

    #[test]
    fn injected_fault_is_typed_and_contained() {
        let config = FarmConfig::new(3).with_fault(FarmFaultPlan::none().fail_job(2).fail_job(5));
        let outcome =
            run_farm(&config, (0..8u32).collect::<Vec<_>>(), |_| (), |(), _, j| j, None, |_, _| {});
        assert_eq!(outcome.stats.n_failed, 2);
        for (i, r) in outcome.results.iter().enumerate() {
            if i == 2 || i == 5 {
                assert!(matches!(r, Err(FarmError::InjectedFault { .. })), "{i}: {r:?}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32);
            }
        }
    }

    #[test]
    fn dead_workers_jobs_are_stolen_by_survivors() {
        // Worker 0 dies immediately; its round-robin share must still run.
        let config = FarmConfig::new(3).with_fault(FarmFaultPlan::none().kill_worker_after(0, 0));
        let outcome = run_farm(
            &config,
            (0..60u32).collect::<Vec<_>>(),
            |_| (),
            |(), _, j| j + 1,
            None,
            |_, _| {},
        );
        assert_eq!(outcome.stats.workers_died, 1);
        assert_eq!(outcome.stats.n_failed, 0);
        assert_eq!(outcome.stats.per_worker_jobs[0], 0);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i as u32 + 1);
        }
    }

    #[test]
    fn total_worker_loss_surfaces_as_worker_lost() {
        let config = FarmConfig::new(2)
            .with_fault(FarmFaultPlan::none().kill_worker_after(0, 0).kill_worker_after(1, 0));
        let outcome = run_farm(
            &config,
            (0..10u32).collect::<Vec<_>>(),
            |_| (),
            |(), _, j| j,
            None,
            |_, _| {},
        );
        assert_eq!(outcome.results.len(), 10);
        assert_eq!(outcome.stats.n_failed, 10);
        for r in &outcome.results {
            assert!(matches!(r, Err(FarmError::WorkerLost { .. })), "{r:?}");
        }
    }

    #[test]
    fn bounded_submission_respects_capacity() {
        let config = FarmConfig::new(4).bounded(5);
        let outcome = run_farm(
            &config,
            (0..200u32).collect::<Vec<_>>(),
            |_| (),
            |(), _, j| j % 7,
            None,
            |_, _| {},
        );
        assert!(outcome.stats.max_in_flight <= 5, "{}", outcome.stats.max_in_flight);
        assert_eq!(outcome.results.len(), 200);
        assert_eq!(outcome.stats.n_failed, 0);
    }

    #[test]
    fn seal_callback_fires_in_strict_job_order() {
        let mut sealed: Vec<usize> = Vec::new();
        let config = FarmConfig::new(4).with_fault(FarmFaultPlan::none().fail_job(30));
        let outcome = run_farm(
            &config,
            (0..120u32).collect::<Vec<_>>(),
            |_| (),
            |(), _, j| j,
            None,
            |i, _res| sealed.push(i),
        );
        assert_eq!(sealed, (0..120).collect::<Vec<_>>());
        assert_eq!(outcome.results.len(), 120);
    }

    #[test]
    fn shards_persist_across_a_workers_jobs() {
        // Each worker's shard counts the jobs it ran; the shard totals must
        // account for every job exactly once.
        let totals = Mutex::new(vec![0usize; 4]);
        let outcome = run_farm(
            &FarmConfig::new(4),
            vec![(); 97],
            |id| (id, 0usize),
            |shard: &mut (usize, usize), _, ()| {
                shard.1 += 1;
                shard.1
            },
            None,
            |_, _| {},
        );
        drop(totals.lock().unwrap());
        assert_eq!(outcome.results.len(), 97);
        assert_eq!(outcome.stats.per_worker_jobs.iter().sum::<usize>(), 97);
        // A worker's k-th job sees shard counter k: reuse is real.
        let max_result = outcome.results.iter().map(|r| *r.as_ref().unwrap()).max().unwrap();
        assert!(max_result >= 97usize.div_ceil(4));
    }

    #[test]
    fn observer_sees_coherent_per_job_lifecycles() {
        let mut events: Vec<FarmEvent> = Vec::new();
        let mut obs = |ev: FarmEvent| events.push(ev);
        // Quota 0 so the death is unconditional: a nonzero quota only fires
        // if the worker actually completes that many jobs, which scheduling
        // on a small machine may never let happen.
        let config = FarmConfig::new(3).with_fault(FarmFaultPlan::none().kill_worker_after(2, 0));
        let outcome = run_farm(
            &config,
            (0..40u32).collect::<Vec<_>>(),
            |_| (),
            |(), _, j| j,
            Some(&mut obs),
            |_, _| {},
        );
        let starts = events.iter().filter(|e| matches!(e, FarmEvent::JobStarted { .. })).count();
        let completes =
            events.iter().filter(|e| matches!(e, FarmEvent::JobCompleted { .. })).count();
        let deaths = events.iter().filter(|e| matches!(e, FarmEvent::WorkerDied { .. })).count();
        assert_eq!(starts, 40);
        assert_eq!(completes, 40);
        assert_eq!(deaths, 1);
        assert_eq!(outcome.stats.workers_died, 1);
        let steals =
            events.iter().filter(|e| matches!(e, FarmEvent::JobStolen { .. })).count() as u64;
        assert_eq!(steals, outcome.stats.steals);
    }

    #[test]
    fn skewed_work_triggers_stealing() {
        // Round-robin puts every 4th job on worker 0; worker 0's jobs are
        // slow, so the other workers drain their own deques and then steal
        // worker 0's backlog.
        let outcome = run_batch((0..64u32).collect(), 4, |idx, j| {
            if idx % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            j
        });
        assert_eq!(outcome.results.len(), 64);
        assert!(outcome.stats.steals > 0, "expected steals under skew: {:?}", outcome.stats);
    }

    #[test]
    fn results_are_deterministic_across_worker_counts() {
        let run = |n: usize| {
            run_batch((0..50u64).collect(), n, |_, j| (j as f64).sin().to_bits())
                .into_results()
                .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn stats_jobs_per_sec_is_finite() {
        let outcome = run_batch((0..10u32).collect(), 2, |_, j| j);
        assert!(outcome.stats.jobs_per_sec().is_finite());
        assert!(outcome.stats.elapsed_nanos > 0);
    }
}
